"""Tests for the traceback kernel, CIGAR production and SAM output."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extend.sam import (
    FLAG_REVERSE,
    FLAG_UNMAPPED,
    mapq_from_scores,
    sam_header,
    write_sam,
)
from repro.extend.smith_waterman import (
    ScoringScheme,
    SwWorkspace,
    banded_smith_waterman,
)
from repro.extend.traceback import TracedAlignment, banded_sw_traceback
from repro.sequence.alphabet import encode

seqs = st.text(alphabet="ACGT", min_size=1, max_size=35)


def tb(q, t, band=41):
    return banded_sw_traceback(encode(q), encode(t), band=band)


def cigar_consumption(cigar):
    """(query bases, target bases) consumed by a CIGAR."""
    q = sum(n for op, n in cigar if op in "MXIS")
    t = sum(n for op, n in cigar if op in "MXD")
    return q, t


def score_from_cigar(traced, q, t, scheme=None):
    """Recompute the score by replaying the CIGAR over the sequences."""
    scheme = scheme or ScoringScheme()
    qi, ti = traced.query_start, traced.target_start
    score = 0
    for op, length in traced.cigar:
        if op == "S":
            continue
        if op in "MX":
            for _ in range(length):
                score += scheme.match if q[qi] == t[ti] else scheme.mismatch
                qi += 1
                ti += 1
        elif op == "I":
            score += scheme.gap_open + (length - 1) * scheme.gap_extend
            qi += length
        elif op == "D":
            score += scheme.gap_open + (length - 1) * scheme.gap_extend
            ti += length
    return score, qi, ti


def test_perfect_match_cigar():
    traced = tb("ACGTACGT", "ACGTACGT")
    assert traced.cigar == (("M", 8),)
    assert traced.score == 8


def test_soft_clips_on_local_alignment():
    traced = tb("TTACGTACGTTT", "ACGTACG")
    ops = [op for op, _n in traced.cigar]
    assert ops[0] == "S" and ops[-1] == "S"


def test_mismatch_marked_x():
    # Long matching flanks make aligning through the mismatch optimal.
    traced = tb("AAAAAAAACGAAAAAAAA", "AAAAAAAACCAAAAAAAA")
    assert any(op == "X" for op, _n in traced.cigar)
    assert traced.score == 17 * 1 - 4


def test_insertion_and_deletion():
    # Flanks long enough that opening one gap (-6) beats truncating.
    target = "ACGTACGTACTTGCATTGCA"
    with_extra = target[:10] + "G" + target[10:]
    ins = tb(with_extra, target)
    assert any(op == "I" for op, _n in ins.cigar)
    assert ins.score == 20 - 6
    dele = tb(target, with_extra)
    assert any(op == "D" for op, _n in dele.cigar)
    assert dele.score == 20 - 6


def test_unmapped_all_soft_clip():
    traced = tb("AAAA", "TTTT")
    assert traced.score == 0
    assert traced.cigar == (("S", 4),)


@settings(max_examples=60, deadline=None)
@given(seqs, seqs)
def test_traceback_score_matches_score_only_kernel(q, t):
    traced = banded_sw_traceback(encode(q), encode(t))
    plain = banded_smith_waterman(encode(q), encode(t))
    assert traced.score == plain.score


@settings(max_examples=60, deadline=None)
@given(seqs, seqs)
def test_cigar_is_internally_consistent(q, t):
    traced = banded_sw_traceback(encode(q), encode(t))
    q_used, t_used = cigar_consumption(traced.cigar)
    assert q_used == len(q)
    if traced.is_aligned:
        assert traced.query_end - traced.query_start > 0
        score, qi, ti = score_from_cigar(traced, q, t)
        assert qi == traced.query_end and ti == traced.target_end
        assert score == traced.score


def test_band_validation():
    with pytest.raises(ValueError):
        tb("A", "A", band=0)


def test_unaligned_return_shape_is_unified():
    """The empty-input early returns and the best == 0 path agree: a
    full soft-clip normalized through _merge, so an empty query yields
    an empty CIGAR and an empty target yields one S run -- the same
    shape a zero-scoring alignment of the same read produces."""
    empty = np.array([], dtype=np.int16)
    read = encode("ACGT")
    nothing = TracedAlignment(0, 0, 0, 0, 0, ())
    assert banded_sw_traceback(empty, read) == nothing
    assert banded_sw_traceback(empty, empty) == nothing
    assert banded_sw_traceback(read, empty) \
        == TracedAlignment(0, 0, 0, 0, 0, (("S", 4),))
    # A read that aligns nowhere scores 0 and must take the same shape.
    assert banded_sw_traceback(encode("AAAA"), encode("TTTT")) \
        == TracedAlignment(0, 0, 0, 0, 0, (("S", 4),))


def test_workspace_reuse_is_byte_identical():
    """One shared SwWorkspace across targets of many shapes (including
    shrinking ones, which leave stale cells in the reused rows) must
    reproduce the fresh-allocation results exactly."""
    rng = np.random.default_rng(99)
    shared = SwWorkspace()
    cases = []
    for n in (1, 64, 7, 33, 2, 150, 10):
        q = rng.integers(0, 4, size=int(rng.integers(1, 80))) \
            .astype(np.int16)
        t = rng.integers(0, 4, size=n).astype(np.int16)
        if n > 20:  # plant the query so real alignments occur too
            t[:min(q.size, n)] = q[:min(q.size, n)]
        cases.append((q, t))
    for band in (1, 5, 41):
        for q, t in cases:
            want = banded_sw_traceback(q, t, band=band)
            got = banded_sw_traceback(q, t, band=band, workspace=shared)
            assert got == want


def test_mapq_model():
    assert mapq_from_scores(0, 0, 100) == 0
    assert mapq_from_scores(100, 0, 100) == 60
    assert mapq_from_scores(100, 100, 100) == 0
    assert 0 < mapq_from_scores(100, 50, 100) < 60


def test_align_sam_end_to_end(tmp_path):
    from repro.extend import ReadAligner
    from repro.fmindex import FmdIndex, FmdSeedingEngine
    from repro.seeding import SeedingParams
    from repro.sequence import GenomeSimulator, ReadSimulator, Strand

    ref = GenomeSimulator(seed=111, interspersed_fraction=0.05).generate(4000)
    aligner = ReadAligner(ref, FmdSeedingEngine(FmdIndex(ref)),
                          SeedingParams(min_seed_len=12))
    reads = ReadSimulator(ref, read_length=70, error_read_fraction=0.3,
                          seed=112).simulate(15)
    records = [aligner.align_sam(r.codes, r.name, r.quality) for r in reads]

    mapped = [rec for rec in records if not rec.flag & FLAG_UNMAPPED]
    assert len(mapped) >= 13
    correct = 0
    for read, rec in zip(reads, records):
        if rec.flag & FLAG_UNMAPPED:
            continue
        is_reverse = bool(rec.flag & FLAG_REVERSE)
        assert (rec.flag & FLAG_REVERSE != 0) == \
            (is_reverse)
        assert rec.pos >= 1
        assert rec.cigar and rec.cigar != "*"
        strand = Strand.REVERSE if is_reverse else Strand.FORWARD
        if strand == read.strand and abs(rec.pos - 1 - read.origin) <= 3:
            correct += 1
    assert correct >= 11

    # SAM file structure.
    path = tmp_path / "out.sam"
    write_sam(path, ref, records)
    lines = path.read_text().splitlines()
    assert lines[0].startswith("@HD")
    assert any(line.startswith("@SQ") for line in lines[:3])
    body = [line for line in lines if not line.startswith("@")]
    assert len(body) == len(records)
    for line in body:
        fields = line.split("\t")
        assert len(fields) >= 11


def test_sam_header_fields(reference):
    header = sam_header(reference)
    assert f"LN:{len(reference)}" in header[1]


def test_secondary_alignments_for_repeat_read():
    """A read sampled from a planted repeat must yield secondary records
    at the other copies (FLAG 0x100, MAPQ 0)."""
    from repro.extend import ReadAligner
    from repro.fmindex import FmdIndex, FmdSeedingEngine
    from repro.seeding import SeedingParams
    from repro.sequence import GenomeSimulator, Reference
    import numpy as np

    rng = np.random.default_rng(161)
    unit = rng.integers(0, 4, size=120, dtype=np.uint8)
    filler = rng.integers(0, 4, size=500, dtype=np.uint8)
    genome = np.concatenate([unit, filler, unit, filler, unit])
    ref = Reference(name="rep", codes=genome.astype(np.uint8))
    aligner = ReadAligner(ref, FmdSeedingEngine(FmdIndex(ref)),
                          SeedingParams(min_seed_len=12))
    read = unit[10:90].copy()
    records = aligner.align_sam_multi(read, "rpt", max_secondary=4)
    primary = [r for r in records if not r.flag & 0x100]
    secondary = [r for r in records if r.flag & 0x100]
    assert len(primary) == 1
    assert primary[0].mapq == 0  # three identical copies: ambiguous
    assert len(secondary) >= 1
    positions = {r.pos for r in records}
    assert len(positions) == len(records)  # distinct placements
    for rec in secondary:
        assert rec.mapq == 0


def test_align_sam_multi_unmapped():
    from repro.extend import ReadAligner
    from repro.fmindex import FmdIndex, FmdSeedingEngine
    from repro.seeding import SeedingParams
    from repro.sequence import GenomeSimulator
    import numpy as np

    ref = GenomeSimulator(seed=162).generate(2000)
    aligner = ReadAligner(ref, FmdSeedingEngine(FmdIndex(ref)),
                          SeedingParams(min_seed_len=12))
    # A read that cannot seed: homopolymer absent from a random genome
    # is unlikely, so use pure junk and accept low-score mappings too.
    junk = np.random.default_rng(163).integers(0, 4, size=60,
                                               dtype=np.uint8)
    records = aligner.align_sam_multi(junk, "junk")
    assert len(records) >= 1
