"""Tests for multi-contig references."""

import numpy as np
import pytest

from repro.sequence import GenomeSimulator, Reference, Strand
from repro.sequence.alphabet import decode, revcomp
from repro.sequence.multi import MultiReference


@pytest.fixture()
def multi():
    contigs = [GenomeSimulator(seed=i).generate(400 + 100 * i,
                                                name=f"chr{i + 1}")
               for i in range(3)]
    return MultiReference(contigs)


def test_concatenation(multi):
    assert len(multi) == 400 + 500 + 600
    joined = "".join(c.sequence for c in multi.contigs)
    assert multi.concatenated.sequence == joined


def test_validation():
    with pytest.raises(ValueError):
        MultiReference([])
    a = Reference.from_string("ACGT", name="x")
    b = Reference.from_string("TTTT", name="x")
    with pytest.raises(ValueError):
        MultiReference([a, b])


def test_contig_of(multi):
    contig, base = multi.contig_of(0)
    assert contig.name == "chr1" and base == 0
    contig, base = multi.contig_of(400)
    assert contig.name == "chr2" and base == 400
    contig, base = multi.contig_of(1499)
    assert contig.name == "chr3" and base == 900
    with pytest.raises(ValueError):
        multi.contig_of(1500)


def test_resolve_forward(multi):
    hit = multi.resolve(450, 30)
    assert hit.contig == "chr2"
    assert hit.strand is Strand.FORWARD
    assert hit.start == 50 and hit.length == 30
    # Sequence must actually match.
    contig = multi.contigs[1]
    assert decode(contig.codes[50:80]) == \
        decode(multi.concatenated.both_strands[450:480])


def test_resolve_reverse(multi):
    n = len(multi)
    # Reverse-strand position corresponding to chr1 forward [100, 130).
    x_pos = 2 * n - 100 - 30
    hit = multi.resolve(x_pos, 30)
    assert hit.contig == "chr1"
    assert hit.strand is Strand.REVERSE
    assert hit.start == 100
    fwd = decode(multi.contigs[0].codes[100:130])
    assert revcomp(fwd) == decode(
        multi.concatenated.both_strands[x_pos:x_pos + 30])


def test_resolve_contig_junction_is_none(multi):
    assert multi.resolve(395, 10) is None


def test_resolve_strand_junction_is_none(multi):
    n = len(multi)
    assert multi.resolve(n - 5, 10) is None


def test_sam_header(multi):
    lines = multi.sam_header_lines()
    assert lines[0].startswith("@HD")
    assert sum(1 for line in lines if line.startswith("@SQ")) == 3
    assert "SN:chr2\tLN:500" in lines[2]


def test_seeding_over_multireference(multi):
    """The index structures work unchanged over the concatenated text."""
    from repro.core import ErtConfig, ErtSeedingEngine, build_ert
    from repro.seeding import OracleEngine, SeedingParams, assert_equivalent
    from repro.sequence import ReadSimulator

    reference = multi.concatenated
    engine = ErtSeedingEngine(build_ert(reference, ErtConfig(
        k=5, max_seed_len=80)))
    oracle = OracleEngine(reference)
    reads = [r.codes for r in
             ReadSimulator(reference, read_length=50, seed=9).simulate(8)]
    assert_equivalent(oracle, engine, reads, SeedingParams(min_seed_len=10))
