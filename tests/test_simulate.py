"""Unit tests for the genome and read simulators."""

import numpy as np
import pytest

from repro.sequence import GenomeSimulator, ReadSimulator, Strand
from repro.sequence.alphabet import decode, revcomp


def test_genome_length_and_alphabet():
    ref = GenomeSimulator(seed=1).generate(5000)
    assert len(ref) == 5000
    assert ref.codes.max() <= 3


def test_genome_rejects_tiny():
    with pytest.raises(ValueError):
        GenomeSimulator(seed=1).generate(50)


def test_genome_deterministic_per_seed():
    a = GenomeSimulator(seed=7).generate(2000)
    b = GenomeSimulator(seed=7).generate(2000)
    c = GenomeSimulator(seed=8).generate(2000)
    assert np.array_equal(a.codes, b.codes)
    assert not np.array_equal(a.codes, c.codes)


def test_genome_is_repetitive():
    """Planted repeats must make the genome measurably more repetitive
    than a uniform random string (this skew is what Fig 8 depends on)."""
    k = 10
    ref = GenomeSimulator(seed=2).generate(20000)
    rng = np.random.default_rng(2)
    rand = rng.integers(0, 4, size=20000, dtype=np.uint8)

    def distinct_kmers(codes):
        packed = np.zeros(codes.size - k + 1, dtype=np.int64)
        for j in range(k):
            packed <<= 2
            packed |= codes[j:codes.size - k + 1 + j]
        return np.unique(packed).size

    assert distinct_kmers(ref.codes) < distinct_kmers(rand)


def test_reads_shape_and_origin():
    ref = GenomeSimulator(seed=3).generate(4000)
    sim = ReadSimulator(ref, read_length=70, error_read_fraction=0.0, seed=4)
    reads = sim.simulate(50)
    assert len(reads) == 50
    for read in reads:
        assert len(read) == 70
        assert read.strand in (Strand.FORWARD, Strand.REVERSE)
        assert 0 <= read.origin <= len(ref) - 70


def test_perfect_reads_match_reference():
    ref = GenomeSimulator(seed=5).generate(4000)
    sim = ReadSimulator(ref, read_length=60, error_read_fraction=0.0, seed=6)
    for read in sim.simulate(30):
        fwd = decode(ref.codes[read.origin:read.origin + 60])
        if read.strand is Strand.FORWARD:
            assert read.sequence == fwd
        else:
            assert read.sequence == revcomp(fwd)


def test_error_reads_differ():
    ref = GenomeSimulator(seed=5).generate(4000)
    sim = ReadSimulator(ref, read_length=60, error_read_fraction=1.0,
                        substitution_rate=0.05, seed=7)
    mismatched = 0
    for read in sim.simulate(20):
        fwd = decode(ref.codes[read.origin:read.origin + 60])
        expected = fwd if read.strand is Strand.FORWARD else revcomp(fwd)
        if read.sequence != expected:
            mismatched += 1
    assert mismatched == 20  # error reads guarantee >= 1 substitution


def test_error_fraction_respected_roughly():
    ref = GenomeSimulator(seed=5).generate(4000)
    sim = ReadSimulator(ref, read_length=60, error_read_fraction=0.2, seed=8)
    reads = sim.simulate(300)
    both = ref.both_strands
    n = len(ref)
    errs = 0
    for read in reads:
        if read.strand is Strand.FORWARD:
            pos = read.origin
        else:
            pos = 2 * n - read.origin - 60
        if not np.array_equal(read.codes, both[pos:pos + 60]):
            errs += 1
    assert 0.1 < errs / len(reads) < 0.35


def test_read_length_validation():
    ref = GenomeSimulator(seed=5).generate(200)
    with pytest.raises(ValueError):
        ReadSimulator(ref, read_length=300)


def test_simulate_coverage_sizing():
    ref = GenomeSimulator(seed=9).generate(4000)
    sim = ReadSimulator(ref, read_length=80, seed=10)
    reads = sim.simulate_coverage(2.0)
    total_bases = sum(len(r) for r in reads)
    assert abs(total_bases - 2 * 4000) <= 80
    with pytest.raises(ValueError):
        sim.simulate_coverage(0)
