"""Tests for the tree cursor: counts, gathering, traffic granularity."""

import numpy as np
import pytest

from repro.core import ErtConfig, build_ert
from repro.core.walker import TreeCursor
from repro.memsim import MemoryTracer
from repro.seeding.oracle import count_occurrences, find_occurrences
from repro.sequence import GenomeSimulator
from repro.sequence.alphabet import decode


@pytest.fixture(scope="module")
def ref():
    return GenomeSimulator(seed=41).generate(3000)


@pytest.fixture(scope="module")
def index(ref):
    return build_ert(ref, ErtConfig(k=5, max_seed_len=80,
                                    table_threshold=24, table_x=2))


def _kmer_string(code, k):
    return "".join("ACGT"[(code >> (2 * (k - 1 - j))) & 3] for j in range(k))


def test_cursor_counts_track_brute_force(ref, index):
    text = decode(ref.both_strands)
    k = index.config.k
    rng = np.random.default_rng(1)
    checked = 0
    for code in list(index.roots)[:300]:
        if rng.random() > 0.2:
            continue
        kmer = _kmer_string(code, k)
        cursor = TreeCursor(index, code)
        assert cursor.count == count_occurrences(text, kmer)
        # Extend along a real occurrence so every step must succeed.
        pos = text.find(kmer)
        suffix = text[pos + k:pos + k + 12]
        matched = kmer
        for ch in suffix:
            c = "ACGT".index(ch)
            expected = count_occurrences(text, matched + ch)
            ok = cursor.advance(c)
            assert ok == (expected > 0)
            if not ok:
                break
            matched += ch
            assert cursor.count == expected
        checked += 1
    assert checked > 10


def test_cursor_count_changed_flags(ref, index):
    """count_changed must fire exactly when the count drops."""
    text = decode(ref.both_strands)
    k = index.config.k
    for code in list(index.roots)[:60]:
        kmer = _kmer_string(code, k)
        pos = text.find(kmer)
        suffix = text[pos + k:pos + k + 10]
        cursor = TreeCursor(index, code)
        prev = cursor.count
        for ch in suffix:
            if not cursor.advance("ACGT".index(ch)):
                break
            assert cursor.count_changed == (cursor.count != prev)
            prev = cursor.count


def test_gather_equals_brute_force(ref, index):
    text = decode(ref.both_strands)
    k = index.config.k
    rng = np.random.default_rng(2)
    for code in list(index.roots)[:150]:
        if rng.random() > 0.3:
            continue
        kmer = _kmer_string(code, k)
        cursor = TreeCursor(index, code)
        assert cursor.gather() == find_occurrences(text, kmer)
        # And after a few extensions.
        pos = text.find(kmer)
        matched = kmer
        cursor = TreeCursor(index, code)
        for ch in text[pos + k:pos + k + 6]:
            if not cursor.advance("ACGT".index(ch)):
                break
            matched += ch
        assert cursor.gather() == find_occurrences(text, matched)


def test_gather_count_coherence(ref, index):
    """cursor.count must equal the number of gathered positions."""
    text = decode(ref.both_strands)
    k = index.config.k
    for code in list(index.roots)[:100]:
        cursor = TreeCursor(index, code)
        kmer = _kmer_string(code, k)
        pos = text.find(kmer)
        for ch in text[pos + k:pos + k + 4]:
            if not cursor.advance("ACGT".index(ch)):
                break
        assert cursor.count == len(cursor.gather())


def test_min_hits_stops_at_diverge(ref, index):
    """With min_hits above the branch occupancy, the walk must stop no
    later than the unrestricted walk and keep count >= min_hits."""
    text = decode(ref.both_strands)
    k = index.config.k
    for code in list(index.roots)[:80]:
        if index.kmer_count[code] < 3:
            continue
        kmer = _kmer_string(code, k)
        pos = text.find(kmer)
        free = TreeCursor(index, code, min_hits=1)
        bound = TreeCursor(index, code, min_hits=2)
        free_depth = bound_depth = 0
        for ch in text[pos + k:pos + k + 10]:
            c = "ACGT".index(ch)
            if free.advance(c):
                free_depth += 1
            if bound.advance(c):
                bound_depth += 1
                assert bound.count >= 2
        assert bound_depth <= free_depth


def test_snapshot_restore_roundtrip(ref, index):
    text = decode(ref.both_strands)
    k = index.config.k
    code = next(iter(index.roots))
    kmer = _kmer_string(code, k)
    pos = text.find(kmer)
    cursor = TreeCursor(index, code)
    for ch in text[pos + k:pos + k + 3]:
        cursor.advance("ACGT".index(ch))
    state = cursor.snapshot()
    other = TreeCursor(index, code, enter_root=False)
    other.restore(state, emit=False)
    assert other.count == cursor.count
    assert other.gather() == cursor.gather()


def test_traffic_is_line_granular(ref, index):
    tracer = MemoryTracer()
    index.attach_tracer(tracer)
    try:
        text = decode(ref.both_strands)
        k = index.config.k
        code = max(index.roots, key=lambda c: index.kmer_count[c])
        kmer = _kmer_string(code, k)
        pos = text.find(kmer)
        cursor = TreeCursor(index, code)
        for ch in text[pos + k:pos + k + 20]:
            if not cursor.advance("ACGT".index(ch)):
                break
        traversal = (tracer.by_phase.get("tree_root"),
                     tracer.by_phase.get("tree_traversal"))
        total = sum(p.requests for p in traversal if p is not None)
        assert total >= 1
        # Line-granular: every request fetched exactly 64 bytes.
        for phase in tracer.by_phase.values():
            assert phase.bytes == phase.requests * 64
    finally:
        index.attach_tracer(None)
