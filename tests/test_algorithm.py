"""Tests for the canonical three-round seeding algorithm."""

import pytest

from repro.seeding import Mem, SeedingParams, generate_smems, seed_read
from repro.seeding.algorithm import filter_contained


def test_filter_contained_basic():
    mems = [Mem(0, 10), Mem(2, 8), Mem(5, 15), Mem(0, 10)]
    assert filter_contained(mems) == [Mem(0, 10), Mem(5, 15)]


def test_filter_contained_keeps_overlapping_staircase():
    mems = [Mem(0, 5), Mem(2, 8), Mem(4, 12)]
    assert filter_contained(mems) == mems


def test_filter_contained_same_start():
    assert filter_contained([Mem(3, 6), Mem(3, 9)]) == [Mem(3, 9)]


def test_filter_contained_empty():
    assert filter_contained([]) == []


def test_split_len():
    assert SeedingParams(min_seed_len=19).split_len == 28
    assert SeedingParams(min_seed_len=12).split_len == 18


def test_pruning_is_output_invariant(oracle, read_codes, params):
    """§III-F pruning must not change the SMEM set, only skip work."""
    pruned = SeedingParams(min_seed_len=params.min_seed_len,
                           use_pruning=True)
    unpruned = SeedingParams(min_seed_len=params.min_seed_len,
                             use_pruning=False)
    for read in read_codes[:8]:
        a = generate_smems(oracle, read, pruned)
        b = generate_smems(oracle, read, unpruned)
        assert a == b


def test_pruning_skips_backward_searches(fmd, read_codes, params):
    fmd.reset_stats()
    for read in read_codes[:8]:
        generate_smems(fmd, read,
                       SeedingParams(min_seed_len=12, use_pruning=False))
    unpruned = fmd.stats.backward_searches
    fmd.reset_stats()
    for read in read_codes[:8]:
        generate_smems(fmd, read,
                       SeedingParams(min_seed_len=12, use_pruning=True))
    pruned = fmd.stats.backward_searches
    assert pruned < unpruned
    assert fmd.stats.pruned_backward_searches > 0


def test_smems_respect_min_seed_len(fmd, read_codes):
    params = SeedingParams(min_seed_len=15)
    for read in read_codes[:5]:
        result = seed_read(fmd, read, params)
        for seed in result.smems:
            assert seed.length >= 15


def test_smems_are_containment_free(fmd, read_codes, params):
    for read in read_codes[:5]:
        result = seed_read(fmd, read, params)
        intervals = [s.interval for s in result.smems]
        for a in intervals:
            for b in intervals:
                if a != b:
                    assert not a.contains(b)


def test_reseed_seeds_have_more_hits(fmd, read_codes):
    """Reseeded matches must be strictly less selective than the SMEM
    that triggered them."""
    params = SeedingParams(min_seed_len=12, split_width=50)
    for read in read_codes[:10]:
        result = seed_read(fmd, read, params)
        if not result.reseed_seeds:
            continue
        max_smem_occ = max(s.hit_count for s in result.smems)
        for seed in result.reseed_seeds:
            assert seed.hit_count >= 2
            # Reseeding asked for > occ hits of some triggering SMEM.
            assert seed.hit_count <= max(max_smem_occ * 1000, 1000)


def test_last_seeds_selectivity(fmd, read_codes, params):
    for read in read_codes[:10]:
        result = seed_read(fmd, read, params)
        for seed in result.last_seeds:
            assert seed.length >= params.min_seed_len
            assert seed.hit_count < params.max_mem_intv


def test_rounds_can_be_disabled(fmd, read_codes):
    params = SeedingParams(min_seed_len=12, reseed=False, use_last=False)
    result = seed_read(fmd, read_codes[0], params)
    assert result.reseed_seeds == []
    assert result.last_seeds == []


def test_hits_match_hit_count_when_small(fmd, read_codes, params):
    for read in read_codes[:5]:
        result = seed_read(fmd, read, params)
        for seed in result.all_seeds:
            if seed.hits:
                assert len(seed.hits) == seed.hit_count
            assert seed.hit_count >= 1
