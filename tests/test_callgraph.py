"""Unit tests for the whole-program pass-1/pass-2 machinery:
symbol extraction (repro.checks.symbols), call-target resolution through
aliased imports / methods / re-export chains, and hot propagation
(repro.checks.callgraph)."""

from repro.checks.callgraph import build_graph
from repro.checks.engine import scan_source
from repro.checks.symbols import (
    LOOP_ALLOC,
    NDARRAY_LOOP,
    TELEMETRY_CALL,
    summarize,
)


def graph_of(*named_sources):
    """Build a ProjectGraph from (path, source, module) triples."""
    summaries = []
    for path, source, module in named_sources:
        scan = scan_source(path, source, module=module)
        assert scan.summary is not None, f"{path} failed to parse"
        summaries.append(scan.summary)
    return build_graph(summaries)


# ----------------------------------------------------------------------
# Resolution: aliased imports
# ----------------------------------------------------------------------


def test_resolves_module_alias_import():
    graph = graph_of(
        ("a.py",
         "import repro.fake.util as u\n"
         "def caller():\n"
         "    return u.helper()\n",
         "repro.fake.main"),
        ("b.py",
         "def helper():\n"
         "    return 1\n",
         "repro.fake.util"),
    )
    assert graph.edges["repro.fake.main.caller"] == (
        "repro.fake.util.helper",)


def test_resolves_from_import_alias():
    graph = graph_of(
        ("a.py",
         "from repro.fake.util import helper as h\n"
         "def caller():\n"
         "    return h()\n",
         "repro.fake.main"),
        ("b.py",
         "def helper():\n"
         "    return 1\n",
         "repro.fake.util"),
    )
    assert graph.edges["repro.fake.main.caller"] == (
        "repro.fake.util.helper",)


def test_same_module_call_resolves_without_import():
    graph = graph_of(
        ("a.py",
         "def caller():\n"
         "    return helper()\n"
         "def helper():\n"
         "    return 1\n",
         "repro.fake.main"),
    )
    assert graph.edges["repro.fake.main.caller"] == (
        "repro.fake.main.helper",)


def test_local_shadowing_blocks_resolution():
    graph = graph_of(
        ("a.py",
         "def caller(helper):\n"
         "    return helper()\n"
         "def helper():\n"
         "    return 1\n",
         "repro.fake.main"),
    )
    # `helper` is a parameter: the call must NOT bind to the module
    # function (conservative = no edge).
    assert graph.edges["repro.fake.main.caller"] == ()


# ----------------------------------------------------------------------
# Resolution: methods and constructors
# ----------------------------------------------------------------------

CLASS_SOURCE = (
    "class Cursor:\n"
    "    def __init__(self, index):\n"
    "        self.index = index\n"
    "        self._settle()\n"
    "    def _settle(self):\n"
    "        return None\n"
    "    def advance(self, c):\n"
    "        self._settle()\n"
    "        return c\n"
)


def test_self_call_resolves_to_sibling_method():
    graph = graph_of(("w.py", CLASS_SOURCE, "repro.fake.walker"))
    assert graph.edges["repro.fake.walker.Cursor.advance"] == (
        "repro.fake.walker.Cursor._settle",)


def test_class_call_resolves_to_init():
    graph = graph_of(
        ("w.py", CLASS_SOURCE, "repro.fake.walker"),
        ("e.py",
         "from repro.fake.walker import Cursor\n"
         "def run(index):\n"
         "    cursor = Cursor(index)\n"
         "    return cursor.advance(0)\n",
         "repro.fake.engine"),
    )
    # Both the constructor call and the method call through the typed
    # local resolve.
    assert graph.edges["repro.fake.engine.run"] == (
        "repro.fake.walker.Cursor.__init__",
        "repro.fake.walker.Cursor.advance",
    )


def test_method_resolution_falls_back_to_base_class():
    graph = graph_of(
        ("base.py",
         "class Base:\n"
         "    def shared(self):\n"
         "        return 1\n",
         "repro.fake.base"),
        ("derived.py",
         "from repro.fake.base import Base\n"
         "class Derived(Base):\n"
         "    def run(self):\n"
         "        return self.shared()\n",
         "repro.fake.derived"),
    )
    assert graph.edges["repro.fake.derived.Derived.run"] == (
        "repro.fake.base.Base.shared",)


def test_annotated_parameter_types_calls():
    graph = graph_of(
        ("w.py", CLASS_SOURCE, "repro.fake.walker"),
        ("e.py",
         "from repro.fake.walker import Cursor\n"
         "def run(cursor: Cursor):\n"
         "    return cursor.advance(0)\n",
         "repro.fake.engine"),
    )
    assert graph.edges["repro.fake.engine.run"] == (
        "repro.fake.walker.Cursor.advance",)


# ----------------------------------------------------------------------
# Resolution: re-export chains
# ----------------------------------------------------------------------


def test_resolution_follows_reexport_chain():
    graph = graph_of(
        # repro/fake/__init__.py re-exports from the impl module.
        ("repro/fake/__init__.py",
         "from repro.fake.impl import helper\n",
         "repro.fake"),
        ("impl.py",
         "def helper():\n"
         "    return 1\n",
         "repro.fake.impl"),
        ("user.py",
         "import repro.fake\n"
         "def caller():\n"
         "    return repro.fake.helper()\n",
         "repro.other.user"),
    )
    assert graph.edges["repro.other.user.caller"] == (
        "repro.fake.impl.helper",)


def test_reexported_class_resolves_to_init():
    graph = graph_of(
        ("repro/fake/__init__.py",
         "from repro.fake.walker import Cursor\n",
         "repro.fake"),
        ("w.py", CLASS_SOURCE, "repro.fake.walker"),
        ("user.py",
         "from repro.fake import Cursor\n"
         "def caller(index):\n"
         "    return Cursor(index)\n",
         "repro.other.user"),
    )
    assert graph.edges["repro.other.user.caller"] == (
        "repro.fake.walker.Cursor.__init__",)


def test_reexport_cycle_terminates():
    graph = graph_of(
        ("a/__init__.py", "from repro.b import thing\n", "repro.a"),
        ("b/__init__.py", "from repro.a import thing\n", "repro.b"),
        ("user.py",
         "import repro.a\n"
         "def caller():\n"
         "    return repro.a.thing()\n",
         "repro.user"),
    )
    # Unresolvable, but must not hang or raise.
    assert graph.edges["repro.user.caller"] == ()


# ----------------------------------------------------------------------
# Hot propagation
# ----------------------------------------------------------------------


def test_hot_closure_crosses_modules_with_path():
    graph = graph_of(
        ("a.py",
         "from repro.fake.util import helper\n"
         "# repro: hot\n"
         "def walk():\n"
         "    return helper()\n",
         "repro.fake.main"),
        ("b.py",
         "def helper():\n"
         "    return leaf()\n"
         "def leaf():\n"
         "    return 1\n",
         "repro.fake.util"),
    )
    hot = graph.hot_paths()
    assert set(hot) == {"repro.fake.main.walk", "repro.fake.util.helper",
                        "repro.fake.util.leaf"}
    assert hot["repro.fake.util.leaf"] == (
        "repro.fake.main.walk", "repro.fake.util.helper",
        "repro.fake.util.leaf")


def test_hot_closure_ignores_callers_of_hot_functions():
    graph = graph_of(
        ("a.py",
         "# repro: hot\n"
         "def walk():\n"
         "    return 1\n"
         "def driver():\n"
         "    return walk()\n",
         "repro.fake.main"),
    )
    assert set(graph.hot_paths()) == {"repro.fake.main.walk"}


# ----------------------------------------------------------------------
# Fact extraction details
# ----------------------------------------------------------------------


def source_facts(source, module="repro.fake.mod"):
    scan = scan_source("mod.py", source, module=module)
    assert scan.summary is not None
    return {fn.name: [f.kind for f in fn.facts]
            for fn in scan.summary.functions}


def test_telemetry_fact_recorded_per_function():
    facts = source_facts(
        "from repro import telemetry\n"
        "def a():\n"
        "    telemetry.count('x')\n"
        "def b():\n"
        "    return 1\n")
    assert facts == {"a": [TELEMETRY_CALL], "b": []}


def test_ndarray_loop_fact_requires_array_evidence():
    facts = source_facts(
        "import numpy as np\n"
        "def flagged(xs: np.ndarray):\n"
        "    total = 0\n"
        "    for i in range(xs.size):\n"
        "        total += int(xs[i])\n"
        "    return total\n"
        "def clean(items):\n"
        "    total = 0\n"
        "    for i in range(len(items)):\n"
        "        total += items[i]\n"
        "    return total\n")
    assert facts == {"flagged": [NDARRAY_LOOP], "clean": []}


def test_loop_alloc_fact_only_inside_loops():
    facts = source_facts(
        "import numpy as np\n"
        "def flagged(n):\n"
        "    out = []\n"
        "    for _ in range(n):\n"
        "        row = np.zeros(4)\n"
        "        out.append(row)\n"
        "    return out\n"
        "def clean(n):\n"
        "    row = np.zeros(4)\n"
        "    return [row] * n\n")
    assert facts == {"flagged": [LOOP_ALLOC], "clean": []}


def test_array_inference_propagates_through_expressions():
    facts = source_facts(
        "import numpy as np\n"
        "def flagged(base: np.ndarray):\n"
        "    derived = base[1:] + np.ones(3)\n"
        "    total = 0\n"
        "    for i in range(derived.size):\n"
        "        total += int(derived[i])\n"
        "    return total\n")
    assert facts == {"flagged": [NDARRAY_LOOP]}


def test_summary_is_picklable():
    import pickle
    scan = scan_source("w.py", CLASS_SOURCE, module="repro.fake.walker")
    clone = pickle.loads(pickle.dumps(scan))
    assert clone.summary == scan.summary
    assert clone.path == scan.path


def test_summarize_marks_hot_functions():
    from repro.checks.engine import SourceFile
    src = SourceFile("m.py",
                     "# repro: hot\n"
                     "def walk():\n"
                     "    return 1\n"
                     "def cold():\n"
                     "    return 2\n",
                     module="repro.fake.mod")
    summary = summarize(src)
    hot = {fn.name: fn.hot for fn in summary.functions}
    assert hot == {"walk": True, "cold": False}
