"""Determinism and state-isolation tests.

Engines keep per-read scratch (reverse-complement cache, eager-gather
hit cache keyed by read identity); these tests make sure results never
depend on what was seeded before, on array identity, or on run order.
"""

import numpy as np

from repro.seeding import SeedingParams, seed_read


def test_seed_read_is_idempotent(ert, read_codes, params):
    first = seed_read(ert, read_codes[0], params).key()
    second = seed_read(ert, read_codes[0], params).key()
    assert first == second


def test_result_independent_of_prior_reads(ert_index, read_codes, params):
    from repro.core import ErtSeedingEngine
    fresh = ErtSeedingEngine(ert_index)
    expected = seed_read(fresh, read_codes[5], params).key()

    warm = ErtSeedingEngine(ert_index)
    for read in read_codes[:5]:
        seed_read(warm, read, params)
    assert seed_read(warm, read_codes[5], params).key() == expected


def test_result_independent_of_array_identity(ert, read_codes, params):
    """A byte-identical copy of a read must seed identically (the
    id()-keyed caches must never serve stale entries)."""
    original = read_codes[0]
    copy = original.copy()
    a = seed_read(ert, original, params).key()
    b = seed_read(ert, copy, params).key()
    assert a == b


def test_mutating_a_read_after_seeding_is_safe(ert_index, params):
    """Engines must not hold references that go stale when the caller
    reuses a buffer (begin_read clears per-read scratch)."""
    from repro.core import ErtSeedingEngine
    from repro.sequence import ReadSimulator

    engine = ErtSeedingEngine(ert_index)
    sim = ReadSimulator(ert_index.reference, read_length=60, seed=404)
    buffer = sim.simulate(1)[0].codes.copy()
    first = seed_read(engine, buffer, params).key()
    saved = buffer.copy()
    buffer[:] = (buffer + 1) % 4  # caller reuses the buffer
    # Re-seeding the mutated buffer must reflect the new contents...
    mutated = seed_read(engine, buffer, params).key()
    # ...and restoring them must reproduce the original result.
    buffer[:] = saved
    again = seed_read(engine, buffer, params).key()
    assert again == first
    assert mutated != first or len(first) == 0


def test_batch_order_invariance(ert_index, read_codes, params):
    from repro.core import ErtSeedingEngine, KmerReuseDriver
    driver = KmerReuseDriver(ErtSeedingEngine(ert_index), params)
    forward = driver.seed_batch(read_codes[:8])
    backward = driver.seed_batch(list(reversed(read_codes[:8])))
    for result, mirrored in zip(forward, reversed(backward)):
        assert result.key() == mirrored.key()


def test_simulators_are_reproducible():
    from repro.sequence import GenomeSimulator, ReadSimulator

    ref_a = GenomeSimulator(seed=42).generate(2000)
    ref_b = GenomeSimulator(seed=42).generate(2000)
    assert np.array_equal(ref_a.codes, ref_b.codes)
    reads_a = ReadSimulator(ref_a, read_length=50, seed=1).simulate(5)
    reads_b = ReadSimulator(ref_b, read_length=50, seed=1).simulate(5)
    for a, b in zip(reads_a, reads_b):
        assert np.array_equal(a.codes, b.codes)
        assert a.origin == b.origin and a.strand == b.strand
