"""Tests for the repro.checks static-analysis subsystem.

The fixture corpus under ``tests/fixtures/checks`` carries one failing
and one passing snippet per rule; these tests run the checker on each,
then cover the pragma machinery, the reporters, the CLI exit codes, and
the one regression the rule set was built around: reintroducing the
PR-1 ``id(read)`` cache-key bug must trip ERT001.
"""

import json
import os
import re
import subprocess
import sys

import pytest

from repro.checks import (
    all_rules,
    check_file,
    check_source,
    iter_python_files,
    parse_pragmas,
    report_as_dict,
    run_checks,
)
from repro.checks.cli import main as checks_main
from repro.checks.engine import CheckReport, module_name_for_path

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "checks")
REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RULE_IDS = ("ERT001", "ERT002", "ERT003", "ERT004", "ERT005", "ERT006",
            "ERT007", "ERT008", "ERT009", "ERT010", "ERT011")


def fixture(name):
    return os.path.join(FIXTURES, name)


# ----------------------------------------------------------------------
# Per-rule fixtures: the failing snippet trips exactly its rule, the
# passing snippet is completely clean.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_fail_fixture_trips_its_rule(rule_id):
    violations, _ = check_file(fixture(f"{rule_id.lower()}_fail.py"))
    assert violations, f"{rule_id} fail fixture produced no violations"
    assert {v.rule for v in violations} == {rule_id}


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_pass_fixture_is_clean(rule_id):
    violations, _ = check_file(fixture(f"{rule_id.lower()}_pass.py"))
    assert violations == []


def test_violations_carry_position_and_message():
    violations, _ = check_file(fixture("ert006_fail.py"))
    first = violations[0]
    assert first.line > 0 and first.col > 0
    assert "mutable default" in first.message
    assert re.match(r".+ert006_fail\.py:\d+:\d+: ERT006 ", first.format())


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------


def test_line_pragma_suppresses_only_its_rule_and_line():
    source = (
        "placed = set()\n"
        "def f(a, b):\n"
        "    placed.add(id(a))  # repro: allow(ERT001)\n"
        "    placed.add(id(b))\n"
    )
    violations, suppressed = check_source("snippet.py", source)
    assert suppressed == 1
    assert [v.rule for v in violations] == ["ERT001"]
    assert violations[0].line == 4


def test_multiline_statement_suppressed_by_pragma_on_any_spanned_line():
    source = (
        "def f(a, keys):\n"
        "    return keys.get(\n"
        "        id(a))  # repro: allow(ERT001)\n"
    )
    violations, suppressed = check_source("snippet.py", source)
    assert violations == [] and suppressed == 1


def test_allow_file_pragma_covers_whole_file():
    source = (
        "# repro: module(repro.memsim.fake)\n"
        "# repro: allow-file(ERT004)\n"
        "A = 0.5\n"
        "B = 1.5\n"
    )
    violations, suppressed = check_source("snippet.py", source)
    assert violations == [] and suppressed == 2


def test_pragma_inside_string_literal_is_ignored():
    source = 'DOC = "# repro: allow-file(ERT006)"\ndef f(x=[]):\n    return x\n'
    violations, _ = check_source("snippet.py", source)
    assert [v.rule for v in violations] == ["ERT006"]


def test_allow_pragma_takes_multiple_rules():
    pragmas = parse_pragmas("x = 1  # repro: allow(ERT001, ERT004)\n")
    assert pragmas.allows("ERT001", 1)
    assert pragmas.allows("ERT004", 1)
    assert not pragmas.allows("ERT006", 1)


def test_hot_pragma_binds_to_def_on_same_or_next_line():
    pragmas = parse_pragmas("# repro: hot\ndef f():\n    pass\n")
    assert pragmas.is_hot(2)
    assert not pragmas.is_hot(3)


def test_module_override_enables_scoped_rules():
    timing = "import time\n\ndef f():\n    return time.perf_counter()\n"
    violations, _ = check_source("snippet.py", timing)
    assert violations == []  # bare stem: outside repro scope
    scoped = "# repro: module(repro.analysis.fake)\n" + timing
    violations, _ = check_source("snippet.py", scoped)
    assert [v.rule for v in violations] == ["ERT003"]


# ----------------------------------------------------------------------
# Engine behaviour
# ----------------------------------------------------------------------


def test_module_name_follows_init_chain():
    assert module_name_for_path(
        os.path.join(REPO, "src", "repro", "core", "layout.py")
    ) == "repro.core.layout"
    assert module_name_for_path(
        os.path.join(REPO, "src", "repro", "core", "__init__.py")
    ) == "repro.core"


def test_syntax_error_reported_as_parse_violation():
    violations, _ = check_source("broken.py", "def f(:\n")
    assert len(violations) == 1
    assert violations[0].rule == "PARSE"


def test_import_alias_resolution_catches_renamed_modules():
    source = (
        "# repro: module(repro.analysis.fake)\n"
        "import numpy.random as nr\n"
        "x = nr.rand(3)\n"
    )
    violations, _ = check_source("snippet.py", source)
    assert [v.rule for v in violations] == ["ERT002"]


def test_iter_python_files_skips_fixture_corpus():
    files = list(iter_python_files([os.path.join(REPO, "tests")]))
    assert files
    assert not any("fixtures" in path for path in files)


def test_rule_registry_is_complete():
    assert tuple(rule.id for rule in all_rules()) == RULE_IDS


# ----------------------------------------------------------------------
# The PR-1 regression: an id()-keyed cache without pinning must fail.
# ----------------------------------------------------------------------


def test_reintroducing_engine_id_key_bug_fails_ert001():
    path = os.path.join(REPO, "src", "repro", "core", "engine.py")
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    assert "# repro: allow(ERT001)" in source
    # As committed the pragma documents the pinning; the file is clean.
    clean, _ = check_source(path, source)
    assert not [v for v in clean if v.rule == "ERT001"]
    # Strip the pragma -- the state of the code before the PR-1 fix.
    regressed = source.replace("# repro: allow(ERT001)", "")
    violations, _ = check_source(path, regressed)
    assert any(v.rule == "ERT001" for v in violations)


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------


def test_json_report_schema():
    report = run_checks([fixture("ert006_fail.py"),
                         fixture("ert006_pass.py")], excludes=())
    doc = report_as_dict(report)
    assert doc["version"] == 1
    assert doc["files_checked"] == 2
    assert doc["violation_count"] == len(doc["violations"]) == 2
    assert doc["counts"] == {"ERT006": 2}
    assert isinstance(doc["suppressed"], int)
    for violation in doc["violations"]:
        assert set(violation) == {"rule", "path", "line", "col", "message"}
        assert violation["rule"] == "ERT006"
    json.dumps(doc)  # must be serializable as-is


def test_empty_report_is_ok():
    report = CheckReport()
    assert report.ok
    assert report_as_dict(report)["violation_count"] == 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_exit_zero_on_clean_file(capsys):
    assert checks_main([fixture("ert006_pass.py")]) == 0
    assert "ok:" in capsys.readouterr().out


def test_cli_exit_one_on_violations(capsys):
    assert checks_main([fixture("ert006_fail.py")]) == 1
    out = capsys.readouterr().out
    assert "ERT006" in out and "violation(s)" in out


def test_cli_json_format(capsys):
    assert checks_main(["--format", "json", fixture("ert006_fail.py")]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["violation_count"] == 2


def test_cli_rule_selection(capsys):
    # Only ERT001 requested: the ERT006 fixture comes back clean.
    assert checks_main(["--rules", "ERT001",
                        fixture("ert006_fail.py")]) == 0
    capsys.readouterr()
    assert checks_main(["--rules", "ERT999",
                        fixture("ert006_fail.py")]) == 2


def test_cli_list_rules(capsys):
    assert checks_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULE_IDS:
        assert rule_id in out


def test_ert_repro_check_subcommand():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "check",
         fixture("ert006_fail.py")],
        capture_output=True, text=True, cwd=REPO,
        env={**os.environ,
             "PYTHONPATH": os.path.join(REPO, "src")},
    )
    assert proc.returncode == 1
    assert "ERT006" in proc.stdout


# ----------------------------------------------------------------------
# Dogfood: the repository itself stays clean.
# ----------------------------------------------------------------------


def test_repository_tree_is_clean():
    report = run_checks([os.path.join(REPO, "src"),
                         os.path.join(REPO, "tests"),
                         os.path.join(REPO, "benchmarks")])
    assert report.ok, "\n".join(v.format() for v in report.violations)
