"""Tests for the repro.checks static-analysis subsystem.

The fixture corpus under ``tests/fixtures/checks`` carries one failing
and one passing snippet per rule; these tests run the checker on each,
then cover the pragma machinery, the reporters, the CLI exit codes, and
the one regression the rule set was built around: reintroducing the
PR-1 ``id(read)`` cache-key bug must trip ERT001.
"""

import json
import os
import re
import subprocess
import sys

import pytest

from repro.checks import (
    all_rules,
    check_file,
    check_source,
    iter_python_files,
    parse_pragmas,
    report_as_dict,
    run_checks,
)
from repro.checks.cli import main as checks_main
from repro.checks.engine import CheckReport, module_name_for_path

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "checks")
REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RULE_IDS = ("ERT001", "ERT002", "ERT003", "ERT004", "ERT005", "ERT006",
            "ERT007", "ERT008", "ERT009", "ERT010", "ERT011", "ERT012",
            "ERT013", "ERT014", "ERT015", "ERT016", "ERT017")
#: Rules that run in the whole-program pass (ProjectRule subclasses).
PROJECT_RULE_IDS = ("ERT012", "ERT013", "ERT014", "ERT015", "ERT016")


def fixture(name):
    return os.path.join(FIXTURES, name)


# ----------------------------------------------------------------------
# Per-rule fixtures: the failing snippet trips exactly its rule, the
# passing snippet is completely clean.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_fail_fixture_trips_its_rule(rule_id):
    violations, _ = check_file(fixture(f"{rule_id.lower()}_fail.py"))
    assert violations, f"{rule_id} fail fixture produced no violations"
    assert {v.rule for v in violations} == {rule_id}


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_pass_fixture_is_clean(rule_id):
    violations, _ = check_file(fixture(f"{rule_id.lower()}_pass.py"))
    assert violations == []


def test_violations_carry_position_and_message():
    violations, _ = check_file(fixture("ert006_fail.py"))
    first = violations[0]
    assert first.line > 0 and first.col > 0
    assert "mutable default" in first.message
    assert re.match(r".+ert006_fail\.py:\d+:\d+: ERT006 ", first.format())


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------


def test_line_pragma_suppresses_only_its_rule_and_line():
    source = (
        "placed = set()\n"
        "def f(a, b):\n"
        "    placed.add(id(a))  # repro: allow(ERT001)\n"
        "    placed.add(id(b))\n"
    )
    violations, suppressed = check_source("snippet.py", source)
    assert suppressed == 1
    assert [v.rule for v in violations] == ["ERT001"]
    assert violations[0].line == 4


def test_multiline_statement_suppressed_by_pragma_on_any_spanned_line():
    source = (
        "def f(a, keys):\n"
        "    return keys.get(\n"
        "        id(a))  # repro: allow(ERT001)\n"
    )
    violations, suppressed = check_source("snippet.py", source)
    assert violations == [] and suppressed == 1


def test_allow_file_pragma_covers_whole_file():
    source = (
        "# repro: module(repro.memsim.fake)\n"
        "# repro: allow-file(ERT004)\n"
        "A = 0.5\n"
        "B = 1.5\n"
    )
    violations, suppressed = check_source("snippet.py", source)
    assert violations == [] and suppressed == 2


def test_pragma_inside_string_literal_is_ignored():
    source = 'DOC = "# repro: allow-file(ERT006)"\ndef f(x=[]):\n    return x\n'
    violations, _ = check_source("snippet.py", source)
    assert [v.rule for v in violations] == ["ERT006"]


def test_allow_pragma_takes_multiple_rules():
    pragmas = parse_pragmas("x = 1  # repro: allow(ERT001, ERT004)\n")
    assert pragmas.allows("ERT001", 1)
    assert pragmas.allows("ERT004", 1)
    assert not pragmas.allows("ERT006", 1)


def test_hot_pragma_binds_to_def_on_same_or_next_line():
    pragmas = parse_pragmas("# repro: hot\ndef f():\n    pass\n")
    assert pragmas.is_hot(2)
    assert not pragmas.is_hot(3)


def test_module_override_enables_scoped_rules():
    timing = "import time\n\ndef f():\n    return time.perf_counter()\n"
    violations, _ = check_source("snippet.py", timing)
    assert violations == []  # bare stem: outside repro scope
    scoped = "# repro: module(repro.analysis.fake)\n" + timing
    violations, _ = check_source("snippet.py", scoped)
    assert [v.rule for v in violations] == ["ERT003"]


# ----------------------------------------------------------------------
# Engine behaviour
# ----------------------------------------------------------------------


def test_module_name_follows_init_chain():
    assert module_name_for_path(
        os.path.join(REPO, "src", "repro", "core", "layout.py")
    ) == "repro.core.layout"
    assert module_name_for_path(
        os.path.join(REPO, "src", "repro", "core", "__init__.py")
    ) == "repro.core"


def test_syntax_error_reported_as_parse_violation():
    violations, _ = check_source("broken.py", "def f(:\n")
    assert len(violations) == 1
    assert violations[0].rule == "PARSE"


def test_import_alias_resolution_catches_renamed_modules():
    source = (
        "# repro: module(repro.analysis.fake)\n"
        "import numpy.random as nr\n"
        "x = nr.rand(3)\n"
    )
    violations, _ = check_source("snippet.py", source)
    assert [v.rule for v in violations] == ["ERT002"]


def test_iter_python_files_skips_fixture_corpus():
    files = list(iter_python_files([os.path.join(REPO, "tests")]))
    assert files
    assert not any("fixtures" in path for path in files)


def test_rule_registry_is_complete():
    assert tuple(rule.id for rule in all_rules()) == RULE_IDS


# ----------------------------------------------------------------------
# The PR-1 regression: an id()-keyed cache without pinning must fail.
# ----------------------------------------------------------------------


def test_reintroducing_engine_id_key_bug_fails_ert001():
    path = os.path.join(REPO, "src", "repro", "core", "engine.py")
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    assert "# repro: allow(ERT001)" in source
    # As committed the pragma documents the pinning; the file is clean.
    clean, _ = check_source(path, source)
    assert not [v for v in clean if v.rule == "ERT001"]
    # Strip the pragma -- the state of the code before the PR-1 fix.
    regressed = source.replace("# repro: allow(ERT001)", "")
    violations, _ = check_source(path, regressed)
    assert any(v.rule == "ERT001" for v in violations)


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------


def test_json_report_schema():
    report = run_checks([fixture("ert006_fail.py"),
                         fixture("ert006_pass.py")], excludes=())
    doc = report_as_dict(report)
    assert doc["version"] == 2
    assert doc["files_checked"] == 2
    assert doc["violation_count"] == len(doc["violations"]) == 2
    assert doc["counts"] == {"ERT006": 2}
    assert isinstance(doc["suppressed"], int)
    assert doc["baselined"] == 0
    for violation in doc["violations"]:
        assert set(violation) == {"rule", "path", "line", "col", "message"}
        assert violation["rule"] == "ERT006"
    json.dumps(doc)  # must be serializable as-is


def test_empty_report_is_ok():
    report = CheckReport()
    assert report.ok
    assert report_as_dict(report)["violation_count"] == 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_exit_zero_on_clean_file(capsys):
    assert checks_main([fixture("ert006_pass.py")]) == 0
    assert "ok:" in capsys.readouterr().out


def test_cli_exit_one_on_violations(capsys):
    assert checks_main([fixture("ert006_fail.py")]) == 1
    out = capsys.readouterr().out
    assert "ERT006" in out and "violation(s)" in out


def test_cli_json_format(capsys):
    assert checks_main(["--format", "json", fixture("ert006_fail.py")]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["violation_count"] == 2


def test_cli_rule_selection(capsys):
    # Only ERT001 requested: the ERT006 fixture comes back clean.
    assert checks_main(["--rules", "ERT001",
                        fixture("ert006_fail.py")]) == 0
    capsys.readouterr()
    assert checks_main(["--rules", "ERT999",
                        fixture("ert006_fail.py")]) == 2


def test_cli_list_rules(capsys):
    assert checks_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULE_IDS:
        assert rule_id in out


def test_ert_repro_check_subcommand():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "check",
         fixture("ert006_fail.py")],
        capture_output=True, text=True, cwd=REPO,
        env={**os.environ,
             "PYTHONPATH": os.path.join(REPO, "src")},
    )
    assert proc.returncode == 1
    assert "ERT006" in proc.stdout


# ----------------------------------------------------------------------
# The whole-program pass (ERT012-ERT016)
# ----------------------------------------------------------------------


def test_project_rules_are_project_pass():
    from repro.checks import ProjectRule
    kinds = {rule.id: isinstance(rule, ProjectRule) for rule in all_rules()}
    for rule_id in RULE_IDS:
        assert kinds[rule_id] == (rule_id in PROJECT_RULE_IDS)


def test_ert012_reaches_unannotated_callee():
    """The acceptance criterion: the hot bit crosses a call edge into a
    helper that carries no ``# repro: hot`` annotation of its own."""
    path = fixture("ert012_fail.py")
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    violations, _ = check_file(path)
    assert [v.rule for v in violations] == ["ERT012"]
    violation = violations[0]
    # The violation is inside consume(), which is not annotated ...
    assert "consume()" in violation.message
    lines = source.splitlines()
    def_line = next(i for i, text in enumerate(lines, 1)
                    if text.startswith("def consume"))
    assert "hot" not in lines[def_line - 2]
    assert def_line < violation.line
    # ... and the message names the hot root and the call chain.
    assert "walk()" in violation.message
    assert "->" in violation.message


def test_project_rules_cross_module(tmp_path):
    """Hot caller in one file, telemetry helper in another: only the
    assembled project graph can connect them."""
    pkg = tmp_path / "proj"
    pkg.mkdir()
    (pkg / "hotpath.py").write_text(
        "# repro: module(repro.core.fake_hot)\n"
        "from repro.core.fake_util import emit\n"
        "\n"
        "\n"
        "# repro: hot\n"
        "def walk(nodes):\n"
        "    for node in nodes:\n"
        "        emit(node)\n"
    )
    (pkg / "util.py").write_text(
        "# repro: module(repro.core.fake_util)\n"
        "from repro import telemetry\n"
        "\n"
        "\n"
        "def emit(node):\n"
        "    telemetry.count('nodes')\n"
    )
    report = run_checks([str(pkg)], excludes=())
    assert [v.rule for v in report.violations] == ["ERT012"]
    assert report.violations[0].path.endswith("util.py")
    assert "fake_hot.walk()" in report.violations[0].message


def test_project_violation_suppressed_by_callee_file_pragma():
    source = (
        "# repro: module(repro.core.fake)\n"
        "from repro import telemetry\n"
        "\n"
        "\n"
        "# repro: hot\n"
        "def walk(nodes):\n"
        "    for node in nodes:\n"
        "        consume(node)\n"
        "\n"
        "\n"
        "def consume(node):\n"
        "    telemetry.count('n')  # repro: allow(ERT012)\n"
    )
    violations, suppressed = check_source("snippet.py", source)
    assert violations == []
    assert suppressed == 1


def test_run_checks_jobs_output_is_deterministic():
    """Parallel pass 1 must produce a byte-identical report."""
    paths = [FIXTURES]
    serial = run_checks(paths, excludes=())
    parallel = run_checks(paths, excludes=(), jobs=2)
    assert serial.violations == parallel.violations
    assert serial.files_checked == parallel.files_checked
    assert serial.suppressed == parallel.suppressed


# ----------------------------------------------------------------------
# SARIF export
# ----------------------------------------------------------------------


def test_sarif_document_structure():
    from repro.checks import render_sarif
    report = run_checks([fixture("ert006_fail.py")], excludes=())
    doc = json.loads(render_sarif(report))
    assert doc["version"] == "2.1.0"
    assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "ert-repro-check"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert list(RULE_IDS) == rule_ids
    for descriptor in driver["rules"]:
        assert descriptor["shortDescription"]["text"]
        assert descriptor["fullDescription"]["text"]
        assert descriptor["properties"]["pragma"] == (
            f"# repro: allow({descriptor['id']})")
    assert len(run["results"]) == 2
    for result in run["results"]:
        assert result["ruleId"] == "ERT006"
        assert result["message"]["text"]
        assert rule_ids[result["ruleIndex"]] == "ERT006"
        (location,) = result["locations"]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"].endswith(
            "ert006_fail.py")
        assert "\\" not in physical["artifactLocation"]["uri"]
        assert physical["region"]["startLine"] >= 1
        assert physical["region"]["startColumn"] >= 1
    assert run["properties"]["filesChecked"] == 1


def test_sarif_includes_parse_rule_descriptor_on_demand(tmp_path):
    from repro.checks import render_sarif
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    report = run_checks([str(broken)], excludes=())
    doc = json.loads(render_sarif(report))
    (run,) = doc["runs"]
    rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    assert "PARSE" in rule_ids
    (result,) = run["results"]
    assert result["ruleId"] == "PARSE"


def test_cli_sarif_format(capsys):
    assert checks_main(["--format", "sarif",
                        fixture("ert006_fail.py")]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    assert len(doc["runs"][0]["results"]) == 2


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------

VIOLATING_SNIPPET = (
    "def f(x=[]):\n"
    "    return x\n"
    "\n"
    "\n"
    "def g(y={}):\n"
    "    return y\n"
)


def test_baseline_waives_recorded_violations(tmp_path):
    from repro.checks.baseline import (apply_baseline, load_baseline,
                                       write_baseline)
    target = tmp_path / "debt.py"
    target.write_text(VIOLATING_SNIPPET)
    baseline_path = tmp_path / "checks-baseline.json"
    report = run_checks([str(target)], excludes=())
    assert len(report.violations) == 2
    assert write_baseline(str(baseline_path), report) == 2
    # Same tree: everything is waived, and the waiver count is visible.
    fresh = run_checks([str(target)], excludes=())
    apply_baseline(fresh, load_baseline(str(baseline_path)))
    assert fresh.ok
    assert fresh.baselined == 2
    assert report_as_dict(fresh)["baselined"] == 2
    # New debt on top: only the new violation survives the baseline.
    target.write_text(VIOLATING_SNIPPET + "\n\ndef h(z=[]):\n    return z\n")
    grown = run_checks([str(target)], excludes=())
    apply_baseline(grown, load_baseline(str(baseline_path)))
    assert [v.line for v in grown.violations] == [9]
    assert grown.baselined == 2


def test_baseline_survives_line_moves(tmp_path):
    from repro.checks.baseline import apply_baseline, load_baseline, \
        write_baseline
    target = tmp_path / "debt.py"
    target.write_text(VIOLATING_SNIPPET)
    baseline_path = tmp_path / "b.json"
    write_baseline(str(baseline_path), run_checks([str(target)],
                                                  excludes=()))
    # Push everything down two lines; fingerprints must still match.
    target.write_text("# a comment\nX = 1\n" + VIOLATING_SNIPPET)
    moved = run_checks([str(target)], excludes=())
    apply_baseline(moved, load_baseline(str(baseline_path)))
    assert moved.ok
    assert moved.baselined == 2


def test_cli_baseline_roundtrip(tmp_path, capsys):
    target = tmp_path / "debt.py"
    target.write_text(VIOLATING_SNIPPET)
    baseline_path = tmp_path / "checks-baseline.json"
    # Record the debt ...
    assert checks_main(["--baseline", str(baseline_path),
                        "--update-baseline", str(target)]) == 0
    assert "2 entries" in capsys.readouterr().out
    # ... and the very next gated run is green, with the debt visible.
    assert checks_main(["--baseline", str(baseline_path),
                        str(target)]) == 0
    assert "(2 baselined)" in capsys.readouterr().out


def test_cli_rejects_malformed_baseline(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{\"version\": 999}")
    assert checks_main(["--baseline", str(bad),
                        fixture("ert006_pass.py")]) == 2
    assert "cannot load baseline" in capsys.readouterr().err


# ----------------------------------------------------------------------
# CLI: --list-rules filtering/json and --jobs
# ----------------------------------------------------------------------


def test_cli_list_rules_respects_rules_filter(capsys):
    assert checks_main(["--list-rules", "--rules", "ERT005,ERT013"]) == 0
    out = capsys.readouterr().out
    assert "ERT005" in out and "ERT013" in out
    assert "ERT001" not in out
    assert "# repro: allow(ERT005)" in out


def test_cli_list_rules_json(capsys):
    assert checks_main(["--list-rules", "--format", "json",
                        "--rules", "ERT013,ERT015"]) == 0
    catalogue = json.loads(capsys.readouterr().out)
    assert [entry["id"] for entry in catalogue] == ["ERT013", "ERT015"]
    by_id = {entry["id"]: entry for entry in catalogue}
    assert by_id["ERT013"]["kind"] == "project"
    assert by_id["ERT013"]["scope"] == ["repro"]
    assert by_id["ERT015"]["scope"] == ["repro.parallel"]
    assert by_id["ERT013"]["pragma"] == "# repro: allow(ERT013)"
    assert by_id["ERT013"]["title"]


def test_cli_jobs_matches_serial_output(capsys):
    # Explicitly named files bypass the default fixture exclude.
    targets = [fixture("ert001_fail.py"), fixture("ert006_fail.py"),
               fixture("ert012_fail.py"), fixture("ert016_fail.py")]
    assert checks_main(targets) == 1
    serial_out = capsys.readouterr().out
    assert checks_main(targets + ["--jobs", "2"]) == 1
    parallel_out = capsys.readouterr().out
    assert serial_out == parallel_out


def test_cli_rejects_negative_jobs():
    with pytest.raises(SystemExit) as excinfo:
        checks_main(["--jobs", "-1", fixture("ert006_pass.py")])
    assert excinfo.value.code == 2


# ----------------------------------------------------------------------
# Dogfood: the repository itself stays clean.
# ----------------------------------------------------------------------


def test_repository_tree_is_clean():
    report = run_checks([os.path.join(REPO, "src"),
                         os.path.join(REPO, "tests"),
                         os.path.join(REPO, "benchmarks")])
    assert report.ok, "\n".join(v.format() for v in report.violations)


def test_ert013_repo_clean_without_pragmas():
    """ERT013 (hot-path allocations) holds across src/repro with zero
    suppressions: the two ``allow(ERT013)`` pragmas the SW kernel once
    carried were removed when its per-call buffers were hoisted into
    ``SwWorkspace``, so neither a fresh violation nor a reintroduced
    pragma may land."""
    src = os.path.join(REPO, "src", "repro")
    report = run_checks([src])
    ert013 = [v for v in report.violations if v.rule == "ERT013"]
    assert not ert013, "\n".join(v.format() for v in ert013)
    for path in iter_python_files([src]):
        with open(path) as handle:
            pragmas = parse_pragmas(handle.read())
        allowed = set(pragmas.file_allows)
        for rules in pragmas.line_allows.values():
            allowed |= set(rules)
        assert "ERT013" not in allowed, \
            f"# repro: allow(ERT013) pragma reintroduced in {path}"


def test_ert017_repo_clean_without_pragmas():
    """ERT017 (per-element telemetry in kernel loops) holds across the
    vector kernels with zero suppressions: every sweep counts into
    :class:`repro.kernels.stats.KernelBatchStats` and flushes once per
    batch, so neither a fresh in-loop telemetry call nor an
    ``allow(ERT017)`` pragma may land."""
    src = os.path.join(REPO, "src", "repro")
    report = run_checks([src])
    ert017 = [v for v in report.violations if v.rule == "ERT017"]
    assert not ert017, "\n".join(v.format() for v in ert017)
    for path in iter_python_files([src]):
        with open(path) as handle:
            pragmas = parse_pragmas(handle.read())
        allowed = set(pragmas.file_allows)
        for rules in pragmas.line_allows.values():
            allowed |= set(rules)
        assert "ERT017" not in allowed, \
            f"# repro: allow(ERT017) pragma reintroduced in {path}"
