"""Scalar-vs-vector kernel equivalence (the oracle contract).

The batched kernels (:mod:`repro.kernels`) promise byte-identical output
to the scalar paths at every level: seeds from :func:`seed_batch`, SAM
records through the scheduler with ``kernels="vector"`` at any worker
count, and scores/coordinates from the wavefront Smith-Waterman.  These
tests fuzz that promise over adversarial reads (short, homopolymer,
error-heavy, reverse-complement) and band-edge SW geometries.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.core import ErtSeedingEngine
from repro.extend.pipeline import ReadAligner
from repro.extend.paired import PairedAligner
from repro.extend.smith_waterman import (
    DEFAULT_SCHEME,
    ScoringScheme,
    SwWorkspace,
    banded_smith_waterman,
)
from repro.extend.traceback import banded_sw_traceback
from repro.kernels import (
    batched_banded_sw,
    batched_sw_traceback,
    resolve_kernels,
    seed_batch,
    vector_decline_reason,
    vector_ready,
)
from repro.memsim.trace import MemoryTracer
from repro.parallel import ParallelConfig, align_pairs, align_reads, seed_reads
from repro.seeding.algorithm import seed_read


def _seed_key(result):
    return [(s.read_start, s.length, s.hit_count, tuple(s.hits))
            for s in result.all_seeds]


def _assert_batch_matches_scalar(ert_index, read_list, params):
    scalar_engine = ErtSeedingEngine(ert_index)
    vector_engine = ErtSeedingEngine(ert_index)
    scalar = [seed_read(scalar_engine, r, params) for r in read_list]
    vector = seed_batch(vector_engine, read_list, params)
    assert len(scalar) == len(vector)
    for i, (a, b) in enumerate(zip(scalar, vector)):
        assert _seed_key(a) == _seed_key(b), f"read {i} diverged"
    assert (scalar_engine.stats.truncated_hit_lists
            == vector_engine.stats.truncated_hit_lists)


def test_seed_batch_matches_scalar_on_fixture_reads(ert_index, read_codes,
                                                    params):
    _assert_batch_matches_scalar(ert_index, read_codes, params)


def _fuzz_reads(reference, rng, count):
    """Adversarial read set: reference slices with errors, pure random
    sequence, homopolymers, and lengths straddling k / min_seed_len."""
    n = len(reference)
    out = []
    for i in range(count):
        kind = i % 5
        if kind == 0:  # clean reference slice
            length = int(rng.integers(20, 90))
            start = int(rng.integers(0, n - length))
            read = reference.codes[start:start + length].copy()
        elif kind == 1:  # error-heavy slice (forces early LEP splits)
            length = int(rng.integers(20, 90))
            start = int(rng.integers(0, n - length))
            read = reference.codes[start:start + length].copy()
            for _ in range(int(rng.integers(1, 6))):
                read[int(rng.integers(0, length))] = int(rng.integers(0, 4))
        elif kind == 2:  # pure random (mostly dead-end walks)
            read = rng.integers(0, 4, size=int(rng.integers(1, 60)))
        elif kind == 3:  # homopolymer (deep-repeat LAST scans)
            read = np.full(int(rng.integers(5, 70)),
                           int(rng.integers(0, 4)))
        else:  # short reads around the k / min_seed_len boundaries
            read = rng.integers(0, 4, size=int(rng.integers(1, 14)))
        out.append(np.asarray(read, dtype=np.uint8))
    return out


def test_seed_batch_matches_scalar_on_fuzzed_reads(ert_index, reference,
                                                   params):
    rng = np.random.default_rng(2024)
    reads = _fuzz_reads(reference, rng, 60)
    _assert_batch_matches_scalar(ert_index, reads, params)


def test_seed_batch_matches_scalar_under_tight_hit_cap(ert_index, reference,
                                                       params):
    """A small gather limit exercises the truncated-hit-list branch in
    both the cache-preseed and walk-fallback paths."""
    from repro.seeding import SeedingParams

    rng = np.random.default_rng(7)
    reads = _fuzz_reads(reference, rng, 30)
    tight = SeedingParams(min_seed_len=params.min_seed_len,
                          max_hits_per_seed=2)
    scalar_engine = ErtSeedingEngine(ert_index, gather_limit=2)
    vector_engine = ErtSeedingEngine(ert_index, gather_limit=2)
    scalar = [seed_read(scalar_engine, r, tight) for r in reads]
    vector = seed_batch(vector_engine, reads, tight)
    for a, b in zip(scalar, vector):
        assert _seed_key(a) == _seed_key(b)
    assert scalar_engine.stats.truncated_hit_lists \
        == vector_engine.stats.truncated_hit_lists
    assert vector_engine.stats.truncated_hit_lists > 0


def test_vector_ready_gates(ert_index, ert, fmd):
    engine = ErtSeedingEngine(ert_index)
    assert vector_ready(engine)
    assert vector_decline_reason(engine) is None
    # Telemetry is deliberately NOT a decline reason any more: the
    # vector path runs fully observed through batch-flushed
    # accumulators, so the old telemetry.enabled() escape hatch is gone.
    telemetry.reset()
    telemetry.enable()
    try:
        assert vector_ready(engine)
        assert vector_decline_reason(engine) is None
    finally:
        telemetry.disable()
        telemetry.reset()
    # The remaining gates (per-access instrumentation that needs the
    # scalar cursor) still decline, each with its fallback-counter label.
    tracer = MemoryTracer()
    ert_index.attach_tracer(tracer)
    try:
        assert not vector_ready(engine)
        assert vector_decline_reason(engine) == "tracer"
    finally:
        ert_index.attach_tracer(None)
    assert vector_ready(engine)
    assert vector_decline_reason(fmd) == "engine"
    assert not vector_ready(fmd)


def test_seed_batch_falls_back_when_ineligible(ert_index, read_codes,
                                               params):
    """An ineligible engine (memsim tracer attached) silently takes the
    per-read scalar loop and counts the decline; the batch entry point
    still returns the scalar results."""
    engine = ErtSeedingEngine(ert_index)
    oracle = [seed_read(ErtSeedingEngine(ert_index), r, params)
              for r in read_codes]
    tracer = MemoryTracer()
    ert_index.attach_tracer(tracer)
    telemetry.reset()
    telemetry.enable()
    try:
        results = seed_batch(engine, read_codes, params)
        counters = telemetry.snapshot()["counters"]
    finally:
        ert_index.attach_tracer(None)
        telemetry.disable()
        telemetry.reset()
    for a, b in zip(oracle, results):
        assert _seed_key(a) == _seed_key(b)
    assert counters["kernels.fallback_scalar.tracer"] == 1
    assert "kernels.batches" not in counters


def test_seed_batch_runs_vector_with_telemetry_live(ert_index, read_codes,
                                                    params):
    """With telemetry live the batch entry point takes the *vector*
    path (one kernels.batch flush), and the results still match the
    scalar oracle -- the byte-identity contract holds observed."""
    engine = ErtSeedingEngine(ert_index)
    oracle = [seed_read(ErtSeedingEngine(ert_index), r, params)
              for r in read_codes]
    telemetry.reset()
    telemetry.enable()
    try:
        results = seed_batch(engine, read_codes, params)
        counters = telemetry.snapshot()["counters"]
    finally:
        telemetry.disable()
        telemetry.reset()
    for a, b in zip(oracle, results):
        assert _seed_key(a) == _seed_key(b)
    assert counters["kernels.batches"] == 1
    assert counters["kernels.reads"] == len(read_codes)
    assert counters["kernels.walk_steps"] > 0
    assert counters["seeding.reads"] == len(read_codes)
    assert "kernels.fallback_scalar.tracer" not in counters


def test_resolve_kernels(monkeypatch):
    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    assert resolve_kernels() == "scalar"
    assert resolve_kernels("vector") == "vector"
    monkeypatch.setenv("REPRO_KERNELS", "vector")
    assert resolve_kernels() == "vector"
    assert resolve_kernels("scalar") == "scalar"
    monkeypatch.setenv("REPRO_KERNELS", "simd")
    with pytest.raises(ValueError):
        resolve_kernels()


# ----------------------------------------------------------------------
# End-to-end byte identity through the scheduler
# ----------------------------------------------------------------------


def test_seed_tsv_identical_vector_three_workers(ert_index, reads, params):
    base_lines, base_stats = seed_reads(
        ert_index, reads, params, config=ParallelConfig(workers=1))
    for config in (ParallelConfig(workers=1, kernels="vector"),
                   ParallelConfig(workers=3, batch_size=7,
                                  kernels="vector")):
        lines, stats = seed_reads(ert_index, reads, params, config=config)
        assert lines == base_lines
        assert stats.truncated_hit_lists == base_stats.truncated_hit_lists


def test_align_sam_identical_vector_three_workers(ert_index, reads, params):
    base, _ = align_reads(ert_index, reads, params,
                          config=ParallelConfig(workers=1))
    vec, _ = align_reads(ert_index, reads, params,
                         config=ParallelConfig(workers=3, batch_size=7,
                                               kernels="vector"))
    assert vec == base


def test_align_pairs_identical_vector_three_workers(ert_index, reads,
                                                    params):
    paired = reads[:len(reads) - len(reads) % 2]
    base, _ = align_pairs(ert_index, paired, params,
                          config=ParallelConfig(workers=1))
    vec, _ = align_pairs(ert_index, paired, params,
                         config=ParallelConfig(workers=3, batch_size=4,
                                               kernels="vector"))
    assert vec == base


# ----------------------------------------------------------------------
# Observed-vector equivalence: identity and counters with telemetry on
# ----------------------------------------------------------------------


@pytest.mark.parametrize("start_method", [None, "spawn"])
def test_observed_vector_seed_identity_any_start_method(
        ert_index, reads, params, start_method):
    """Seeds stay byte-identical to scalar when the vector run is fully
    observed (metrics + exemplars) at three workers, under both start
    methods, and every captured exemplar carries the vector tag."""
    base_lines, _ = seed_reads(ert_index, reads, params,
                               config=ParallelConfig(workers=1))
    telemetry.reset()
    telemetry.enable()
    try:
        lines, _ = seed_reads(
            ert_index, reads, params,
            config=ParallelConfig(workers=3, batch_size=7,
                                  kernels="vector",
                                  start_method=start_method))
        snap = telemetry.snapshot()
    finally:
        telemetry.disable()
        telemetry.reset()
    assert lines == base_lines
    exemplars = snap["exemplars"]
    assert exemplars["count"] == len(reads)
    assert exemplars["slowest"], "slowlog empty under vector kernels"
    for rec in exemplars["reservoir"] + exemplars["slowest"]:
        assert rec.get("kernels") == "vector"
        assert rec["wall_ms"] >= 0.0
    assert snap["counters"]["kernels.reads"] == len(reads)
    assert snap["counters"]["kernels.walk_steps"] > 0
    assert snap["histograms"]["read.wall_ms"]["count"] == len(reads)


def test_observed_vector_align_identity_three_workers(ert_index, reads,
                                                      params):
    base, _ = align_reads(ert_index, reads, params,
                          config=ParallelConfig(workers=1))
    telemetry.reset()
    telemetry.enable()
    try:
        vec, _ = align_reads(ert_index, reads, params,
                             config=ParallelConfig(workers=3, batch_size=7,
                                                   kernels="vector"))
        snap = telemetry.snapshot()
    finally:
        telemetry.disable()
        telemetry.reset()
    assert vec == base
    exemplars = snap["exemplars"]
    assert exemplars["count"] == len(reads)
    assert all(rec.get("kernels") == "vector"
               for rec in exemplars["reservoir"])
    # Align exemplars fold the seed-stage counters in alongside the
    # alignment counters.
    assert any("kernels.walk_steps" in rec["counters"]
               for rec in exemplars["reservoir"])
    assert any("sw_cells" in rec["counters"]
               for rec in exemplars["reservoir"])


def test_observed_vector_pairs_identity_three_workers(ert_index, reads,
                                                      params):
    paired = reads[:len(reads) - len(reads) % 2]
    base, _ = align_pairs(ert_index, paired, params,
                          config=ParallelConfig(workers=1))
    telemetry.reset()
    telemetry.enable()
    try:
        vec, _ = align_pairs(ert_index, paired, params,
                             config=ParallelConfig(workers=3, batch_size=4,
                                                   kernels="vector"))
        snap = telemetry.snapshot()
    finally:
        telemetry.disable()
        telemetry.reset()
    assert vec == base
    exemplars = snap["exemplars"]
    assert exemplars["count"] == len(paired) // 2
    assert all(rec.get("kernels") == "vector"
               for rec in exemplars["reservoir"])


def test_vector_counter_totals_match_exemplar_columns(ert_index, reference,
                                                      params):
    """Registry totals equal the sum of the per-read exemplar counters.

    ``PER_READ_COUNTERS`` makes this hold by construction -- the flush
    sums the same arrays the exemplar rows are sliced from -- and this
    test pins it on a fuzzed corpus small enough (48 < the reservoir's
    64) that every read's exemplar is retained.  Zero-valued counters
    are stripped from exemplar records, hence the ``.get(..., 0)``.
    """
    from repro.kernels.stats import PER_READ_COUNTERS
    from repro.parallel.scheduler import instrumented_seed_batch

    rng = np.random.default_rng(99)
    fuzz = _fuzz_reads(reference, rng, 48)
    names = [f"f{i}" for i in range(len(fuzz))]
    engine = ErtSeedingEngine(ert_index)
    telemetry.reset()
    telemetry.enable()
    try:
        instrumented_seed_batch(engine, names, fuzz, params)
        snap = telemetry.snapshot()
    finally:
        telemetry.disable()
        telemetry.reset()
    recs = {rec["read_id"]: rec
            for rec in snap["exemplars"]["reservoir"]}
    assert len(recs) == len(fuzz)
    for name, _ in PER_READ_COUNTERS:
        total = sum(rec["counters"].get(name, 0) for rec in recs.values())
        assert snap["counters"].get(name, 0) == total, name
    assert snap["counters"]["kernels.walk_steps"] > 0

    # Batch-composition invariance: replaying a read alone (B=1, what
    # `ert-repro explain` does) reproduces its counter column exactly.
    for i in (0, 7, 23, 41):
        single = ErtSeedingEngine(ert_index)
        telemetry.reset()
        telemetry.enable()
        try:
            instrumented_seed_batch(single, [names[i]], [fuzz[i]], params)
            alone = telemetry.snapshot()["exemplars"]["reservoir"][0]
        finally:
            telemetry.disable()
            telemetry.reset()
        kernel_cols = {name for name, _ in PER_READ_COUNTERS}
        want = {k: v for k, v in recs[names[i]]["counters"].items()
                if k in kernel_cols}
        got = {k: v for k, v in alone["counters"].items()
               if k in kernel_cols}
        assert got == want, names[i]


# ----------------------------------------------------------------------
# Wavefront Smith-Waterman vs the scalar kernel
# ----------------------------------------------------------------------


def _assert_sw_batch_matches(query, targets, scheme, band):
    workspace = SwWorkspace()
    batched = batched_banded_sw(query, targets, scheme, band,
                                workspace=workspace)
    for target, got in zip(targets, batched):
        want = banded_smith_waterman(query, target, scheme, band)
        assert (got.score, got.query_end, got.target_end, got.cells) \
            == (want.score, want.query_end, want.target_end, want.cells)


def test_batched_sw_fuzzed_geometries():
    rng = np.random.default_rng(5150)
    for band in (1, 3, 8, 41):
        for m in (1, 7, 40):
            query = rng.integers(0, 4, size=m)
            targets = [
                rng.integers(0, 4, size=1),
                rng.integers(0, 4, size=max(1, m // 2)),
                rng.integers(0, 4, size=m),
                rng.integers(0, 4, size=m + band),  # band falls off end
                query.copy(),                       # perfect diagonal
            ]
            _assert_sw_batch_matches(query, targets, DEFAULT_SCHEME, band)


def test_batched_sw_tie_breaking_on_homopolymers():
    """All-A query vs all-A targets: every diagonal cell ties at the
    maximum, so any tie-break drift from the scalar first-occurrence
    rule shows up immediately."""
    query = np.zeros(12, dtype=np.uint8)
    targets = [np.zeros(n, dtype=np.uint8) for n in (3, 12, 20, 40)]
    _assert_sw_batch_matches(query, targets, DEFAULT_SCHEME, 5)


def test_batched_sw_negative_scheme_and_mismatch_only():
    scheme = ScoringScheme(match=2, mismatch=-3, gap_open=-5,
                           gap_extend=-1)
    rng = np.random.default_rng(77)
    query = rng.integers(0, 4, size=25)
    mismatch_only = (query[::-1] + 1) % 4  # no exact run anywhere
    targets = [mismatch_only, rng.integers(0, 4, size=30)]
    _assert_sw_batch_matches(query, targets, scheme, 9)


def test_batched_sw_empty_batch_and_reused_workspace():
    assert batched_banded_sw(np.zeros(5, dtype=np.uint8), []) == []
    # A shared workspace across differently-shaped batches must not
    # leak state between calls.
    workspace = SwWorkspace()
    rng = np.random.default_rng(13)
    query = rng.integers(0, 4, size=18)
    for _ in range(3):
        targets = [rng.integers(0, 4, size=int(rng.integers(1, 30)))
                   for _ in range(4)]
        batched = batched_banded_sw(query, targets, DEFAULT_SCHEME, 7,
                                    workspace=workspace)
        for target, got in zip(targets, batched):
            want = banded_smith_waterman(query, target, DEFAULT_SCHEME, 7)
            assert (got.score, got.query_end, got.target_end) \
                == (want.score, want.query_end, want.target_end)


def test_batched_sw_rejects_bad_band():
    with pytest.raises(ValueError):
        batched_banded_sw(np.zeros(4, dtype=np.uint8),
                          [np.zeros(4, dtype=np.uint8)], band=0)


def test_batched_sw_equal_score_tie_positions():
    """Periodic sequences make the maximum recur at the same score --
    same end row, different end columns (and vice versa).  The scalar
    rule is strict-improvement row-major first occurrence; the batched
    cross-diagonal replacement must land on the same cell."""
    rng = np.random.default_rng(4096)
    period4 = np.tile(np.array([0, 1, 2, 3], dtype=np.uint8), 10)
    for band in (3, 9, 41):
        for m in (4, 8, 16):
            queries = [period4[:m], np.zeros(m, dtype=np.uint8)]
            targets = [period4[:4 * m], np.zeros(30, dtype=np.uint8),
                       np.tile(period4[:m], 3),
                       rng.integers(0, 4, size=2 * m + band)]
            for query in queries:
                _assert_sw_batch_matches(query, targets, DEFAULT_SCHEME,
                                         band)


# ----------------------------------------------------------------------
# Batched wavefront traceback vs the scalar kernel
# ----------------------------------------------------------------------


def _assert_tb_batch_matches(query, targets, scheme, band, workspace=None):
    # min_lanes=1 forces the wavefront path even for tiny batches, so
    # these cases never silently test the scalar fallback against
    # itself.  TracedAlignment equality covers score, all four
    # coordinates, and the CIGAR tuple; the string is checked on top
    # because it is what reaches the SAM records.
    batched = batched_sw_traceback(query, targets, scheme, band,
                                   workspace=workspace, min_lanes=1)
    for target, got in zip(targets, batched):
        want = banded_sw_traceback(query, target, scheme, band)
        assert got == want
        assert got.cigar_string() == want.cigar_string()


def test_batched_traceback_fuzzed_geometries():
    rng = np.random.default_rng(31337)
    for band in (1, 3, 8, 41):
        for m in (1, 7, 40, 101):
            query = rng.integers(0, 4, size=m).astype(np.uint8)
            planted = np.concatenate([
                rng.integers(0, 4, size=11), query,
                rng.integers(0, 4, size=11)]).astype(np.uint8)
            noisy = planted.copy()
            noisy[rng.integers(0, noisy.size, size=max(1, m // 8))] = \
                rng.integers(0, 4, size=max(1, m // 8))
            targets = [
                rng.integers(0, 4, size=1).astype(np.uint8),
                rng.integers(0, 4, size=max(1, band // 2)),  # n < band
                rng.integers(0, 4, size=max(1, m // 2)),
                rng.integers(0, 4, size=m + band),  # band off the end
                planted,                            # perfect embedded
                noisy,                              # band-edge errors
            ]
            _assert_tb_batch_matches(query, targets, DEFAULT_SCHEME, band)


def test_batched_traceback_gap_heavy_and_unaligned():
    """Indel-riddled targets (gap states dominate the walk-back) plus
    all-mismatch lanes (the cached unaligned shape) in one batch."""
    rng = np.random.default_rng(2718)
    scheme = ScoringScheme(match=2, mismatch=-3, gap_open=-5,
                           gap_extend=-2)
    base = rng.integers(0, 4, size=60).astype(np.uint8)
    with_del = np.concatenate([base[:20], base[32:]])  # 12-base deletion
    with_ins = np.concatenate([base[:30],
                               rng.integers(0, 4, size=9), base[30:]])
    choppy = np.concatenate(
        [base[:10], base[14:30], rng.integers(0, 4, size=4), base[30:50]])
    all_mismatch = ((base + 1) % 4).astype(np.uint8)[::-1].copy()
    targets = [with_del, with_ins, choppy, all_mismatch.astype(np.uint8)]
    for band in (9, 31, 41):
        for sch in (DEFAULT_SCHEME, scheme):
            _assert_tb_batch_matches(base, targets, sch, band)


def test_batched_traceback_homopolymer_ties():
    """All-A vs all-A: every cell of every diagonal ties, so the
    post-sweep argmax tie-break and the walk-back pointer priorities
    are both pinned against the scalar oracle."""
    query = np.zeros(12, dtype=np.uint8)
    targets = [np.zeros(n, dtype=np.uint8) for n in (3, 12, 20, 40)]
    for band in (1, 5, 41):
        _assert_tb_batch_matches(query, targets, DEFAULT_SCHEME, band)


def test_batched_traceback_empty_inputs_and_fallback():
    empty_q = np.array([], dtype=np.uint8)
    targets = [np.zeros(6, dtype=np.uint8), np.array([], dtype=np.uint8)]
    assert batched_sw_traceback(empty_q, []) == []
    # Empty query / all-empty targets take the scalar dispatch and must
    # still match the oracle shape-for-shape.
    for q in (empty_q, np.zeros(4, dtype=np.uint8)):
        got = batched_sw_traceback(q, targets, min_lanes=1)
        want = [banded_sw_traceback(q, t) for t in targets]
        assert got == want
    # Below the crossover the entry point dispatches scalar; results
    # are identical either way.
    q = np.zeros(4, dtype=np.uint8)
    assert batched_sw_traceback(q, targets[:1]) \
        == [banded_sw_traceback(q, targets[0])]


def test_batched_traceback_reused_workspace():
    """One workspace across batches of different shapes and bands: the
    carved planes shrink, grow, and must never leak stale pointers."""
    workspace = SwWorkspace()
    rng = np.random.default_rng(55)
    for band in (41, 3, 17):
        m = int(rng.integers(5, 90))
        query = rng.integers(0, 4, size=m).astype(np.uint8)
        targets = [rng.integers(0, 4, size=int(rng.integers(1, 120)))
                   .astype(np.uint8) for _ in range(5)]
        targets.append(np.concatenate(
            [targets[0][:3], query]).astype(np.uint8))
        _assert_tb_batch_matches(query, targets, DEFAULT_SCHEME, band,
                                 workspace=workspace)


def test_batched_traceback_rejects_bad_band():
    with pytest.raises(ValueError):
        batched_sw_traceback(np.zeros(4, dtype=np.uint8),
                             [np.zeros(4, dtype=np.uint8)], band=0)


def test_read_aligner_tb_batch_matches_scalar(ert_index, reads, params):
    """align_sam / align_sam_multi with the batched traceback injected
    must emit the scalar records byte for byte."""
    reference = ert_index.reference
    scalar = ReadAligner(reference, ErtSeedingEngine(ert_index),
                         params=params)
    batched = ReadAligner(reference, ErtSeedingEngine(ert_index),
                          params=params, tb_batch=batched_sw_traceback)
    for read in reads:
        assert batched.align_sam(read.codes, read.name, read.quality) \
            == scalar.align_sam(read.codes, read.name, read.quality)
        assert batched.align_sam_multi(read.codes, read.name,
                                       read.quality) \
            == scalar.align_sam_multi(read.codes, read.name, read.quality)


def test_paired_aligner_tb_batch_matches_scalar(ert_index, reads, params):
    reference = ert_index.reference
    scalar = PairedAligner(ReadAligner(
        reference, ErtSeedingEngine(ert_index), params=params))
    batched = PairedAligner(ReadAligner(
        reference, ErtSeedingEngine(ert_index), params=params,
        tb_batch=batched_sw_traceback))
    codes = [r.codes for r in reads[:8]]
    for i in range(0, 8, 2):
        assert batched.align_pair(codes[i], codes[i + 1], f"pair{i}") \
            == scalar.align_pair(codes[i], codes[i + 1], f"pair{i}")


# ----------------------------------------------------------------------
# Pipeline integration: injected seeding + batched extension
# ----------------------------------------------------------------------


def _outcome_key(outcome):
    aln = outcome.alignment
    return (None if aln is None else
            (aln.strand, aln.position, aln.score, aln.chain_score),
            outcome.n_seeds, outcome.n_chains,
            outcome.workload.sw_extensions, outcome.workload.sw_rows_total,
            outcome.workload.edit_checks, outcome.workload.edit_rows_total)


def test_read_aligner_sw_batch_matches_scalar(ert_index, read_codes,
                                              params):
    reference = ert_index.reference
    scalar = ReadAligner(reference, ErtSeedingEngine(ert_index),
                         params=params)
    batched = ReadAligner(reference, ErtSeedingEngine(ert_index),
                          params=params, sw_batch=batched_banded_sw)
    for read in read_codes:
        assert _outcome_key(batched.align(read)) \
            == _outcome_key(scalar.align(read))


def test_read_aligner_sw_batch_without_edit_shortcut(ert_index, read_codes,
                                                     params):
    """edit_check_first=False forces every chain through the wavefront
    kernel, covering the all-SW batch shape."""
    reference = ert_index.reference
    scalar = ReadAligner(reference, ErtSeedingEngine(ert_index),
                         params=params, edit_check_first=False)
    batched = ReadAligner(reference, ErtSeedingEngine(ert_index),
                          params=params, edit_check_first=False,
                          sw_batch=batched_banded_sw)
    for read in read_codes:
        assert _outcome_key(batched.align(read)) \
            == _outcome_key(scalar.align(read))


def test_align_sam_with_injected_seeding(ert_index, reads, params):
    reference = ert_index.reference
    engine = ErtSeedingEngine(ert_index)
    aligner = ReadAligner(reference, engine, params=params)
    codes = [r.codes for r in reads]
    seeded = seed_batch(engine, codes, params)
    for read, seeding in zip(reads, seeded):
        plain = aligner.align_sam(read.codes, read.name, read.quality)
        injected = aligner.align_sam(read.codes, read.name, read.quality,
                                     seeding=seeding)
        assert injected == plain


def test_align_pair_with_injected_seeding(ert_index, reads, params):
    reference = ert_index.reference
    engine = ErtSeedingEngine(ert_index)
    paired = PairedAligner(ReadAligner(reference, engine, params=params))
    codes = [r.codes for r in reads[:6]]
    seeded = seed_batch(engine, codes, params)
    for i in range(0, 6, 2):
        plain = paired.align_pair(codes[i], codes[i + 1], f"pair{i}")
        injected = paired.align_pair(codes[i], codes[i + 1], f"pair{i}",
                                     seeding1=seeded[i],
                                     seeding2=seeded[i + 1])
        assert injected == plain
