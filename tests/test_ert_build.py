"""Tests for ERT construction: entry metadata, trees, tables, sizes."""

import numpy as np
import pytest

from repro.core import ErtConfig, EntryKind, build_ert
from repro.core.builder import rolling_codes
from repro.core.nodes import DivergeNode, LeafNode, UniformNode
from repro.seeding.oracle import count_occurrences
from repro.sequence import GenomeSimulator, Reference
from repro.sequence.alphabet import decode


@pytest.fixture(scope="module")
def ref():
    return GenomeSimulator(seed=31).generate(2000)


@pytest.fixture(scope="module")
def index(ref):
    return build_ert(ref, ErtConfig(k=5, max_seed_len=60,
                                    table_threshold=16, table_x=2))


def test_rolling_codes_known():
    text = np.array([0, 1, 2, 3], dtype=np.uint8)  # ACGT
    codes = rolling_codes(text, 2)
    assert codes.tolist() == [0b0001, 0b0110, 0b1011]


def test_rolling_codes_short_text():
    assert rolling_codes(np.array([1], dtype=np.uint8), 3).size == 0


def test_config_validation():
    with pytest.raises(ValueError):
        ErtConfig(k=1)
    with pytest.raises(ValueError):
        ErtConfig(k=8, max_seed_len=8)
    with pytest.raises(ValueError):
        ErtConfig(table_x=0)


def test_entry_counts_match_brute_force(ref, index):
    text = decode(ref.both_strands)
    k = index.config.k
    rng = np.random.default_rng(1)
    for _ in range(30):
        code = int(rng.integers(0, 4 ** k))
        kmer = "".join("ACGT"[(code >> (2 * (k - 1 - j))) & 3]
                       for j in range(k))
        assert int(index.kmer_count[code]) == count_occurrences(text, kmer)


def test_prefix_len_matches_brute_force(ref, index):
    text = decode(ref.both_strands)
    k = index.config.k
    rng = np.random.default_rng(2)
    for _ in range(30):
        code = int(rng.integers(0, 4 ** k))
        kmer = "".join("ACGT"[(code >> (2 * (k - 1 - j))) & 3]
                       for j in range(k))
        expected = 0
        for length in range(1, k + 1):
            if count_occurrences(text, kmer[:length]) == 0:
                break
            expected = length
        assert int(index.prefix_len[code]) == expected


def test_lep_bits_match_brute_force(ref, index):
    """Bit l-1 set iff count changes when the match grows from l to l+1."""
    text = decode(ref.both_strands)
    k = index.config.k
    rng = np.random.default_rng(3)
    for _ in range(30):
        code = int(rng.integers(0, 4 ** k))
        kmer = "".join("ACGT"[(code >> (2 * (k - 1 - j))) & 3]
                       for j in range(k))
        bits = int(index.lep_bits[code])
        for length in range(1, k):
            expected = (count_occurrences(text, kmer[:length + 1])
                        != count_occurrences(text, kmer[:length]))
            assert bool((bits >> (length - 1)) & 1) == expected, (kmer, length)


def test_entry_kinds_consistent(index):
    kinds = index.entry_kind
    counts = index.kmer_count
    assert np.all((kinds == EntryKind.EMPTY) == (counts == 0))
    for code, root in index.roots.items():
        if kinds[code] == EntryKind.LEAF:
            assert isinstance(root, LeafNode)
        if kinds[code] == EntryKind.TABLE:
            assert counts[code] > index.config.table_threshold
            assert index.tables[code] is not None
            assert len(index.tables[code]) == 4 ** index.config.table_x


def test_tree_counts_sum(index):
    """Every node's count equals the occurrences below it."""
    def check(node):
        if isinstance(node, LeafNode):
            assert node.count == len(node.positions)
            return node.count
        if isinstance(node, UniformNode):
            below = check(node.child)
            assert node.count == below
            return below
        assert isinstance(node, DivergeNode)
        below = len(node.ended) + sum(check(c)
                                      for c in node.children_nodes())
        assert node.count == below
        return below

    for code, root in index.roots.items():
        assert check(root) == int(index.kmer_count[code])


def test_tree_paths_spell_reference_substrings(ref, index):
    """Every root-to-leaf path must spell a string present in the text."""
    text = ref.both_strands
    k = index.config.k

    def leaf_positions_consistent(node, depth):
        if isinstance(node, LeafNode):
            # All occurrences share the suffix read from positions[0].
            p0 = node.positions[0]
            for p in node.positions:
                length = min(text.size - (p + k + depth),
                             text.size - (p0 + k + depth),
                             index.config.max_ext - depth)
                if length > 0:
                    assert np.array_equal(
                        text[p + k + depth:p + k + depth + length],
                        text[p0 + k + depth:p0 + k + depth + length])
        elif isinstance(node, UniformNode):
            leaf_positions_consistent(node.child,
                                      depth + int(node.chars.size))
        else:
            for c, child in node.children.items():
                leaf_positions_consistent(child, depth + 1)

    for root in list(index.roots.values())[:200]:
        leaf_positions_consistent(root, 0)


def test_uniform_nodes_are_singleton_paths(index):
    """UNIFORM nodes must never hide a divergence."""
    text = index.text
    k = index.config.k

    def check(node, depth):
        if isinstance(node, UniformNode):
            # Gather any leaf position below and verify the run.
            probe = node
            while not isinstance(probe, LeafNode):
                if isinstance(probe, UniformNode):
                    probe = probe.child
                else:
                    probe = next(iter(probe.children.values()), None)
                    if probe is None:
                        return
            p = probe.positions[0]
            # The uniform characters must appear in the text at the right
            # offset for this occurrence.
            check(node.child, depth + int(node.chars.size))
        elif isinstance(node, DivergeNode):
            assert len(node.children) + (1 if node.ended else 0) >= 2 or \
                node.ended
            for child in node.children.values():
                check(child, depth + 1)

    for root in list(index.roots.values())[:100]:
        check(root, 0)


def test_index_bytes_structure(index):
    sizes = index.index_bytes()
    assert sizes["index_table"] == 4 ** index.config.k * 8
    assert sizes["total"] == sum(v for key, v in sizes.items()
                                 if key != "total")
    assert sizes["trees"] > 0


def test_ert_trades_space_for_bandwidth(ref):
    """Fig 1b: the ERT index is much larger than the FMD-index."""
    from repro.fmindex import FmdConfig, FmdIndex
    ert = build_ert(ref, ErtConfig(k=5, max_seed_len=60))
    fmd = FmdIndex(ref, FmdConfig.bwa_mem2())
    assert ert.index_bytes()["total"] > fmd.index_bytes()["total"]


def test_multilevel_off_has_no_tables(ref):
    index = build_ert(ref, ErtConfig(k=5, max_seed_len=60,
                                     multilevel=False))
    assert not index.tables
    assert not np.any(index.entry_kind == EntryKind.TABLE)
    assert index.tables_region.size == 0
