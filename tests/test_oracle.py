"""Tests for the brute-force oracle itself (it guards everything else)."""

import numpy as np

from repro.seeding import Mem, oracle_smems
from repro.seeding.oracle import (
    OracleEngine,
    count_occurrences,
    find_occurrences,
)
from repro.sequence import Reference
from repro.sequence.alphabet import encode


def test_count_occurrences_overlapping():
    assert count_occurrences("AAAA", "AA") == 3
    assert count_occurrences("ABAB", "ABA") == 1
    assert count_occurrences("ABC", "") == 4
    assert count_occurrences("ABC", "Z") == 0


def test_find_occurrences():
    assert find_occurrences("AAAA", "AA") == [0, 1, 2]
    assert find_occurrences("AAAA", "AA", limit=2) == [0, 1]
    assert find_occurrences("ABC", "Z") == []


def test_oracle_smems_by_hand():
    # Reference "ACGTACGG": X contains both strands; read "ACGTA" occurs
    # fully, so the only SMEM is the whole read.
    ref = Reference.from_string("ACGTACGG")
    smems = oracle_smems(ref, encode("ACGTA"))
    assert smems == [Mem(0, 5)]


def test_oracle_smems_split_read():
    # A read whose halves occur but whose middle junction does not.
    ref = Reference.from_string("AAAACCCCAAAAGGGG")
    read = encode("CCCCGGGG")
    smems = oracle_smems(ref, read, min_len=3)
    assert Mem(0, 4) in smems or any(m.start == 0 for m in smems)
    ends = {m.end for m in smems}
    assert 8 in ends  # something reaches the read end


def test_oracle_smems_no_containment():
    ref = Reference.from_string("ACGTGTACCGGTTAACGTAC")
    rng = np.random.default_rng(0)
    read = rng.integers(0, 4, size=30, dtype=np.uint8)
    smems = oracle_smems(ref, read)
    for a in smems:
        for b in smems:
            if a != b:
                assert not a.contains(b)


def test_oracle_engine_forward_search_contract():
    ref = Reference.from_string("ACGTACGTTTTT")
    engine = OracleEngine(ref)
    read = encode("ACGTACG")
    forward = engine.forward_search(read, 0)
    assert forward.end == 7  # whole read occurs
    assert forward.leps[-1] == forward.end
    assert list(forward.leps) == sorted(set(forward.leps))


def test_oracle_engine_backward_search():
    ref = Reference.from_string("ACGTACGTTTTT")
    engine = OracleEngine(ref)
    read = encode("ACGTACG")
    assert engine.backward_search(read, 7) == 0


def test_oracle_engine_min_hits():
    ref = Reference.from_string("ACGACGACGTTT")
    engine = OracleEngine(ref)
    read = encode("ACGACG")
    # "ACG" occurs 3 times on the forward strand; "ACGACG" twice.
    assert engine.count(read, 0, 3) >= 3
    fs1 = engine.forward_search(read, 0, min_hits=1)
    fs3 = engine.forward_search(read, 0, min_hits=3)
    assert fs1.end >= fs3.end


def test_oracle_engine_last_seed():
    ref = Reference.from_string("ACGTTGCAACGGTACCGGTA")
    engine = OracleEngine(ref)
    read = encode("ACGTTGCA")
    found = engine.last_seed(read, 0, min_len=4, max_intv=10)
    assert found is not None
    end, count = found
    assert end - 0 >= 4
    assert count == engine.count(read, 0, end)
    assert count < 10
