"""Tests for the host-accelerator runtime model (§IV-E)."""

import pytest

from repro.accel.host import (
    HostConfig,
    HostModel,
    HostRunEstimate,
    result_record_bytes,
)
from repro.seeding.types import Seed, SeedingResult


def test_transfer_time_scales_linearly():
    model = HostModel()
    assert model.transfer_seconds(2000) == pytest.approx(
        2 * model.transfer_seconds(1000))


def test_double_buffering_hides_transfers():
    slow_pcie = HostConfig(pcie_bytes_per_s=1e9, double_buffered=True)
    serial = HostConfig(pcie_bytes_per_s=1e9, double_buffered=False)
    overlapped = HostModel(slow_pcie).estimate(1_000_000, 3e6)
    sequential = HostModel(serial).estimate(1_000_000, 3e6)
    assert overlapped.seconds < sequential.seconds
    assert overlapped.overlap_efficiency > 1.0


def test_compute_bound_when_pcie_is_fast():
    estimate = HostModel(HostConfig(pcie_bytes_per_s=1e12)).estimate(
        1_000_000, 3e6)
    assert estimate.seconds == pytest.approx(estimate.compute_seconds,
                                             rel=0.05)
    assert estimate.reads_per_second == pytest.approx(3e6, rel=0.05)


def test_transfer_bound_when_pcie_is_slow():
    estimate = HostModel(HostConfig(pcie_bytes_per_s=1e8)).estimate(
        1_000_000, 3e6)
    assert estimate.reads_per_second < 3e6 / 2


def test_overflow_accounting():
    config = HostConfig(result_buffer_bytes=100,
                        overflow_host_seconds=1e-3)
    model = HostModel(config)
    sizes = [10, 20, 500, 800]  # half overflow
    with_overflow = model.estimate(1000, 1e6, result_bytes_by_read=sizes)
    without = model.estimate(1000, 1e6, result_bytes_by_read=[10, 20])
    assert with_overflow.overflow_reads == 500
    assert with_overflow.seconds > without.seconds


def test_config_validation():
    with pytest.raises(ValueError):
        HostConfig(pcie_bytes_per_s=0)
    with pytest.raises(ValueError):
        HostConfig(batch_size=0)


def test_result_record_bytes():
    result = SeedingResult(smems=[
        Seed(0, 20, (5, 9), 2),
        Seed(30, 25, (), 600),
    ])
    assert result_record_bytes(result) == (8 + 8) + (8 + 0)


def test_estimate_zero_guard():
    estimate = HostRunEstimate(n_reads=0, seconds=0.0, compute_seconds=0.0,
                               transfer_seconds=0.0, overflow_reads=0)
    assert estimate.reads_per_second == float("inf")
    assert estimate.overlap_efficiency == 1.0
