"""ERT007 failing fixture: telemetry call inside a hot function."""

from repro import telemetry


# repro: hot
def walk(chars, stats):
    for c in chars:
        telemetry.count("walker.chars")
        stats.chars += 1
