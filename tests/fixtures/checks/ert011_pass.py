"""ERT011 passing fixture: operational events flow through the
structured repro.logging stream (off unless the CLI configures it)."""
# repro: module(repro.analysis.fake)

from repro.logging import get_logger

_log = get_logger("analysis.fake")


def report(n_reads, histogram):
    _log.info("reads.processed", reads=n_reads)
    return histogram
