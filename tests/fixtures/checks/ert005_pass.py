"""ERT005 passing fixture: core importing only lower layers."""
# repro: module(repro.core.fake)

from repro import telemetry
from repro.memsim.cache import CacheModel


def build_cache(size):
    telemetry.count("fake.caches_built")
    return CacheModel(size)
