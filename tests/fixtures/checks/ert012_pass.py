"""ERT012 passing fixture: the transitively hot helper counts into a
plain stats dict; the non-hot driver flushes the total to telemetry
after the walk returns (a span boundary)."""
# repro: module(repro.core.fake)

from repro import telemetry


def drive(nodes):
    stats = {"nodes": 0}
    emitted = walk(nodes, stats)
    telemetry.add_counters({"walker.nodes": stats["nodes"]})
    return emitted


# repro: hot
def walk(nodes, stats):
    emitted = 0
    for node in nodes:
        emitted += consume(node, stats)
    return emitted


def consume(node, stats):
    stats["nodes"] += 1
    return 1
