"""ERT001 passing fixture: id() used as a label, never as a key."""


def label(items):
    names = {}
    for item in items:
        names[item] = f"obj-{id(item):x}"
    return names
