"""ERT002 failing fixture: module-level RNG calls inside repro scope."""
# repro: module(repro.analysis.fake)

import random

import numpy as np


def jitter(values):
    noise = np.random.rand(len(values))
    return [v + n + random.random() for v, n in zip(values, noise)]
