"""ERT017 failing fixture: per-element telemetry inside a kernel sweep
loop (no ``# repro: hot`` annotation needed -- the kernels module scope
alone puts every loop under the batch-flush rule)."""
# repro: module(repro.kernels.fake)

from repro import telemetry


def sweep(lanes, stats):
    while lanes.any():
        telemetry.count("kernels.walk_steps", int(lanes.sum()))
        lanes = lanes[lanes > 0] - 1
    for lane in lanes:
        telemetry.observe("kernels.lane_occupancy", float(lane))
