"""ERT006 passing fixture: None-default idiom and typed except."""


def accumulate(value, into=None):
    if into is None:
        into = []
    into.append(value)
    return into


def swallow(fn):
    try:
        return fn()
    except ValueError:
        return None
