"""ERT007 passing fixture: hot loop batches into a stats struct; the
driver flushes the delta at a span boundary."""

from repro import telemetry


# repro: hot
def walk(chars, stats):
    for c in chars:
        stats.chars += 1


def flush(stats):
    telemetry.add_counters({"walker.chars": stats.chars})
