"""ERT005 failing fixture: a core module importing the accelerator."""
# repro: module(repro.core.fake)

from repro.accel.machine import AcceleratorSim


def run(jobs, config):
    return AcceleratorSim(config).run(jobs)
