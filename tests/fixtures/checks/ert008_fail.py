"""ERT008 failing fixture: ad-hoc pool + shared memory outside parallel."""
# repro: module(repro.analysis.fake)

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory


def fan_out(payload, batches, work):
    segment = shared_memory.SharedMemory(create=True, size=len(payload))
    with ProcessPoolExecutor(max_workers=4) as pool:
        return list(pool.map(work, batches)), segment
