"""ERT009 passing fixture: broad handlers around pool interaction
re-raise through the typed-error taxonomy (narrow handlers are free)."""
# repro: module(repro.parallel.fake)

from repro.parallel.faults import BatchTaskError, WorkerCrashError


def drain(pool, batches, run):
    results = []
    for batch in batches:
        try:
            future = pool.submit(run, batch)
            results.append(future.result())
        except OSError:
            results.append(None)
        except Exception as exc:
            raise BatchTaskError(f"batch failed: {exc!r}") from exc
    return results


def submit_one(pool, run, batch):
    try:
        return pool.submit(run, batch)
    except BaseException as exc:
        raise WorkerCrashError(str(exc)) from exc
