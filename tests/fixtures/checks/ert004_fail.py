"""ERT004 failing fixture: float arithmetic in an accounting module."""
# repro: module(repro.memsim.fake)


def mean_latency(total_cycles, accesses):
    if accesses == 0:
        return 0.0
    return total_cycles / accesses
