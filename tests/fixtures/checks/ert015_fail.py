"""ERT015 failing fixture: a segment created with no _LIVE_SEGMENTS
registration and no construction-failure unlink (an exception after the
create leaks /dev/shm), and an attach with no close path."""
# repro: module(repro.parallel.fake)

from multiprocessing import shared_memory


def publish(payload):
    seg = shared_memory.SharedMemory(create=True, size=len(payload))
    seg.buf[: len(payload)] = payload
    return seg.name


def attach(name, size):
    seg = shared_memory.SharedMemory(name=name)
    return bytes(seg.buf[:size])
