"""ERT016 failing fixture: three capture-unsafe callables cross the
pool boundary -- a closure over the enclosing frame, a lambda, and a
bound method that would pickle its whole receiver."""
# repro: module(repro.parallel.fake)


class Dispatcher:
    def __init__(self, pool, index):
        self._pool = pool
        self._index = index

    def dispatch(self, batch):
        def run():
            return sum(batch)

        first = self._pool.submit(run)
        second = self._pool.submit(lambda: sum(batch))
        third = self._pool.submit(self._index.lookup_all, batch)
        return first, second, third
