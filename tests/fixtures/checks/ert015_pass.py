"""ERT015 passing fixture: the SharedIndexBuffer discipline -- the
create side unlinks on construction failure and registers the live
segment for the atexit sweep; the attach side closes on failure."""
# repro: module(repro.parallel.fake)

from multiprocessing import shared_memory

_LIVE_SEGMENTS = {}


def publish(payload):
    seg = shared_memory.SharedMemory(create=True, size=len(payload))
    try:
        seg.buf[: len(payload)] = payload
    except BaseException:
        seg.close()
        seg.unlink()
        raise
    _LIVE_SEGMENTS[seg.name] = seg
    return seg.name


def attach(name, size):
    seg = shared_memory.SharedMemory(name=name)
    try:
        return bytes(seg.buf[:size])
    except BaseException:
        seg.close()
        raise
