"""ERT012 failing fixture: the hot walk never calls telemetry itself --
the violation lives in an un-annotated helper only the walk reaches, so
per-file ERT007 is blind to it and the call graph has to carry the hot
bit across the edge."""
# repro: module(repro.core.fake)

from repro import telemetry


# repro: hot
def walk(nodes):
    emitted = 0
    for node in nodes:
        emitted += consume(node)
    return emitted


def consume(node):
    telemetry.count("walker.nodes")
    return 1
