"""ERT003 passing fixture: timing flows through telemetry spans."""
# repro: module(repro.analysis.fake)

from repro import telemetry


def timed(fn):
    with telemetry.span("timed"):
        return fn()
