"""ERT002 passing fixture: explicit seeded generators only."""
# repro: module(repro.analysis.fake)

import random

import numpy as np


def jitter(values, seed):
    rng = np.random.default_rng(seed)
    fallback = random.Random(seed)
    noise = rng.normal(size=len(values))
    return [v + n + fallback.random() for v, n in zip(values, noise)]
