"""ERT010 passing fixture: status flows through telemetry, not the
console; the reporter object owns any user-visible heartbeat."""
# repro: module(repro.seeding.fake)

from repro import telemetry


def seed_quietly(engine, reads, reporter=None):
    results = []
    for read in reads:
        results.append(engine.seed(read))
        telemetry.count("seeding.reads")
        if reporter is not None:
            reporter.advance(1)
    telemetry.instant("seeding.done", {"reads": len(reads)})
    return results
