"""ERT013 failing fixture: a hot function pays interpreter dispatch per
base pair -- one Python iteration (and two scalar subscripts) per
element of the ndarray."""
# repro: module(repro.core.fake)

import numpy as np


# repro: hot
def dot_scores(query: np.ndarray, ref: np.ndarray) -> int:
    total = 0
    for i in range(query.size):
        total += int(query[i]) * int(ref[i])
    return total
