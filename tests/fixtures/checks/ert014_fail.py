"""ERT014 failing fixture: a fresh row buffer is allocated on every
iteration of a hot loop instead of reusing a workspace."""
# repro: module(repro.core.fake)

import numpy as np


# repro: hot
def score_rows(batches, width):
    best = 0
    for batch in batches:
        row = np.zeros(width, dtype=np.int32)
        row[: len(batch)] = batch
        best = max(best, int(row.max()))
    return best
