"""ERT014 passing fixture: the row buffer is hoisted out of the hot
loop and refilled per iteration (the SwWorkspace pattern)."""
# repro: module(repro.core.fake)

import numpy as np


# repro: hot
def score_rows(batches, width):
    best = 0
    row = np.zeros(width, dtype=np.int32)
    for batch in batches:
        row[:] = 0
        row[: len(batch)] = batch
        best = max(best, int(row.max()))
    return best
