"""ERT006 failing fixture: mutable default plus a bare except."""


def accumulate(value, into=[]):
    into.append(value)
    return into


def swallow(fn):
    try:
        return fn()
    except:
        return None
