"""ERT008 passing fixture: worker fan-out routed through repro.parallel
(and the same constructors are legal inside repro.parallel itself)."""
# repro: module(repro.parallel.fake)

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory


def fan_out(payload, work_batches, initargs):
    segment = shared_memory.SharedMemory(create=True, size=len(payload))
    pool = ProcessPoolExecutor(max_workers=4, initargs=initargs)
    return pool, segment
