"""ERT008 passing fixture: worker fan-out routed through repro.parallel
(and the same constructors are legal inside repro.parallel itself --
provided they follow the ERT015 lifecycle discipline)."""
# repro: module(repro.parallel.fake)

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory

_LIVE_SEGMENTS = {}


def fan_out(payload, work_batches, initargs):
    segment = shared_memory.SharedMemory(create=True, size=len(payload))
    try:
        segment.buf[: len(payload)] = payload
    except BaseException:
        segment.close()
        segment.unlink()
        raise
    _LIVE_SEGMENTS[segment.name] = segment
    pool = ProcessPoolExecutor(max_workers=4, initargs=initargs)
    return pool, segment
