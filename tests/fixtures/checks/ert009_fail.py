"""ERT009 failing fixture: a broad except around pool interaction that
swallows the failure instead of routing it through the typed errors."""
# repro: module(repro.parallel.fake)


def drain(pool, batches, run):
    results = []
    for batch in batches:
        try:
            future = pool.submit(run, batch)
            results.append(future.result())
        except Exception:
            results.append(None)
    return results
