"""ERT016 passing fixture: the submitted callable is a module-level
function with explicit, picklable arguments."""
# repro: module(repro.parallel.fake)


def _run_batch(batch, lookup_table):
    return [lookup_table.get(item, 0) for item in batch]


class Dispatcher:
    def __init__(self, pool, lookup_table):
        self._pool = pool
        self._table = dict(lookup_table)

    def dispatch(self, batch):
        return self._pool.submit(_run_batch, list(batch), self._table)
