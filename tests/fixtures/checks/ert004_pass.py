"""ERT004 passing fixture: integer-exact accounting, annotated ratio."""
# repro: module(repro.memsim.fake)


def total_cycles(hits, misses, t_hit, t_miss):
    return hits * t_hit + misses * t_miss


def hit_rate(hits, accesses):
    # Derived reporting ratio, not accounting state.
    if accesses == 0:
        return 0.0  # repro: allow(ERT004)
    return hits / accesses  # repro: allow(ERT004)
