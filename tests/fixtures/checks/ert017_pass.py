"""ERT017 passing fixture: the sweep counts into plain accumulators and
the driver flushes the registry once per batch, outside every loop."""
# repro: module(repro.kernels.fake)

from repro import telemetry


def sweep(lanes, stats):
    while lanes.any():
        stats.walk_steps += int(lanes.sum())
        stats.wave_rounds += 1
        lanes = lanes[lanes > 0] - 1
    return stats


def flush(stats):
    telemetry.add_counters({"kernels.walk_steps": stats.walk_steps,
                            "kernels.wave_rounds": stats.wave_rounds})
    telemetry.observe_many("kernels.lane_occupancy", stats.fractions)
