"""ERT013 passing fixture: the same reduction as whole-array numpy
work -- one call, no per-element Python loop."""
# repro: module(repro.core.fake)

import numpy as np


# repro: hot
def dot_scores(query: np.ndarray, ref: np.ndarray) -> int:
    return int(np.dot(query.astype(np.int64), ref.astype(np.int64)))
