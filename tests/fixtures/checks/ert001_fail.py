"""ERT001 failing fixture: id() keys a set with no pinning pragma."""


def dedupe(items):
    seen = set()
    out = []
    for item in items:
        if id(item) in seen:
            continue
        seen.add(id(item))
        out.append(item)
    return out
