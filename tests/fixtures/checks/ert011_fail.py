"""ERT011 failing fixture: library code configuring and writing through
the stdlib logging root-handler tree."""
# repro: module(repro.analysis.fake)

import logging
import logging.config

logging.basicConfig(level=logging.INFO)
logging.captureWarnings(True)
log = logging.getLogger("repro.analysis.fake")


def report(n_reads, histogram):
    logging.info("processed %d reads", n_reads)
    logging.root.setLevel(logging.DEBUG)
    logging.config.dictConfig({"version": 1})
    return histogram
