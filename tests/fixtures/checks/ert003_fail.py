"""ERT003 failing fixture: ad-hoc perf_counter timing in repro scope."""
# repro: module(repro.analysis.fake)

import time


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start
