"""ERT010 failing fixture: library code writing to the console."""
# repro: module(repro.seeding.fake)

import sys


def seed_with_chatter(engine, reads):
    results = []
    for i, read in enumerate(reads):
        print(f"seeding read {i}")
        results.append(engine.seed(read))
    sys.stderr.write("done\n")
    return results
