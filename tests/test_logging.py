"""Structured JSONL logging: off-by-default contract, level filtering,
the rate limiter, and the dropped-records summary at shutdown."""

import io
import json

import pytest

from repro import logging as rlog


@pytest.fixture(autouse=True)
def clean_sink():
    rlog.shutdown()
    yield
    rlog.shutdown()


def _records(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


def test_unconfigured_logging_is_a_noop():
    assert not rlog.configured()
    rlog.get_logger("x").info("event", a=1)  # must not raise or write


def test_records_are_one_json_object_per_line():
    stream = io.StringIO()
    rlog.configure(stream=stream)
    log = rlog.get_logger("parallel.scheduler")
    log.info("pool.spawn", workers=2, task="seed")
    log.warn("batch.fault", batch=3)
    records = _records(stream)
    assert [r["event"] for r in records] == ["pool.spawn", "batch.fault"]
    first = records[0]
    assert first["subsystem"] == "parallel.scheduler"
    assert first["level"] == "info"
    assert first["workers"] == 2 and first["task"] == "seed"
    assert isinstance(first["ts"], float)


def test_level_filtering():
    stream = io.StringIO()
    rlog.configure(stream=stream, level="warn")
    log = rlog.get_logger("s")
    log.debug("d")
    log.info("i")
    log.warn("w")
    log.error("e")
    assert [r["level"] for r in _records(stream)] == ["warn", "error"]


def test_unknown_level_rejected():
    stream = io.StringIO()
    rlog.configure(stream=stream)
    with pytest.raises(ValueError):
        rlog.get_logger("s").log("fatal", "boom")
    rlog.shutdown()
    with pytest.raises(ValueError):
        rlog.configure(stream=io.StringIO(), level="loud")


def test_configure_requires_exactly_one_destination(tmp_path):
    with pytest.raises(ValueError):
        rlog.configure()
    with pytest.raises(ValueError):
        rlog.configure(path=str(tmp_path / "x.jsonl"), stream=io.StringIO())


def test_path_sink_appends_and_closes_on_shutdown(tmp_path):
    path = tmp_path / "events.jsonl"
    rlog.configure(path=str(path))
    rlog.get_logger("s").info("first")
    rlog.shutdown()
    rlog.configure(path=str(path))
    rlog.get_logger("s").info("second")
    rlog.shutdown()
    events = [json.loads(line) for line in path.read_text().splitlines()]
    assert [e["event"] for e in events] == ["first", "second"]


def test_rate_limit_counts_drops_and_emits_summary():
    stream = io.StringIO()
    clock_now = [0.0]  # frozen clock: no token refill between emits
    rlog.configure(stream=stream, max_per_sec=5,
                   clock=lambda: clock_now[0])
    log = rlog.get_logger("s")
    for i in range(20):
        log.info("tick", i=i)
    records = _records(stream)
    assert len(records) == 5  # burst capacity == rate
    rlog.shutdown()
    summary = _records(stream)[-1]
    assert summary["event"] == "records.dropped"
    assert summary["dropped"] == 15
    assert summary["emitted"] == 5


def test_rate_limit_refills_over_time():
    stream = io.StringIO()
    clock_now = [0.0]
    rlog.configure(stream=stream, max_per_sec=2,
                   clock=lambda: clock_now[0])
    log = rlog.get_logger("s")
    log.info("a")
    log.info("b")
    log.info("dropped")
    clock_now[0] += 1.0  # +2 tokens
    log.info("c")
    log.info("d")
    assert [r["event"] for r in _records(stream)] == ["a", "b", "c", "d"]


def test_shutdown_without_drops_writes_no_summary():
    stream = io.StringIO()
    rlog.configure(stream=stream)
    rlog.get_logger("s").info("only")
    rlog.shutdown()
    assert [r["event"] for r in _records(stream)] == ["only"]


def test_reconfigure_replaces_sink():
    first, second = io.StringIO(), io.StringIO()
    rlog.configure(stream=first)
    rlog.configure(stream=second)
    rlog.get_logger("s").info("routed")
    assert _records(first) == []
    assert [r["event"] for r in _records(second)] == ["routed"]


def test_non_serializable_fields_fall_back_to_str():
    stream = io.StringIO()
    rlog.configure(stream=stream)
    rlog.get_logger("s").info("obj", value={1, 2}.__class__)
    record = _records(stream)[0]
    assert "class" in record["value"]
