"""Fault-injection battery for the repro.parallel recovery layer.

The contract: any *recoverable* fault (a SIGKILLed worker, an expired
per-batch timeout) leaves the run's output byte-identical to the serial
path, with the recovery visible as telemetry counters; unrecoverable
pools degrade to the in-process serial path with a warning instead of
failing the run; deterministic task failures propagate as typed errors
on first occurrence; and no shared-memory segment survives any of it.

Faults ride into workers through the scheduler's ``options["fault"]``
hook (see ``_trip_injected_fault``): a ``token`` file created with
``O_CREAT | O_EXCL`` makes a fault fire exactly once across pool
respawns, so the retried batch runs clean.
"""

import glob
import os

import pytest

from repro import telemetry
from repro.parallel import (
    BatchTaskError,
    BatchTimeoutError,
    ParallelConfig,
    RetryPolicy,
    SharedIndexBuffer,
    WorkerCrashError,
    attach_index,
    default_retries,
    iter_chunks,
    pack_batch,
    seed_reads,
)
from repro.parallel import scheduler as sched
from repro.parallel import shm as shm_mod
from repro.parallel.faults import (
    BatchSerializationError,
    PoolUnavailableError,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _shm_segments():
    """Names currently present in /dev/shm (POSIX shared memory lives
    there on Linux; extra entries after a run are leaked segments)."""
    return set(glob.glob("/dev/shm/*"))


@pytest.fixture()
def shm_leak_check():
    """Assert the test leaves /dev/shm exactly as it found it."""
    before = _shm_segments()
    yield
    leaked = _shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _run_seed(index, reads, params, config, fault):
    """``seed_reads`` with a fault injected into the workers."""
    options = {"params": params, "fault": fault}
    batches = [pack_batch(chunk)
               for chunk in iter_chunks(reads, config.batch_size)]
    per_batch, stats = sched._execute_over_index(index, "seed", options,
                                                 batches, config)
    return [line for lines in per_batch for line in lines], stats


# ----------------------------------------------------------------------
# Recoverable faults: output stays byte-identical, counters fire.
# ----------------------------------------------------------------------


def test_sigkill_recovery_is_byte_identical(ert_index, reads, params,
                                            tmp_path, shm_leak_check):
    # The faulted run below executes with telemetry enabled, which makes
    # the engine ineligible for the vector kernels (it falls back to the
    # scalar walk, whose EngineStats count nodes the gather walk never
    # touches).  Pin the baseline to the same backend so the stats
    # comparison is backend-for-backend even when $REPRO_KERNELS=vector
    # drives the rest of this suite.
    baseline, base_stats = seed_reads(
        ert_index, reads, params,
        ParallelConfig(workers=1, kernels="scalar"))
    token = str(tmp_path / "sigkill.token")
    telemetry.reset()
    telemetry.enable()
    try:
        lines, stats = _run_seed(
            ert_index, reads, params,
            ParallelConfig(workers=2, batch_size=4, retries=2),
            fault={"kind": "sigkill", "token": token})
        snap = telemetry.snapshot()
    finally:
        telemetry.disable()
        telemetry.reset()
    assert os.path.exists(token), "fault never fired -- test is vacuous"
    assert lines == baseline
    assert stats.as_dict() == base_stats.as_dict()
    assert snap["counters"]["parallel.worker_crashes"] >= 1
    assert snap["counters"]["parallel.retries"] >= 1
    assert snap["counters"]["parallel.pool_respawns"] >= 1
    assert "parallel.recovery" in snap["spans"]
    # True recovery, not the degraded path: the respawned pool finished
    # the run.
    assert "parallel.fallback_serial" not in snap["counters"]


def test_recovery_counters_visible_in_metrics_file(ert_index, reads, params,
                                                   tmp_path, shm_leak_check):
    """The --metrics-out pipeline: counters written by a faulted run
    survive the JSON round trip the CLI uses."""
    token = str(tmp_path / "sigkill.token")
    metrics = str(tmp_path / "metrics.json")
    telemetry.reset()
    telemetry.enable()
    try:
        _run_seed(ert_index, reads, params,
                  ParallelConfig(workers=2, batch_size=4, retries=2),
                  fault={"kind": "sigkill", "token": token})
        telemetry.write_json(metrics, telemetry.snapshot())
    finally:
        telemetry.disable()
        telemetry.reset()
    snap = telemetry.load_snapshot(metrics)
    assert snap["counters"]["parallel.worker_crashes"] >= 1
    assert snap["counters"]["parallel.retries"] >= 1


def test_batch_timeout_recovery_is_byte_identical(ert_index, reads, params,
                                                  tmp_path, shm_leak_check):
    baseline, _ = seed_reads(ert_index, reads, params,
                             ParallelConfig(workers=1))
    token = str(tmp_path / "hang.token")
    telemetry.reset()
    telemetry.enable()
    try:
        lines, _ = _run_seed(
            ert_index, reads, params,
            ParallelConfig(workers=2, batch_size=4, retries=2,
                           batch_timeout=2.0),
            fault={"kind": "hang", "seconds": 60.0, "token": token})
        snap = telemetry.snapshot()
    finally:
        telemetry.disable()
        telemetry.reset()
    assert os.path.exists(token)
    assert lines == baseline
    assert snap["counters"]["parallel.batch_timeouts"] >= 1
    assert snap["counters"]["parallel.retries"] >= 1
    assert "parallel.fallback_serial" not in snap["counters"]


# ----------------------------------------------------------------------
# Budget exhaustion and deterministic failures: typed errors propagate.
# ----------------------------------------------------------------------


def test_worker_crash_with_zero_retries_raises(ert_index, reads, params,
                                               tmp_path, shm_leak_check):
    token = str(tmp_path / "sigkill.token")
    with pytest.raises(WorkerCrashError) as info:
        _run_seed(ert_index, reads, params,
                  ParallelConfig(workers=2, batch_size=4, retries=0),
                  fault={"kind": "sigkill", "token": token})
    assert info.value.retryable
    assert info.value.batch_index is not None


def test_batch_timeout_exhausts_retry_budget(ert_index, reads, params,
                                             shm_leak_check):
    # No token: the hang re-fires on every attempt, so the budget runs
    # out and the typed timeout error escapes.
    with pytest.raises(BatchTimeoutError):
        _run_seed(ert_index, reads, params,
                  ParallelConfig(workers=2, batch_size=4, retries=1,
                                 batch_timeout=0.5, backoff_s=0.01),
                  fault={"kind": "hang", "seconds": 60.0})


def test_task_exception_propagates_without_retry(ert_index, reads, params,
                                                 tmp_path, shm_leak_check):
    token = str(tmp_path / "raise.token")
    telemetry.reset()
    telemetry.enable()
    try:
        with pytest.raises(BatchTaskError) as info:
            _run_seed(ert_index, reads, params,
                      ParallelConfig(workers=2, batch_size=4, retries=3),
                      fault={"kind": "raise", "token": token})
        snap = telemetry.snapshot()
    finally:
        telemetry.disable()
        telemetry.reset()
    assert not info.value.retryable
    assert isinstance(info.value.__cause__, RuntimeError)
    # Deterministic failures must not burn the retry budget.
    assert snap["counters"].get("parallel.retries", 0) == 0


# ----------------------------------------------------------------------
# Unbuildable pools degrade to the serial path.
# ----------------------------------------------------------------------


def test_pool_init_failure_falls_back_to_serial(ert_index, reads, params,
                                                shm_leak_check):
    # Telemetry is enabled around the degraded run, which pins its
    # engine to the scalar walk (vector kernels are ineligible under
    # telemetry) -- match backends for the stats comparison below.
    baseline, base_stats = seed_reads(
        ert_index, reads, params,
        ParallelConfig(workers=1, kernels="scalar"))
    telemetry.reset()
    telemetry.enable()
    try:
        with pytest.warns(RuntimeWarning, match="serial"):
            lines, stats = _run_seed(
                ert_index, reads, params,
                ParallelConfig(workers=2, batch_size=4, retries=1),
                fault={"kind": "init-raise"})
        snap = telemetry.snapshot()
    finally:
        telemetry.disable()
        telemetry.reset()
    assert lines == baseline
    assert stats.as_dict() == base_stats.as_dict()
    assert snap["counters"]["parallel.fallback_serial"] == 1


# ----------------------------------------------------------------------
# Failure classification and retry-policy plumbing.
# ----------------------------------------------------------------------


def test_classify_failure_maps_exception_types():
    from concurrent.futures import TimeoutError as FuturesTimeoutError
    from concurrent.futures.process import BrokenProcessPool
    from pickle import PicklingError

    assert isinstance(sched._classify_failure(FuturesTimeoutError(), 3),
                      BatchTimeoutError)
    assert isinstance(sched._classify_failure(BrokenProcessPool("x"), 3),
                      WorkerCrashError)
    assert isinstance(sched._classify_failure(PicklingError("x"), 3),
                      BatchSerializationError)
    assert isinstance(sched._classify_failure(ValueError("x"), 3),
                      BatchTaskError)
    assert sched._classify_failure(ValueError("x"), 7).batch_index == 7


def test_retry_policy_backoff_and_attempts():
    policy = RetryPolicy(retries=3, backoff_s=0.1, backoff_factor=2.0)
    assert policy.max_attempts == 4
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(3) == pytest.approx(0.4)
    assert RetryPolicy(retries=-5).max_attempts == 1


def test_default_retries_reads_environment(monkeypatch):
    monkeypatch.delenv("REPRO_RETRIES", raising=False)
    assert default_retries() == 2
    monkeypatch.setenv("REPRO_RETRIES", "5")
    assert default_retries() == 5
    assert ParallelConfig().resolved_policy().retries == 5
    monkeypatch.setenv("REPRO_RETRIES", "-3")
    assert default_retries() == 0
    monkeypatch.setenv("REPRO_RETRIES", "garbage")
    assert default_retries() == 2
    assert ParallelConfig(retries=7).resolved_policy().retries == 7


def test_config_resolves_timeout_into_policy():
    policy = ParallelConfig(batch_timeout=1.5, retries=1,
                            backoff_s=0.2).resolved_policy()
    assert policy.batch_timeout == 1.5
    assert policy.retries == 1
    assert policy.backoff_s == pytest.approx(0.2)


# ----------------------------------------------------------------------
# Shared-memory lifecycle hardening.
# ----------------------------------------------------------------------


def test_segment_registry_tracks_owner_lifetime(ert_index, shm_leak_check):
    with SharedIndexBuffer(ert_index) as shared:
        assert shared.name in shm_mod._LIVE_SEGMENTS
    assert shared.name not in shm_mod._LIVE_SEGMENTS


def test_atexit_sweep_unlinks_orphaned_segment(ert_index, shm_leak_check):
    shared = SharedIndexBuffer(ert_index)
    assert shared.name in shm_mod._LIVE_SEGMENTS
    shm_mod._sweep_live_segments()
    assert shared.name not in shm_mod._LIVE_SEGMENTS
    # Idempotent: a second sweep (the real atexit call) must not raise.
    shm_mod._sweep_live_segments()


def test_attach_failure_closes_mapping(ert_index, shm_leak_check):
    with SharedIndexBuffer(ert_index) as shared:
        # A truncated view cannot hold the serialized index; the worker-
        # side attach must close its mapping before propagating.
        with pytest.raises(Exception):
            attach_index(shared.name, 8)
        # The segment itself is still usable by a correct attach.
        index = attach_index(shared.name, shared.size)
        assert index.config.k == ert_index.config.k


def test_fault_free_pool_leaves_no_segments(ert_index, reads, params,
                                            shm_leak_check):
    lines, _ = seed_reads(ert_index, reads, params,
                          ParallelConfig(workers=2, batch_size=8))
    assert lines


def test_pool_unavailable_error_is_not_retryable():
    assert not PoolUnavailableError("x").retryable
    assert WorkerCrashError("x").retryable
    assert BatchTimeoutError("x").retryable
    assert not BatchTaskError("x").retryable
    assert not BatchSerializationError("x").retryable
