"""The paper's FMD-query construction path must match the scan path."""

import numpy as np
import pytest

from repro.core import ErtConfig, ErtSeedingEngine, build_ert, trees_equal
from repro.seeding import SeedingParams, assert_equivalent
from repro.sequence import GenomeSimulator, ReadSimulator


@pytest.fixture(scope="module")
def ref():
    return GenomeSimulator(seed=171).generate(1200)


def test_fmd_and_scan_builders_agree(ref):
    config = ErtConfig(k=5, max_seed_len=70, table_threshold=16, table_x=2)
    via_scan = build_ert(ref, config, method="scan")
    via_fmd = build_ert(ref, config, method="fmd")

    assert np.array_equal(via_scan.entry_kind, via_fmd.entry_kind)
    assert np.array_equal(via_scan.lep_bits, via_fmd.lep_bits)
    assert np.array_equal(via_scan.kmer_count, via_fmd.kmer_count)
    assert set(via_scan.roots) == set(via_fmd.roots)
    for code, root in via_scan.roots.items():
        assert trees_equal(root, via_fmd.roots[code]), code
    assert via_scan.tree_base == via_fmd.tree_base
    assert via_scan.index_bytes() == via_fmd.index_bytes()


def test_fmd_built_index_seeds_identically(ref):
    config = ErtConfig(k=5, max_seed_len=70)
    engine = ErtSeedingEngine(build_ert(ref, config, method="fmd"))
    baseline = ErtSeedingEngine(build_ert(ref, config, method="scan"))
    reads = [r.codes for r in
             ReadSimulator(ref, read_length=50, seed=172).simulate(8)]
    assert_equivalent(baseline, engine, reads, SeedingParams(min_seed_len=10))


def test_unknown_method_rejected(ref):
    with pytest.raises(ValueError):
        build_ert(ref, ErtConfig(k=4, max_seed_len=50), method="magic")
