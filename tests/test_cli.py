"""End-to-end CLI tests (the index-once / align-many workflow)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """Run the whole CLI workflow once; individual tests inspect it."""
    root = tmp_path_factory.mktemp("cli")
    ref = root / "ref.fa"
    reads = root / "reads.fq"
    index = root / "index.npz"
    assert main(["simulate-genome", "--length", "3000", "--seed", "5",
                 "--out", str(ref)]) == 0
    assert main(["simulate-reads", "--reference", str(ref), "--count", "12",
                 "--read-length", "60", "--seed", "6",
                 "--out", str(reads)]) == 0
    assert main(["build-index", "--reference", str(ref), "--k", "5",
                 "--max-seed-len", "100", "--out", str(index)]) == 0
    return root, ref, reads, index


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_simulated_files_exist(workspace):
    _root, ref, reads, index = workspace
    assert ref.read_text().startswith(">")
    assert reads.read_text().startswith("@")
    assert index.stat().st_size > 0


def test_index_stats(workspace, capsys):
    _root, _ref, _reads, index = workspace
    assert main(["index-stats", "--index", str(index)]) == 0
    out = capsys.readouterr().out
    assert "entry kinds" in out
    assert "hit distribution" in out


def test_seed_tsv(workspace, capsys):
    root, _ref, reads, index = workspace
    out_path = root / "seeds.tsv"
    assert main(["seed", "--index", str(index), "--reads", str(reads),
                 "--min-seed-len", "12", "--out", str(out_path)]) == 0
    lines = out_path.read_text().splitlines()
    assert lines[0] == "read\tstart\tlength\thit_count\thits"
    assert len(lines) > 12  # at least one seed per read on average
    for line in lines[1:]:
        name, start, length, count, _hits = line.split("\t")
        assert int(length) >= 12
        assert int(count) >= 1


def test_seed_to_stdout(workspace, capsys):
    _root, _ref, reads, index = workspace
    assert main(["seed", "--index", str(index), "--reads", str(reads),
                 "--min-seed-len", "12", "--out", "-"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("read\t")


def test_align_sam(workspace):
    root, _ref, reads, index = workspace
    sam = root / "out.sam"
    assert main(["align", "--index", str(index), "--reads", str(reads),
                 "--min-seed-len", "12", "--out", str(sam)]) == 0
    lines = sam.read_text().splitlines()
    assert lines[0].startswith("@HD")
    body = [line for line in lines if not line.startswith("@")]
    assert len(body) == 12
    mapped = [line for line in body
              if not int(line.split("\t")[1]) & 0x4]
    assert len(mapped) >= 10


def test_align_pe(workspace, tmp_path):
    """Interleaved paired-end alignment through the CLI."""
    from repro.sequence import GenomeSimulator, write_fastq
    from repro.sequence.simulate import PairedReadSimulator
    from repro.sequence.io import read_fasta

    root, ref_path, _reads, index = workspace
    ref = read_fasta(ref_path)[0]
    pairs = PairedReadSimulator(ref, read_length=60, insert_mean=250,
                                insert_sd=20, seed=7).simulate(6)
    interleaved = []
    for pair in pairs:
        interleaved.extend([pair.first, pair.second])
    fq = tmp_path / "pairs.fq"
    write_fastq(fq, interleaved)
    sam = tmp_path / "pe.sam"
    assert main(["align-pe", "--index", str(index), "--reads", str(fq),
                 "--min-seed-len", "12", "--insert-mean", "250",
                 "--insert-sd", "20", "--out", str(sam)]) == 0
    body = [line for line in sam.read_text().splitlines()
            if not line.startswith("@")]
    assert len(body) == 12
    flags = [int(line.split("\t")[1]) for line in body]
    assert all(flag & 0x1 for flag in flags)  # paired
    assert any(flag & 0x2 for flag in flags)  # some proper pairs


def test_align_pe_rejects_odd_count(workspace, tmp_path):
    root, _ref, _reads, index = workspace
    fq = tmp_path / "odd.fq"
    fq.write_text("@r1\nACGTACGTACGT\n+\nIIIIIIIIIIII\n")
    with pytest.raises(SystemExit):
        main(["align-pe", "--index", str(index), "--reads", str(fq),
              "--out", str(tmp_path / "x.sam")])


def test_compare(workspace, capsys):
    _root, ref, reads, _index = workspace
    assert main(["compare", "--reference", str(ref), "--reads", str(reads),
                 "--k", "5", "--min-seed-len", "12"]) == 0
    out = capsys.readouterr().out
    assert "KB/read" in out
    assert "data-efficiency gain" in out


def test_workers_flag_rejects_zero_and_negative(workspace, capsys):
    _root, _ref, reads, index = workspace
    for bad in ("0", "-2", "abc"):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["seed", "--index", str(index), "--reads", str(reads),
                 "--out", "-", "--workers", bad])
        assert "--workers" in capsys.readouterr().err


def test_batch_size_flag_rejects_nonpositive(workspace, capsys):
    _root, _ref, reads, index = workspace
    for bad in ("0", "-64", "x"):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["seed", "--index", str(index), "--reads", str(reads),
                 "--out", "-", "--batch-size", bad])
        assert "--batch-size" in capsys.readouterr().err


def test_retry_flags_validate(workspace, capsys):
    _root, _ref, reads, index = workspace
    args = build_parser().parse_args(
        ["seed", "--index", str(index), "--reads", str(reads),
         "--out", "-", "--retries", "0", "--batch-timeout", "1.5"])
    assert args.retries == 0
    assert args.batch_timeout == 1.5
    for flag, bad in (("--retries", "-1"), ("--retries", "two"),
                      ("--batch-timeout", "0"), ("--batch-timeout", "-3")):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["seed", "--index", str(index), "--reads", str(reads),
                 "--out", "-", flag, bad])
        assert flag in capsys.readouterr().err


def test_repro_workers_garbage_values(workspace, monkeypatch, capsys):
    """Garbage in $REPRO_WORKERS must not break a run: "abc" warns and
    runs serial; "-3" clamps to 1 worker."""
    _root, _ref, reads, index = workspace
    monkeypatch.setenv("REPRO_WORKERS", "abc")
    with pytest.warns(RuntimeWarning, match="REPRO_WORKERS"):
        assert main(["seed", "--index", str(index), "--reads", str(reads),
                     "--min-seed-len", "12", "--out", "-"]) == 0
    assert capsys.readouterr().out.startswith("read\t")
    monkeypatch.setenv("REPRO_WORKERS", "-3")
    assert main(["seed", "--index", str(index), "--reads", str(reads),
                 "--min-seed-len", "12", "--out", "-"]) == 0
    assert capsys.readouterr().out.startswith("read\t")


def test_index_cache_detects_same_size_rewrite(tmp_path, monkeypatch):
    """The PR-3 cache key was (abspath, mtime_ns, size): a same-size
    in-place rewrite within one mtime tick served the stale index.  The
    content fingerprint in the key must detect the rewrite even with
    identical size, inode and mtime."""
    import os

    import repro.cli as cli_mod

    target = tmp_path / "index.npz"
    page = cli_mod._FINGERPRINT_PAGE
    target.write_bytes(b"A" * (3 * page))
    stat = os.stat(target)

    loads = []
    monkeypatch.setattr(cli_mod, "load_ert",
                        lambda path: loads.append(str(path)) or object())
    cli_mod._INDEX_CACHE.clear()
    first = cli_mod.load_index_cached(str(target))
    assert len(loads) == 1
    # Cache hit while the file is untouched.
    assert cli_mod.load_index_cached(str(target)) is first
    assert len(loads) == 1

    def rewrite_in_place(data):
        # Same size, same inode (no truncate-and-replace), and the
        # original mtime pinned back -- only the bytes differ.
        with open(target, "r+b") as fh:
            fh.write(data)
        os.utime(target, ns=(stat.st_atime_ns, stat.st_mtime_ns))

    # A change in the first page misses the cache...
    rewrite_in_place(b"B" * page + b"A" * (2 * page))
    second = cli_mod.load_index_cached(str(target))
    assert len(loads) == 2, "stale index served after first-page rewrite"
    assert second is not first
    # ... and so does a change confined to the last page.
    rewrite_in_place(b"B" * (2 * page) + b"C" * page)
    third = cli_mod.load_index_cached(str(target))
    assert len(loads) == 3, "stale index served after last-page rewrite"
    assert third is not second


def test_seed_output_matches_library(workspace):
    """The CLI must produce exactly what the library produces."""
    from repro.core import ErtSeedingEngine, load_ert
    from repro.seeding import SeedingParams, seed_read
    from repro.sequence import read_fastq

    root, _ref, reads_path, index_path = workspace
    out_path = root / "seeds2.tsv"
    main(["seed", "--index", str(index_path), "--reads", str(reads_path),
          "--min-seed-len", "12", "--out", str(out_path)])

    engine = ErtSeedingEngine(load_ert(index_path))
    params = SeedingParams(min_seed_len=12)
    expected = []
    for read in read_fastq(reads_path):
        for seed in seed_read(engine, read.codes, params).all_seeds:
            expected.append((read.name, seed.read_start, seed.length,
                             seed.hit_count))
    got = []
    for line in out_path.read_text().splitlines()[1:]:
        name, start, length, count, _ = line.split("\t")
        got.append((name, int(start), int(length), int(count)))
    assert got == expected
