"""OpenMetrics exposition: renderer output, the strict parser, and the
render -> parse round trip over real telemetry snapshots."""

import pytest

from repro import telemetry
from repro.telemetry import parse_openmetrics, render_openmetrics
from repro.telemetry.openmetrics import (
    OpenMetricsParseError,
    metric_name,
)


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def _snapshot_with_everything():
    telemetry.enable()
    telemetry.count("seeding.nodes_visited", 42)
    telemetry.set_gauge("pool.workers", 3)
    telemetry.observe("align.window_bp", 120, edges=(100, 200))
    token = telemetry.read_probe()
    telemetry.record_read(token, "read_9", {"seeds": 5})
    with telemetry.span("seed"):
        with telemetry.span("smem"):
            pass
    return telemetry.snapshot()


# ----------------------------------------------------------------------
# Renderer
# ----------------------------------------------------------------------


def test_metric_name_flattens_dotted_names():
    assert metric_name("seeding.nodes_visited") == \
        "ert_seeding_nodes_visited"
    assert metric_name("read.wall_ms", namespace="x") == "x_read_wall_ms"
    with pytest.raises(ValueError):
        metric_name("!!!", namespace="")


def test_render_ends_with_eof_and_newline():
    text = render_openmetrics(_snapshot_with_everything())
    assert text.endswith("# EOF\n")
    assert "\n\n" not in text


def test_render_counter_gauge_histogram_series():
    text = render_openmetrics(_snapshot_with_everything())
    assert "# TYPE ert_seeding_nodes_visited counter" in text
    assert "ert_seeding_nodes_visited_total 42" in text
    assert "ert_pool_workers 3" in text
    assert 'ert_align_window_bp_bucket{le="100"} 0' in text
    assert 'ert_align_window_bp_bucket{le="200"} 1' in text
    assert 'ert_align_window_bp_bucket{le="+Inf"} 1' in text
    assert "ert_align_window_bp_count 1" in text
    assert 'ert_span_seconds_total{path="seed"}' in text
    assert 'ert_span_calls_total{path="seed/smem"} 1' in text


def test_render_carries_read_exemplars():
    text = render_openmetrics(_snapshot_with_everything())
    exemplar_lines = [line for line in text.splitlines()
                      if "# {read_id=" in line]
    assert exemplar_lines, text
    assert all(line.split(" # ")[0].startswith("ert_read_wall_ms_bucket")
               for line in exemplar_lines)


def test_round_trip_parses_cleanly():
    text = render_openmetrics(_snapshot_with_everything())
    doc = parse_openmetrics(text)
    families = doc["families"]
    assert families["ert_seeding_nodes_visited"]["type"] == "counter"
    hist = families["ert_read_wall_ms"]
    buckets = [s for s in hist["samples"]
               if s["name"] == "ert_read_wall_ms_bucket"]
    assert any(s["exemplar"] is not None for s in buckets)
    exemplar = next(s["exemplar"] for s in buckets
                    if s["exemplar"] is not None)
    assert exemplar["labels"] == {"read_id": "read_9"}


# ----------------------------------------------------------------------
# Parser strictness
# ----------------------------------------------------------------------


def _err(text):
    with pytest.raises(OpenMetricsParseError) as exc:
        parse_openmetrics(text)
    return str(exc.value)


def test_parser_requires_trailing_newline_and_eof():
    assert "newline" in _err("# EOF")
    assert "# EOF" in _err("# TYPE a counter\na_total 1\n")


def test_parser_rejects_blank_lines():
    assert "blank" in _err("# TYPE a counter\n\na_total 1\n# EOF\n")


def test_parser_rejects_samples_without_type():
    assert "no preceding TYPE" in _err("a_total 1\n# EOF\n")


def test_parser_rejects_duplicate_type():
    assert "duplicate TYPE" in _err(
        "# TYPE a counter\n# TYPE a counter\na_total 1\n# EOF\n")


def test_parser_rejects_wrong_suffix_for_type():
    # A gauge family must expose the bare name, not _total.
    assert "no preceding TYPE" in _err("# TYPE g gauge\ng_total 1\n# EOF\n")


def test_parser_rejects_interleaved_families():
    text = ("# TYPE a counter\n# TYPE b counter\n"
            "a_total 1\nb_total 1\n# EOF\n")
    assert "interleaved" in _err(text)


def test_parser_rejects_exemplar_on_gauge():
    text = '# TYPE g gauge\ng 1 # {x="y"} 1\n# EOF\n'
    assert "exemplars are only allowed" in _err(text)


def test_parser_rejects_bucket_without_le():
    text = ('# TYPE h histogram\nh_bucket{x="1"} 1\n'
            'h_bucket{le="+Inf"} 1\nh_count 1\nh_sum 1\n# EOF\n')
    assert "le label" in _err(text)


def test_parser_rejects_non_cumulative_buckets():
    text = ('# TYPE h histogram\nh_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\nh_count 3\nh_sum 1\n# EOF\n')
    assert "cumulative" in _err(text)


def test_parser_rejects_count_disagreeing_with_inf_bucket():
    text = ('# TYPE h histogram\nh_bucket{le="1"} 1\n'
            'h_bucket{le="+Inf"} 2\nh_count 5\nh_sum 1\n# EOF\n')
    assert "_count disagrees" in _err(text)


def test_parser_rejects_malformed_labels():
    assert "malformed" in _err(
        '# TYPE a counter\na_total{bad-key="1"} 1\n# EOF\n')


def test_parser_accepts_escaped_label_values():
    text = ('# TYPE a counter\n'
            'a_total{path="seed\\"x\\\\y"} 1\n# EOF\n')
    doc = parse_openmetrics(text)
    sample = doc["families"]["a"]["samples"][0]
    assert sample["labels"]["path"] == 'seed\\"x\\\\y'


def test_parser_handles_inf_values():
    text = ('# TYPE h histogram\nh_bucket{le="+Inf"} 0\n'
            "h_count 0\nh_sum 0\n# EOF\n")
    doc = parse_openmetrics(text)
    assert doc["families"]["h"]["samples"][0]["value"] == 0
