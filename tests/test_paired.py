"""Tests for paired-end simulation and alignment."""

import numpy as np
import pytest

from repro.extend import ReadAligner
from repro.extend.paired import (
    FLAG_FIRST,
    FLAG_PAIRED,
    FLAG_PROPER,
    FLAG_SECOND,
    PairedAligner,
    Placement,
)
from repro.seeding import SeedingParams
from repro.sequence import GenomeSimulator, Strand
from repro.sequence.alphabet import decode, revcomp
from repro.sequence.simulate import PairedReadSimulator


@pytest.fixture(scope="module")
def paired_setup():
    from repro.fmindex import FmdIndex, FmdSeedingEngine
    # Repeats shorter than a read: alignment can always disambiguate, so
    # the test isolates the pairing logic from repeat multi-mapping.
    sim = GenomeSimulator(seed=131, interspersed_fraction=0.04,
                          element_length=50, segdup_fraction=0.0,
                          tandem_fraction=0.02)
    ref = sim.generate(8000)
    aligner = ReadAligner(ref, FmdSeedingEngine(FmdIndex(ref)),
                          SeedingParams(min_seed_len=12))
    paired = PairedAligner(aligner, insert_mean=300, insert_sd=30)
    return ref, paired


def test_simulator_geometry():
    ref = GenomeSimulator(seed=132).generate(5000)
    sim = PairedReadSimulator(ref, read_length=80, insert_mean=300,
                              insert_sd=20, error_read_fraction=0.0,
                              seed=133)
    for pair in sim.simulate(30):
        assert len(pair.first) == len(pair.second) == 80
        assert pair.fragment_length >= 80
        assert pair.first.strand != pair.second.strand
        # FR orientation on the forward reference.
        fwd = pair.first if pair.first.strand is Strand.FORWARD \
            else pair.second
        rev = pair.second if fwd is pair.first else pair.first
        assert fwd.origin <= rev.origin


def test_simulator_sequences_match_reference():
    ref = GenomeSimulator(seed=134).generate(5000)
    sim = PairedReadSimulator(ref, read_length=60, insert_mean=250,
                              insert_sd=10, error_read_fraction=0.0,
                              seed=135)
    for pair in sim.simulate(15):
        for read in (pair.first, pair.second):
            fwd = decode(ref.codes[read.origin:read.origin + 60])
            expected = fwd if read.strand is Strand.FORWARD else revcomp(fwd)
            assert read.sequence == expected


def test_simulator_validation():
    ref = GenomeSimulator(seed=136).generate(500)
    with pytest.raises(ValueError):
        PairedReadSimulator(ref, read_length=200, insert_mean=100)
    with pytest.raises(ValueError):
        PairedReadSimulator(ref, read_length=50, insert_mean=450,
                            insert_sd=50)


def test_is_proper(paired_setup):
    _ref, paired = paired_setup
    fwd = Placement(50, Strand.FORWARD, 1000, "50M")
    rev_near = Placement(50, Strand.REVERSE, 1250, "50M")
    rev_far = Placement(50, Strand.REVERSE, 5000, "50M")
    rev_left = Placement(50, Strand.REVERSE, 500, "50M")
    same = Placement(50, Strand.FORWARD, 1250, "50M")
    assert paired._is_proper(fwd, rev_near)
    assert paired._is_proper(rev_near, fwd)
    assert not paired._is_proper(fwd, rev_far)
    assert not paired._is_proper(fwd, rev_left)
    assert not paired._is_proper(fwd, same)


def test_pairs_align_properly(paired_setup):
    ref, paired = paired_setup
    sim = PairedReadSimulator(ref, read_length=80, insert_mean=300,
                              insert_sd=30, error_read_fraction=0.2,
                              seed=137)
    pairs = sim.simulate(15)
    proper = 0
    correct = 0
    for pair in pairs:
        rec1, rec2 = paired.align_pair(pair.first.codes, pair.second.codes,
                                       name="p")
        for rec, read in ((rec1, pair.first), (rec2, pair.second)):
            assert rec.flag & FLAG_PAIRED
            if not rec.flag & 0x4 and abs(rec.pos - 1 - read.origin) <= 3:
                correct += 1
        assert rec1.flag & FLAG_FIRST
        assert rec2.flag & FLAG_SECOND
        if rec1.flag & FLAG_PROPER:
            proper += 1
            assert rec2.flag & FLAG_PROPER
    # Planted repeats make some fragments genuinely ambiguous (a mate's
    # exact copy elsewhere breaks the insert envelope), so thresholds
    # leave room for a few repeat-origin pairs.
    assert proper >= 9
    assert correct >= 22  # of 30 mates


def test_mate_rescue(paired_setup):
    """A mate mangled beyond seeding must be rescued from its anchor."""
    ref, paired = paired_setup
    sim = PairedReadSimulator(ref, read_length=80, insert_mean=300,
                              insert_sd=30, error_read_fraction=0.0,
                              seed=138)
    rescued_works = 0
    for pair in sim.simulate(8):
        # Mangle the second mate: substitutions every 10 bp make 12+ bp
        # seeds scarce while leaving 90 % identity for the SW rescue.
        mangled = pair.second.codes.copy()
        for i in range(4, mangled.size, 10):
            mangled[i] = (mangled[i] + 1) % 4
        rec1, rec2 = paired.align_pair(pair.first.codes, mangled, name="p")
        if not rec2.flag & 0x4 and abs(rec2.pos - 1 - pair.second.origin) <= 5:
            rescued_works += 1
    assert rescued_works >= 6


def test_both_unmapped(paired_setup):
    _ref, paired = paired_setup
    rng = np.random.default_rng(139)
    junk1 = rng.integers(0, 4, size=60, dtype=np.uint8)
    junk2 = rng.integers(0, 4, size=60, dtype=np.uint8)
    rec1, rec2 = paired.align_pair(junk1, junk2, name="junk")
    # Junk reads either fail to map or map with low score/MAPQ.
    for rec in (rec1, rec2):
        assert rec.flag & FLAG_PAIRED
        if not rec.flag & 0x4:
            assert rec.mapq <= 30
