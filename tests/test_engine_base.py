"""Tests for the engine base class and stats machinery."""

import pytest

from repro.seeding import EngineStats, ForwardSearch, Mem, OracleEngine
from repro.sequence import Reference
from repro.sequence.alphabet import encode


def test_stats_reset():
    stats = EngineStats()
    stats.forward_searches = 5
    stats.nodes_visited = 9
    stats.reset()
    assert stats.forward_searches == 0
    assert stats.nodes_visited == 0


def test_stats_as_dict():
    stats = EngineStats(forward_searches=2)
    d = stats.as_dict()
    assert d["forward_searches"] == 2
    assert "merged_backward_searches" in d


def test_forward_search_is_empty():
    assert ForwardSearch(3, 3, ()).is_empty
    assert not ForwardSearch(3, 8, (8,)).is_empty


def test_default_backward_sweep_counts_and_prunes():
    ref = Reference.from_string("ACGTACGTACGTTTTTGGGGCCCC")
    engine = OracleEngine(ref)
    read = encode("ACGTACGT")
    forward = engine.forward_search(read, 0)
    engine.stats.reset()
    mems = engine.backward_sweep(read, forward.leps, 1, 0, True)
    assert engine.stats.backward_searches >= 1
    assert all(isinstance(m, Mem) for m in mems)
    # The longest backward search reaches position 0 -> pruning fires.
    assert any(m.start == 0 for m in mems)
    pruned = engine.stats.pruned_backward_searches
    engine.stats.reset()
    engine.backward_sweep(read, forward.leps, 1, 0, False)
    assert engine.stats.pruned_backward_searches == 0
    assert engine.stats.backward_searches >= len(forward.leps)
    assert pruned + 1 >= 0  # counter is well-defined


def test_sweep_respects_min_hits():
    ref = Reference.from_string("ACGACGACGTTTTT")
    engine = OracleEngine(ref)
    read = encode("ACGACG")
    forward = engine.forward_search(read, 0, min_hits=3)
    mems = engine.backward_sweep(read, forward.leps, 3, 0, False)
    for mem in mems:
        assert engine.count(read, mem.start, mem.end) >= 3
