"""The paper's bit-equivalence guarantee, enforced across all engines.

These are the most important tests in the repository: the ERT (in every
configuration) must produce *exactly* the seeds the FMD-index produces,
which must match the brute-force oracle -- on fixture genomes and on
hypothesis-fuzzed random ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ErtConfig, ErtSeedingEngine, build_ert
from repro.fmindex import FmdConfig, FmdIndex, FmdSeedingEngine
from repro.seeding import (
    OracleEngine,
    SeedingParams,
    assert_equivalent,
    compare_engines,
    seed_read,
)
from repro.sequence import Reference


def test_fmd_matches_oracle(fmd, oracle, read_codes, params):
    assert_equivalent(oracle, fmd, read_codes, params)


def test_ert_matches_fmd(ert, fmd, read_codes, params):
    assert_equivalent(fmd, ert, read_codes, params)


def test_ert_pm_matches_fmd(ert_pm, fmd, read_codes, params):
    assert_equivalent(fmd, ert_pm, read_codes, params)


def test_bwa_mem_layout_matches_bwa_mem2(reference, read_codes, params):
    """Occurrence-table compression is transparent to results."""
    mem = FmdSeedingEngine(FmdIndex(reference, FmdConfig.bwa_mem()))
    mem2 = FmdSeedingEngine(FmdIndex(reference, FmdConfig.bwa_mem2()))
    assert_equivalent(mem, mem2, read_codes[:10], params)


def test_equivalence_without_pruning(ert, fmd, read_codes):
    params = SeedingParams(min_seed_len=12, use_pruning=False)
    assert_equivalent(fmd, ert, read_codes[:10], params)


def test_equivalence_with_tight_hit_limit(ert, fmd, read_codes):
    params = SeedingParams(min_seed_len=12, max_hits_per_seed=2)
    assert_equivalent(fmd, ert, read_codes[:10], params)


def test_compare_engines_reports_mismatch(fmd, oracle, read_codes, params):
    """The comparator itself must detect a planted divergence."""

    class Broken(OracleEngine):
        name = "broken"

        def backward_search(self, read, end, min_hits=1):
            s = super().backward_search(read, end, min_hits)
            return min(s + 1, end)  # systematically too short

    broken = Broken(oracle.reference)
    report = compare_engines(fmd, broken, read_codes[:5], params)
    assert not report.equivalent
    assert report.mismatches


dna_text = st.text(alphabet="ACGT", min_size=60, max_size=200)


@settings(max_examples=25, deadline=None)
@given(dna_text, st.integers(0, 2 ** 31 - 1))
def test_fuzzed_equivalence_oracle_fmd_ert(genome, seed):
    """Random genome, random read (half mutated substring, half random):
    all three engines must agree on the complete three-round output."""
    ref = Reference.from_string(genome)
    rng = np.random.default_rng(seed)
    read_len = int(rng.integers(12, min(40, len(genome))))
    if rng.random() < 0.5:
        start = int(rng.integers(0, len(genome) - read_len + 1))
        read = ref.codes[start:start + read_len].copy()
        n_mut = int(rng.integers(0, 3))
        for _ in range(n_mut):
            i = int(rng.integers(0, read_len))
            read[i] = (read[i] + int(rng.integers(1, 4))) % 4
    else:
        read = rng.integers(0, 4, size=read_len, dtype=np.uint8)

    params = SeedingParams(min_seed_len=6)
    oracle = OracleEngine(ref)
    fmd = FmdSeedingEngine(FmdIndex(ref))
    ert = ErtSeedingEngine(build_ert(ref, ErtConfig(
        k=4, max_seed_len=64, table_threshold=8, table_x=2)))
    ert_pm = ErtSeedingEngine(build_ert(ref, ErtConfig(
        k=4, max_seed_len=64, table_threshold=8, table_x=2,
        prefix_merging=True)))

    want = seed_read(oracle, read, params).key()
    assert seed_read(fmd, read, params).key() == want
    assert seed_read(ert, read, params).key() == want
    assert seed_read(ert_pm, read, params).key() == want


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2 ** 31 - 1))
def test_fuzzed_low_complexity_genomes(seed):
    """Highly repetitive genomes (tandem soup) stress leaf gathering,
    ended-at-text-boundary paths and the hit-limit contract."""
    rng = np.random.default_rng(seed)
    motif = "".join("ACGT"[int(c)] for c in rng.integers(0, 4, size=3))
    genome = (motif * 40)[:100] + "".join(
        "ACGT"[int(c)] for c in rng.integers(0, 4, size=60))
    ref = Reference.from_string(genome)
    read = ref.codes[10:40].copy()

    params = SeedingParams(min_seed_len=6, max_hits_per_seed=10)
    oracle = OracleEngine(ref)
    ert = ErtSeedingEngine(build_ert(ref, ErtConfig(
        k=4, max_seed_len=48, table_threshold=8, table_x=2)))
    assert seed_read(ert, read, params).key() == \
        seed_read(oracle, read, params).key()
