"""The pool under the ``spawn`` start method.

Linux defaults to ``fork``, which the rest of the parallel suite uses
for speed; ``spawn`` is what macOS/Windows get and what
``ParallelConfig(start_method=...)`` exposes.  Spawned workers share
nothing with the parent -- telemetry state, the exemplar collector and
the timeline recorder all start empty in each worker -- so these tests
prove the worker-boundary merge carries everything home: output stays
byte-identical, per-read exemplars arrive with the right count, and
worker timeline tracks land in the parent trace.
"""

import pytest

from repro import telemetry
from repro.parallel import ParallelConfig, seed_reads
from repro.telemetry.events import trace_document


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    telemetry.stop_recording()
    telemetry.recorder().clear()
    yield
    telemetry.disable()
    telemetry.reset()
    telemetry.stop_recording()
    telemetry.recorder().clear()


def spawn_config(batch_size=8):
    return ParallelConfig(workers=2, batch_size=batch_size,
                          start_method="spawn")


def test_spawn_pool_matches_serial_byte_for_byte(ert_index, read_codes,
                                                 params):
    serial_lines, serial_stats = seed_reads(
        ert_index, read_codes, params, ParallelConfig(workers=1))
    lines, stats = seed_reads(ert_index, read_codes, params,
                              spawn_config())
    assert lines == serial_lines
    assert stats.as_dict() == serial_stats.as_dict()


def test_spawn_pool_absorbs_exemplars_and_counters(ert_index, read_codes,
                                                   params):
    telemetry.enable()
    seed_reads(ert_index, read_codes, params, spawn_config(batch_size=4))
    snap = telemetry.snapshot()
    # Every read was sampled in some worker and merged back in order.
    assert snap["exemplars"]["count"] == len(read_codes)
    assert snap["exemplars"]["slowest"], "slowlog lost at the boundary"
    assert snap["histograms"]["read.wall_ms"]["count"] == len(read_codes)
    assert snap["histograms"]["read.wall_ms"]["exemplars"]
    # Engine counters crossed the boundary too (spot-check one that
    # both kernel backends emit -- the vector walk gathers flat nodes,
    # so `seeding.nodes_visited` is scalar-only).
    assert snap["counters"]["seeding.index_lookups"] > 0


def test_spawn_exemplar_merge_is_deterministic(ert_index, read_codes,
                                               params):
    """In-order merge makes the sampled set reproducible run-to-run even
    though workers finish in arbitrary order."""
    kept = []
    for _ in range(2):
        telemetry.reset()
        telemetry.enable()
        seed_reads(ert_index, read_codes, params,
                   spawn_config(batch_size=4))
        exemplars = telemetry.snapshot()["exemplars"]
        kept.append([r["read_id"] for r in exemplars["reservoir"]])
        telemetry.disable()
    assert kept[0] == kept[1]


def test_spawn_trace_has_worker_tracks(ert_index, read_codes, params):
    epoch = telemetry.start_recording()
    try:
        seed_reads(ert_index, read_codes, params, spawn_config())
    finally:
        telemetry.stop_recording()
    doc = trace_document(telemetry.recorder().tracks(), epoch)
    events = doc["traceEvents"]
    assert len({e["pid"] for e in events}) >= 2, \
        "no spawned-worker track was absorbed into the parent trace"
    names = {e["name"] for e in events}
    for expected in ("batch", "worker.init", "shm.attach",
                     "parallel.merge"):
        assert expected in names, f"missing {expected} events"
