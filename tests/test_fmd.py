"""Unit tests for the FMD-index: extension, counting, locating, layout."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fmindex import FmdConfig, FmdIndex
from repro.memsim import MemoryTracer
from repro.seeding.oracle import count_occurrences, find_occurrences
from repro.sequence import GenomeSimulator, Reference
from repro.sequence.alphabet import decode, encode


@pytest.fixture(scope="module")
def small_ref():
    return GenomeSimulator(seed=21).generate(1500)


@pytest.fixture(scope="module")
def small_index(small_ref):
    return FmdIndex(small_ref, FmdConfig.bwa_mem2())


def text_of(ref):
    return decode(ref.both_strands)


def test_count_matches_brute_force(small_ref, small_index):
    text = text_of(small_ref)
    rng = np.random.default_rng(1)
    for _ in range(40):
        start = int(rng.integers(0, len(text) - 12))
        length = int(rng.integers(1, 12))
        pattern = text[start:start + length]
        assert small_index.count(encode(pattern)) == \
            count_occurrences(text, pattern)


def test_count_absent_pattern(small_index, small_ref):
    text = text_of(small_ref)
    # Find a pattern that does not occur by extending until count is 0.
    pattern = "ACGT"
    while count_occurrences(text, pattern) > 0:
        pattern += "ACGT"[len(pattern) % 4]
    assert small_index.count(encode(pattern)) == 0


def test_locate_matches_brute_force(small_ref, small_index):
    text = text_of(small_ref)
    rng = np.random.default_rng(2)
    for _ in range(25):
        start = int(rng.integers(0, len(text) - 10))
        length = int(rng.integers(4, 10))
        pattern = text[start:start + length]
        bi = small_index.pattern_interval(encode(pattern))
        assert small_index.locate(bi) == find_occurrences(text, pattern)


def test_forward_equals_backward_of_revcomp(small_ref, small_index):
    """Forward extension must agree with a from-scratch backward search."""
    text = text_of(small_ref)
    rng = np.random.default_rng(3)
    for _ in range(20):
        start = int(rng.integers(0, len(text) - 8))
        pattern = text[start:start + 8]
        codes = encode(pattern)
        bi = small_index.init_interval(int(codes[0]))
        for c in codes[1:]:
            bi = small_index.forward_extend(bi, int(c))
        assert bi.s == count_occurrences(text, pattern)
        assert small_index.pattern_interval(codes).s == bi.s


def test_bi_interval_swap_is_revcomp(small_ref, small_index):
    from repro.sequence.alphabet import revcomp
    text = text_of(small_ref)
    rng = np.random.default_rng(4)
    for _ in range(10):
        start = int(rng.integers(0, len(text) - 6))
        pattern = text[start:start + 6]
        bi = small_index.pattern_interval(encode(pattern))
        swapped = small_index.pattern_interval(encode(revcomp(pattern)))
        assert bi.s == swapped.s
        assert bi.swapped().k == swapped.k


def test_empty_pattern_full_interval(small_index):
    bi = small_index.pattern_interval(np.empty(0, dtype=np.uint8))
    assert bi.s == small_index.n + 1


def test_extend_empty_interval_rejected(small_index):
    from repro.fmindex import BiInterval
    with pytest.raises(ValueError):
        small_index.backward_extend(BiInterval(0, 0, 0), 1)


def test_occ_consistency(small_index):
    """Occ via checkpoints equals a direct scan of the BWT."""
    bwt = small_index.bwt
    rng = np.random.default_rng(5)
    for _ in range(50):
        row = int(rng.integers(0, bwt.size + 1))
        base = int(rng.integers(0, 4))
        assert small_index.occ(base, row) == \
            int(np.count_nonzero(bwt[:row] == base))


def test_index_bytes_layouts(small_ref):
    mem = FmdIndex(small_ref, FmdConfig.bwa_mem())
    mem2 = FmdIndex(small_ref, FmdConfig.bwa_mem2())
    # BWA-MEM trades bandwidth for space: smaller index than BWA-MEM2.
    assert mem.index_bytes()["total"] < mem2.index_bytes()["total"]
    for idx in (mem, mem2):
        sizes = idx.index_bytes()
        assert sizes["total"] == sizes["occ"] + sizes["sa"]
        assert sizes["occ"] > 0 and sizes["sa"] > 0


def test_traffic_recorded_on_extension(small_ref):
    index = FmdIndex(small_ref, FmdConfig.bwa_mem2())
    tracer = MemoryTracer()
    index.attach_tracer(tracer)
    pattern = text_of(small_ref)[100:130]
    index.count(encode(pattern))
    assert tracer.by_phase["occ_lookup"].requests > 0
    index.attach_tracer(None)


def test_locate_traffic_scales_with_sa_sampling(small_ref):
    """A sparser SA sampling must cost more LF-walk traffic per hit."""
    text = text_of(small_ref)
    pattern = text[200:220]

    def locate_bytes(config):
        index = FmdIndex(small_ref, config)
        tracer = MemoryTracer()
        index.attach_tracer(tracer)
        bi = index.pattern_interval(encode(pattern))
        before = tracer.total_bytes
        index.locate(bi)
        return tracer.total_bytes - before

    dense = locate_bytes(FmdConfig(name="dense", sa_sample=2))
    sparse = locate_bytes(FmdConfig(name="sparse", sa_sample=64))
    assert sparse > dense


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_small_random_genomes_count(seed):
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 4, size=60, dtype=np.uint8)
    ref = Reference(name="t", codes=codes)
    index = FmdIndex(ref)
    text = decode(ref.both_strands)
    for start in range(0, 50, 7):
        pattern = text[start:start + 5]
        assert index.count(encode(pattern)) == \
            count_occurrences(text, pattern)
