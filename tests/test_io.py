"""Unit tests for FASTA/FASTQ I/O."""

import pytest

from repro.sequence import (
    GenomeSimulator,
    ReadSimulator,
    read_fasta,
    read_fastq,
    write_fasta,
    write_fastq,
)
from repro.sequence.io import FastaError


def test_fasta_roundtrip(tmp_path):
    refs = [GenomeSimulator(seed=i).generate(500, name=f"chr{i}")
            for i in range(3)]
    path = tmp_path / "ref.fa"
    write_fasta(path, refs, width=60)
    back = read_fasta(path)
    assert [r.name for r in back] == ["chr0", "chr1", "chr2"]
    for a, b in zip(refs, back):
        assert a.sequence == b.sequence


def test_fasta_wrapping(tmp_path):
    ref = GenomeSimulator(seed=1).generate(150)
    path = tmp_path / "ref.fa"
    write_fasta(path, [ref], width=50)
    lines = path.read_text().splitlines()
    assert lines[0].startswith(">")
    assert all(len(line) <= 50 for line in lines[1:])


def test_fasta_rejects_headerless(tmp_path):
    path = tmp_path / "bad.fa"
    path.write_text("ACGT\n")
    with pytest.raises(FastaError):
        read_fasta(path)


def test_fasta_rejects_empty_record(tmp_path):
    path = tmp_path / "bad.fa"
    path.write_text(">a\n>b\nACGT\n")
    with pytest.raises(FastaError):
        read_fasta(path)


def test_fasta_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.fa"
    path.write_text("")
    with pytest.raises(FastaError):
        read_fasta(path)


def test_fastq_roundtrip(tmp_path):
    ref = GenomeSimulator(seed=2).generate(1000)
    reads = ReadSimulator(ref, read_length=40, seed=3).simulate(10)
    path = tmp_path / "reads.fq"
    write_fastq(path, reads)
    back = read_fastq(path)
    assert len(back) == 10
    for a, b in zip(reads, back):
        assert a.name == b.name
        assert a.sequence == b.sequence
        assert a.quality == b.quality


def test_fastq_rejects_truncated(tmp_path):
    path = tmp_path / "bad.fq"
    path.write_text("@r1\nACGT\n+\n")
    with pytest.raises(FastaError):
        read_fastq(path)


def test_fastq_rejects_length_mismatch(tmp_path):
    path = tmp_path / "bad.fq"
    path.write_text("@r1\nACGT\n+\nII\n")
    with pytest.raises(FastaError):
        read_fastq(path)


def test_fastq_rejects_bad_separator(tmp_path):
    path = tmp_path / "bad.fq"
    path.write_text("@r1\nACGT\nX\nIIII\n")
    with pytest.raises(FastaError):
        read_fastq(path)
