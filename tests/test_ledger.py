"""The benchmark run-ledger: metric flattening, manifests, the JSONL
file, run-over-run diffing, and the ``ert-repro ledger`` CLI exit
codes (0 clean / 1 regression / 2 bad invocation)."""

import json
import os

import pytest

from repro.ledger import (
    LEDGER_SCHEMA,
    MetricDelta,
    append_record,
    build_record,
    diff_records,
    env_fingerprint,
    flatten_metrics,
    is_throughput_metric,
    last_runs,
    read_ledger,
    render_diff,
    snapshot_metrics,
)
from repro.ledger.cli import main as ledger_main
from repro.ledger.records import INVALID_MARKER, benchmarks_in


# ----------------------------------------------------------------------
# Flattening and snapshots
# ----------------------------------------------------------------------


def test_flatten_nested_json_to_dotted_numbers():
    flat = flatten_metrics({
        "benchmark": "x",                      # non-numeric leaf: dropped
        "serial": {"seconds": 1.5, "reads_per_sec": 200},
        "cpu_count": 2,
        "ok": True,                            # bool is not a metric
    })
    assert flat == {"serial.seconds": 1.5,
                    "serial.reads_per_sec": 200.0,
                    "cpu_count": 2.0}


def test_flatten_skips_invalid_on_this_host_subtrees():
    flat = flatten_metrics({
        "workers": {
            "1": {"reads_per_sec": 100.0},
            "2": {"skipped": INVALID_MARKER},
            "4": {"skipped": INVALID_MARKER},
        },
    })
    assert flat == {"workers.1.reads_per_sec": 100.0}


def test_flatten_invalid_marker_at_top_level_drops_everything():
    assert flatten_metrics({"skipped": INVALID_MARKER, "x": 1}) == {}


def test_snapshot_metrics_derives_throughput():
    snap = {
        "spans": {"seed": {"total_s": 2.0, "count": 3},
                  "seed/smem": {"total_s": 1.0}},
        "counters": {"seeding.reads": 500, "seeding.seeds": 1200},
    }
    out = snapshot_metrics(snap)
    assert out["span.seed.total_s"] == 2.0
    assert "span.seed/smem.total_s" not in out, "child spans excluded"
    assert out["counter.seeding.reads"] == 500.0
    assert out["seeding.reads_per_sec"] == 250.0


def test_snapshot_metrics_without_seed_span_has_no_derived_rate():
    out = snapshot_metrics({"spans": {}, "counters": {"seeding.reads": 5}})
    assert "seeding.reads_per_sec" not in out


# ----------------------------------------------------------------------
# Records and the JSONL file
# ----------------------------------------------------------------------


def test_env_fingerprint_shape():
    env = env_fingerprint()
    assert set(env) == {"python", "implementation", "platform",
                        "machine", "cpu_count"}


def test_build_append_read_round_trip(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    record = build_record("seed_bench", {"reads_per_sec": 123.0},
                          label="run-a",
                          workload={"reads": 500},
                          recorded_at="2026-08-06T00:00:00+00:00")
    assert record["schema"] == LEDGER_SCHEMA
    append_record(path, record)
    append_record(path, build_record("seed_bench",
                                     {"reads_per_sec": 130.0},
                                     recorded_at="t2"))
    records = read_ledger(path)
    assert len(records) == 2
    assert records[0] == record
    assert records[0]["workload"] == {"reads": 500}


def test_append_creates_parent_directories(tmp_path):
    path = str(tmp_path / "deep" / "nested" / "ledger.jsonl")
    append_record(path, build_record("b", {"m": 1.0}, recorded_at="t"))
    assert len(read_ledger(path)) == 1


def test_read_missing_ledger_is_empty():
    assert read_ledger("/nonexistent/ledger.jsonl") == []


def test_read_malformed_line_raises_with_line_number(tmp_path):
    path = tmp_path / "ledger.jsonl"
    path.write_text('{"schema": 1}\nnot json\n')
    with pytest.raises(ValueError, match=r"ledger\.jsonl:2"):
        read_ledger(str(path))
    path.write_text('[1, 2]\n')
    with pytest.raises(ValueError, match="not a JSON object"):
        read_ledger(str(path))


def test_last_runs_windows_per_benchmark():
    records = [build_record("a", {"m": float(i)}, recorded_at=f"t{i}")
               for i in range(4)]
    records.insert(2, build_record("b", {"m": 9.0}, recorded_at="tb"))
    window = last_runs(records, "a")
    assert [r["metrics"]["m"] for r in window] == [2.0, 3.0]
    assert last_runs(records, "missing") == []
    assert benchmarks_in(records) == ["a", "b"]


# ----------------------------------------------------------------------
# Diffing and the regression gate
# ----------------------------------------------------------------------


def test_is_throughput_metric_by_name():
    assert is_throughput_metric("seeding.reads_per_sec")
    assert is_throughput_metric("workers.2.THROUGHPUT")
    assert not is_throughput_metric("span.seed.total_s")


def _rec(metrics, schema=LEDGER_SCHEMA):
    return {"schema": schema, "metrics": metrics, "recorded_at": "t",
            "label": ""}


def test_diff_flags_only_throughput_drops_beyond_threshold():
    previous = _rec({"reads_per_sec": 100.0, "span.seed.total_s": 1.0,
                     "only_prev": 1.0})
    current = _rec({"reads_per_sec": 85.0, "span.seed.total_s": 5.0,
                    "only_curr": 1.0})
    deltas = diff_records(previous, current, threshold=0.10)
    by_name = {d.name: d for d in deltas}
    assert set(by_name) == {"reads_per_sec", "span.seed.total_s"}
    assert by_name["reads_per_sec"].regression
    assert by_name["reads_per_sec"].change == pytest.approx(-0.15)
    # 5x slower wall clock is reported but never gates.
    assert not by_name["span.seed.total_s"].regression


def test_diff_within_threshold_is_clean():
    deltas = diff_records(_rec({"reads_per_sec": 100.0}),
                          _rec({"reads_per_sec": 95.0}),
                          threshold=0.10)
    assert not any(d.regression for d in deltas)


def test_diff_zero_previous_value_has_no_change_ratio():
    delta, = diff_records(_rec({"reads_per_sec": 0.0}),
                          _rec({"reads_per_sec": 5.0}))
    assert delta.change is None and not delta.regression
    assert "n/a" in delta.describe()


def test_diff_schema_mismatch_raises():
    with pytest.raises(ValueError, match="schema"):
        diff_records(_rec({}, schema=1), _rec({}, schema=2))


def test_delta_describe_marks_regressions():
    good = MetricDelta("m_per_sec", 100.0, 99.0, -0.01, False)
    bad = MetricDelta("m_per_sec", 100.0, 50.0, -0.50, True)
    assert "REGRESSION" not in good.describe()
    assert "<< REGRESSION" in bad.describe()


def test_render_diff_mentions_regression_count():
    previous = _rec({"m_per_sec": 100.0})
    current = _rec({"m_per_sec": 50.0})
    deltas = diff_records(previous, current)
    text = render_diff("bench", previous, current, deltas)
    assert "== bench ==" in text
    assert "1 throughput regression(s)" in text


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------


def test_cli_record_then_diff_clean_exits_zero(tmp_path, capsys):
    ledger = str(tmp_path / "ledger.jsonl")
    for rate in (100.0, 99.0):
        assert ledger_main(["record", "--ledger", ledger,
                            "--benchmark", "seed",
                            "--metric", f"reads_per_sec={rate}"]) == 0
    capsys.readouterr()
    assert ledger_main(["diff", "--ledger", ledger,
                        "--benchmark", "seed"]) == 0
    assert "reads_per_sec" in capsys.readouterr().out


def test_cli_diff_exits_one_on_synthetic_regression(tmp_path, capsys):
    ledger = str(tmp_path / "ledger.jsonl")
    for rate in (100.0, 75.0):  # -25%, beyond the default 10%
        assert ledger_main(["record", "--ledger", ledger,
                            "--benchmark", "seed",
                            "--metric", f"reads_per_sec={rate}"]) == 0
    capsys.readouterr()
    assert ledger_main(["diff", "--ledger", ledger]) == 1
    assert "REGRESSION" in capsys.readouterr().out
    # A looser threshold lets the same pair pass.
    assert ledger_main(["diff", "--ledger", ledger,
                        "--threshold", "0.30"]) == 0


def test_cli_diff_insufficient_runs(tmp_path, capsys):
    ledger = str(tmp_path / "ledger.jsonl")
    assert ledger_main(["record", "--ledger", ledger,
                        "--benchmark", "seed",
                        "--metric", "reads_per_sec=1"]) == 0
    capsys.readouterr()
    # Named benchmark with one run: a hard error for CI wiring bugs.
    assert ledger_main(["diff", "--ledger", ledger,
                        "--benchmark", "seed"]) == 2
    # All-benchmarks mode with nothing diffable: informational, clean.
    assert ledger_main(["diff", "--ledger", ledger]) == 0


def test_cli_record_with_no_metrics_exits_two(tmp_path, capsys):
    assert ledger_main(["record",
                        "--ledger", str(tmp_path / "l.jsonl"),
                        "--benchmark", "seed"]) == 2
    assert "nothing to record" in capsys.readouterr().err


def test_cli_record_from_bench_json_and_snapshot(tmp_path, capsys):
    bench = tmp_path / "BENCH.json"
    bench.write_text(json.dumps({
        "serial": {"reads_per_sec": 210.0},
        "workers": {"2": {"skipped": INVALID_MARKER}},
    }))
    snap = tmp_path / "metrics.json"
    snap.write_text(json.dumps({
        "spans": {"seed": {"total_s": 2.0}},
        "counters": {"seeding.reads": 500},
        "gauges": {},
        "histograms": {},
    }))
    ledger = str(tmp_path / "ledger.jsonl")
    assert ledger_main(["record", "--ledger", ledger,
                        "--benchmark", "seed", "--label", "ci",
                        "--bench-json", str(bench),
                        "--metrics", str(snap),
                        "--metric", "counter.seeding.reads=501",
                        "--workload", "reads=500",
                        "--workload", "tag=smoke"]) == 0
    record, = read_ledger(ledger)
    metrics = record["metrics"]
    assert metrics["serial.reads_per_sec"] == 210.0
    assert metrics["seeding.reads_per_sec"] == 250.0
    assert metrics["counter.seeding.reads"] == 501.0, \
        "--metric must override derived values"
    assert not any(name.startswith("workers.2") for name in metrics)
    assert record["workload"] == {"reads": 500, "tag": "smoke"}
    assert record["telemetry"]["spans"]["seed"] == 2.0


def test_cli_record_unreadable_inputs_exit_two(tmp_path, capsys):
    ledger = str(tmp_path / "l.jsonl")
    assert ledger_main(["record", "--ledger", ledger,
                        "--benchmark", "b",
                        "--bench-json", str(tmp_path / "missing.json")
                        ]) == 2
    bad = tmp_path / "bad.json"
    bad.write_text("[]")
    assert ledger_main(["record", "--ledger", ledger,
                        "--benchmark", "b",
                        "--bench-json", str(bad)]) == 2
    assert not os.path.exists(ledger)


def test_cli_show(tmp_path, capsys):
    ledger = str(tmp_path / "ledger.jsonl")
    assert ledger_main(["show", "--ledger", ledger]) == 0
    assert "empty ledger" in capsys.readouterr().out
    for rate in (100.0, 99.0):
        ledger_main(["record", "--ledger", ledger, "--benchmark", "seed",
                     "--label", "ci",
                     "--metric", f"reads_per_sec={rate}"])
    capsys.readouterr()
    assert ledger_main(["show", "--ledger", ledger, "--last", "1"]) == 0
    out = capsys.readouterr().out
    assert "== seed (1 shown) ==" in out and "reads_per_sec=99" in out


def test_cli_corrupt_ledger_exits_two(tmp_path, capsys):
    ledger = tmp_path / "ledger.jsonl"
    ledger.write_text("garbage\n")
    assert ledger_main(["diff", "--ledger", str(ledger)]) == 2
    assert ledger_main(["show", "--ledger", str(ledger)]) == 2
