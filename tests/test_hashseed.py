"""Tests for the hash-table seeding baseline (§VII comparison)."""

import numpy as np
import pytest

from repro.baselines import HashSeedIndex, HashSeeder
from repro.baselines.hashseed import HashSeedConfig
from repro.memsim import MemoryTracer
from repro.seeding.oracle import count_occurrences, find_occurrences
from repro.sequence import GenomeSimulator, ReadSimulator
from repro.sequence.alphabet import decode


@pytest.fixture(scope="module")
def setup():
    ref = GenomeSimulator(seed=141).generate(4000)
    index = HashSeedIndex(ref, HashSeedConfig(k=10))
    return ref, index


def test_config_validation():
    with pytest.raises(ValueError):
        HashSeedConfig(k=2)
    with pytest.raises(ValueError):
        HashSeedConfig(stride=0)


def test_buckets_match_brute_force(setup):
    ref, index = setup
    text = decode(ref.both_strands)
    rng = np.random.default_rng(1)
    for _ in range(25):
        start = int(rng.integers(0, len(text) - 10))
        kmer = text[start:start + 10]
        code = 0
        for ch in kmer:
            code = (code << 2) | "ACGT".index(ch)
        assert index.buckets[code].tolist() == find_occurrences(text, kmer)


def test_every_window_of_a_perfect_read_hits(setup):
    ref, index = setup
    read = ReadSimulator(ref, read_length=60, error_read_fraction=0.0,
                         seed=2).simulate(1)[0]
    result = HashSeeder(index).seed_read(read.codes)
    assert len(result.smems) == 60 - 10 + 1
    text = decode(ref.both_strands)
    for seed in result.smems:
        window = read.sequence[seed.read_start:seed.read_start + 10]
        assert seed.hit_count == count_occurrences(text, window)
        if seed.hits:
            assert all(text[h:h + 10] == window for h in seed.hits)


def test_stride_reduces_lookups(setup):
    ref, _ = setup
    dense = HashSeedIndex(ref, HashSeedConfig(k=10, stride=1))
    sparse = HashSeedIndex(ref, HashSeedConfig(k=10, stride=5))
    read = ReadSimulator(ref, read_length=60, seed=3).simulate(1)[0]
    n_dense = len(HashSeeder(dense).seed_read(read.codes).smems)
    n_sparse = len(HashSeeder(sparse).seed_read(read.codes).smems)
    assert n_sparse < n_dense


def test_hash_seeding_floods_compared_to_smems(setup):
    """The quantitative version of the paper's §VII argument: hash
    seeding emits many more seeds per read than SMEM seeding."""
    from repro.fmindex import FmdIndex, FmdSeedingEngine
    from repro.seeding import SeedingParams, seed_read

    ref, index = setup
    smem_engine = FmdSeedingEngine(FmdIndex(ref))
    params = SeedingParams(min_seed_len=12)
    reads = ReadSimulator(ref, read_length=60, seed=4).simulate(10)
    hash_total = smem_total = 0
    for read in reads:
        hash_total += len(HashSeeder(index).seed_read(read.codes).smems)
        smem_total += len(seed_read(smem_engine, read.codes,
                                    params).all_seeds)
    assert hash_total > 3 * smem_total


def test_traffic_recorded(setup):
    ref, index = setup
    tracer = MemoryTracer()
    index.attach_tracer(tracer)
    try:
        read = ReadSimulator(ref, read_length=60, seed=5).simulate(1)[0]
        HashSeeder(index).seed_read(read.codes)
    finally:
        index.attach_tracer(None)
    assert tracer.by_phase["hash_bucket"].requests >= 51
    assert tracer.by_phase["hash_positions"].requests >= 1


def test_index_bytes(setup):
    _ref, index = setup
    sizes = index.index_bytes()
    assert sizes["headers"] == 4 ** 10 * 8
    assert sizes["total"] == sizes["headers"] + sizes["positions"]


def test_missing_kmer_empty(setup):
    _ref, index = setup
    # Walk codes until one is absent (tiny genome, 4^10 space).
    for code in range(4 ** 10):
        if code not in index.buckets:
            assert index.lookup(code).size == 0
            break
