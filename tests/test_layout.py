"""Tests for node serialization and the tiled layout (§III-D)."""

import numpy as np
import pytest

from repro.core import ErtConfig, LayoutPolicy, build_ert
from repro.core.layout import LayoutStats, layout_tree, node_size
from repro.core.nodes import DivergeNode, LeafNode, UniformNode
from repro.sequence import GenomeSimulator


def make_leaf(n=1, prefix_merging=False):
    return LeafNode(tuple(range(n)), tuple([-1] * n))


def test_node_sizes():
    leaf = make_leaf(1)
    assert node_size(leaf, prefix_merging=False) == 3 + 4
    assert node_size(leaf, prefix_merging=True) == 3 + 4 + 1 + 1
    leaf3 = make_leaf(3)
    assert node_size(leaf3, prefix_merging=False) == 3 + 12
    uniform = UniformNode(np.array([0, 1, 2, 3, 0], dtype=np.uint8),
                          make_leaf(), 1)
    assert node_size(uniform, prefix_merging=False) == 9 + 2
    diverge = DivergeNode({0: make_leaf(), 2: make_leaf()}, (5,), 3)
    assert node_size(diverge, prefix_merging=False) == 5 + 8 + 4


def _forest(reference, policy):
    config = ErtConfig(k=5, max_seed_len=60, layout=policy)
    return build_ert(reference, config)


@pytest.fixture(scope="module")
def reference():
    return GenomeSimulator(seed=51).generate(2500)


@pytest.mark.parametrize("policy", list(LayoutPolicy))
def test_offsets_are_disjoint(reference, policy):
    """No two nodes of a tree may overlap in the serialized blob."""
    index = _forest(reference, policy)
    for root in list(index.roots.values())[:150]:
        spans = []
        stack = [root]
        while stack:
            node = stack.pop()
            assert node.offset >= 0
            spans.append((node.offset, node.offset + node.nbytes))
            stack.extend(node.children_nodes())
        spans.sort()
        for (a_start, a_end), (b_start, _b_end) in zip(spans, spans[1:]):
            assert a_end <= b_start


@pytest.mark.parametrize("policy", list(LayoutPolicy))
def test_blob_contains_all_nodes(reference, policy):
    index = _forest(reference, policy)
    for code, root in list(index.roots.items())[:150]:
        stack = [root]
        while stack:
            node = stack.pop()
            assert node.offset + node.nbytes <= index.trees_region.size
            stack.extend(node.children_nodes())


def test_tiled_beats_bfs_on_walk_locality(reference, read_codes=None):
    """A root-to-leaf walk under the tiled layout must touch no more
    distinct lines than under BFS, and strictly fewer in aggregate."""
    tiled = _forest(reference, LayoutPolicy.TILED)
    bfs = _forest(reference, LayoutPolicy.BFS)

    def walk_lines(index):
        total = 0
        for code, root in index.roots.items():
            lines = set()
            node = root
            # Follow an arbitrary deep path.
            while True:
                base = index.tree_base[code] + node.offset
                lines.update(range(base // 64,
                                   (base + max(node.nbytes, 1) - 1) // 64 + 1))
                kids = node.children_nodes()
                if not kids:
                    break
                node = kids[0]
            total += len(lines)
        return total

    assert walk_lines(tiled) <= walk_lines(bfs)


def test_layout_stats(reference):
    index = _forest(reference, LayoutPolicy.TILED)
    stats = index.layout_stats
    assert stats.n_nodes > 0
    assert stats.n_tiles > 0
    assert stats.total_bytes == index.trees_region.size
    assert stats.mean_nodes_per_tile >= 1.0


def test_prefix_merging_increases_leaf_bytes(reference):
    plain = build_ert(reference, ErtConfig(k=5, max_seed_len=60))
    merged = build_ert(reference, ErtConfig(k=5, max_seed_len=60,
                                            prefix_merging=True))
    assert merged.index_bytes()["trees"] > plain.index_bytes()["trees"]


def test_unknown_node_type_rejected():
    with pytest.raises(TypeError):
        node_size(object(), prefix_merging=False)
