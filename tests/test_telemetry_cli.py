"""CLI surface of the telemetry subsystem: --profile, --metrics-out,
the report subcommand, and output invariance with telemetry disabled."""

import json

import pytest

from repro import telemetry
from repro.cli import main
from repro.kernels import resolve_kernels


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    root = tmp_path_factory.mktemp("telemetry_cli")
    ref = root / "ref.fa"
    reads = root / "reads.fq"
    index = root / "index.npz"
    assert main(["simulate-genome", "--length", "3000", "--seed", "5",
                 "--out", str(ref)]) == 0
    assert main(["simulate-reads", "--reference", str(ref), "--count", "10",
                 "--read-length", "60", "--seed", "6",
                 "--out", str(reads)]) == 0
    assert main(["build-index", "--reference", str(ref), "--k", "5",
                 "--max-seed-len", "100", "--out", str(index)]) == 0
    return root, reads, index


def test_seed_metrics_out_writes_valid_json(workspace, tmp_path):
    _root, reads, index = workspace
    metrics = tmp_path / "metrics.json"
    assert main(["seed", "--index", str(index), "--reads", str(reads),
                 "--min-seed-len", "12", "--out", str(tmp_path / "s.tsv"),
                 "--metrics-out", str(metrics)]) == 0
    snap = json.loads(metrics.read_text())
    assert snap["counters"]["seeding.reads"] == 10
    if resolve_kernels() == "vector":
        # The vector backend sweeps all 10 reads in one batch: one
        # `seed` root span wrapping one `kernels.batch` span.
        assert snap["spans"]["seed"]["count"] == 1
        assert snap["spans"]["seed/kernels.batch"]["count"] == 1
    else:
        assert snap["spans"]["seed"]["count"] == 10
        assert snap["spans"]["seed/smem"]["count"] == 10
    # The command cleans up after itself: the global flag is off again.
    assert not telemetry.enabled()


def test_align_profile_prints_stage_table(workspace, tmp_path, capsys):
    _root, reads, index = workspace
    metrics = tmp_path / "metrics.json"
    assert main(["align", "--index", str(index), "--reads", str(reads),
                 "--min-seed-len", "12", "--out", str(tmp_path / "o.sam"),
                 "--profile", "--metrics-out", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "per-stage wall clock" in out
    stages = (("align", "chain", "extend", "seed", "kernels.batch")
              if resolve_kernels() == "vector"
              else ("align", "chain", "extend", "seed", "smem"))
    for stage in stages:
        assert stage in out
    snap = json.loads(metrics.read_text())
    # Per-stage spans nest under align and sum consistently: children's
    # inclusive time can never exceed the root's.
    root_total = snap["spans"]["align"]["total_s"]
    child_total = sum(stat["total_s"] for path, stat in
                      snap["spans"].items()
                      if path.count("/") == 1 and path.startswith("align/"))
    assert child_total <= root_total + 1e-9
    assert snap["counters"]["align.reads"] == 10
    assert snap["counters"]["seeding.index_lookups"] > 0


def test_report_renders_saved_snapshot(workspace, tmp_path, capsys):
    _root, reads, index = workspace
    metrics = tmp_path / "metrics.json"
    assert main(["align", "--index", str(index), "--reads", str(reads),
                 "--min-seed-len", "12", "--out", str(tmp_path / "o.sam"),
                 "--metrics-out", str(metrics)]) == 0
    capsys.readouterr()
    assert main(["report", "--metrics", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "per-stage wall clock" in out
    assert "extend" in out
    assert "counters" in out


def test_outputs_identical_with_and_without_telemetry(workspace, tmp_path):
    _root, reads, index = workspace
    plain_tsv = tmp_path / "plain.tsv"
    traced_tsv = tmp_path / "traced.tsv"
    assert main(["seed", "--index", str(index), "--reads", str(reads),
                 "--min-seed-len", "12", "--out", str(plain_tsv)]) == 0
    assert telemetry.registry().is_empty  # default run records nothing
    assert main(["seed", "--index", str(index), "--reads", str(reads),
                 "--min-seed-len", "12", "--out", str(traced_tsv),
                 "--metrics-out", str(tmp_path / "m.json")]) == 0
    assert traced_tsv.read_bytes() == plain_tsv.read_bytes()

    plain_sam = tmp_path / "plain.sam"
    traced_sam = tmp_path / "traced.sam"
    assert main(["align", "--index", str(index), "--reads", str(reads),
                 "--min-seed-len", "12", "--out", str(plain_sam)]) == 0
    assert main(["align", "--index", str(index), "--reads", str(reads),
                 "--min-seed-len", "12", "--out", str(traced_sam),
                 "--profile"]) == 0
    assert traced_sam.read_bytes() == plain_sam.read_bytes()


def test_seed_reports_truncated_hit_lists(workspace, tmp_path, capsys):
    _root, reads, index = workspace
    assert main(["seed", "--index", str(index), "--reads", str(reads),
                 "--min-seed-len", "12", "--max-hits", "1",
                 "--out", str(tmp_path / "t.tsv")]) == 0
    err = capsys.readouterr().err
    assert "truncated by --max-hits 1" in err


def test_metrics_format_openmetrics_writes_parseable_text(workspace,
                                                          tmp_path):
    from repro.telemetry import parse_openmetrics

    _root, reads, index = workspace
    metrics = tmp_path / "metrics.om"
    assert main(["seed", "--index", str(index), "--reads", str(reads),
                 "--min-seed-len", "12", "--out", str(tmp_path / "s.tsv"),
                 "--metrics-out", str(metrics),
                 "--metrics-format", "openmetrics"]) == 0
    text = metrics.read_text()
    assert text.endswith("# EOF\n")
    doc = parse_openmetrics(text)
    families = doc["families"]
    assert "ert_seeding_reads" in families
    hist = families["ert_read_wall_ms"]
    buckets = [s for s in hist["samples"]
               if s["name"] == "ert_read_wall_ms_bucket"]
    assert any(s["exemplar"] is not None for s in buckets), \
        "no read exemplar survived into the exposition"


def test_report_format_openmetrics_round_trips(workspace, tmp_path,
                                               capsys):
    from repro.telemetry import parse_openmetrics

    _root, reads, index = workspace
    metrics = tmp_path / "metrics.json"
    assert main(["seed", "--index", str(index), "--reads", str(reads),
                 "--min-seed-len", "12", "--out", str(tmp_path / "s.tsv"),
                 "--metrics-out", str(metrics)]) == 0
    capsys.readouterr()
    assert main(["report", "--metrics", str(metrics),
                 "--format", "openmetrics"]) == 0
    out = capsys.readouterr().out
    assert out.endswith("# EOF\n")
    assert "ert_seeding_reads_total" in out
    parse_openmetrics(out)


def test_slowlog_flag_writes_exemplar_jsonl(workspace, tmp_path):
    _root, reads, index = workspace
    slowlog = tmp_path / "slow.jsonl"
    assert main(["seed", "--index", str(index), "--reads", str(reads),
                 "--min-seed-len", "12", "--out", str(tmp_path / "s.tsv"),
                 "--workers", "2", "--slowlog", str(slowlog)]) == 0
    entries = [json.loads(line)
               for line in slowlog.read_text().splitlines()]
    assert entries
    sources = {e["source"] for e in entries}
    assert sources <= {"slowest", "reservoir"}
    by_id = {e["read_id"] for e in entries if e["source"] == "slowest"}
    assert len(by_id) > 0
    for entry in entries:
        assert entry["task"] == "seed"
        assert entry["wall_ms"] >= 0
        assert isinstance(entry["counters"], dict)


def test_log_jsonl_flag_captures_pool_lifecycle(workspace, tmp_path):
    _root, reads, index = workspace
    log = tmp_path / "events.jsonl"
    assert main(["seed", "--index", str(index), "--reads", str(reads),
                 "--min-seed-len", "12", "--out", str(tmp_path / "s.tsv"),
                 "--workers", "2", "--log-jsonl", str(log)]) == 0
    from repro import logging as rlog
    assert not rlog.configured()  # the command shut the sink down
    events = [json.loads(line) for line in log.read_text().splitlines()]
    names = {e["event"] for e in events}
    assert {"shm.create", "pool.spawn", "shm.unlink"} <= names
    spawn = next(e for e in events if e["event"] == "pool.spawn")
    assert spawn["workers"] == 2
    assert spawn["subsystem"] == "parallel.scheduler"
