"""Tests for the analysis layer: traffic measurement, roofline, tables."""

import pytest

from repro.analysis import (
    CpuSystem,
    cpu_throughput,
    format_table,
    measure_traffic,
)
from repro.seeding import SeedingParams


def test_measure_traffic_fmd_vs_ert(fmd, ert, read_codes, params):
    """Fig 12's core shape: the ERT needs several times less data per
    read than the FMD-index."""
    fmd_profile = measure_traffic(fmd, read_codes, params)
    ert_profile = measure_traffic(ert, read_codes, params)
    assert fmd_profile.reads == len(read_codes)
    assert fmd_profile.bytes_per_read > 2 * ert_profile.bytes_per_read
    assert fmd_profile.requests_per_read > 2 * ert_profile.requests_per_read


def test_measure_traffic_phases_sum(ert, read_codes, params):
    profile = measure_traffic(ert, read_codes[:5], params)
    assert sum(reqs for reqs, _ in profile.by_phase.values()) == \
        profile.requests_total
    assert sum(b for _, b in profile.by_phase.values()) == \
        profile.bytes_total
    assert profile.kb_per_read == pytest.approx(
        profile.bytes_per_read / 1024)


def test_measure_traffic_rejects_untraceable(oracle, read_codes, params):
    with pytest.raises(TypeError):
        measure_traffic(oracle, read_codes[:1], params)


def test_prefix_merging_reduces_traffic(ert_index, ert_pm_index,
                                        read_codes, params):
    """§III-B: the merged sweep must cut index/root/traversal traffic."""
    from repro.core import ErtSeedingEngine
    plain = measure_traffic(ErtSeedingEngine(ert_index), read_codes, params)
    merged = measure_traffic(ErtSeedingEngine(ert_pm_index), read_codes,
                             params)
    key_phases = ("index_lookup", "tree_root")
    plain_key = sum(plain.by_phase[p][0] for p in key_phases)
    merged_key = sum(merged.by_phase[p][0] for p in key_phases)
    assert merged_key < plain_key


def test_cpu_throughput_regimes():
    # Huge data per read: bandwidth roof binds.
    bw_bound = cpu_throughput(1e6, {"occ_lookup": 10.0})
    assert bw_bound["throughput"] == bw_bound["bandwidth_roof"]
    # Tiny data, lots of ops: compute roof binds.
    cpu_bound = cpu_throughput(64.0, {"occ_lookup": 1e6})
    assert cpu_bound["throughput"] == cpu_bound["compute_roof"]


def test_cpu_throughput_scales_with_system():
    small = CpuSystem(peak_bw_bytes_per_s=10e9, threads=4)
    big = CpuSystem(peak_bw_bytes_per_s=200e9, threads=72)
    load = (70000.0, {"occ_lookup": 1000.0})
    assert cpu_throughput(*load, system=big)["throughput"] > \
        cpu_throughput(*load, system=small)["throughput"]


def test_cpu_throughput_validation():
    with pytest.raises(ValueError):
        cpu_throughput(0, {"occ_lookup": 1.0})
    with pytest.raises(ValueError):
        cpu_throughput(100.0, {})


def test_format_table_alignment():
    text = format_table(["name", "value"],
                        [["ert", 1234.5], ["fmd", 7.0]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert "1,234" in text or "1234" in text
    assert len(lines) == 5
