"""Per-function tests of the FMD engine against the oracle engine."""

import pytest

from repro.fmindex import FmdConfig, FmdIndex, FmdSeedingEngine


def test_forward_search_matches_oracle(fmd, oracle, read_codes):
    for read in read_codes[:10]:
        for start in range(0, len(read) - 1, 7):
            a = fmd.forward_search(read, start)
            b = oracle.forward_search(read, start)
            assert (a.end, a.leps) == (b.end, b.leps), start


def test_forward_search_min_hits(fmd, oracle, read_codes):
    for read in read_codes[:5]:
        for start in (0, 17, 33):
            for min_hits in (2, 3, 6):
                a = fmd.forward_search(read, start, min_hits)
                b = oracle.forward_search(read, start, min_hits)
                assert (a.end, a.leps) == (b.end, b.leps)


def test_backward_search_matches_oracle(fmd, oracle, read_codes):
    for read in read_codes[:10]:
        for end in range(5, len(read), 9):
            assert fmd.backward_search(read, end) == \
                oracle.backward_search(read, end)


def test_backward_search_min_hits(fmd, oracle, read_codes):
    for read in read_codes[:5]:
        for end in (15, 40, 79):
            for min_hits in (2, 4):
                assert fmd.backward_search(read, end, min_hits) == \
                    oracle.backward_search(read, end, min_hits)


def test_last_seed_matches_oracle(fmd, oracle, read_codes):
    for read in read_codes[:8]:
        for start in range(0, len(read) - 10, 11):
            for max_intv in (2, 10, 50):
                assert fmd.last_seed(read, start, 10, max_intv) == \
                    oracle.last_seed(read, start, 10, max_intv)


def test_locate_matches_oracle(fmd, oracle, read_codes):
    for read in read_codes[:5]:
        for start, end in [(0, 12), (10, 30), (5, 20)]:
            a = fmd.locate(read, start, end)
            b = oracle.locate(read, start, end)
            assert a[0] == b[0]
            assert list(a[1]) == list(b[1])


def test_engine_name_includes_layout(reference):
    mem = FmdSeedingEngine(FmdIndex(reference, FmdConfig.bwa_mem()))
    mem2 = FmdSeedingEngine(FmdIndex(reference, FmdConfig.bwa_mem2()))
    assert mem.name == "fmd-bwa-mem"
    assert mem2.name == "fmd-bwa-mem2"


def test_occ_queries_counted(fmd, read_codes):
    fmd.reset_stats()
    fmd.forward_search(read_codes[0], 0)
    assert fmd.stats.occ_queries > 0
