"""Export round-trips: trace documents to disk and back, snapshot
percentiles, and the profile report's percentile columns (including
snapshots written before those columns existed)."""

import json

import pytest

from repro import telemetry
from repro.telemetry.export import load_trace, render_profile, write_trace
from repro.telemetry.metrics import Histogram, bucket_percentile


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    telemetry.stop_recording()
    telemetry.recorder().clear()
    yield
    telemetry.disable()
    telemetry.reset()
    telemetry.stop_recording()
    telemetry.recorder().clear()


# ----------------------------------------------------------------------
# Trace round-trip
# ----------------------------------------------------------------------


def test_write_trace_round_trip(tmp_path):
    telemetry.enable()
    telemetry.start_recording()
    with telemetry.span("stage"):
        telemetry.instant("mark", {"n": 1})
    telemetry.stop_recording()
    doc = telemetry.current_trace()
    path = tmp_path / "trace.json"
    write_trace(path, doc)
    loaded = load_trace(path)
    assert loaded == doc
    assert loaded["displayTimeUnit"] == "ms"
    names = [e["name"] for e in loaded["traceEvents"]]
    assert "stage" in names and "mark" in names


def test_write_trace_is_compact_single_document(tmp_path):
    telemetry.start_recording()
    telemetry.instant("x")
    telemetry.stop_recording()
    path = tmp_path / "trace.json"
    write_trace(path, telemetry.current_trace())
    text = path.read_text()
    assert ": " not in text, "trace files are compact JSON"
    assert text.endswith("\n") and text.count("\n") == 1


def test_load_trace_accepts_bare_event_array(tmp_path):
    path = tmp_path / "trace.json"
    events = [{"ph": "i", "ts": 0, "pid": 1, "tid": 0, "name": "x",
               "s": "t"}]
    path.write_text(json.dumps(events))
    assert load_trace(path) == {"traceEvents": events}


def test_load_trace_rejects_non_trace_documents(tmp_path):
    path = tmp_path / "trace.json"
    path.write_text('{"spans": {}}')
    with pytest.raises(ValueError, match="trace_event"):
        load_trace(path)


# ----------------------------------------------------------------------
# Percentiles
# ----------------------------------------------------------------------


def test_histogram_as_dict_carries_percentiles():
    hist = Histogram(edges=(10.0, 20.0, 40.0))
    for value in (5, 12, 14, 18, 22, 35):
        hist.observe(value)
    snap = hist.as_dict()
    for key in ("p50", "p90", "p99"):
        assert snap[key] is not None
    assert snap["p50"] <= snap["p90"] <= snap["p99"] <= 40.0


def test_bucket_percentile_edge_cases():
    assert bucket_percentile((10.0,), [0, 0], 0, None, None, 0.5) is None
    with pytest.raises(ValueError):
        bucket_percentile((10.0,), [1, 0], 1, 1.0, 1.0, 0.0)
    # Everything in one bucket: interpolation stays within [min, edge].
    value = bucket_percentile((10.0, 20.0), [4, 0, 0], 4, 2.0, 8.0, 0.5)
    assert 2.0 <= value <= 10.0


def test_histogram_percentile_tracks_distribution_shift():
    fast = Histogram(edges=(1.0, 2.0, 4.0, 8.0))
    slow = Histogram(edges=(1.0, 2.0, 4.0, 8.0))
    for _ in range(100):
        fast.observe(1.5)
        slow.observe(6.0)
    assert fast.percentile(0.9) < slow.percentile(0.9)


# ----------------------------------------------------------------------
# Profile report
# ----------------------------------------------------------------------


def _snapshot_with_histogram(hist_dict):
    return {"counters": {"seeding.reads": 10}, "gauges": {},
            "histograms": {"seed.hits": hist_dict},
            "spans": {"seed": {"count": 1, "total_s": 0.5,
                               "self_s": 0.5}}}


def test_render_profile_has_percentile_columns():
    hist = Histogram(edges=(2.0, 8.0, 32.0))
    for value in (1, 3, 5, 9, 40):
        hist.observe(value)
    text = render_profile(_snapshot_with_histogram(hist.as_dict()))
    header = next(line for line in text.splitlines()
                  if line.startswith("histogram"))
    for column in ("p50", "p90", "p99"):
        assert column in header


def test_render_profile_handles_pre_percentile_snapshots():
    # A snapshot written before p50/p90/p99 were added to as_dict():
    # the report recomputes from the buckets rather than KeyError-ing.
    hist = Histogram(edges=(2.0, 8.0))
    for value in (1, 3, 9):
        hist.observe(value)
    old = {key: value for key, value in hist.as_dict().items()
           if not key.startswith("p")}
    text = render_profile(_snapshot_with_histogram(old))
    row = next(line for line in text.splitlines()
               if line.startswith("seed.hits"))
    assert row.count("-") <= 1, f"percentiles missing from: {row}"


def test_render_profile_empty_histogram_shows_dashes():
    empty = Histogram().as_dict()
    text = render_profile(_snapshot_with_histogram(empty))
    row = next(line for line in text.splitlines()
               if line.startswith("seed.hits"))
    assert row.split()[-3:] == ["-", "-", "-"]


def test_snapshot_json_round_trip_preserves_percentiles(tmp_path):
    telemetry.enable()
    for value in (1, 5, 50, 500):
        telemetry.observe("seed.hits", value)
    snap = telemetry.snapshot()
    path = tmp_path / "metrics.json"
    telemetry.write_json(path, snap)
    loaded = telemetry.load_snapshot(path)
    assert loaded["histograms"]["seed.hits"]["p50"] == \
        snap["histograms"]["seed.hits"]["p50"]
    assert render_profile(loaded) == render_profile(snap)
