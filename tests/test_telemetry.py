"""Telemetry layer: registry semantics, span math, exporters, no-op mode."""

import json

import pytest

from repro import telemetry
from repro.core import ErtSeedingEngine
from repro.seeding import seed_read
from repro.telemetry import (
    Histogram,
    MetricsRegistry,
    Tracer,
    load_snapshot,
    render_profile,
    sanitize,
    write_json,
    write_jsonl,
)


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test starts and ends with the global state disabled/empty."""
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


def test_counter_accumulates_and_rejects_negative():
    reg = MetricsRegistry()
    reg.counter("a").inc()
    reg.counter("a").inc(4)
    assert reg.counter("a").value == 5
    with pytest.raises(ValueError):
        reg.counter("a").inc(-1)


def test_gauge_last_write_wins():
    reg = MetricsRegistry()
    reg.gauge("g").set(3)
    reg.gauge("g").set(7.5)
    assert reg.gauge("g").value == 7.5


def test_histogram_bucket_edges():
    h = Histogram(edges=(10, 20, 50))
    # A value exactly on an edge lands in that edge's bucket (v <= edge);
    # values above the last edge land in the overflow bucket.
    for value in (1, 10, 11, 20, 21, 50, 51, 1000):
        h.observe(value)
    assert h.counts == [2, 2, 2, 2]
    assert h.count == 8
    assert h.min == 1 and h.max == 1000
    assert h.mean == pytest.approx(sum((1, 10, 11, 20, 21, 50, 51, 1000))
                                   / 8)


def test_histogram_rejects_bad_edges():
    with pytest.raises(ValueError):
        Histogram(edges=())
    with pytest.raises(ValueError):
        Histogram(edges=(5, 5))
    with pytest.raises(ValueError):
        Histogram(edges=(5, 3))


def test_histogram_edges_fixed_at_first_use():
    reg = MetricsRegistry()
    h = reg.histogram("h", edges=(1, 2))
    assert reg.histogram("h", edges=(9, 99)) is h
    assert h.edges == (1, 2)


def test_registry_snapshot_and_reset():
    reg = MetricsRegistry()
    reg.counter("c").inc(2)
    reg.gauge("g").set(1.5)
    reg.histogram("h", edges=(1,)).observe(3)
    snap = reg.snapshot()
    assert snap["counters"] == {"c": 2}
    assert snap["gauges"] == {"g": 1.5}
    assert snap["histograms"]["h"]["counts"] == [0, 1]
    json.dumps(snap)  # must be JSON-serializable as-is
    reg.reset()
    assert reg.is_empty


def test_sanitize():
    assert sanitize("BWA-MEM2 (FMD)") == "bwa-mem2-fmd"
    assert sanitize("tree_traversal") == "tree-traversal"
    assert sanitize("  ") == ""


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_span_nesting_and_exclusive_time():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("outer"):
        clock.now += 1.0
        with tracer.span("inner"):
            clock.now += 2.0
        clock.now += 0.5
    outer = tracer.stats["outer"]
    inner = tracer.stats["outer/inner"]
    assert outer.count == 1 and inner.count == 1
    assert outer.total_s == pytest.approx(3.5)
    assert inner.total_s == pytest.approx(2.0)
    # Exclusive time: parent's total minus time inside children.
    assert outer.self_s == pytest.approx(1.5)
    assert inner.self_s == pytest.approx(2.0)
    # Children never exceed the parent's inclusive wall-clock.
    assert inner.total_s <= outer.total_s


def test_span_aggregation_and_min_max():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    for elapsed in (1.0, 3.0):
        with tracer.span("s"):
            clock.now += elapsed
    stat = tracer.stats["s"]
    assert stat.count == 2
    assert stat.total_s == pytest.approx(4.0)
    assert stat.min_s == pytest.approx(1.0)
    assert stat.max_s == pytest.approx(3.0)


def test_sibling_spans_share_a_path():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("root"):
        for _ in range(3):
            with tracer.span("child"):
                clock.now += 1.0
    assert tracer.stats["root/child"].count == 3
    assert tracer.stats["root"].self_s == pytest.approx(0.0)


def test_tracer_reset_refuses_inside_open_span():
    tracer = Tracer(clock=FakeClock())
    span = tracer.span("open")
    span.__enter__()
    with pytest.raises(RuntimeError):
        tracer.reset()
    span.__exit__(None, None, None)
    tracer.reset()
    assert tracer.is_empty


# ----------------------------------------------------------------------
# Global facade: enable/disable semantics
# ----------------------------------------------------------------------


def test_disabled_helpers_record_nothing():
    assert not telemetry.enabled()
    telemetry.count("c", 5)
    telemetry.set_gauge("g", 1)
    telemetry.observe("h", 2)
    telemetry.add_counters({"x": 3})
    with telemetry.span("s"):
        pass
    assert telemetry.registry().is_empty
    assert telemetry.tracer().is_empty


def test_disabled_span_is_shared_noop():
    assert telemetry.span("a") is telemetry.span("b")


def test_enabled_helpers_record():
    telemetry.enable()
    telemetry.count("c", 2)
    telemetry.add_counters({"c": 1, "zero": 0})
    telemetry.set_gauge("g", 4)
    telemetry.observe("h", 7, edges=(5, 10))
    with telemetry.span("s"):
        pass
    snap = telemetry.snapshot()
    assert snap["counters"] == {"c": 3}  # zero deltas are skipped
    assert snap["gauges"] == {"g": 4}
    assert snap["histograms"]["h"]["counts"] == [0, 1, 0]
    assert snap["spans"]["s"]["count"] == 1


def test_seeding_disabled_is_noop_and_output_invariant(ert_index,
                                                       read_codes, params):
    engine = ErtSeedingEngine(ert_index)
    plain = [seed_read(engine, read, params).all_seeds
             for read in read_codes[:6]]
    assert telemetry.registry().is_empty
    assert telemetry.tracer().is_empty

    telemetry.enable()
    engine2 = ErtSeedingEngine(ert_index)
    traced = [seed_read(engine2, read, params).all_seeds
              for read in read_codes[:6]]
    assert traced == plain  # telemetry never changes results
    snap = telemetry.snapshot()
    assert snap["counters"]["seeding.reads"] == 6
    assert snap["counters"]["seeds.emitted"] == sum(len(s) for s in plain)
    assert snap["spans"]["seed"]["count"] == 6
    assert snap["spans"]["seed/smem"]["count"] == 6
    # Engine-stat deltas surface under seeding.*
    assert snap["counters"]["seeding.forward_searches"] > 0
    assert snap["counters"]["seeding.index_lookups"] > 0


def test_truncation_counter_surfaces(ert_index, read_codes):
    from repro.seeding import SeedingParams

    telemetry.enable()
    engine = ErtSeedingEngine(ert_index)
    tight = SeedingParams(min_seed_len=12, max_hits_per_seed=1)
    for read in read_codes[:6]:
        seed_read(engine, read, tight)
    assert engine.stats.truncated_hit_lists > 0
    snap = telemetry.snapshot()
    assert snap["counters"]["seeds.truncated"] == \
        engine.stats.truncated_hit_lists


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


def _sample_snapshot():
    telemetry.enable()
    telemetry.count("c", 3)
    telemetry.set_gauge("g", 2.5)
    telemetry.observe("h", 4, edges=(1, 10))
    with telemetry.span("stage"):
        with telemetry.span("sub"):
            pass
    return telemetry.snapshot()


def test_json_round_trip(tmp_path):
    snap = _sample_snapshot()
    path = tmp_path / "metrics.json"
    write_json(path, snap)
    assert load_snapshot(path) == snap


def test_jsonl_appends_labelled_records(tmp_path):
    snap = _sample_snapshot()
    path = tmp_path / "metrics.jsonl"
    write_jsonl(path, snap, label="run1")
    write_jsonl(path, snap, label="run2")
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    records = [json.loads(line) for line in lines]
    assert [r["label"] for r in records] == ["run1", "run2"]
    assert records[0]["counters"] == snap["counters"]


def test_load_snapshot_fills_missing_sections(tmp_path):
    path = tmp_path / "partial.json"
    path.write_text('{"counters": {"c": 1}}')
    snap = load_snapshot(path)
    assert snap["spans"] == {} and snap["histograms"] == {}
    with pytest.raises(ValueError):
        other = tmp_path / "bad.json"
        other.write_text("[1, 2]")
        load_snapshot(other)


def test_render_profile_lists_stages_and_counters():
    snap = _sample_snapshot()
    text = render_profile(snap, title="demo")
    assert "demo" in text
    assert "stage" in text and "sub" in text
    assert "% root" in text
    assert "c" in snap["counters"]
    empty = render_profile({"counters": {}, "gauges": {},
                            "histograms": {}, "spans": {}})
    assert "no spans recorded" in empty


# ----------------------------------------------------------------------
# Satellite: the revcomp cache must not serve stale arrays
# ----------------------------------------------------------------------


def test_revcomp_cache_pins_reads(ert_index, read_codes):
    from repro.sequence.alphabet import COMPLEMENT

    engine = ErtSeedingEngine(ert_index)
    engine.begin_read()
    first = read_codes[0].copy()
    rc1 = engine._revcomp(first)
    assert (rc1 == COMPLEMENT[first][::-1]).all()
    # The engine holds the array itself, so its id cannot be recycled by
    # the allocator while the cache entry lives.
    assert any(entry is first for entry in engine._pinned.values())
    # Interleaving a second read never cross-contaminates.
    second = read_codes[1].copy()
    rc2 = engine._revcomp(second)
    assert (rc2 == COMPLEMENT[second][::-1]).all()
    assert engine._revcomp(first) is rc1
    engine.begin_read()
    assert not engine._pinned and not engine._rev
