"""Per-function tests of the ERT engine against the oracle engine."""

import numpy as np
import pytest

from repro.core import ErtConfig, ErtSeedingEngine, build_ert
from repro.seeding import SeedingParams, generate_smems, oracle_smems


def test_forward_search_matches_oracle(ert, oracle, read_codes):
    for read in read_codes[:10]:
        ert.begin_read()
        for start in range(0, len(read) - 1, 7):
            a = ert.forward_search(read, start)
            b = oracle.forward_search(read, start)
            assert (a.end, a.leps) == (b.end, b.leps), start


def test_forward_search_min_hits_matches_oracle(ert, oracle, read_codes):
    for read in read_codes[:6]:
        ert.begin_read()
        for start in (0, 11, 23):
            for min_hits in (2, 3, 5):
                a = ert.forward_search(read, start, min_hits)
                b = oracle.forward_search(read, start, min_hits)
                assert (a.end, a.leps) == (b.end, b.leps), (start, min_hits)


def test_backward_search_matches_oracle(ert, oracle, read_codes):
    for read in read_codes[:10]:
        ert.begin_read()
        for end in range(5, len(read), 9):
            assert ert.backward_search(read, end) == \
                oracle.backward_search(read, end), end


def test_backward_search_min_hits_matches_oracle(ert, oracle, read_codes):
    for read in read_codes[:6]:
        ert.begin_read()
        for end in (20, 45, 79):
            for min_hits in (2, 4):
                assert ert.backward_search(read, end, min_hits) == \
                    oracle.backward_search(read, end, min_hits)


def test_count_matches_oracle(ert, oracle, read_codes):
    for read in read_codes[:6]:
        ert.begin_read()
        for start, end in [(0, 3), (0, 6), (2, 8), (5, 30), (0, 80),
                           (40, 55)]:
            assert ert.count(read, start, end) == \
                oracle.count(read, start, end), (start, end)


def test_locate_matches_oracle(ert, oracle, read_codes, params):
    for read in read_codes[:6]:
        ert.begin_read()
        smems = generate_smems(ert, read, params)
        for mem in smems:
            if mem.length < ert.index.config.k:
                continue
            a = ert.locate(read, mem.start, mem.end)
            b = oracle.locate(read, mem.start, mem.end)
            assert a[0] == b[0]
            assert list(a[1]) == list(b[1])


def test_locate_limit_contract(ert, oracle, read_codes):
    """Above the limit both engines return the count and no hits."""
    read = read_codes[0]
    ert.begin_read()
    count, hits = ert.locate(read, 0, ert.index.config.k, limit=1)
    ocount, ohits = oracle.locate(read, 0, ert.index.config.k, limit=1)
    assert count == ocount
    if count > 1:
        assert hits == [] and ohits == []


def test_locate_rejects_short_segments(ert, read_codes):
    with pytest.raises(ValueError):
        ert._locate_walk(read_codes[0], 0, ert.index.config.k - 1, None)


def test_last_seed_matches_oracle(ert, oracle, read_codes):
    k = ert.index.config.k
    for read in read_codes[:8]:
        ert.begin_read()
        for start in range(0, len(read) - k, 11):
            for max_intv in (2, 10, 50):
                a = ert.last_seed(read, start, k + 4, max_intv)
                b = oracle.last_seed(read, start, k + 4, max_intv)
                assert a == b, (start, max_intv)


def test_last_seed_rejects_min_len_below_k(ert, read_codes):
    with pytest.raises(ValueError):
        ert.last_seed(read_codes[0], 0, ert.index.config.k - 1, 10)


def test_read_longer_than_max_seed_len_rejected(reference):
    config = ErtConfig(k=5, max_seed_len=30)
    engine = ErtSeedingEngine(build_ert(reference, config))
    long_read = np.zeros(31, dtype=np.uint8)
    with pytest.raises(ValueError):
        engine.forward_search(long_read, 0)


def test_smems_match_oracle_definition(ert, reference, read_codes, params):
    for read in read_codes[:8]:
        got = [m for m in generate_smems(ert, read, params)
               if m.length >= params.min_seed_len]
        want = oracle_smems(reference, read,
                            min_len=params.min_seed_len)
        assert sorted(got) == sorted(want)


def test_table_and_no_table_agree(reference, read_codes, params):
    """The §III-E jump tables are a pure acceleration: identical output."""
    with_tables = ErtSeedingEngine(build_ert(
        reference, ErtConfig(k=6, max_seed_len=120, table_threshold=8,
                             table_x=3)))
    without = ErtSeedingEngine(build_ert(
        reference, ErtConfig(k=6, max_seed_len=120, multilevel=False)))
    for read in read_codes[:8]:
        with_tables.begin_read()
        without.begin_read()
        for start in range(0, 70, 13):
            a = with_tables.forward_search(read, start)
            b = without.forward_search(read, start)
            assert (a.end, a.leps) == (b.end, b.leps)


def test_engine_stats_accumulate(ert, read_codes, params):
    ert.reset_stats()
    from repro.seeding import seed_read
    seed_read(ert, read_codes[0], params)
    assert ert.stats.index_lookups > 0
    assert ert.stats.forward_searches > 0
    assert ert.stats.backward_searches > 0
    assert ert.stats.nodes_visited > 0
