"""Timeline event recorder: ring semantics, pair repair, trace export,
and end-to-end trace validity through the parallel scheduler (serial and
workers=2, including a run with an injected worker crash)."""

import os

import pytest

from repro import telemetry
from repro.parallel import ParallelConfig
from repro.parallel import scheduler as sched
from repro.parallel.batch import iter_chunks, pack_batch
from repro.telemetry.events import (
    TimelineRecorder,
    _repair_pairs,
    to_trace_events,
    trace_document,
)


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    telemetry.stop_recording()
    telemetry.recorder().clear()
    yield
    telemetry.disable()
    telemetry.reset()
    telemetry.stop_recording()
    telemetry.recorder().clear()


class FakeClock:
    """Deterministic injectable ns clock."""

    def __init__(self, start=1_000):
        self.now = start

    def __call__(self):
        self.now += 10
        return self.now


# ----------------------------------------------------------------------
# Recorder core
# ----------------------------------------------------------------------


def test_recorder_off_by_default_and_noop():
    rec = TimelineRecorder(clock=FakeClock())
    rec.begin("a")
    rec.end("a")
    rec.instant("i")
    rec.counter("c", 1)
    assert len(rec) == 0 and not rec.recording


def test_start_records_and_returns_epoch():
    clock = FakeClock()
    rec = TimelineRecorder(clock=clock)
    epoch = rec.start()
    assert rec.recording and epoch == rec.epoch_ns
    rec.begin("stage")
    rec.end("stage")
    assert [e[0] for e in rec.events()] == ["B", "E"]
    rec.stop()
    rec.instant("late")
    assert len(rec) == 2, "events after stop() must not record"


def test_start_adopts_foreign_epoch():
    rec = TimelineRecorder(clock=FakeClock())
    assert rec.start(epoch_ns=42) == 42
    assert rec.epoch_ns == 42


def test_ring_overwrites_oldest_and_counts_dropped():
    rec = TimelineRecorder(capacity=4, clock=FakeClock())
    rec.start()
    for i in range(7):
        rec.instant(f"e{i}")
    assert len(rec) == 4
    assert rec.dropped == 3
    assert [e[2] for e in rec.events()] == ["e3", "e4", "e5", "e6"]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        TimelineRecorder(capacity=0)


def test_scope_emits_pair_and_is_noop_when_off():
    rec = TimelineRecorder(clock=FakeClock())
    with rec.scope("quiet"):
        pass
    assert len(rec) == 0
    rec.start()
    with rec.scope("loud", {"k": 1}):
        rec.instant("inner")
    phases = [(e[0], e[2]) for e in rec.events()]
    assert phases == [("B", "loud"), ("i", "inner"), ("E", "loud")]
    assert rec.events()[0][3] == {"k": 1}


def test_drain_track_clears_ring_but_keeps_recording():
    rec = TimelineRecorder(clock=FakeClock())
    rec.start()
    rec.instant("x")
    track = rec.drain_track()
    assert track["pid"] == os.getpid()
    assert [e[2] for e in track["events"]] == ["x"]
    assert len(rec) == 0 and rec.recording
    rec.instant("y")
    assert len(rec) == 1


def test_absorb_ignores_none_and_empty():
    rec = TimelineRecorder(clock=FakeClock())
    rec.absorb(None)
    rec.absorb({"pid": 1, "label": "w", "events": [], "dropped": 0})
    assert len(rec.tracks()) == 1  # own ring only
    rec.absorb({"pid": 1, "label": "w",
                "events": [("i", 5, "e", None)], "dropped": 0})
    assert len(rec.tracks()) == 2


# ----------------------------------------------------------------------
# Pair repair
# ----------------------------------------------------------------------


def test_repair_drops_orphan_end():
    # The B for "outer" was overwritten by ring wrap; its E is dropped.
    events = [("E", 10, "outer", None), ("B", 20, "inner", None),
              ("E", 30, "inner", None)]
    repaired = _repair_pairs(events)
    assert [(e[0], e[2]) for e in repaired] == [("B", "inner"),
                                               ("E", "inner")]


def test_repair_closes_open_begin():
    events = [("B", 10, "outer", None), ("B", 20, "inner", None),
              ("i", 30, "mark", None)]
    repaired = _repair_pairs(events)
    assert [(e[0], e[2]) for e in repaired] == [
        ("B", "outer"), ("B", "inner"), ("i", "mark"),
        ("E", "inner"), ("E", "outer")]
    # Synthetic closes land at the last seen timestamp.
    assert repaired[-1][1] == 30 and repaired[-2][1] == 30


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------


def _validate_trace_events(events):
    """Perfetto-validity: ts-sorted, per-pid matched and nested B/E."""
    stacks = {}
    last_ts = None
    for event in events:
        if event["ph"] == "M":
            continue
        assert last_ts is None or event["ts"] >= last_ts, "unsorted ts"
        last_ts = event["ts"]
        stack = stacks.setdefault(event["pid"], [])
        if event["ph"] == "B":
            stack.append(event["name"])
        elif event["ph"] == "E":
            assert stack and stack[-1] == event["name"], \
                f"unmatched E {event['name']} (stack {stack})"
            stack.pop()
    assert not any(stacks.values()), f"unclosed B events: {stacks}"


def test_to_trace_events_shape():
    clock = FakeClock()
    rec = TimelineRecorder(clock=clock)
    epoch = rec.start()
    with rec.scope("run"):
        rec.instant("hit", {"reads": 3})
        rec.counter("inflight", 2)
    events = to_trace_events(rec.tracks(), epoch)
    meta = [e for e in events if e["ph"] == "M"]
    assert len(meta) == 1 and meta[0]["name"] == "process_name"
    assert meta[0]["args"]["name"] == "main"
    body = [e for e in events if e["ph"] != "M"]
    assert all(e["pid"] == os.getpid() and e["tid"] == 0 for e in body)
    assert all(e["ts"] >= 0 for e in body)
    instant = next(e for e in body if e["ph"] == "i")
    assert instant["s"] == "t" and instant["args"] == {"reads": 3}
    counter = next(e for e in body if e["ph"] == "C")
    assert counter["args"] == {"value": 2}
    _validate_trace_events(events)


def test_trace_document_counts_dropped():
    rec = TimelineRecorder(capacity=2, clock=FakeClock())
    epoch = rec.start()
    for i in range(5):
        rec.instant(f"e{i}")
    doc = trace_document(rec.tracks(), epoch)
    assert doc["otherData"]["dropped_events"] == 3
    assert doc["displayTimeUnit"] == "ms"


def test_absorbed_worker_track_gets_own_pid_row():
    clock = FakeClock()
    rec = TimelineRecorder(clock=clock)
    epoch = rec.start()
    rec.instant("parent-side")
    rec.absorb({"pid": 99999, "label": "worker-99999",
                "events": [("B", clock(), "batch", None),
                           ("E", clock(), "batch", None)],
                "dropped": 0})
    events = to_trace_events(rec.tracks(), epoch)
    labels = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert labels == {"main", "worker-99999"}
    _validate_trace_events(events)


# ----------------------------------------------------------------------
# The module-level recorder and the span-tracer bridge
# ----------------------------------------------------------------------


def test_spans_emit_events_only_while_recording():
    telemetry.enable()
    with telemetry.span("quiet"):
        pass
    assert len(telemetry.recorder()) == 0
    telemetry.start_recording()
    with telemetry.span("loud"):
        pass
    names = [e[2] for e in telemetry.recorder().events()]
    assert names == ["loud", "loud"]
    telemetry.stop_recording()


def test_reset_leaves_recorder_untouched():
    telemetry.start_recording()
    telemetry.instant("survives")
    telemetry.reset()
    assert [e[2] for e in telemetry.recorder().events()] == ["survives"]


def test_merge_snapshot_absorbs_timeline_even_with_metrics_off():
    telemetry.start_recording()
    telemetry.merge_snapshot(
        {"timeline": {"pid": 4242, "label": "worker-4242",
                      "events": [("i", 1, "remote", None)],
                      "dropped": 0}})
    labels = {t["label"] for t in telemetry.recorder().tracks()}
    assert "worker-4242" in labels


# ----------------------------------------------------------------------
# End-to-end: scheduler runs produce loadable traces
# ----------------------------------------------------------------------


def _seed_with_trace(ert_index, reads, params, config, fault=None):
    options = {"params": params}
    if fault is not None:
        options["fault"] = fault
    batches = [pack_batch(chunk)
               for chunk in iter_chunks(reads, config.batch_size)]
    epoch = telemetry.start_recording()
    try:
        per_batch, _ = sched._execute_over_index(ert_index, "seed",
                                                 options, batches, config)
    finally:
        telemetry.stop_recording()
    doc = trace_document(telemetry.recorder().tracks(), epoch)
    telemetry.recorder().clear()
    return [line for lines in per_batch for line in lines], doc


def test_serial_run_trace_is_valid(ert_index, read_codes, params):
    lines, doc = _seed_with_trace(ert_index, read_codes, params,
                                  ParallelConfig(workers=1, batch_size=8))
    events = doc["traceEvents"]
    _validate_trace_events(events)
    names = {e["name"] for e in events}
    assert "batch" in names
    assert len({e["pid"] for e in events}) == 1


def test_workers2_trace_has_worker_tracks(ert_index, read_codes, params):
    serial_lines, _ = _seed_with_trace(
        ert_index, read_codes, params,
        ParallelConfig(workers=1, batch_size=4))
    lines, doc = _seed_with_trace(
        ert_index, read_codes, params,
        ParallelConfig(workers=2, batch_size=4))
    assert lines == serial_lines
    events = doc["traceEvents"]
    _validate_trace_events(events)
    assert len({e["pid"] for e in events}) >= 2, \
        "no worker track made it into the trace"
    names = {e["name"] for e in events}
    for expected in ("batch", "worker.init", "shm.attach",
                     "parallel.submit", "parallel.merge",
                     "parallel.inflight"):
        assert expected in names, f"missing {expected} events"


def test_crash_recovery_trace_shows_respawn(tmp_path, ert_index,
                                            read_codes, params):
    token = str(tmp_path / "fault.token")
    lines, doc = _seed_with_trace(
        ert_index, read_codes, params,
        ParallelConfig(workers=2, batch_size=4, retries=2,
                       backoff_s=0.01),
        fault={"kind": "sigkill", "token": token})
    assert os.path.exists(token), "fault never fired -- test is vacuous"
    serial_lines, _ = _seed_with_trace(
        ert_index, read_codes, params,
        ParallelConfig(workers=1, batch_size=4))
    assert lines == serial_lines
    events = doc["traceEvents"]
    _validate_trace_events(events)
    names = {e["name"] for e in events}
    assert "parallel.fault" in names
    assert "parallel.respawn" in names
    fault_event = next(e for e in events if e["name"] == "parallel.fault")
    assert fault_event["args"]["kind"] == "WorkerCrashError"
    respawn_ts = next(e["ts"] for e in events
                      if e["name"] == "parallel.respawn")
    assert any(e["name"] == "parallel.merge" and e["ts"] > respawn_ts
               for e in events), \
        "no merge after the respawn -- recovery gap not visible"
