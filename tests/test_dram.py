"""Unit tests for the DRAM row-buffer model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memsim import DramConfig, DramModel


def test_same_row_hits_after_open():
    dram = DramModel(DramConfig(channels=1, banks_per_channel=1,
                                row_size=2048))
    assert not dram.access(0, "p")
    assert dram.access(64, "p")
    assert dram.access(2000, "p")
    assert not dram.access(2048, "p")  # next row
    assert dram.total.page_opens == 2
    assert dram.total.row_hits == 2


def test_per_phase_attribution():
    dram = DramModel(DramConfig(channels=1, banks_per_channel=1))
    dram.access(0, "a")
    dram.access(64, "b")
    assert dram.by_phase["a"].page_opens == 1
    assert dram.by_phase["b"].row_hits == 1


def test_banks_hold_independent_rows():
    cfg = DramConfig(channels=1, banks_per_channel=2, row_size=2048)
    dram = DramModel(cfg)
    dram.access(0)           # bank 0, row 0
    dram.access(2048)        # bank 1, row 0
    assert dram.access(64)   # bank 0 still open
    assert dram.access(2100)  # bank 1 still open


def test_channel_interleaving():
    cfg = DramConfig(channels=2, banks_per_channel=1, row_size=2048)
    dram = DramModel(cfg)
    ch0, _, _ = dram._map(0)
    ch1, _, _ = dram._map(2048)
    assert {ch0, ch1} == {0, 1}


def test_access_latency_hit_vs_miss():
    cfg = DramConfig(channels=1, banks_per_channel=1, t_hit=20, t_miss=45,
                     cycles_per_line=4)
    dram = DramModel(cfg)
    first = dram.access_latency(0, now=0)
    assert first == 45
    second = dram.access_latency(64, now=100)
    assert second == 120


def test_access_latency_queueing():
    cfg = DramConfig(channels=1, banks_per_channel=1, t_hit=20, t_miss=45,
                     cycles_per_line=4)
    dram = DramModel(cfg)
    # Two back-to-back requests at cycle 0: the second starts 4 cycles in.
    a = dram.access_latency(0, now=0)
    b = dram.access_latency(64, now=0)
    assert a == 45
    assert b == 4 + 20


def test_reset_stats():
    dram = DramModel()
    dram.access(0, "p")
    dram.reset_stats()
    assert dram.total.accesses == 0
    assert not dram.by_phase


def test_config_validation():
    with pytest.raises(ValueError):
        DramConfig(channels=0)
    with pytest.raises(ValueError):
        DramConfig(row_size=100, line_size=64)


def test_hit_rate_property():
    dram = DramModel(DramConfig(channels=1, banks_per_channel=1))
    assert dram.total.hit_rate == 0.0
    dram.access(0)
    dram.access(64)
    assert dram.total.hit_rate == 0.5


@given(st.lists(st.integers(min_value=0, max_value=2047), min_size=1,
                max_size=100))
def test_single_row_working_set_opens_once(offsets):
    """Accesses confined to one row cause exactly one page open."""
    dram = DramModel(DramConfig(channels=1, banks_per_channel=1,
                                row_size=2048))
    for off in offsets:
        dram.access(off)
    assert dram.total.page_opens == 1


@given(st.lists(st.integers(min_value=0, max_value=1 << 24), max_size=200))
def test_opens_never_exceed_accesses(addrs):
    dram = DramModel()
    for addr in addrs:
        dram.access(addr)
    assert dram.total.page_opens <= max(len(addrs), 0) or not addrs
    assert dram.total.accesses == len(addrs)


def test_row_conflicts_subdivide_page_opens():
    """A page open against a bank holding a different row is a conflict;
    the first touch of a cold bank is not."""
    dram = DramModel(DramConfig(channels=1, banks_per_channel=1,
                                row_size=2048))
    dram.access(0)        # cold open
    dram.access(2048)     # different row -> conflict
    dram.access(2048 + 64)  # hit
    assert dram.total.page_opens == 2
    assert dram.total.row_conflicts == 1
    assert dram.total.row_hits == 1
    dram.reset_stats()
    assert dram.total.row_conflicts == 0


def test_dram_publish_metrics_gauges():
    from repro import telemetry

    dram = DramModel(DramConfig(channels=1, banks_per_channel=1,
                                row_size=2048))
    dram.access(0, "tree_traversal")
    dram.access(4096, "tree_traversal")
    dram.publish_metrics()
    assert telemetry.registry().is_empty  # disabled -> publish is a no-op
    telemetry.reset()
    telemetry.enable()
    try:
        dram.publish_metrics()
        gauges = telemetry.snapshot()["gauges"]
        assert gauges["memsim.dram.page_opens"] == 2
        assert gauges["memsim.dram.row_conflicts"] == 1
        assert gauges["memsim.dram.page_opens.tree-traversal"] == 2
    finally:
        telemetry.disable()
        telemetry.reset()
