"""Tests for the k-mer reuse batched pipeline (§III-C)."""

import pytest

from repro.core import ErtSeedingEngine, KmerReuseDriver
from repro.memsim import MemoryTracer
from repro.seeding import SeedingParams, seed_read


def test_batch_matches_per_read(ert, ert_index, read_codes, params):
    driver = KmerReuseDriver(ErtSeedingEngine(ert_index), params)
    batch = driver.seed_batch(read_codes)
    for read, result in zip(read_codes, batch):
        assert result.key() == seed_read(ert, read, params).key()


def test_batch_matches_per_read_with_pm(ert_pm, ert_pm_index, read_codes,
                                        params):
    driver = KmerReuseDriver(ErtSeedingEngine(ert_pm_index), params)
    batch = driver.seed_batch(read_codes)
    for read, result in zip(read_codes, batch):
        assert result.key() == seed_read(ert_pm, read, params).key()


def test_stats_populated(ert_index, read_codes, params):
    driver = KmerReuseDriver(ErtSeedingEngine(ert_index), params)
    driver.seed_batch(read_codes)
    stats = driver.last_stats
    assert stats.reads == len(read_codes)
    assert stats.tasks > 0
    assert 0 < stats.unique_kmers <= stats.tasks
    assert 0.0 <= stats.reuse_fraction < 1.0
    assert stats.cache_hits + stats.cache_misses > 0


def test_phase_seconds_populated_without_telemetry(ert_index, read_codes,
                                                   params):
    # The phase timers run on a batch-local Tracer, so the ablation bench
    # gets real seconds even with global telemetry disabled (the default).
    driver = KmerReuseDriver(ErtSeedingEngine(ert_index), params)
    driver.seed_batch(read_codes)
    stats = driver.last_stats
    assert stats.forward_seconds > 0.0
    assert stats.backward_seconds > 0.0
    assert stats.sort_seconds >= 0.0


@pytest.fixture(scope="module")
def coverage_setup():
    """A high-coverage batch: the §III-C reuse opportunity comes from the
    30-50x coverage of real sequencing runs, so the reuse test needs many
    reads per reference position (~8x here)."""
    from repro.core import ErtConfig, build_ert
    from repro.sequence import GenomeSimulator, ReadSimulator

    reference = GenomeSimulator(seed=71).generate(1500)
    reads = [r.codes for r in
             ReadSimulator(reference, read_length=60, seed=72).simulate(200)]
    index = build_ert(reference, ErtConfig(k=5, max_seed_len=90,
                                           table_threshold=32, table_x=3))
    return index, reads


def test_reuse_cache_reduces_backward_traffic(coverage_setup):
    """§III-C / Fig 14: at sequencing coverage, k-mer reuse must cut the
    index-lookup, tree-root and tree-traversal traffic (leaf gathering may
    rise because the right-to-left pruning no longer applies)."""
    index, reads = coverage_setup
    params = SeedingParams(min_seed_len=10, reseed=False, use_last=False)
    phases = ("index_lookup", "tree_root", "tree_traversal")
    tracer = MemoryTracer()
    index.attach_tracer(tracer)
    try:
        engine = ErtSeedingEngine(index)
        for read in reads:
            seed_read(engine, read, params)
        unbatched = sum(tracer.by_phase[p].bytes for p in phases)
        tracer.reset()
        driver = KmerReuseDriver(ErtSeedingEngine(index), params)
        driver.seed_batch(reads)
        batched = sum(tracer.by_phase[p].bytes for p in phases)
    finally:
        index.attach_tracer(None)
    assert batched < unbatched
    assert driver.last_stats.reuse_fraction > 0.3
    assert driver.last_stats.cache_hit_rate > 0.5


def test_cache_hit_rate_grows_with_duplicate_reads(ert_index, read_codes,
                                                   params):
    """Feeding the same reads twice must raise the reuse fraction."""
    driver = KmerReuseDriver(ErtSeedingEngine(ert_index), params)
    driver.seed_batch(read_codes[:8])
    single = driver.last_stats.reuse_fraction
    driver.seed_batch(read_codes[:8] + [r.copy() for r in read_codes[:8]])
    doubled = driver.last_stats.reuse_fraction
    assert doubled > single


def test_empty_batch(ert_index, params):
    driver = KmerReuseDriver(ErtSeedingEngine(ert_index), params)
    assert driver.seed_batch([]) == []
    assert driver.last_stats.tasks == 0
    assert driver.last_stats.reuse_fraction == 0.0
