"""Tests for the DRAM energy model (DRAMPower stand-in)."""

import pytest

from repro.memsim import DramConfig, DramModel
from repro.memsim.energy import (
    DramEnergyConfig,
    DramEnergyReport,
    dram_energy,
)


def _loaded_dram(n_accesses=1000, stride=4096):
    dram = DramModel(DramConfig(channels=2, banks_per_channel=4))
    for i in range(n_accesses):
        dram.access(i * stride)
    return dram


def test_energy_components_positive():
    report = dram_energy(_loaded_dram(), seconds=1e-3)
    assert report.activate_j > 0
    assert report.read_j > 0
    assert report.background_j > 0
    assert report.total_j == pytest.approx(
        report.activate_j + report.read_j + report.background_j)


def test_row_hits_cost_less_than_misses():
    """A streaming pattern (row hits) must use less dynamic energy than a
    scattered one with the same access count."""
    streaming = DramModel(DramConfig(channels=1, banks_per_channel=1))
    scattered = DramModel(DramConfig(channels=1, banks_per_channel=1))
    for i in range(500):
        streaming.access(i * 64)            # sequential: mostly row hits
        scattered.access(i * 64 * 1024)     # one page open per access
    e_stream = dram_energy(streaming, seconds=0)
    e_scatter = dram_energy(scattered, seconds=0)
    assert e_scatter.activate_j > e_stream.activate_j
    assert e_scatter.total_j > e_stream.total_j


def test_power_scaling():
    report = DramEnergyReport(activate_j=1e-6, read_j=1e-6,
                              background_j=0.0)
    assert report.power_w(1e-3) == pytest.approx(2e-3)
    with pytest.raises(ValueError):
        report.power_w(0)


def test_background_scales_with_channels_and_time():
    few = dram_energy(DramModel(DramConfig(channels=2)), seconds=1.0)
    many = dram_energy(DramModel(DramConfig(channels=8)), seconds=1.0)
    assert many.background_j == pytest.approx(4 * few.background_j)


def test_config_validation():
    with pytest.raises(ValueError):
        DramEnergyConfig(activate_nj=-1)
