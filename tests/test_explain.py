"""``ert-repro explain``: replaying one read must reproduce the
counters the live run recorded in the slowlog, field for field."""

import json

import pytest

from repro import telemetry
from repro.cli import main
from repro.core import save_ert
from repro.sequence import write_fastq


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


@pytest.fixture(scope="module")
def workspace(tmp_path_factory, ert_index, reference):
    """A persisted index + FASTQ + slowlogs from live seed/align runs."""
    from repro.sequence import ReadSimulator

    root = tmp_path_factory.mktemp("explain")
    index_path = str(root / "idx.npz")
    reads_path = str(root / "reads.fq")
    save_ert(ert_index, index_path)
    reads = ReadSimulator(reference, read_length=80, seed=33).simulate(20)
    write_fastq(reads_path, reads)
    seed_log = str(root / "seed.slowlog.jsonl")
    align_log = str(root / "align.slowlog.jsonl")
    assert main(["seed", "--index", index_path, "--reads", reads_path,
                 "--min-seed-len", "12", "--out", str(root / "o.tsv"),
                 "--workers", "2", "--slowlog", seed_log]) == 0
    assert main(["align", "--index", index_path, "--reads", reads_path,
                 "--min-seed-len", "12", "--out", str(root / "o.sam"),
                 "--slowlog", align_log]) == 0
    return {"index": index_path, "reads": reads_path,
            "seed_log": seed_log, "align_log": align_log}


def _slow_entries(path):
    return [json.loads(line) for line in open(path)]


def test_explain_reproduces_seed_slowlog_counters(workspace, capsys):
    entries = _slow_entries(workspace["seed_log"])
    slowest = next(e for e in entries if e["source"] == "slowest")
    code = main(["explain", "--index", workspace["index"],
                 "--reads", workspace["reads"],
                 "--read-id", slowest["read_id"],
                 "--min-seed-len", "12",
                 "--slowlog", workspace["seed_log"]])
    out = capsys.readouterr()
    assert code == 0, out.err
    assert "matches the slowlog record exactly" in out.err
    assert slowest["read_id"] in out.out


def test_explain_reproduces_align_slowlog_counters(workspace, capsys):
    entries = _slow_entries(workspace["align_log"])
    slowest = next(e for e in entries if e["source"] == "slowest")
    code = main(["explain", "--index", workspace["index"],
                 "--reads", workspace["reads"],
                 "--read-id", slowest["read_id"], "--task", "align",
                 "--min-seed-len", "12",
                 "--slowlog", workspace["align_log"]])
    out = capsys.readouterr()
    assert code == 0, out.err
    assert "matches the slowlog record exactly" in out.err


def test_explain_json_output_carries_the_counters(workspace, capsys):
    entry = _slow_entries(workspace["seed_log"])[0]
    code = main(["explain", "--index", workspace["index"],
                 "--reads", workspace["reads"],
                 "--read-id", entry["read_id"],
                 "--min-seed-len", "12", "--json"])
    assert code == 0
    rec = json.loads(capsys.readouterr().out)
    assert rec["read_id"] == entry["read_id"]
    assert rec["counters"] == entry["counters"]


def test_explain_detects_counter_mismatch(workspace, tmp_path, capsys):
    entry = dict(_slow_entries(workspace["seed_log"])[0])
    entry["counters"] = dict(entry["counters"])
    entry["counters"]["nodes_visited"] = \
        entry["counters"].get("nodes_visited", 0) + 1
    doctored = tmp_path / "doctored.jsonl"
    doctored.write_text(json.dumps(entry) + "\n")
    code = main(["explain", "--index", workspace["index"],
                 "--reads", workspace["reads"],
                 "--read-id", entry["read_id"],
                 "--min-seed-len", "12",
                 "--slowlog", str(doctored)])
    assert code == 1
    assert "counter mismatch" in capsys.readouterr().err


def test_explain_unknown_read_exits_2(workspace, capsys):
    code = main(["explain", "--index", workspace["index"],
                 "--reads", workspace["reads"],
                 "--read-id", "no_such_read"])
    assert code == 2
    assert "not found" in capsys.readouterr().err


def test_explain_read_missing_from_slowlog_exits_2(workspace, tmp_path,
                                                   capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    entry = _slow_entries(workspace["seed_log"])[0]
    code = main(["explain", "--index", workspace["index"],
                 "--reads", workspace["reads"],
                 "--read-id", entry["read_id"],
                 "--min-seed-len", "12", "--slowlog", str(empty)])
    assert code == 2
