"""Unit tests for the cache models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memsim import CacheModel


def test_direct_mapped_conflict():
    cache = CacheModel(size=4 * 64, line_size=64, ways=1)
    assert not cache.lookup(0)
    assert cache.lookup(0)
    # Same set (4 sets), different tag: evicts.
    assert not cache.lookup(4 * 64)
    assert not cache.lookup(0)


def test_fully_associative_lru():
    cache = CacheModel(size=2 * 64, line_size=64, ways=None)
    cache.lookup(0)
    cache.lookup(64)
    cache.lookup(0)        # refresh 0; LRU is now 64
    cache.lookup(128)      # evicts 64
    assert cache.lookup(0)
    assert not cache.lookup(64)


def test_set_associative_respects_ways():
    cache = CacheModel(size=4 * 64, line_size=64, ways=2)
    assert cache.n_sets == 2
    # Three lines mapping to set 0: 0, 128, 256.
    cache.lookup(0)
    cache.lookup(128)
    cache.lookup(256)  # evicts 0
    assert not cache.lookup(0)


def test_contains_is_pure():
    cache = CacheModel(size=64, line_size=64, ways=1)
    cache.lookup(0)
    before = (cache.stats.hits, cache.stats.misses)
    assert cache.contains(0)
    assert not cache.contains(64)
    assert (cache.stats.hits, cache.stats.misses) == before


def test_invalidate_clears_contents_not_stats():
    cache = CacheModel(size=64, line_size=64)
    cache.lookup(0)
    cache.invalidate()
    assert not cache.contains(0)
    assert cache.stats.misses == 1


def test_hit_rate():
    cache = CacheModel(size=64, line_size=64)
    assert cache.stats.hit_rate == 0.0
    cache.lookup(0)
    cache.lookup(0)
    assert cache.stats.hit_rate == 0.5


def test_validation():
    with pytest.raises(ValueError):
        CacheModel(size=100, line_size=64)
    with pytest.raises(ValueError):
        CacheModel(size=64, line_size=48)
    with pytest.raises(ValueError):
        CacheModel(size=3 * 64, line_size=64, ways=2)


@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=200))
def test_repeat_access_always_hits(addrs):
    """Accessing the same address twice in a row is always a hit."""
    cache = CacheModel(size=16 * 64, line_size=64, ways=2)
    for addr in addrs:
        cache.lookup(addr)
        assert cache.lookup(addr)


@given(st.lists(st.integers(min_value=0, max_value=64 * 8 - 1), max_size=300))
def test_small_working_set_eventually_all_hits(addrs):
    """A working set no larger than the cache never misses twice per line."""
    cache = CacheModel(size=8 * 64, line_size=64, ways=None)
    for addr in addrs:
        cache.lookup(addr)
    distinct_lines = {a // 64 for a in addrs}
    assert cache.stats.misses == len(distinct_lines)


def test_cache_publish_metrics_gauges():
    from repro import telemetry

    cache = CacheModel(size=4 * 64, line_size=64)
    cache.lookup(0)
    cache.lookup(0)
    cache.publish_metrics()
    assert telemetry.registry().is_empty  # disabled -> publish is a no-op
    telemetry.reset()
    telemetry.enable()
    try:
        cache.publish_metrics()
        gauges = telemetry.snapshot()["gauges"]
        assert gauges["memsim.cache.hits"] == 1
        assert gauges["memsim.cache.misses"] == 1
        assert gauges["memsim.cache.hit_rate"] == 0.5
    finally:
        telemetry.disable()
        telemetry.reset()
