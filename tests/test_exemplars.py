"""Per-read exemplar sampling: reservoir determinism, slowlog top-K,
cross-process merge, and the histogram exemplar attachment behind the
OpenMetrics ``# {...}`` annotations."""

import pytest

from repro import telemetry
from repro.telemetry import READ_WALL_MS_EDGES, ExemplarCollector
from repro.telemetry.exemplars import DEFAULT_RESERVOIR, DEFAULT_TOP_K


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def _fill(collector, n, wall_scale=1.0):
    """Record n synthetic reads with deterministic wall times."""
    for i in range(n):
        started = collector.start()
        rec = collector.record(f"read_{i}", started,
                               {"seeds": i, "zero": 0})
        # Overwrite the measured wall time so ordering is deterministic
        # for assertions (the collector keys the slowlog on it).
        rec["wall_ms"] = (i % 97) * wall_scale
    return collector


# ----------------------------------------------------------------------
# Collector semantics
# ----------------------------------------------------------------------


def test_record_strips_zero_counters_and_counts_everything():
    c = ExemplarCollector()
    rec = c.record("r1", c.start(), {"a": 3, "b": 0})
    assert rec["counters"] == {"a": 3}
    assert rec["read_id"] == "r1" and rec["task"] == "seed"
    assert rec["wall_ms"] >= 0.0
    assert c.count == 1


def test_reservoir_is_bounded_and_deterministic():
    a = ExemplarCollector()
    b = ExemplarCollector()
    for i in range(500):
        a.record(f"read_{i}", a.start())
        b.record(f"read_{i}", b.start())
    assert len(a.snapshot()["reservoir"]) == DEFAULT_RESERVOIR
    # Same seeded RNG, same offer sequence -> same kept read ids.
    assert [r["read_id"] for r in a.snapshot()["reservoir"]] == \
           [r["read_id"] for r in b.snapshot()["reservoir"]]


def test_reset_reseeds_the_reservoir_rng():
    c = ExemplarCollector()
    for i in range(300):
        c.record(f"read_{i}", c.start())
    first = [r["read_id"] for r in c.snapshot()["reservoir"]]
    c.reset()
    assert c.is_empty
    for i in range(300):
        c.record(f"read_{i}", c.start())
    assert [r["read_id"] for r in c.snapshot()["reservoir"]] == first


def test_slowlog_keeps_the_exact_top_k():
    # Synthetic wall times are injected through merge() -- record() would
    # measure real (near-zero) durations and make ordering flaky.
    c2 = ExemplarCollector()
    c2.merge({"count": 200,
              "slowest": [{"read_id": f"read_{i}",
                           "task": "seed",
                           "wall_ms": float((i * 37) % 199),
                           "counters": {}} for i in range(200)],
              "reservoir": []})
    slow = c2.snapshot()["slowest"]
    assert len(slow) == DEFAULT_TOP_K
    walls = [r["wall_ms"] for r in slow]
    assert walls == sorted(walls, reverse=True)
    expect = sorted((float((i * 37) % 199) for i in range(200)),
                    reverse=True)[:DEFAULT_TOP_K]
    assert walls == expect


def test_merge_accumulates_counts_and_bounds_reservoir():
    a = _fill(ExemplarCollector(), 100)
    b = _fill(ExemplarCollector(), 100)
    snap_b = b.snapshot()
    a.merge(snap_b)
    merged = a.snapshot()
    assert a.count == 200
    assert merged["count"] == 200
    assert len(merged["reservoir"]) <= DEFAULT_RESERVOIR
    assert len(merged["slowest"]) <= DEFAULT_TOP_K


def test_merge_order_determinism():
    """Merging the same snapshots in the same order gives identical
    state -- the property the in-order batch fold relies on."""
    parts = []
    for part in range(3):
        c = ExemplarCollector()
        for i in range(50):
            c.record(f"p{part}_read_{i}", c.start())
        parts.append(c.snapshot())
    x = ExemplarCollector()
    y = ExemplarCollector()
    for snap in parts:
        x.merge(snap)
        y.merge(snap)
    assert x.snapshot() == y.snapshot()


# ----------------------------------------------------------------------
# Module-level wiring: read_probe / record_read
# ----------------------------------------------------------------------


def test_read_probe_is_none_while_disabled():
    assert telemetry.read_probe() is None
    assert telemetry.record_read(None, "r") is None
    assert "exemplars" not in telemetry.snapshot()


def test_record_read_feeds_histogram_and_exemplar():
    telemetry.enable()
    token = telemetry.read_probe()
    assert token is not None
    rec = telemetry.record_read(token, "read_7", {"seeds": 4})
    assert rec["read_id"] == "read_7"
    snap = telemetry.snapshot()
    assert snap["exemplars"]["count"] == 1
    hist = snap["histograms"]["read.wall_ms"]
    assert hist["count"] == 1
    assert tuple(hist["edges"]) == READ_WALL_MS_EDGES
    exemplars = hist["exemplars"]
    (bucket, exemplar), = exemplars.items()
    assert exemplar["labels"] == {"read_id": "read_7"}
    assert exemplar["value"] == rec["wall_ms"]


def test_snapshot_merge_round_trip_through_merge_snapshot():
    telemetry.enable()
    token = telemetry.read_probe()
    telemetry.record_read(token, "worker_read", {"seeds": 2})
    shipped = telemetry.snapshot()
    telemetry.reset()
    telemetry.enable()
    telemetry.merge_snapshot(shipped, order=0)
    merged = telemetry.snapshot()
    assert merged["exemplars"]["count"] == 1
    assert merged["exemplars"]["slowest"][0]["read_id"] == "worker_read"
    assert merged["histograms"]["read.wall_ms"]["count"] == 1
    assert merged["histograms"]["read.wall_ms"]["exemplars"]


def test_histogram_as_dict_reports_p999():
    telemetry.enable()
    for value in range(1, 1001):
        telemetry.observe("h", value, edges=(10, 100, 500, 900, 990))
    hist = telemetry.snapshot()["histograms"]["h"]
    assert "p99.9" in hist
    assert hist["p99"] <= hist["p99.9"] <= hist["max"]


def test_record_reads_bulk_matches_per_read_capture():
    """The vector drivers' bulk offer path (`record_reads`) must leave
    the collector and the wall-time histogram in exactly the state 500
    individual `record_read` calls would: same reservoir membership
    (the RNG advances once per offer either way), same slowlog, same
    bucket exemplars (latest read per bucket wins)."""
    import random

    ids = [f"r{i}" for i in range(500)]
    rng = random.Random(3)
    walls = [rng.random() * 30 for _ in ids]
    rows = [{"kernels.walk_steps": i % 7, "seeds": i % 3}
            for i in range(500)]

    telemetry.enable()
    probe = telemetry.read_probe()
    for i, read_id in enumerate(ids):
        telemetry.record_read(probe, read_id, rows[i], task="seed",
                              wall_ms=walls[i], kernels="vector")
    per_read = telemetry.snapshot()
    telemetry.reset()
    telemetry.enable()
    probe = telemetry.read_probe()
    telemetry.record_reads(probe, ids, walls,
                           lambda i: dict(rows[i]),
                           task="seed", kernels="vector")
    bulk = telemetry.snapshot()
    assert bulk["exemplars"]["reservoir"] == per_read["exemplars"]["reservoir"]
    assert bulk["exemplars"]["slowest"] == per_read["exemplars"]["slowest"]
    assert bulk["exemplars"]["count"] == per_read["exemplars"]["count"]
    assert bulk["histograms"] == per_read["histograms"]
