"""Tests for the repro.parallel batch execution engine.

The contract under test is determinism: for every task the pool path
(``workers=3``, shared-memory index, out-of-order completion) must
produce output byte-identical to the serial per-read loop, with the same
aggregated engine statistics and the same telemetry counters.  The
worker pools here run under the ``fork`` start method, so the suite
stays cheap even on a single-CPU container.
"""

import gc

import numpy as np
import pytest

from repro import telemetry
from repro.analysis.datavol import measure_traffic
from repro.core import ErtConfig, ErtSeedingEngine, build_ert
from repro.core.io import index_to_buffer
from repro.core.serialize import trees_equal
from repro.kernels import resolve_kernels
from repro.parallel import (
    ParallelConfig,
    SharedIndexBuffer,
    align_pairs,
    align_reads,
    attach_index,
    default_workers,
    iter_chunks,
    pack_batch,
    seed_reads,
)
from repro.seeding.algorithm import seed_read
from repro.seeding.engine import EngineStats
from repro.sequence import ReadSimulator
from repro.sequence.simulate import PairedReadSimulator

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module")
def read_set(reference):
    """The 200-read determinism corpus (single-end)."""
    return ReadSimulator(reference, read_length=80, seed=21).simulate(200)


@pytest.fixture(scope="module")
def pair_set(reference):
    """50 fragments -> 100 interleaved paired-end reads."""
    pairs = PairedReadSimulator(reference, read_length=80,
                                seed=22).simulate(50)
    return [read for pair in pairs for read in (pair.first, pair.second)]


def serial():
    return ParallelConfig(workers=1, batch_size=64)


def pooled(batch_size=64):
    return ParallelConfig(workers=3, batch_size=batch_size)


# ----------------------------------------------------------------------
# Determinism: pool output is byte-identical to the serial path.
# ----------------------------------------------------------------------


def test_seed_pool_matches_serial_byte_for_byte(ert_index, read_set, params):
    lines0, stats0 = seed_reads(ert_index, read_set, params, serial())
    lines3, stats3 = seed_reads(ert_index, read_set, params, pooled())
    assert lines0 == lines3
    assert stats0.as_dict() == stats3.as_dict()
    assert lines0, "corpus produced no seeds -- test is vacuous"


def test_align_pool_matches_serial_byte_for_byte(ert_index, read_set,
                                                 params):
    recs0, stats0 = align_reads(ert_index, read_set, params, serial())
    recs3, stats3 = align_reads(ert_index, read_set, params, pooled())
    assert [r.to_line() for r in recs0] == [r.to_line() for r in recs3]
    assert stats0.as_dict() == stats3.as_dict()
    assert len(recs0) == len(read_set)


def test_paired_pool_matches_serial_byte_for_byte(ert_index, pair_set,
                                                  params):
    recs0, stats0 = align_pairs(ert_index, pair_set, params,
                                config=serial())
    recs3, stats3 = align_pairs(ert_index, pair_set, params,
                                config=pooled(batch_size=8))
    assert [r.to_line() for r in recs0] == [r.to_line() for r in recs3]
    assert stats0.as_dict() == stats3.as_dict()
    assert len(recs0) == len(pair_set)


def test_align_pairs_rejects_odd_read_count(ert_index, read_set):
    with pytest.raises(ValueError, match="even"):
        align_pairs(ert_index, read_set[:3])


def test_batch_size_does_not_change_output(ert_index, read_set, params):
    baseline, _ = seed_reads(ert_index, read_set[:40], params, serial())
    for batch_size in (1, 7, 64, 1000):
        config = ParallelConfig(workers=1, batch_size=batch_size)
        lines, _ = seed_reads(ert_index, read_set[:40], params, config)
        assert lines == baseline, f"batch_size={batch_size} diverged"


def test_traffic_profile_identical_across_pool(ert_index, read_set, params):
    codes = [r.codes for r in read_set[:60]]
    engine = ErtSeedingEngine(ert_index)
    one = measure_traffic(engine, codes, params, name="ert")
    two = measure_traffic(ErtSeedingEngine(ert_index), codes,
                          params, name="ert", workers=2, batch_size=16)
    assert one.requests_total == two.requests_total
    assert one.bytes_total == two.bytes_total
    assert one.by_phase == two.by_phase


def test_pool_telemetry_matches_serial_counters(ert_index, read_set,
                                                params):
    telemetry.reset()
    telemetry.enable()
    try:
        seed_reads(ert_index, read_set[:60], params, serial())
        expected = telemetry.snapshot()
        telemetry.reset()
        seed_reads(ert_index, read_set[:60], params, pooled(batch_size=16))
        merged = telemetry.snapshot()
    finally:
        telemetry.disable()
        telemetry.reset()
    # Under the vector backend the batch-shaped quantities legitimately
    # differ: 60 reads are one serial seed_batch but four pooled ones,
    # so batch/dispatch tallies and the per-batch span counts scale
    # with the batching while every per-read counter stays invariant.
    batch_shaped = ({"kernels.batches", "kernels.wave_rounds"}
                    if resolve_kernels() == "vector" else set())

    def per_read(counters):
        return {name: value for name, value in counters.items()
                if name not in batch_shaped}

    assert per_read(merged["counters"]) == per_read(expected["counters"])
    assert sorted(merged["spans"]) == sorted(expected["spans"])
    if not batch_shaped:
        for path, stat in expected["spans"].items():
            assert merged["spans"][path]["count"] == stat["count"]


# ----------------------------------------------------------------------
# Short reads: below max(min_seed_len, k) nothing can seed -- the result
# is empty, never an exception, in every mode and pipeline.
# ----------------------------------------------------------------------


def _short_reads(k):
    """0-, 1-, and (k-1)-length reads (the ERT walk needs >= k)."""
    return [np.zeros(0, dtype=np.uint8),
            np.array([1], dtype=np.uint8),
            np.arange(k - 1, dtype=np.uint8) % 4]


def test_seed_read_returns_empty_for_short_reads(ert, params):
    for read in _short_reads(ert.index.config.k):
        result = seed_read(ert, read, params)
        assert result.all_seeds == []


@pytest.mark.parametrize("workers", [1, 2])
def test_seed_reads_skips_short_reads(ert_index, read_set, params, workers):
    mixed = _short_reads(ert_index.config.k) + [r.codes
                                                for r in read_set[:6]]
    normal, _ = seed_reads(ert_index, [r.codes for r in read_set[:6]],
                           params, ParallelConfig(workers=1))
    lines, _ = seed_reads(ert_index, mixed, params,
                          ParallelConfig(workers=workers, batch_size=2))
    # Short reads contribute zero seeds; the rest is unaffected.
    assert lines == normal


@pytest.mark.parametrize("workers", [1, 2])
def test_align_emits_unmapped_records_for_short_reads(ert_index, read_set,
                                                      params, workers):
    shorts = _short_reads(ert_index.config.k)
    mixed = shorts + [r.codes for r in read_set[:6]]
    records, _ = align_reads(ert_index, mixed, params,
                             ParallelConfig(workers=workers, batch_size=2))
    assert len(records) == len(mixed)
    for record in records[:len(shorts)]:
        assert record.flag & 0x4, "short read must align as unmapped"


def test_short_read_skip_counter(ert, params):
    telemetry.reset()
    telemetry.enable()
    try:
        for read in _short_reads(ert.index.config.k):
            seed_read(ert, read, params)
        snap = telemetry.snapshot()
    finally:
        telemetry.disable()
        telemetry.reset()
    assert snap["counters"]["seeding.short_reads_skipped"] == 3
    assert snap["counters"]["seeding.reads"] == 3


# ----------------------------------------------------------------------
# Shared-memory index transport
# ----------------------------------------------------------------------


def _detach(shm):
    """Detach an attached segment once every buffer view is gone.

    Worker processes never need this (attachments live until process
    exit); in-process tests must drop the index and its exported
    pointers before the segment can close, hence the ``gc.collect``.
    """
    gc.collect()
    shm.close()


@pytest.mark.parametrize("prefix_merging", [False, True])
def test_shared_index_round_trip(reference, prefix_merging):
    config = ErtConfig(k=6, max_seed_len=120, table_threshold=32,
                       table_x=3, prefix_merging=prefix_merging)
    index = build_ert(reference, config)
    with SharedIndexBuffer(index) as shared:
        attached = attach_index(shared.name, shared.size)
        try:
            assert attached.config == index.config
            assert np.array_equal(attached.reference.codes,
                                  index.reference.codes)
            assert sorted(attached.roots) == sorted(index.roots)
            for code, tree in index.roots.items():
                assert trees_equal(attached.roots[code], tree,
                                   check_prefix=prefix_merging)
        finally:
            shm = attached._shm
            del attached
            _detach(shm)


def test_shared_buffer_size_matches_serialized_form(ert_index):
    payload = index_to_buffer(ert_index)
    with SharedIndexBuffer(ert_index) as shared:
        assert shared.size == len(payload)
        attached = attach_index(shared.name, shared.size)
        try:
            engine = ErtSeedingEngine(attached)
            read = ert_index.reference.codes[100:180]
            expected = seed_read(ErtSeedingEngine(ert_index), read)
            got = seed_read(engine, read)
            assert [s.hits for s in got.all_seeds] \
                == [s.hits for s in expected.all_seeds]
        finally:
            shm = attached._shm
            del engine, attached
            _detach(shm)


# ----------------------------------------------------------------------
# Batching primitives and config resolution
# ----------------------------------------------------------------------


def test_iter_chunks_covers_sequence_exactly():
    items = list(range(10))
    chunks = list(iter_chunks(items, 4))
    assert [list(c) for c in chunks] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
    assert list(iter_chunks([], 4)) == []
    with pytest.raises(ValueError):
        list(iter_chunks(items, 0))


def test_pack_batch_preserves_reads_and_metadata(read_set):
    batch = pack_batch(read_set[:5])
    assert len(batch) == 5
    assert batch.names == tuple(r.name for r in read_set[:5])
    assert batch.qualities == tuple(r.quality for r in read_set[:5])
    for view, read in zip(batch.reads(), read_set[:5]):
        assert np.array_equal(view, read.codes)


def test_pack_batch_accepts_bare_arrays():
    arrays = [np.zeros(4, dtype=np.uint8), np.ones(6, dtype=np.uint8)]
    batch = pack_batch(arrays)
    assert [v.size for v in batch.reads()] == [4, 6]
    assert batch.names == ("", "")
    assert batch.qualities == ("", "")


def test_default_workers_reads_environment(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert default_workers() == 1
    monkeypatch.setenv("REPRO_WORKERS", "4")
    assert default_workers() == 4
    assert ParallelConfig().resolved_workers() == 4
    assert ParallelConfig(workers=2).resolved_workers() == 2
    monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
    with pytest.warns(RuntimeWarning, match="REPRO_WORKERS"):
        assert default_workers() == 1


def test_parallel_config_inflight_default():
    assert ParallelConfig().resolved_inflight(4) == 8
    assert ParallelConfig(max_inflight=3).resolved_inflight(4) == 3


# ----------------------------------------------------------------------
# Aggregation plumbing
# ----------------------------------------------------------------------


def test_engine_stats_add_dict_accumulates():
    stats = EngineStats(forward_searches=2, nodes_visited=5)
    stats.add_dict({"forward_searches": 3, "nodes_visited": 1,
                    "leaf_fetches": 7})
    assert stats.forward_searches == 5
    assert stats.nodes_visited == 6
    assert stats.leaf_fetches == 7


def test_telemetry_merge_snapshot_folds_counters_and_spans():
    telemetry.reset()
    telemetry.enable()
    try:
        telemetry.count("merge.test", 2)
        telemetry.observe("merge.hist", 5.0)
        telemetry.merge_snapshot({
            "counters": {"merge.test": 3, "merge.other": 1},
            "gauges": {"merge.gauge": 9.0},
            "histograms": {},
            "spans": {"phase": {"count": 4, "total_s": 1.0, "self_s": 1.0,
                                "min_s": 0.1, "max_s": 0.6}},
        })
        snap = telemetry.snapshot()
    finally:
        telemetry.disable()
        telemetry.reset()
    assert snap["counters"]["merge.test"] == 5
    assert snap["counters"]["merge.other"] == 1
    assert snap["gauges"]["merge.gauge"] == 9.0
    assert snap["spans"]["phase"]["count"] == 4


def test_merge_snapshot_gauges_resolve_by_batch_order():
    """Out-of-order worker completion must not decide gauge values:
    whatever snapshot carries the highest submission order wins, no
    matter the merge call sequence (so --metrics-out is stable at any
    worker count)."""
    def gauge_snap(value):
        return {"counters": {}, "gauges": {"merge.gauge": value},
                "histograms": {}, "spans": {}}

    telemetry.reset()
    telemetry.enable()
    try:
        # Batch 2's snapshot arrives first, then batch 0's: the batch-2
        # value must survive.
        telemetry.merge_snapshot(gauge_snap(22.0), order=2)
        telemetry.merge_snapshot(gauge_snap(10.0), order=0)
        assert telemetry.snapshot()["gauges"]["merge.gauge"] == 22.0
        # A higher order replaces it.
        telemetry.merge_snapshot(gauge_snap(33.0), order=3)
        assert telemetry.snapshot()["gauges"]["merge.gauge"] == 33.0
        # Orderless merges keep last-write-wins semantics.
        telemetry.merge_snapshot(gauge_snap(1.0))
        assert telemetry.snapshot()["gauges"]["merge.gauge"] == 1.0
    finally:
        telemetry.disable()
        telemetry.reset()


def test_merge_snapshot_is_noop_while_disabled():
    telemetry.reset()
    telemetry.merge_snapshot({"counters": {"ghost": 1}, "gauges": {},
                              "histograms": {}, "spans": {}})
    telemetry.enable()
    try:
        assert "ghost" not in telemetry.snapshot()["counters"]
    finally:
        telemetry.disable()
        telemetry.reset()


# ----------------------------------------------------------------------
# The serial fast path's batch hoists stay invisible to results.
# ----------------------------------------------------------------------


def test_begin_batch_precomputed_revcomp_matches_per_read(ert_index,
                                                          read_set,
                                                          params):
    plain = ErtSeedingEngine(ert_index)
    batched = ErtSeedingEngine(ert_index)
    reads = [r.codes for r in read_set[:20]]
    batched.begin_batch(reads)
    for read in reads:
        expected = seed_read(plain, read, params)
        got = seed_read(batched, read, params)
        assert [s.hits for s in got.all_seeds] \
            == [s.hits for s in expected.all_seeds]
