"""Unit tests for the 2-bit DNA alphabet."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sequence.alphabet import (
    BASES,
    AlphabetError,
    COMPLEMENT,
    complement_code,
    decode,
    encode,
    revcomp,
    revcomp_codes,
)

dna = st.text(alphabet="ACGT", min_size=0, max_size=200)


def test_encode_basic():
    assert encode("ACGT").tolist() == [0, 1, 2, 3]


def test_encode_lowercase():
    assert encode("acgt").tolist() == [0, 1, 2, 3]


def test_encode_empty():
    assert encode("").size == 0


def test_encode_rejects_ambiguous():
    with pytest.raises(AlphabetError):
        encode("ACGN")


def test_encode_rejects_whitespace():
    with pytest.raises(AlphabetError):
        encode("AC GT")


def test_decode_rejects_out_of_range():
    with pytest.raises(AlphabetError):
        decode(np.array([0, 4], dtype=np.uint8))


def test_complement_pairs():
    assert complement_code(0) == 3  # A <-> T
    assert complement_code(1) == 2  # C <-> G
    assert complement_code(2) == 1
    assert complement_code(3) == 0


def test_complement_code_rejects_invalid():
    with pytest.raises(AlphabetError):
        complement_code(4)


def test_complement_table_matches_function():
    assert [complement_code(c) for c in range(4)] == COMPLEMENT.tolist()


def test_revcomp_known():
    assert revcomp("AACG") == "CGTT"
    assert revcomp("") == ""
    assert revcomp("A") == "T"


@given(dna)
def test_roundtrip_encode_decode(seq):
    assert decode(encode(seq)) == seq


@given(dna)
def test_revcomp_involution(seq):
    assert revcomp(revcomp(seq)) == seq


@given(dna)
def test_revcomp_codes_matches_string(seq):
    assert decode(revcomp_codes(encode(seq))) == revcomp(seq)


@given(dna, dna)
def test_revcomp_antihomomorphism(a, b):
    assert revcomp(a + b) == revcomp(b) + revcomp(a)


def test_bases_order_is_code_order():
    for i, base in enumerate(BASES):
        assert encode(base)[0] == i
