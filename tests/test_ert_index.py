"""Unit tests for ErtIndex internals: codes, tracing, cache filtering."""

import numpy as np
import pytest

from repro.core import EntryKind, ErtConfig, build_ert
from repro.memsim import CacheModel, MemoryTracer
from repro.sequence import GenomeSimulator
from repro.sequence.alphabet import encode


@pytest.fixture(scope="module")
def index():
    ref = GenomeSimulator(seed=121).generate(1500)
    return build_ert(ref, ErtConfig(k=5, max_seed_len=60,
                                    table_threshold=16, table_x=2))


def test_kmer_code_packing(index):
    assert index.kmer_code(encode("AAAAA")) == 0
    assert index.kmer_code(encode("AAAAC")) == 1
    assert index.kmer_code(encode("CAAAA")) == 1 << 8
    # Short inputs pad with A (zero bits) on the right.
    assert index.kmer_code(encode("C")) == 1 << 8
    assert index.kmer_code(encode("CA")) == 1 << 8


def test_prefix_count_matches_tables(index):
    text = index.text
    for pattern in ("A", "AC", "ACG", "ACGT"):
        codes = encode(pattern)
        # Manual sliding-window count over the double-strand text.
        k = len(codes)
        windows = np.lib.stride_tricks.sliding_window_view(text, k)
        expected = int(np.count_nonzero((windows == codes).all(axis=1)))
        assert index.prefix_count(codes, traced=False) == expected


def test_prefix_count_validates_length(index):
    with pytest.raises(ValueError):
        index.prefix_count(encode("ACGTAC"))  # length 6 > k=5
    with pytest.raises(ValueError):
        index.prefix_count(encode(""))


def test_trace_goes_through_reuse_cache(index):
    tracer = MemoryTracer()
    index.attach_tracer(tracer)
    index.reuse_cache = CacheModel(64 * 1024, ways=1)
    try:
        index.trace_index_entry(123)
        first = tracer.total_requests
        index.trace_index_entry(123)  # same line: cache hit, no traffic
        assert tracer.total_requests == first
        index.trace_index_entry(123 + 5000)  # different line: miss
        assert tracer.total_requests > first
    finally:
        index.reuse_cache = None
        index.attach_tracer(None)


def test_trace_noop_without_tracer(index):
    # Must not raise and must not record anything.
    index.trace_index_entry(5)
    index.trace_ref_line(100)


def test_cache_counts_even_without_tracer(index):
    cache = CacheModel(64 * 1024, ways=1)
    index.reuse_cache = cache
    try:
        index.trace_index_entry(7)
        index.trace_index_entry(7)
    finally:
        index.reuse_cache = None
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_table_slots_are_dense(index):
    slots = sorted(index._table_slot.values())
    assert slots == list(range(len(index.tables)))


def test_regions_are_disjoint(index):
    regions = sorted(index.space.regions.values(), key=lambda r: r.base)
    for a, b in zip(regions, regions[1:]):
        assert a.end <= b.base


def test_entry_kind_matches_roots(index):
    for code, root in index.roots.items():
        assert index.entry_kind[code] != EntryKind.EMPTY
    empties = np.flatnonzero(index.entry_kind == EntryKind.EMPTY)
    for code in empties[:50]:
        assert int(code) not in index.roots
