"""SA-IS construction: cross-validated against doubling and brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fmindex import suffix_array
from repro.fmindex.sais import sais_suffix_array

texts = st.lists(st.integers(min_value=0, max_value=3), min_size=1,
                 max_size=200).map(lambda xs: np.array(xs, dtype=np.uint8))


def test_known_example():
    # "banana" with b=1, a=0, n=2
    text = np.array([1, 0, 2, 0, 2, 0])
    assert sais_suffix_array(text).tolist() == [5, 3, 1, 0, 4, 2]


def test_empty_and_tiny():
    assert sais_suffix_array(np.empty(0, dtype=np.uint8)).size == 0
    assert sais_suffix_array(np.array([2])).tolist() == [0]
    assert sais_suffix_array(np.array([1, 0])).tolist() == [1, 0]
    assert sais_suffix_array(np.array([0, 1])).tolist() == [0, 1]


def test_all_same_char():
    assert sais_suffix_array(np.zeros(6, dtype=np.uint8)).tolist() == \
        [5, 4, 3, 2, 1, 0]


def test_rejects_negative():
    with pytest.raises(ValueError):
        sais_suffix_array(np.array([-1, 2]))


def test_method_dispatch():
    text = np.array([1, 0, 2, 0, 2, 0])
    assert suffix_array(text, method="sais").tolist() == \
        suffix_array(text, method="doubling").tolist()
    with pytest.raises(ValueError):
        suffix_array(text, method="quantum")


@settings(max_examples=80, deadline=None)
@given(texts)
def test_agrees_with_doubling(text):
    """Two structurally unrelated algorithms must agree everywhere."""
    assert sais_suffix_array(text).tolist() == \
        suffix_array(text, method="doubling").tolist()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=1,
                max_size=150))
def test_binary_alphabet_stress(bits):
    """Binary strings maximize LMS-substring collisions (the recursion
    path of SA-IS)."""
    text = np.array(bits, dtype=np.uint8)
    assert sais_suffix_array(text).tolist() == \
        suffix_array(text, method="doubling").tolist()


def test_genome_scale_agreement():
    from repro.sequence import GenomeSimulator
    ref = GenomeSimulator(seed=77).generate(4000)
    text = ref.both_strands
    assert np.array_equal(sais_suffix_array(text),
                          suffix_array(text, method="doubling"))


def test_fmd_index_accepts_sais():
    """An FMD-index built over an SA-IS suffix array behaves identically;
    the SA is position-for-position the same, so just spot-check."""
    from repro.sequence import GenomeSimulator
    ref = GenomeSimulator(seed=78).generate(1000)
    text = ref.both_strands
    a = suffix_array(text, method="sais")
    b = suffix_array(text, method="doubling")
    assert np.array_equal(a, b)
