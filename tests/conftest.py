"""Shared fixtures: small repeat-rich genomes, reads, and built engines.

Index construction is the expensive part, so everything here is
session-scoped; tests must not mutate fixture state (engines reset their
own per-read scratch).
"""

import numpy as np
import pytest

from repro.core import ErtConfig, ErtSeedingEngine, build_ert
from repro.fmindex import FmdConfig, FmdIndex, FmdSeedingEngine
from repro.seeding import OracleEngine, SeedingParams
from repro.sequence import GenomeSimulator, ReadSimulator


GENOME_LEN = 6000
READ_LEN = 80


@pytest.fixture(scope="session")
def reference():
    return GenomeSimulator(seed=11).generate(GENOME_LEN)


@pytest.fixture(scope="session")
def reads(reference):
    return ReadSimulator(reference, read_length=READ_LEN,
                         seed=12).simulate(25)


@pytest.fixture(scope="session")
def read_codes(reads):
    return [r.codes for r in reads]


@pytest.fixture(scope="session")
def params():
    # min_seed_len scaled down with the genome; >= the ERT fixtures' k.
    return SeedingParams(min_seed_len=12)


@pytest.fixture(scope="session")
def oracle(reference):
    return OracleEngine(reference)


@pytest.fixture(scope="session")
def fmd_index(reference):
    return FmdIndex(reference, FmdConfig.bwa_mem2())


@pytest.fixture(scope="session")
def fmd(fmd_index):
    return FmdSeedingEngine(fmd_index)


@pytest.fixture(scope="session")
def ert_config():
    return ErtConfig(k=6, max_seed_len=120, table_threshold=32, table_x=3)


@pytest.fixture(scope="session")
def ert_index(reference, ert_config):
    return build_ert(reference, ert_config)


@pytest.fixture(scope="session")
def ert(ert_index):
    return ErtSeedingEngine(ert_index)


@pytest.fixture(scope="session")
def ert_pm_index(reference):
    config = ErtConfig(k=6, max_seed_len=120, table_threshold=32, table_x=3,
                       prefix_merging=True)
    return build_ert(reference, config)


@pytest.fixture(scope="session")
def ert_pm(ert_pm_index):
    return ErtSeedingEngine(ert_pm_index)


@pytest.fixture()
def rng():
    return np.random.default_rng(99)
