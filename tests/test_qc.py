"""Tests for the seeding QC summaries."""

import pytest

from repro.analysis.qc import SeedingQc, seeding_qc
from repro.seeding import Seed, SeedingResult, seed_read


def make_result(*seeds):
    return SeedingResult(smems=list(seeds))


def test_empty_batch():
    qc = seeding_qc([], [])
    assert qc.reads == 0
    assert qc.mean_seeds_per_read == 0.0
    assert qc.mean_read_coverage == 0.0
    assert qc.unique_fraction == 0.0


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        seeding_qc([SeedingResult()], [50, 60])


def test_basic_aggregation():
    r1 = make_result(Seed(0, 20, (5,), 1), Seed(30, 25, (), 500))
    r2 = SeedingResult()
    qc = seeding_qc([r1, r2], [60, 60], repetitive_threshold=100)
    assert qc.reads == 2
    assert qc.reads_without_seeds == 1
    assert qc.total_seeds == 2
    assert qc.mean_seeds_per_read == 1.0
    assert qc.unique_hit_seeds == 1
    assert qc.repetitive_seeds == 1
    assert qc.seed_length_histogram == {20: 1, 25: 1}
    assert qc.seeds_per_read_histogram == {2: 1, 0: 1}
    # Coverage of r1: [0,20) + [30,55) = 45/60; r2: 0.
    assert qc.mean_read_coverage == pytest.approx((45 / 60) / 2)


def test_overlapping_seeds_not_double_counted():
    result = make_result(Seed(0, 30, (1,), 1), Seed(10, 30, (2,), 1))
    qc = seeding_qc([result], [40])
    assert qc.mean_read_coverage == pytest.approx(1.0)


def test_format_output():
    qc = SeedingQc(reads=3, total_seeds=6, unique_hit_seeds=3,
                   coverage_sum=1.5)
    text = qc.format()
    assert "seeds/read (mean)    : 2.00" in text
    assert "50.0%" in text


def test_qc_on_real_engine(ert, read_codes, params):
    results = [seed_read(ert, read, params) for read in read_codes[:10]]
    qc = seeding_qc(results, [len(r) for r in read_codes[:10]])
    assert qc.reads == 10
    assert qc.total_seeds > 0
    # Simulated reads mostly match somewhere: high coverage, few empties.
    assert qc.mean_read_coverage > 0.8
    assert qc.reads_without_seeds <= 1
