"""Round-trip tests for the binary node format and the on-disk index."""

import numpy as np
import pytest

from repro.core import (
    ErtConfig,
    ErtSeedingEngine,
    build_ert,
    decode_tree,
    encode_tree,
    load_ert,
    save_ert,
    trees_equal,
)
from repro.core.io import IndexFormatError, _blob_size
from repro.core.layout import node_size
from repro.core.nodes import DivergeNode, LeafNode, UniformNode
from repro.core.serialize import SerializeError, _decode_node
from repro.seeding import SeedingParams, seed_read
from repro.sequence import GenomeSimulator, ReadSimulator


@pytest.fixture(scope="module")
def ref():
    return GenomeSimulator(seed=101).generate(3000)


@pytest.fixture(scope="module", params=[False, True],
                ids=["plain", "prefix-merged"])
def index(ref, request):
    return build_ert(ref, ErtConfig(k=5, max_seed_len=80,
                                    table_threshold=24, table_x=2,
                                    prefix_merging=request.param))


def test_every_tree_roundtrips(index):
    pm = index.config.prefix_merging
    for code, root in index.roots.items():
        blob_size = _blob_size(index, code)
        blob = encode_tree(root, blob_size, pm)
        back = decode_tree(blob, root.offset)
        assert trees_equal(root, back, check_prefix=pm), code


def test_decoded_sizes_match_size_model(index):
    pm = index.config.prefix_merging
    code = max(index.roots, key=lambda c: index.kmer_count[c])
    root = index.roots[code]
    blob = encode_tree(root, _blob_size(index, code), pm)
    stack = [decode_tree(blob, root.offset)]
    while stack:
        node = stack.pop()
        if pm or not isinstance(node, LeafNode):
            assert node.nbytes == node_size(node, pm)
        stack.extend(node.children_nodes())


def test_prefix_chars_survive_roundtrip(ref):
    index = build_ert(ref, ErtConfig(k=5, max_seed_len=80,
                                     prefix_merging=True))
    checked = 0
    for code, root in index.roots.items():
        blob = encode_tree(root, _blob_size(index, code), True)
        back = decode_tree(blob, root.offset)
        stack_a, stack_b = [root], [back]
        while stack_a:
            a, b = stack_a.pop(), stack_b.pop()
            if isinstance(a, LeafNode):
                assert a.prefix_chars == b.prefix_chars
                checked += 1
            stack_a.extend(a.children_nodes())
            stack_b.extend(b.children_nodes())
        if checked > 200:
            break
    assert checked > 0


def test_encode_requires_layout():
    leaf = LeafNode((3,), (-1,))
    with pytest.raises(SerializeError):
        encode_tree(leaf, 64, False)


def test_encode_rejects_blob_overflow(index):
    code = next(iter(index.roots))
    with pytest.raises(SerializeError):
        encode_tree(index.roots[code], 1, index.config.prefix_merging)


def test_decode_rejects_bad_offset():
    with pytest.raises(SerializeError):
        decode_tree(b"\x00" * 8, 100)


def test_decode_rejects_unknown_kind():
    with pytest.raises(SerializeError):
        _decode_node(bytes([3]) + b"\x00" * 8, 0)


def test_trees_equal_detects_differences():
    a = LeafNode((1, 2), (-1, 0))
    b = LeafNode((1, 3), (-1, 0))
    assert trees_equal(a, a)
    assert not trees_equal(a, b)
    u = UniformNode(np.array([1], dtype=np.uint8), a, 2)
    d = DivergeNode({0: a}, (5,), 3)
    assert not trees_equal(u, d)


def test_save_load_roundtrip(tmp_path, ref, index):
    path = tmp_path / "index.npz"
    save_ert(index, path)
    loaded = load_ert(path)
    assert loaded.config == index.config
    assert np.array_equal(loaded.entry_kind, index.entry_kind)
    assert np.array_equal(loaded.lep_bits, index.lep_bits)
    assert np.array_equal(loaded.kmer_count, index.kmer_count)
    assert loaded.tree_base == index.tree_base
    assert set(loaded.tables) == set(index.tables)
    for code, root in index.roots.items():
        assert trees_equal(root, loaded.roots[code],
                           check_prefix=index.config.prefix_merging)


def test_loaded_index_seeds_identically(tmp_path, ref, index):
    path = tmp_path / "index.npz"
    save_ert(index, path)
    loaded = load_ert(path)
    params = SeedingParams(min_seed_len=10)
    reads = ReadSimulator(ref, read_length=50, seed=102).simulate(10)
    original = ErtSeedingEngine(index)
    reloaded = ErtSeedingEngine(loaded)
    for read in reads:
        assert seed_read(original, read.codes, params).key() == \
            seed_read(reloaded, read.codes, params).key()


def test_load_rejects_future_format(tmp_path, index):
    import json
    path = tmp_path / "index.npz"
    save_ert(index, path)
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    meta = json.loads(bytes(arrays["meta_json"].tobytes()).decode())
    meta["format_version"] = 999
    arrays["meta_json"] = np.frombuffer(json.dumps(meta).encode(),
                                        dtype=np.uint8)
    np.savez(path, **arrays)
    with pytest.raises(IndexFormatError):
        load_ert(path)
