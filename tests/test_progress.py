"""ProgressReporter: TTY detection, rate limiting, urgent crash lines,
and the rendered heartbeat/summary contents."""

import io

from repro.telemetry.progress import NON_TTY_INTERVAL_S, ProgressReporter


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TtyStream(io.StringIO):
    def isatty(self):
        return True


def _reporter(total=100, stream=None, tty=False, **kwargs):
    stream = stream or (TtyStream() if tty else io.StringIO())
    clock = kwargs.pop("clock", FakeClock())
    return ProgressReporter(total=total, stream=stream, clock=clock,
                            **kwargs), stream, clock


# ----------------------------------------------------------------------
# Enablement
# ----------------------------------------------------------------------


def test_disabled_on_non_tty_without_force():
    reporter, stream, clock = _reporter()
    assert not reporter.enabled
    clock.now = 100.0
    reporter.advance(50)
    reporter.crash()
    reporter.finish()
    assert stream.getvalue() == ""
    # State still tracked even when silent.
    assert reporter.done == 50 and reporter.crashes == 1


def test_force_enables_on_non_tty():
    reporter, stream, _ = _reporter(force=True)
    assert reporter.enabled and not reporter._tty
    assert reporter.min_interval_s == NON_TTY_INTERVAL_S


def test_tty_enables_without_force():
    reporter, _, _ = _reporter(tty=True)
    assert reporter.enabled and reporter._tty
    assert reporter.min_interval_s == 0.5


def test_stream_without_isatty_counts_as_non_tty():
    class NoIsatty:
        def write(self, text):
            pass

        def flush(self):
            pass

    reporter = ProgressReporter(total=1, stream=NoIsatty())
    assert not reporter.enabled


# ----------------------------------------------------------------------
# Rate limiting
# ----------------------------------------------------------------------


def test_heartbeats_are_rate_limited():
    reporter, stream, clock = _reporter(force=True)
    for i in range(1001):
        clock.now = i * 0.01  # 10 s total across 1001 calls
        reporter.advance(1)
    # One line at t=0 plus one per NON_TTY_INTERVAL_S window.
    assert reporter.heartbeats == 2
    assert len(stream.getvalue().splitlines()) == 2


def test_tty_rate_limit_is_half_second():
    reporter, stream, clock = _reporter(tty=True)
    for i in range(100):
        clock.now = i * 0.1  # 10 s total
        reporter.advance(1)
    assert reporter.heartbeats == 20


def test_crash_bypasses_rate_limit():
    reporter, stream, clock = _reporter(force=True)
    reporter.advance(1)          # consumes the t=0 slot
    assert reporter.heartbeats == 1
    reporter.advance(1)          # same instant: suppressed
    assert reporter.heartbeats == 1
    reporter.crash()             # urgent: emits anyway
    assert reporter.heartbeats == 2
    assert "crashes 1" in stream.getvalue().splitlines()[-1]


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def test_render_contents():
    reporter, _, clock = _reporter(total=200)
    clock.now = 2.0
    reporter.done = 50
    reporter.set_inflight(4)
    line = reporter.render()
    assert "reads: 50/200 (25%)" in line
    assert "25/s" in line
    assert "inflight 4" in line
    assert "eta 6s" in line  # 150 left at 25/s


def test_render_without_total_or_rate():
    reporter, _, _ = _reporter(total=0)
    line = reporter.render()
    assert "%" not in line and "eta" not in line


def test_custom_label():
    reporter, _, _ = _reporter(label="pairs")
    assert reporter.render().startswith("pairs: ")


def test_finish_summary_line():
    reporter, stream, clock = _reporter(force=True)
    reporter.advance(100)
    clock.now = 4.0
    reporter.finish()
    last = stream.getvalue().splitlines()[-1]
    assert "reads: 100/100 done in 4.0s (25/s)" in last
    assert "crash" not in last


def test_finish_mentions_survived_crashes():
    reporter, stream, clock = _reporter(force=True)
    reporter.crash()
    clock.now = 1.0
    reporter.finish()
    assert "1 worker crash(es) survived" in stream.getvalue()


def test_tty_redraws_in_place_and_blanks_stale_tail():
    reporter, stream, clock = _reporter(total=1000, tty=True)
    reporter.done = 999
    reporter.inflight = 12
    reporter._maybe_emit()
    long_len = reporter._last_line_len
    clock.now = 1.0
    reporter.done = 1000
    reporter.inflight = 0
    reporter.finish()
    text = stream.getvalue()
    assert text.count("\r") == 2, "each draw must rewind the line"
    assert "\n" not in text[:-1] and text.endswith("\n"), \
        "only the final summary may advance the line"
    final_chunk = text.rsplit("\r", 1)[1]
    assert len(final_chunk.rstrip("\n")) >= long_len, \
        "shorter redraw must blank the previous line's tail"


def test_non_tty_writes_plain_lines():
    reporter, stream, _ = _reporter(force=True)
    reporter.advance(10)
    reporter.finish()
    text = stream.getvalue()
    assert "\r" not in text
    assert len(text.splitlines()) == 2


def test_broken_flush_is_tolerated():
    class NoFlush(io.StringIO):
        def flush(self):
            raise OSError("gone")

    reporter = ProgressReporter(total=1, stream=NoFlush(), force=True,
                                clock=FakeClock())
    reporter.advance(1)  # must not raise
    reporter.finish()
