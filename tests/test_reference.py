"""Unit tests for Reference and double-strand coordinate mapping."""

import numpy as np
import pytest

from repro.sequence import Reference, Strand, revcomp
from repro.sequence.alphabet import decode


def test_from_string_roundtrip():
    ref = Reference.from_string("ACGTTGCA", name="r")
    assert ref.sequence == "ACGTTGCA"
    assert len(ref) == 8
    assert ref.name == "r"


def test_rejects_empty():
    with pytest.raises(ValueError):
        Reference(name="r", codes=np.empty(0, dtype=np.uint8))


def test_rejects_bad_codes():
    with pytest.raises(ValueError):
        Reference(name="r", codes=np.array([0, 5], dtype=np.uint8))


def test_rejects_2d():
    with pytest.raises(ValueError):
        Reference(name="r", codes=np.zeros((2, 2), dtype=np.uint8))


def test_both_strands_structure():
    ref = Reference.from_string("AACG")
    both = decode(ref.both_strands)
    assert both == "AACG" + revcomp("AACG")


def test_both_strands_is_self_revcomp():
    ref = Reference.from_string("ACGTTGCAAT")
    both = decode(ref.both_strands)
    assert revcomp(both) == both


def test_to_forward_forward_hit():
    ref = Reference.from_string("ACGTACGTAC")
    hit = ref.to_forward(2, 4)
    assert hit.strand is Strand.FORWARD
    assert hit.start == 2 and hit.length == 4 and hit.end == 6


def test_to_forward_reverse_hit():
    ref = Reference.from_string("AAACCC")
    # X = AAACCC GGGTTT; a hit at X[6:9] ("GGG") is revcomp of fwd [3:6].
    hit = ref.to_forward(6, 3)
    assert hit.strand is Strand.REVERSE
    assert hit.start == 3 and hit.length == 3


def test_to_forward_junction_returns_none():
    ref = Reference.from_string("AAACCC")
    assert ref.to_forward(4, 4) is None


def test_to_forward_out_of_range():
    ref = Reference.from_string("AAACCC")
    with pytest.raises(ValueError):
        ref.to_forward(10, 5)
    with pytest.raises(ValueError):
        ref.to_forward(-1, 2)


def test_reverse_hit_sequence_consistency():
    ref = Reference.from_string("ACGTTACGGA")
    both = ref.both_strands
    n = len(ref)
    for pos in range(n, 2 * n - 3):
        hit = ref.to_forward(pos, 3)
        fwd = decode(ref.codes[hit.start:hit.end])
        assert revcomp(fwd) == decode(both[pos:pos + 3])


def test_fetch_bounds():
    ref = Reference.from_string("ACGT")
    assert decode(ref.fetch(0, 4)) == "ACGT"
    with pytest.raises(ValueError):
        ref.fetch(7, 2)
