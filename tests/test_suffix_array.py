"""Unit and property tests for suffix array / BWT construction."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fmindex import bwt_from_sa, suffix_array

texts = st.lists(st.integers(min_value=0, max_value=3), min_size=1,
                 max_size=120).map(lambda xs: np.array(xs, dtype=np.uint8))


def brute_suffix_array(text):
    n = len(text)
    suffixes = sorted(range(n), key=lambda i: list(text[i:]))
    return suffixes


def test_known_example():
    # "banana" with b=1, a=0, n=2
    text = np.array([1, 0, 2, 0, 2, 0])
    assert suffix_array(text).tolist() == [5, 3, 1, 0, 4, 2]


def test_empty_text():
    assert suffix_array(np.empty(0, dtype=np.uint8)).size == 0


def test_single_char():
    assert suffix_array(np.array([2])).tolist() == [0]


def test_all_same_char():
    # Shorter suffixes sort first under the implicit-sentinel convention.
    assert suffix_array(np.zeros(5, dtype=np.uint8)).tolist() == [4, 3, 2, 1, 0]


@settings(max_examples=60)
@given(texts)
def test_matches_brute_force(text):
    assert suffix_array(text).tolist() == brute_suffix_array(text)


@settings(max_examples=60)
@given(texts)
def test_is_permutation(text):
    sa = suffix_array(text)
    assert sorted(sa.tolist()) == list(range(len(text)))


@settings(max_examples=40)
@given(texts)
def test_bwt_matches_definition(text):
    """bwt[r] is the character preceding the r-th smallest suffix of
    text + sentinel (cyclically), with the sentinel suffix as row 0."""
    sa = suffix_array(text)
    bwt = bwt_from_sa(text, sa, sentinel=4)
    assert np.count_nonzero(bwt == 4) == 1
    n = len(text)
    logical = list(text) + [4]
    sa_full = [n] + sa.tolist()
    expected = [logical[(p - 1) % (n + 1)] for p in sa_full]
    assert bwt.tolist() == expected


def test_bwt_length_and_sentinel_row():
    text = np.array([0, 1, 2, 3, 0, 1], dtype=np.uint8)
    sa = suffix_array(text)
    bwt = bwt_from_sa(text, sa, sentinel=4)
    assert bwt.size == text.size + 1
    # The sentinel lands at the row of the suffix starting at 0.
    row = int(np.nonzero(bwt == 4)[0][0])
    assert sa[row - 1] == 0
