"""End-to-end alignment pipeline tests."""

import pytest

from repro.extend import ReadAligner, SeedExConfig, SeedExModel
from repro.extend.seedex import ExtensionWorkload
from repro.seeding import SeedingParams
from repro.sequence import GenomeSimulator, ReadSimulator, Strand


@pytest.fixture(scope="module")
def setup():
    from repro.fmindex import FmdIndex, FmdSeedingEngine
    # Mild repeat content so most reads map uniquely.
    sim = GenomeSimulator(seed=91, interspersed_fraction=0.08,
                          segdup_fraction=0.02)
    ref = sim.generate(6000)
    engine = FmdSeedingEngine(FmdIndex(ref))
    aligner = ReadAligner(ref, engine, SeedingParams(min_seed_len=12))
    return ref, aligner


def test_perfect_reads_align_to_origin(setup):
    ref, aligner = setup
    reads = ReadSimulator(ref, read_length=80, error_read_fraction=0.0,
                          seed=92).simulate(30)
    correct = 0
    for read in reads:
        out = aligner.align(read.codes, read.name)
        assert out.alignment is not None
        at_origin = (abs(out.alignment.position - read.origin) <= 2
                     and out.alignment.strand == read.strand)
        # A full-score alignment elsewhere is a genuine multi-map (the
        # read was sampled from a repeat copy), not an aligner error.
        multimap = out.alignment.score == len(read.codes)
        if at_origin or multimap:
            correct += 1
    assert correct >= 26


def test_error_reads_still_align(setup):
    ref, aligner = setup
    reads = ReadSimulator(ref, read_length=80, error_read_fraction=1.0,
                          substitution_rate=0.02, seed=93).simulate(20)
    mapped = 0
    correct = 0
    for read in reads:
        out = aligner.align(read.codes, read.name)
        if out.alignment and out.alignment.is_mapped:
            mapped += 1
            if (abs(out.alignment.position - read.origin) <= 2
                    and out.alignment.strand == read.strand):
                correct += 1
    assert mapped >= 18
    assert correct >= 15


def test_alignment_engines_agree(setup):
    """ERT-backed alignment must equal FMD-backed alignment (the paper's
    end-to-end binary-compatibility claim)."""
    from repro.core import ErtConfig, ErtSeedingEngine, build_ert
    ref, fmd_aligner = setup
    ert_engine = ErtSeedingEngine(build_ert(ref, ErtConfig(
        k=6, max_seed_len=120, table_threshold=32, table_x=3)))
    ert_aligner = ReadAligner(ref, ert_engine, SeedingParams(min_seed_len=12))
    reads = ReadSimulator(ref, read_length=80, seed=94).simulate(15)
    for read in reads:
        a = fmd_aligner.align(read.codes, read.name)
        b = ert_aligner.align(read.codes, read.name)
        assert (a.alignment is None) == (b.alignment is None)
        if a.alignment:
            assert a.alignment == b.alignment
        assert a.n_seeds == b.n_seeds


def test_outcome_workload_populated(setup):
    ref, aligner = setup
    reads = ReadSimulator(ref, read_length=80, seed=95).simulate(5)
    for read in reads:
        out = aligner.align(read.codes)
        assert out.n_seeds >= 1
        assert out.n_chains >= 1
        total = out.workload.sw_extensions + out.workload.edit_checks
        assert total >= 1


def test_random_read_usually_unmapped(setup):
    import numpy as np
    ref, aligner = setup
    rng = np.random.default_rng(96)
    unmapped = 0
    for _ in range(10):
        junk = rng.integers(0, 4, size=80, dtype=np.uint8)
        out = aligner.align(junk)
        if out.alignment is None or out.alignment.score < 40:
            unmapped += 1
    assert unmapped >= 8


def test_seedex_model_throughput():
    model = SeedExModel(SeedExConfig())
    workloads = []
    for _ in range(100):
        w = ExtensionWorkload()
        w.add_sw(101)
        w.add_edit(101)
        workloads.append(w)
    tput = model.throughput_reads_per_s(workloads)
    assert tput > 0
    # Doubling the lanes must not reduce throughput.
    wide = SeedExModel(SeedExConfig(lanes=16))
    assert wide.throughput_reads_per_s(workloads) >= tput


def test_seedex_empty_workloads():
    model = SeedExModel()
    assert model.throughput_reads_per_s([]) == float("inf")


def test_seedex_config_validation():
    with pytest.raises(ValueError):
        SeedExConfig(lanes=0)


def test_seedex_cycles_monotone_in_rows():
    model = SeedExModel()
    small = ExtensionWorkload()
    small.add_sw(50)
    big = ExtensionWorkload()
    big.add_sw(150)
    assert model.cycles_for(big) > model.cycles_for(small)
