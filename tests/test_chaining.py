"""Tests for colinear seed chaining."""

import pytest

from repro.extend import chain_seeds
from repro.extend.chaining import Anchor, Chain
from repro.seeding import Seed


def seed(start, length, hits):
    return Seed(read_start=start, length=length, hits=tuple(hits),
                hit_count=len(hits))


def test_colinear_seeds_form_one_chain():
    seeds = [seed(0, 10, [100]), seed(12, 10, [112]), seed(25, 10, [125])]
    chains = chain_seeds(seeds)
    assert len(chains) == 1
    assert len(chains[0].anchors) == 3
    assert chains[0].score == 30


def test_distant_hits_split_chains():
    seeds = [seed(0, 10, [100, 5000])]
    chains = chain_seeds(seeds)
    assert len(chains) == 2


def test_diagonal_drift_limit():
    # Second anchor is colinear-ish but drifted by more than the limit.
    seeds = [seed(0, 10, [100]), seed(10, 10, [200])]
    chains = chain_seeds(seeds, max_diag_drift=20)
    assert len(chains) == 2


def test_small_indel_absorbed():
    # 3 bp drift (a small indel) stays in one chain.
    seeds = [seed(0, 10, [100]), seed(12, 10, [115])]
    chains = chain_seeds(seeds, max_diag_drift=20)
    assert len(chains) == 1


def test_chains_sorted_by_score():
    seeds = [seed(0, 30, [100]), seed(50, 10, [5000])]
    chains = chain_seeds(seeds)
    assert chains[0].score >= chains[1].score


def test_overlapping_anchor_coverage_not_double_counted():
    chain = Chain(anchors=[Anchor(0, 100, 10), Anchor(5, 105, 10)])
    assert chain.score == 15


def test_truncated_hit_lists_contribute_nothing():
    seeds = [seed(0, 10, [])]
    assert chain_seeds(seeds) == []


def test_max_chains_cap():
    seeds = [seed(0, 10, [i * 1000 for i in range(30)])]
    chains = chain_seeds(seeds, max_chains=5)
    assert len(chains) == 5


def test_chain_properties():
    chain = Chain(anchors=[Anchor(2, 102, 10), Anchor(14, 114, 8)])
    assert chain.ref_start == 102
    assert chain.read_start == 2
    assert chain.diagonal == 100


def test_unknown_method_rejected():
    with pytest.raises(ValueError):
        chain_seeds([seed(0, 10, [100])], method="magic")


def test_dp_matches_greedy_on_clean_colinear():
    seeds = [seed(0, 10, [100]), seed(12, 10, [112]), seed(25, 10, [125])]
    greedy = chain_seeds(seeds, method="greedy")
    dp = chain_seeds(seeds, method="dp")
    assert len(dp) == 1
    assert dp[0].score == greedy[0].score == 30
    assert len(dp[0].anchors) == 3


def test_dp_empty():
    assert chain_seeds([], method="dp") == []


def test_dp_anchors_are_partitioned():
    """Every anchor belongs to exactly one DP chain."""
    seeds = [seed(0, 10, [100, 900]), seed(12, 10, [112, 912]),
             seed(30, 10, [400])]
    chains = chain_seeds(seeds, method="dp", max_chains=None)
    total = sum(len(c.anchors) for c in chains)
    assert total == 5


def test_dp_chain_is_colinear():
    seeds = [seed(0, 10, [100, 500]), seed(12, 10, [112, 512]),
             seed(24, 10, [124])]
    for chain in chain_seeds(seeds, method="dp"):
        for a, b in zip(chain.anchors, chain.anchors[1:]):
            assert a.ref_end <= b.ref_start
            assert a.read_end <= b.read_start


def test_dp_tolerates_spurious_anchor():
    """A noise anchor interleaved on the diagonal must not break the
    main chain (the greedy chainer can absorb it and stall)."""
    seeds = [seed(0, 10, [100]), seed(12, 10, [112]),
             seed(24, 10, [124]),
             seed(5, 10, [400])]  # spurious hit elsewhere
    dp = chain_seeds(seeds, method="dp")
    assert dp[0].score == 30


def test_dp_penalizes_diagonal_drift():
    """Two placements for the second seed: the drift-free one chains."""
    seeds = [seed(0, 20, [100]), seed(25, 20, [125, 160])]
    dp = chain_seeds(seeds, method="dp")
    best = dp[0]
    assert len(best.anchors) == 2
    assert best.anchors[1].ref_start == 125


def test_import_of_dp_symbol():
    from repro.extend.chaining import chain_seeds_dp
    assert chain_seeds_dp([]) == []
