"""Tests for index census utilities (Fig 8, §III-A3, §III-E claims)."""

import numpy as np

from repro.core import (
    ErtConfig,
    build_ert,
    depth_census,
    hit_distribution,
    index_census,
)
from repro.sequence import GenomeSimulator, Reference


def test_index_census_partitions_entries(ert_index):
    census = index_census(ert_index)
    assert census.n_entries == 4 ** ert_index.config.k
    assert (census.empty + census.leaf + census.tree + census.table
            == census.n_entries)
    assert 0.0 <= census.empty_fraction < 1.0
    # Every window of the double-strand text is an occurrence.
    expected = ert_index.text.size - ert_index.config.k + 1
    assert census.total_occurrences == expected


def test_hit_distribution_monotone(ert_index):
    dist = hit_distribution(ert_index)
    counts = [n for _, n in dist]
    assert counts == sorted(counts, reverse=True)
    assert dist[0][1] > 0


def test_hit_distribution_is_skewed(ert_index):
    """Fig 8: few k-mers carry many hits."""
    dist = dict(hit_distribution(ert_index, (1, 20)))
    assert dist[20] < dist[1] / 4


def test_depth_census_counts_leaves(ert_index):
    census = depth_census(ert_index)
    assert census.total_leaves > 0
    assert all(d >= 0 for d in census.leaf_depths)
    assert census.fraction_at_most(ert_index.config.max_ext) == 1.0
    assert census.fraction_at_most(-1) == 0.0


def test_depth_census_mostly_shallow(ert_index):
    """§III-E: trees are shallow (83 % of leaves at depth <= 8 at human
    scale; our synthetic genomes behave the same way)."""
    census = depth_census(ert_index)
    assert census.fraction_at_most(8) > 0.5


def test_empty_fraction_grows_with_k():
    ref = GenomeSimulator(seed=61).generate(1000)
    small = index_census(build_ert(ref, ErtConfig(k=4, max_seed_len=40)))
    large = index_census(build_ert(ref, ErtConfig(k=7, max_seed_len=40)))
    assert large.empty_fraction > small.empty_fraction
