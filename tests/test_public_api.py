"""The public API surface: everything advertised must import and work."""

import importlib

import pytest


def test_top_level_reexports():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__


@pytest.mark.parametrize("module", [
    "repro.sequence", "repro.fmindex", "repro.seeding", "repro.core",
    "repro.memsim", "repro.accel", "repro.extend", "repro.analysis",
    "repro.baselines", "repro.cli",
])
def test_subpackage_all_is_importable(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name}"


def test_minimal_workflow_through_top_level():
    """The README quickstart, via top-level imports only."""
    import repro

    reference = repro.GenomeSimulator(seed=7).generate(1500)
    engine = repro.ErtSeedingEngine(
        repro.build_ert(reference, repro.ErtConfig(k=5, max_seed_len=80)))
    read = repro.ReadSimulator(reference, read_length=50,
                               seed=8).simulate(1)[0]
    result = repro.seed_read(engine, read.codes,
                             repro.SeedingParams(min_seed_len=10))
    assert result.all_seeds


def test_examples_run(tmp_path):
    """The fast examples must execute cleanly end to end."""
    import subprocess
    import sys
    from pathlib import Path

    examples = Path(__file__).parent.parent / "examples"
    for script in ("smem_walkthrough.py", "quickstart.py"):
        proc = subprocess.run([sys.executable, str(examples / script)],
                              capture_output=True, text=True, timeout=600)
        assert proc.returncode == 0, proc.stderr[-2000:]
