"""Tests for ambiguous-base handling (§V host path)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seeding import SeedingParams, seed_read
from repro.seeding.ambiguous import seed_ambiguous_read
from repro.sequence.alphabet import decode, encode
from repro.sequence.ambiguity import (
    IUPAC,
    is_ambiguous,
    sanitize_reference,
    split_unambiguous_segments,
)


def test_is_ambiguous():
    assert not is_ambiguous("ACGT")
    assert not is_ambiguous("acgt")
    assert is_ambiguous("ACGN")
    assert is_ambiguous("ACGR")


def test_sanitize_pure_sequence_unchanged():
    assert sanitize_reference("acGT") == "ACGT"


def test_sanitize_respects_iupac_sets():
    out = sanitize_reference("RYSWKMBDHVN" * 20, seed=3)
    for ch, original in zip(out, "RYSWKMBDHVN" * 20):
        assert ch in IUPAC[original]


def test_sanitize_deterministic():
    seq = "ACGNNNRYACGT"
    assert sanitize_reference(seq, seed=1) == sanitize_reference(seq, seed=1)
    # Different seeds may differ (not guaranteed per-position, so check
    # over a long run).
    long = "N" * 500
    assert sanitize_reference(long, seed=1) != sanitize_reference(long,
                                                                  seed=2)


def test_split_segments():
    segs = split_unambiguous_segments("ACGNNTTA")
    assert [(off, decode(codes)) for off, codes in segs] == \
        [(0, "ACG"), (5, "TTA")]
    assert split_unambiguous_segments("NNN") == []
    segs = split_unambiguous_segments("ACGT")
    assert len(segs) == 1 and segs[0][0] == 0


@settings(max_examples=40)
@given(st.text(alphabet="ACGTN", max_size=60))
def test_split_segments_cover_exactly_the_acgt_runs(seq):
    segments = split_unambiguous_segments(seq)
    rebuilt = list(seq.upper())
    for off, codes in segments:
        for i, c in enumerate(codes):
            assert rebuilt[off + i] == "ACGT"[int(c)]
            rebuilt[off + i] = "*"
    assert all(ch != "*" or True for ch in rebuilt)
    assert not any(ch in "ACGT" for ch in rebuilt if ch != "*")


def test_seed_ambiguous_read_matches_per_segment(oracle, reference, params):
    """Seeds of an N-containing read = union of its segments' seeds."""
    from repro.sequence import ReadSimulator
    read = ReadSimulator(reference, read_length=60, seed=44).simulate(1)[0]
    seq = read.sequence
    broken = seq[:25] + "N" + seq[26:]
    result = seed_ambiguous_read(oracle, broken, params)

    left = seed_read(oracle, encode(seq[:25]), params)
    right = seed_read(oracle, encode(seq[26:]), params)
    expected = sorted(
        [(s.read_start, s.length) for s in left.all_seeds]
        + [(s.read_start + 26, s.length) for s in right.all_seeds])
    got = sorted((s.read_start, s.length) for s in result.all_seeds)
    assert got == expected


def test_seed_ambiguous_pure_read_identical(ert, reference, params):
    from repro.sequence import ReadSimulator
    read = ReadSimulator(reference, read_length=60, seed=45).simulate(1)[0]
    via_ambiguous = seed_ambiguous_read(ert, read.sequence, params)
    direct = seed_read(ert, read.codes, params)
    assert via_ambiguous.key() == direct.key()


def test_all_n_read_yields_nothing(ert, params):
    result = seed_ambiguous_read(ert, "N" * 40, params)
    assert result.all_seeds == []
