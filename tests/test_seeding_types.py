"""Unit tests for seeding value types."""

import pytest

from repro.seeding import Mem, Seed, SeedingResult


def test_mem_validation():
    with pytest.raises(ValueError):
        Mem(5, 5)
    with pytest.raises(ValueError):
        Mem(-1, 3)
    with pytest.raises(ValueError):
        Mem(7, 3)


def test_mem_length_and_containment():
    outer = Mem(2, 10)
    inner = Mem(3, 9)
    assert outer.length == 8
    assert outer.contains(inner)
    assert outer.contains(outer)
    assert not inner.contains(outer)
    assert not Mem(0, 5).contains(Mem(3, 7))


def test_mem_ordering():
    assert sorted([Mem(3, 5), Mem(1, 9), Mem(1, 4)]) == [
        Mem(1, 4), Mem(1, 9), Mem(3, 5)]


def test_seed_properties():
    seed = Seed(read_start=4, length=10, hits=(7, 20), hit_count=2)
    assert seed.read_end == 14
    assert seed.interval == Mem(4, 14)


def test_result_all_seeds_dedup_and_sort():
    a = Seed(0, 10, (1,), 1)
    dup = Seed(0, 10, (1,), 1)
    b = Seed(5, 12, (2,), 1)
    result = SeedingResult(smems=[b, a], reseed_seeds=[dup], last_seeds=[])
    seeds = result.all_seeds
    assert [(s.read_start, s.length) for s in seeds] == [(0, 10), (5, 12)]


def test_result_key_is_canonical():
    a = Seed(0, 10, (1, 5), 2)
    b = Seed(5, 12, (2,), 1)
    r1 = SeedingResult(smems=[a, b])
    r2 = SeedingResult(smems=[b], last_seeds=[a])
    assert r1.key() == r2.key()
