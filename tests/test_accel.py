"""Tests for the accelerator simulator: configs, op capture, event model."""

import pytest

from repro.accel import (
    ASIC_AREA_MM2,
    ASIC_POWER_W,
    FPGA_RESOURCES,
    AcceleratorSim,
    GENAX_ROW,
    Op,
    asic_config,
    capture_ert_jobs,
    capture_reuse_jobs,
    efficiency_row,
    fpga_config,
)
from repro.accel.config import PHASE_TO_PE, microblaze_config
from repro.seeding import SeedingParams


def test_table3_constants_sum():
    parts = (ASIC_AREA_MM2["seeding_machines"]
             + ASIC_AREA_MM2["kmer_sorter_metadata"]
             + ASIC_AREA_MM2["kmer_reuse_cache"])
    assert parts == pytest.approx(ASIC_AREA_MM2["total"], rel=0.01)
    assert ASIC_POWER_W["system_total"] == pytest.approx(
        ASIC_POWER_W["accelerator_total"] + ASIC_POWER_W["dram"], rel=0.01)


def test_table4_totals_consistent():
    total = FPGA_RESOURCES["total"]
    accel = FPGA_RESOURCES["seeding_accelerator_total"]
    shell = FPGA_RESOURCES["aws_shell"]
    for res in ("lut", "bram", "uram"):
        assert total[res] == pytest.approx(accel[res] + shell[res], abs=0.1)


def test_config_validation():
    with pytest.raises(ValueError):
        asic_config().scaled(n_machines=0)
    with pytest.raises(ValueError):
        asic_config().scaled(clock_hz=0)


def test_phase_mapping_covers_decode_table():
    for phase in asic_config().decode_cycles:
        assert phase in PHASE_TO_PE


def test_microblaze_slower_decode():
    base = fpga_config()
    mb = microblaze_config()
    for phase, cycles in base.decode_cycles.items():
        assert mb.decode_cycles[phase] == cycles * 12


def _toy_jobs(n_jobs=32, ops_per_job=20, stride=4096):
    jobs = []
    for j in range(n_jobs):
        jobs.append([Op(cycles=2, addr=(j * ops_per_job + i) * stride,
                        phase="tree_traversal")
                     for i in range(ops_per_job)])
    return jobs


def test_sim_runs_and_reports():
    res = AcceleratorSim(asic_config()).run(_toy_jobs())
    assert res.cycles > 0
    assert res.jobs == 32 and res.reads == 32
    assert res.reads_per_second > 0
    assert res.dram_page_opens + res.dram_row_hits == 32 * 20
    util = res.pe_utilization(asic_config().pes)
    assert all(0.0 <= u <= 1.0 for u in util.values())


def test_sim_empty_jobs():
    res = AcceleratorSim(asic_config()).run([])
    assert res.cycles == 0
    assert res.reads_per_second == float("inf")


def test_sim_skips_empty_job_lists():
    res = AcceleratorSim(asic_config()).run([[], _toy_jobs(1)[0], []])
    assert res.jobs == 1


def test_more_machines_is_not_slower():
    jobs = _toy_jobs(n_jobs=64)
    few = AcceleratorSim(asic_config().scaled(n_machines=2)).run(jobs)
    many = AcceleratorSim(asic_config().scaled(n_machines=16)).run(jobs)
    assert many.cycles <= few.cycles


def test_more_contexts_is_not_slower():
    jobs = _toy_jobs(n_jobs=64)
    one = AcceleratorSim(asic_config().scaled(contexts_per_machine=1)).run(jobs)
    many = AcceleratorSim(asic_config().scaled(contexts_per_machine=16)).run(jobs)
    assert many.cycles <= one.cycles


def test_context_switching_hides_latency():
    """With many contexts, doubling DRAM latency must hurt much less
    than with one context (the §IV-A premise)."""
    cfg = asic_config()
    slow_dram = cfg.dram.__class__(channels=cfg.dram.channels,
                                   banks_per_channel=cfg.dram.banks_per_channel,
                                   row_size=cfg.dram.row_size,
                                   t_hit=cfg.dram.t_hit * 4,
                                   t_miss=cfg.dram.t_miss * 4,
                                   cycles_per_line=cfg.dram.cycles_per_line)
    jobs = _toy_jobs(n_jobs=128)

    def ratio(contexts):
        fast = AcceleratorSim(cfg.scaled(
            contexts_per_machine=contexts)).run(jobs).cycles
        slow = AcceleratorSim(cfg.scaled(
            contexts_per_machine=contexts, dram=slow_dram)).run(jobs).cycles
        return slow / fast

    assert ratio(32) < ratio(1)


def test_capture_ert_jobs(ert_index, read_codes, params):
    cfg = asic_config()
    jobs = capture_ert_jobs(ert_index, read_codes[:6], params,
                            cfg.decode_cycles)
    assert len(jobs) == 6
    for job in jobs:
        assert job, "every read produces memory traffic"
        for op in job:
            assert op.cycles >= 1
            assert op.phase in PHASE_TO_PE


def test_capture_reuse_jobs(ert_index, read_codes, params):
    cfg = asic_config()
    jobs, stats = capture_reuse_jobs(ert_index, read_codes[:6], params,
                                     cfg.decode_cycles)
    assert stats.reads == 6
    # More jobs than reads: per-read phase-1 jobs plus k-mer group jobs.
    assert len(jobs) > 6
    total_ops = sum(len(j) for j in jobs)
    assert total_ops > 0


def test_capture_leaves_tracer_detached(ert_index, read_codes, params):
    capture_ert_jobs(ert_index, read_codes[:2], params,
                     asic_config().decode_cycles)
    assert ert_index.tracer is None


def test_efficiency_rows():
    row = efficiency_row("ASIC-ERT", 5e6, "asic")
    assert row.area_mm2 == ASIC_AREA_MM2["total"]
    assert row.kreads_per_s_per_mm2 == pytest.approx(
        5e6 / 1e3 / ASIC_AREA_MM2["total"])
    assert row.reads_per_mj == pytest.approx(
        5e6 / (ASIC_POWER_W["system_total"] * 1e3))
    cpu = efficiency_row("CPU", 1e6, "cpu")
    assert cpu.area_mm2 > row.area_mm2
    with pytest.raises(ValueError):
        efficiency_row("x", 1.0, "gpu")
    assert GENAX_ROW["kreads_per_s_per_mm2"] == 24.23


def test_sim_publishes_telemetry_when_enabled():
    from repro import telemetry

    jobs = _toy_jobs(8)
    AcceleratorSim(asic_config()).run(jobs)
    assert telemetry.registry().is_empty  # disabled by default -> no-op
    telemetry.reset()
    telemetry.enable()
    try:
        res = AcceleratorSim(asic_config()).run(jobs)
        snap = telemetry.snapshot()
        prefix = f"accel.{telemetry.sanitize(asic_config().name)}"
        assert snap["gauges"][f"{prefix}.cycles"] == res.cycles
        assert snap["counters"][f"{prefix}.ops.tree-traversal"] == \
            sum(len(job) for job in jobs)
        assert snap["counters"][f"{prefix}.ops.tree-traversal.cycles"] == \
            sum(op.cycles for job in jobs for op in job)
        assert f"{prefix}.dram.page_opens" in snap["gauges"]
    finally:
        telemetry.disable()
        telemetry.reset()
