"""Tests for the SIMT divergence analysis (§VII claim)."""

import pytest

from repro.analysis.divergence import DivergenceReport, measure_divergence
from repro.sequence import ReadSimulator


def test_divergence_report_defaults():
    report = DivergenceReport()
    assert report.control_coherence == 1.0
    assert report.transactions_per_step == 0.0


def test_measure_divergence_basic(ert_index, read_codes):
    report = measure_divergence(ert_index, read_codes, warp_size=8)
    assert report.warps >= 1
    assert report.steps > 0
    assert 0.0 < report.control_coherence <= 1.0
    # The §VII claim: warp lanes scatter across trees, so each lockstep
    # step needs several memory transactions, not one coalesced access.
    assert report.transactions_per_step > 2.0


def test_identical_reads_are_coherent(ert_index, read_codes):
    """A warp of copies of one read walks one tree in lockstep: the
    counter-factual that would make GPUs viable."""
    warp = [read_codes[0].copy() for _ in range(8)]
    report = measure_divergence(ert_index, warp, warp_size=8)
    assert report.control_coherence == 1.0
    assert report.transactions_per_step == pytest.approx(1.0)


def test_diverse_warp_less_coherent_than_identical(ert_index, reference):
    reads = [r.codes for r in
             ReadSimulator(reference, read_length=60, seed=55).simulate(32)]
    diverse = measure_divergence(ert_index, reads, warp_size=32)
    identical = measure_divergence(ert_index,
                                   [reads[0].copy() for _ in range(32)],
                                   warp_size=32)
    assert diverse.transactions_per_step > identical.transactions_per_step
