"""Tests for banded Smith-Waterman and banded edit distance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extend import (
    ScoringScheme,
    banded_edit_distance,
    banded_smith_waterman,
)
from repro.sequence.alphabet import encode

seqs = st.text(alphabet="ACGT", min_size=1, max_size=40)


def sw(q, t, band=41, scheme=None):
    return banded_smith_waterman(encode(q), encode(t), scheme, band)


def test_perfect_match():
    res = sw("ACGTACGT", "ACGTACGT")
    assert res.score == 8
    assert res.query_end == 8 and res.target_end == 8


def test_local_alignment_ignores_flanks():
    res = sw("ACGTACGT", "TTTTACGTACGTTTTT")
    assert res.score == 8


def test_single_mismatch():
    scheme = ScoringScheme()
    res = sw("ACGTACGT", "ACGTCCGT")
    # Either align through the mismatch or take the best exact block.
    assert res.score == max(8 * scheme.match + scheme.mismatch - scheme.match,
                            4)


def test_gap_scoring():
    # Query has one extra base: best local alignment opens one gap.
    res = sw("ACGTTACG", "ACGTACG")
    scheme = ScoringScheme()
    expected_with_gap = 7 * scheme.match + scheme.gap_open
    assert res.score >= max(expected_with_gap, 4)


def test_empty_inputs():
    res = banded_smith_waterman(np.empty(0, dtype=np.uint8), encode("ACG"))
    assert res.score == 0 and res.cells == 0


def test_band_limits_cells():
    q = "ACGT" * 10
    wide = sw(q, q, band=41)
    narrow = sw(q, q, band=5)
    assert narrow.cells < wide.cells
    assert narrow.score == wide.score  # diagonal alignment fits any band


def test_band_can_miss_big_shift():
    # Target shifted by more than half a band: banded score must drop.
    q = "ACGTACGTACGTACGTACGT"
    t = "T" * 15 + q
    assert sw(q, t, band=5).score < sw(q, t, band=41).score


def test_scoring_validation():
    with pytest.raises(ValueError):
        ScoringScheme(match=0)
    with pytest.raises(ValueError):
        ScoringScheme(mismatch=1)
    with pytest.raises(ValueError):
        banded_smith_waterman(encode("A"), encode("A"), band=0)


def test_score_never_negative():
    assert sw("AAAA", "TTTT").score == 0


@settings(max_examples=40)
@given(seqs)
def test_self_alignment_is_full_score(seq):
    assert sw(seq, seq).score == len(seq)


@settings(max_examples=40)
@given(seqs, seqs)
def test_score_bounded_by_shorter_sequence(a, b):
    assert sw(a, b).score <= min(len(a), len(b))


def brute_edit(a, b):
    m, n = len(a), len(b)
    dp = list(range(n + 1))
    for i in range(1, m + 1):
        prev = dp[0]
        dp[0] = i
        for j in range(1, n + 1):
            cur = dp[j]
            dp[j] = min(prev + (a[i - 1] != b[j - 1]), dp[j] + 1,
                        dp[j - 1] + 1)
            prev = cur
    return dp[n]


def test_edit_distance_exact_cases():
    assert banded_edit_distance(encode("ACGT"), encode("ACGT")) == 0
    assert banded_edit_distance(encode("ACGT"), encode("ACCT")) == 1
    assert banded_edit_distance(encode("ACGT"), encode("AGT")) == 1


def test_edit_distance_band_overflow_returns_none():
    assert banded_edit_distance(encode("A" * 30), encode("T" * 30),
                                band=5) is None
    assert banded_edit_distance(encode("A" * 30), encode("A"), band=5) is None


def test_edit_distance_rejects_bad_band():
    with pytest.raises(ValueError):
        banded_edit_distance(encode("A"), encode("A"), band=0)


@settings(max_examples=40)
@given(seqs, seqs)
def test_edit_distance_matches_brute_force_when_certified(a, b):
    got = banded_edit_distance(encode(a), encode(b), band=41)
    expected = brute_edit(a, b)
    if got is not None:
        assert got == expected
    else:
        assert expected > 20  # only uncertifiable distances are refused
