"""Failure injection: the verification harness must catch corruption.

The paper's bit-equivalence guarantee is only as good as the machinery
that checks it; these tests plant defects in an ERT and assert the
cross-engine comparison actually fires.
"""

import numpy as np
import pytest

from repro.core import ErtConfig, ErtSeedingEngine, build_ert
from repro.core.nodes import LeafNode, UniformNode
from repro.seeding import OracleEngine, SeedingParams, compare_engines
from repro.sequence import GenomeSimulator, ReadSimulator


@pytest.fixture()
def setting():
    ref = GenomeSimulator(seed=151).generate(2500)
    reads = [r.codes for r in
             ReadSimulator(ref, read_length=60, seed=152).simulate(12)]
    params = SeedingParams(min_seed_len=10)
    oracle = OracleEngine(ref)
    return ref, reads, params, oracle


def _fresh_engine(ref):
    return ErtSeedingEngine(build_ert(ref, ErtConfig(k=5, max_seed_len=90)))


def test_clean_index_is_equivalent(setting):
    ref, reads, params, oracle = setting
    report = compare_engines(oracle, _fresh_engine(ref), reads, params)
    assert report.equivalent


def test_spurious_lep_bits_are_harmless(setting):
    """Setting *extra* LEP bits only adds backward searches whose MEMs
    the containment filter discards: output must stay identical.  (This
    is exactly why the LEP optimization is safe to precompute.)"""
    ref, reads, params, oracle = setting
    engine = _fresh_engine(ref)
    engine.index.lep_bits[:] = (1 << (engine.index.config.k - 1)) - 1
    report = compare_engines(oracle, engine, reads, params)
    assert report.equivalent


def test_corrupted_kmer_counts_detected(setting):
    """Wrong occurrence counts change LAST-round selectivity decisions
    and reported hit counts."""
    ref, reads, params, oracle = setting
    engine = _fresh_engine(ref)
    counts = engine.index.kmer_count
    counts[counts > 0] = 1
    report = compare_engines(oracle, engine, reads, params)
    assert not report.equivalent


def test_corrupted_prefix_len_detected(setting):
    """Truncated prefix lengths end forward searches too early."""
    ref, reads, params, oracle = setting
    engine = _fresh_engine(ref)
    engine.index.prefix_len[:] = np.minimum(engine.index.prefix_len, 2)
    report = compare_engines(oracle, engine, reads, params)
    assert not report.equivalent


def test_corrupted_leaf_position_detected(setting):
    """A leaf pointing at the wrong reference location yields wrong hits
    (and wrong ref-fetch comparisons)."""
    ref, reads, params, oracle = setting
    engine = _fresh_engine(ref)
    corrupted = 0
    for root in engine.index.roots.values():
        stack = [root]
        while stack and corrupted < 200:
            node = stack.pop()
            if isinstance(node, LeafNode) and node.positions[0] > 100:
                node.positions = tuple(p - 1 for p in node.positions)
                corrupted += 1
            stack.extend(node.children_nodes())
    assert corrupted > 0
    report = compare_engines(oracle, engine, reads, params)
    assert not report.equivalent


def test_corrupted_uniform_chars_detected(setting):
    """Mutated UNIFORM strings change match lengths."""
    ref, reads, params, oracle = setting
    engine = _fresh_engine(ref)
    mutated = 0
    for root in engine.index.roots.values():
        stack = [root]
        while stack and mutated < 200:
            node = stack.pop()
            if isinstance(node, UniformNode) and node.chars.size >= 2:
                node.chars = (node.chars + 1) % 4
                mutated += 1
            stack.extend(node.children_nodes())
    assert mutated > 0
    report = compare_engines(oracle, engine, reads, params)
    assert not report.equivalent
