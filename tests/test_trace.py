"""Unit tests for address spaces and memory tracing."""

import pytest

from repro.memsim import AddressSpace, MemoryTracer


def test_allocation_is_aligned_and_disjoint():
    space = AddressSpace(alignment=2048)
    a = space.allocate("a", 100)
    b = space.allocate("b", 5000)
    c = space.allocate("c", 1)
    for region in (a, b, c):
        assert region.base % 2048 == 0
    assert a.end <= b.base and b.end <= c.base
    assert space.total_size >= c.end


def test_duplicate_region_rejected():
    space = AddressSpace()
    space.allocate("x", 10)
    with pytest.raises(ValueError):
        space.allocate("x", 10)


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        AddressSpace().allocate("x", -1)


def test_bad_alignment_rejected():
    with pytest.raises(ValueError):
        AddressSpace(alignment=100)


def test_find_region():
    space = AddressSpace()
    a = space.allocate("a", 100)
    assert space.find(a.base + 50) is a
    assert space.find(a.base + 5000) is None


def test_tracer_counts_lines():
    tracer = MemoryTracer(line_size=64)
    tracer.access(0, 8, "p")        # 1 line
    tracer.access(60, 8, "p")       # straddles 2 lines
    tracer.access(128, 64, "q")     # exactly 1 line
    assert tracer.by_phase["p"].requests == 3
    assert tracer.by_phase["p"].bytes == 3 * 64
    assert tracer.by_phase["q"].requests == 1
    assert tracer.total_requests == 4
    assert tracer.total_bytes == 4 * 64


def test_tracer_rejects_zero_size():
    with pytest.raises(ValueError):
        MemoryTracer().access(0, 0, "p")


def test_tracer_rejects_bad_line_size():
    with pytest.raises(ValueError):
        MemoryTracer(line_size=48)


def test_tracer_keep_trace():
    tracer = MemoryTracer(keep_trace=True)
    tracer.access(100, 8, "p", region="r")
    assert len(tracer.trace) == 1
    event = tracer.trace[0]
    assert event.addr == 64 and event.size == 64
    assert event.phase == "p" and event.region == "r"


def test_tracer_sinks_receive_line_events():
    received = []

    class Sink:
        def on_access(self, event):
            received.append(event.addr)

    tracer = MemoryTracer()
    tracer.sinks.append(Sink())
    tracer.access(70, 128, "p")
    assert received == [64, 128, 192]


def test_tracer_reset_and_snapshot():
    tracer = MemoryTracer(keep_trace=True)
    tracer.access(0, 8, "p")
    snap = tracer.snapshot()
    tracer.access(0, 8, "p")
    assert snap["p"].requests == 1
    assert tracer.by_phase["p"].requests == 2
    tracer.reset()
    assert tracer.total_requests == 0
    assert not tracer.trace
