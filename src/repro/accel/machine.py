"""Event-driven cycle model of the seeding accelerator (§IV).

Each *job* (a read's seeding, or a k-mer group's backward extensions in
the reuse configuration) occupies one hardware context on a seeding
machine.  Processing an op takes a compute burst on a processing element
of the op's class (Index Fetcher / Tree Walker / Leaf Gatherer, §IV-B)
followed by a DRAM access; the context then sleeps until the memory
response arrives, and the PE immediately switches to another ready
context -- the fine-grained multiplexing that hides DRAM latency (§II-C,
§IV-A).

Jobs are distributed round-robin across seeding machines; each machine
admits at most ``contexts_per_machine`` jobs at a time.  DRAM is the
shared :class:`~repro.memsim.dram.DramModel`: row-buffer-aware latency
plus a per-channel bandwidth constraint.

One modelling simplification: a dispatched op commits to the earliest-free
PE of its class at dispatch time, so DRAM requests can be issued slightly
out of event order.  At the simulated concurrency (hundreds of contexts)
the effect on aggregate cycle counts is negligible.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass

from repro import telemetry
from repro.accel.config import PHASE_TO_PE, AcceleratorConfig
from repro.accel.ops import Op
from repro.memsim.dram import DramModel


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    config_name: str
    jobs: int
    reads: int
    cycles: int
    clock_hz: float
    dram_row_hits: int
    dram_page_opens: int
    pe_busy_cycles: "dict[str, int]"

    # The ERT004 exceptions below are all derived reporting rates; the
    # accounting state itself (cycles, busy cycles, page opens) is integer.

    @property
    def seconds(self) -> float:
        return self.cycles / self.clock_hz  # repro: allow(ERT004)

    @property
    def reads_per_second(self) -> float:
        if self.cycles == 0:
            return float("inf")
        return self.reads / self.seconds  # repro: allow(ERT004)

    @property
    def mreads_per_second(self) -> float:
        return self.reads_per_second / 1e6  # repro: allow(ERT004)

    def pe_utilization(self, pe_counts: "dict[str, int]") -> "dict[str, float]":
        if self.cycles == 0:
            return {cls: 0.0 for cls in pe_counts}  # repro: allow(ERT004)
        return {cls: self.pe_busy_cycles.get(cls, 0)
                / (self.cycles * count)  # repro: allow(ERT004)
                for cls, count in pe_counts.items()}


class _Machine:
    """One seeding machine: PE pools per class plus a context limit."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.contexts = config.contexts_per_machine
        self.in_flight = 0
        self.pending: "list[list[Op]]" = []
        # Earliest-free timestamps per PE, one heap per class.
        self.pe_free = {cls: [0] * count
                        for cls, count in config.pes.items()}
        for heap in self.pe_free.values():
            heapq.heapify(heap)


class AcceleratorSim:
    """Replay op-stream jobs against one accelerator configuration."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config

    def run(self, jobs: "list[list[Op]]",
            n_reads: "int | None" = None) -> SimResult:
        """Simulate ``jobs``; ``n_reads`` (defaults to the job count)
        converts cycles into reads/s for reuse-mode job lists where jobs
        are not one-per-read."""
        config = self.config
        dram = DramModel(config.dram)
        machines = [_Machine(config) for _ in range(config.n_machines)]
        busy: "dict[str, int]" = {cls: 0 for cls in config.pes}

        jobs = [job for job in jobs if job]
        for i, job in enumerate(jobs):
            machines[i % config.n_machines].pending.append(job)

        # Event heap: (time, seq, machine_idx, job, op_idx).
        events: "list" = []
        seq = 0
        finish = 0

        def admit(machine_idx: int, now: int) -> None:
            nonlocal seq
            machine = machines[machine_idx]
            while machine.pending and machine.in_flight < machine.contexts:
                job = machine.pending.pop(0)
                machine.in_flight += 1
                heapq.heappush(events, (now, seq, machine_idx, job, 0))
                seq += 1

        def dispatch(machine_idx: int, job: "list[Op]", op_idx: int,
                     now: int) -> None:
            nonlocal seq, finish
            machine = machines[machine_idx]
            op = job[op_idx]
            cls = PHASE_TO_PE.get(op.phase, "walker")
            heap = machine.pe_free[cls]
            pe_ready = heapq.heappop(heap)
            start = max(now, pe_ready)
            end = start + op.cycles
            heapq.heappush(heap, end)
            busy[cls] += op.cycles
            done = dram.access_latency(op.addr, end, op.phase)
            finish = max(finish, done)
            if op_idx + 1 < len(job):
                heapq.heappush(events, (done, seq, machine_idx, job,
                                        op_idx + 1))
                seq += 1
            else:
                machine.in_flight -= 1
                admit(machine_idx, done)

        for idx in range(config.n_machines):
            admit(idx, 0)
        while events:
            now, _seq, machine_idx, job, op_idx = heapq.heappop(events)
            dispatch(machine_idx, job, op_idx, now)

        result = SimResult(
            config_name=config.name,
            jobs=len(jobs),
            reads=n_reads if n_reads is not None else len(jobs),
            cycles=int(finish),
            clock_hz=config.clock_hz,
            dram_row_hits=dram.total.row_hits,
            dram_page_opens=dram.total.page_opens,
            pe_busy_cycles=busy,
        )
        if telemetry.enabled():
            self._publish_metrics(result, jobs, busy, dram)
        return result

    def _publish_metrics(self, result: SimResult, jobs: "list[list[Op]]",
                         busy: "dict[str, int]", dram: DramModel) -> None:
        """Per-op cycle counters and DRAM behaviour for one run, under
        ``accel.<config>.*``.  Runs once per simulation (never inside the
        event loop), so the simulator's hot path is untouched."""
        prefix = f"accel.{telemetry.sanitize(self.config.name)}"
        telemetry.set_gauge(f"{prefix}.cycles", result.cycles)
        telemetry.set_gauge(f"{prefix}.reads_per_s",
                            result.reads_per_second)
        telemetry.count(f"{prefix}.jobs", result.jobs)
        telemetry.count(f"{prefix}.reads", result.reads)
        for cls, cycles in busy.items():
            telemetry.count(f"{prefix}.pe.{telemetry.sanitize(cls)}"
                            ".busy_cycles", cycles)
        op_counts: "dict[str, int]" = defaultdict(int)
        op_cycles: "dict[str, int]" = defaultdict(int)
        for job in jobs:
            for op in job:
                op_counts[op.phase] += 1
                op_cycles[op.phase] += op.cycles
        for phase in op_counts:
            label = telemetry.sanitize(phase) or "untagged"
            telemetry.count(f"{prefix}.ops.{label}", op_counts[phase])
            telemetry.count(f"{prefix}.ops.{label}.cycles",
                            op_cycles[phase])
        dram.publish_metrics(prefix=f"{prefix}.dram")
