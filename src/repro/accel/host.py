"""Host-accelerator runtime model (§IV-E).

The paper's runtime streams 64-byte encoded read records to accelerator
DRAM over PCIe (XDMA), kicks off seeding via a control register, then
pulls SMEM results back -- with *double buffering* so PCIe transfers
overlap computation, and an overflow path for reads whose SMEMs exceed
the on-chip result buffer (flushed to an accelerator-DRAM region and
post-processed on the host).

This module turns those mechanisms into a throughput model so the paper's
end-to-end system numbers (Table VI) account for I/O, not just kernels.
"""

# ERT004 exception: a PCIe/host throughput model works in seconds and
# bytes-per-second; nothing here feeds the cycle-accurate accounting.
# repro: allow-file(ERT004)

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HostConfig:
    """Host-side transfer and post-processing parameters.

    Defaults: PCIe Gen3 x16 with realistic DMA efficiency (~12 GB/s),
    the paper's 64 B per encoded read, an average result record, and the
    2.3 KB-per-machine SMEM result buffer of Table IV.
    """

    pcie_bytes_per_s: float = 12e9
    read_record_bytes: int = 64
    result_bytes_per_read: int = 128
    result_buffer_bytes: int = 8 * 2355  # 2.3 KB x 8 machines
    #: Host-side cost to post-process one overflowing read (seconds).
    overflow_host_seconds: float = 2e-6
    batch_size: int = 100_000
    double_buffered: bool = True

    def __post_init__(self) -> None:
        if self.pcie_bytes_per_s <= 0 or self.batch_size <= 0:
            raise ValueError("bandwidth and batch size must be positive")


@dataclass(frozen=True)
class HostRunEstimate:
    """Modelled end-to-end run of one read set through the runtime."""

    n_reads: int
    seconds: float
    compute_seconds: float
    transfer_seconds: float
    overflow_reads: int

    @property
    def reads_per_second(self) -> float:
        return self.n_reads / self.seconds if self.seconds > 0 else float("inf")

    @property
    def overlap_efficiency(self) -> float:
        """1.0 means transfers are fully hidden behind compute."""
        serial = self.compute_seconds + self.transfer_seconds
        return serial / self.seconds if self.seconds > 0 else 1.0


class HostModel:
    """Throughput model of the §IV-E runtime."""

    def __init__(self, config: "HostConfig | None" = None) -> None:
        self.config = config or HostConfig()

    def transfer_seconds(self, n_reads: int) -> float:
        cfg = self.config
        per_read = cfg.read_record_bytes + cfg.result_bytes_per_read
        return n_reads * per_read / cfg.pcie_bytes_per_s

    def estimate(self, n_reads: int, accel_reads_per_s: float,
                 result_bytes_by_read: "list[int] | None" = None
                 ) -> HostRunEstimate:
        """Model a full run.

        ``result_bytes_by_read`` (e.g. measured seed-record sizes) drives
        the overflow count: a read whose results exceed its share of the
        on-chip buffer takes the §IV-E overflow path and costs host time.
        """
        cfg = self.config
        compute = n_reads / accel_reads_per_s
        transfer = self.transfer_seconds(n_reads)
        overflow_reads = 0
        overflow_cost = 0.0
        if result_bytes_by_read:
            threshold = cfg.result_buffer_bytes
            overflow_reads = sum(1 for size in result_bytes_by_read
                                 if size > threshold)
            scale = n_reads / len(result_bytes_by_read)
            overflow_cost = (overflow_reads * scale
                             * cfg.overflow_host_seconds)
            overflow_reads = int(overflow_reads * scale)

        n_batches = max(1, -(-n_reads // cfg.batch_size))
        if cfg.double_buffered:
            # Steady state: each batch costs max(compute, transfer); the
            # pipeline fill adds one leading transfer and the drain one
            # trailing one.
            per_batch = max(compute, transfer) / n_batches
            total = per_batch * n_batches + transfer / n_batches
        else:
            total = compute + transfer
        total += overflow_cost
        estimate = HostRunEstimate(n_reads=n_reads, seconds=total,
                                   compute_seconds=compute,
                                   transfer_seconds=transfer,
                                   overflow_reads=overflow_reads)
        self._publish_metrics(estimate)
        return estimate

    @staticmethod
    def _publish_metrics(estimate: HostRunEstimate) -> None:
        from repro import telemetry

        if not telemetry.enabled():
            return
        telemetry.set_gauge("accel.host.seconds", estimate.seconds)
        telemetry.set_gauge("accel.host.compute_seconds",
                            estimate.compute_seconds)
        telemetry.set_gauge("accel.host.transfer_seconds",
                            estimate.transfer_seconds)
        telemetry.set_gauge("accel.host.overflow_reads",
                            estimate.overflow_reads)
        telemetry.set_gauge("accel.host.reads_per_s",
                            estimate.reads_per_second)


def result_record_bytes(result) -> int:
    """Size of one read's seed records in the paper's output format
    (seed start, length, hit list): 8 B per seed + 4 B per hit."""
    seeds = result.all_seeds
    return sum(8 + 4 * len(seed.hits) for seed in seeds)
