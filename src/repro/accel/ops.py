"""Turning functional seeding runs into simulator op streams.

The paper's evaluation methodology (§V): "we developed a cycle-accurate
model using our software implementation and generated memory traces from
the corresponding software runs".  This module is that trace generator.

A *job* is an ordered list of :class:`Op` -- each op is a compute burst
(node decode, comparison) followed by one line-sized memory access.  For
the per-read configurations a job is one read's seeding; for the k-mer
reuse configuration phase 1 yields one job per read and phase 3 one job
per k-mer group (the accelerator processes groups back to back, §IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import ErtSeedingEngine
from repro.core.index import ErtIndex
from repro.core.reuse import KmerReuseDriver
from repro.memsim.trace import MemoryTracer
from repro.seeding.algorithm import SeedingParams, seed_read


@dataclass(frozen=True)
class Op:
    """One simulator step: ``cycles`` of PE compute, then a memory access
    at ``addr`` (line granular; ``phase`` picks the PE class and tags the
    DRAM stats)."""

    cycles: int
    addr: int
    phase: str


def _trace_to_ops(accesses, decode_cycles) -> "list[Op]":
    return [Op(cycles=decode_cycles.get(a.phase, 1), addr=a.addr,
               phase=a.phase)
            for a in accesses]


def capture_ert_jobs(index: ErtIndex, reads, params: SeedingParams,
                     decode_cycles: "dict[str, int]") -> "list[list[Op]]":
    """Per-read jobs for the ERT / ERT-PM configurations."""
    engine = ErtSeedingEngine(index)
    tracer = MemoryTracer(keep_trace=True)
    index.attach_tracer(tracer)
    jobs = []
    try:
        for read in reads:
            mark = len(tracer.trace)
            seed_read(engine, read, params)
            jobs.append(_trace_to_ops(tracer.trace[mark:], decode_cycles))
    finally:
        index.attach_tracer(None)
    return jobs


def capture_reuse_jobs(index: ErtIndex, reads, params: SeedingParams,
                       decode_cycles: "dict[str, int]",
                       cache_bytes: int = 4 * 1024 * 1024
                       ) -> "tuple[list[list[Op]], object]":
    """Jobs for the ERT-KR configuration plus the driver's reuse stats.

    The driver's unit hook splits the global trace at read boundaries
    (phase 1) and k-mer group boundaries (phase 3); reads whose traces are
    interleaved with others' stay correctly attributed because the hook
    fires synchronously between units.
    """
    engine = ErtSeedingEngine(index)
    driver = KmerReuseDriver(engine, params, cache_bytes=cache_bytes)
    tracer = MemoryTracer(keep_trace=True)
    index.attach_tracer(tracer)
    jobs = []
    mark = [0]

    def hook(_label: str) -> None:
        if len(tracer.trace) > mark[0]:
            jobs.append(_trace_to_ops(tracer.trace[mark[0]:], decode_cycles))
            mark[0] = len(tracer.trace)

    driver.unit_hook = hook
    try:
        driver.seed_batch(list(reads))
        hook("tail")
    finally:
        index.attach_tracer(None)
    return jobs, driver.last_stats
