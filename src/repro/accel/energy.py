"""Area and energy efficiency accounting (paper Table V).

Throughput comes from the simulator (ASIC) or the roofline CPU model;
area and power are constants: the paper's Table III synthesis results for
the ASIC, a two-socket Skylake estimate for the CPU baselines (Table I
hardware; package power as RAPL would report it), and ASIC-GenAx's
published efficiency row for the literature comparison.
"""

# ERT004 exception: an energy/area model is float-domain by nature
# (mm^2, W, reads/s ratios); no cycle or byte accounting lives here.
# repro: allow-file(ERT004)

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.config import ASIC_AREA_MM2, ASIC_POWER_W

#: Two-socket Intel Xeon Platinum 8124M: approximate combined die area of
#: the 18-core Skylake-SP XCC dies and a package power in line with the
#: paper's RAPL measurements.
CPU_AREA_MM2 = 1300.0
CPU_POWER_W = 175.0

#: ASIC-GenAx (Fujiki et al., ISCA 2018) as published in Table V.
GENAX_ROW = {"system": "ASIC-GenAx", "kreads_per_s_per_mm2": 24.23,
             "reads_per_mj": 379.16}


@dataclass(frozen=True)
class EfficiencyRow:
    """One Table V row."""

    system: str
    reads_per_second: float
    area_mm2: float
    power_w: float

    @property
    def kreads_per_s_per_mm2(self) -> float:
        return self.reads_per_second / 1e3 / self.area_mm2

    @property
    def reads_per_mj(self) -> float:
        """Reads per millijoule: throughput over power (1 W = 1 mJ/ms)."""
        return self.reads_per_second / (self.power_w * 1e3)


def efficiency_row(system: str, reads_per_second: float,
                   kind: str) -> EfficiencyRow:
    """Build a Table V row for ``kind`` in {"cpu", "asic"}."""
    if kind == "cpu":
        return EfficiencyRow(system, reads_per_second,
                             CPU_AREA_MM2, CPU_POWER_W)
    if kind == "asic":
        return EfficiencyRow(system, reads_per_second,
                             ASIC_AREA_MM2["total"],
                             ASIC_POWER_W["system_total"])
    raise ValueError(f"unknown system kind {kind!r}")
