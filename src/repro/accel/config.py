"""Accelerator configurations and the paper's published constants.

Two simulator configurations mirror the paper's evaluation targets:

* **ASIC** (Table III): 16 seeding machines at 1.38 GHz (limited by the
  context-memory SRAMs), 256 total contexts, 8 DRAM channels;
* **FPGA** (Table IV, AWS F1 XCVU9P): 8 seeding machines per FPGA at
  250 MHz, 4 DRAM channels per FPGA with the degraded effective
  per-channel bandwidth the paper measured (~5-8 GB/s of a 17 GB/s peak,
  because the third-party memory controller cannot prioritize same-page
  ERT accesses).

Per-PE decode latencies come from §IV-B: UNIFORM nodes take three cycles
(parallel XOR + priority encoders); leaf reference comparisons likewise;
DIVERGE decode and index/table lookups are simpler.  The MicroBlaze
softcore alternative the paper rejected (10-16x slower node decode) is
retained as a configuration for the ablation bench.
"""

# ERT004 exception: this module *is* the paper's published-constant
# tables -- areas in mm^2, powers in W, clock rates in Hz -- which are
# inherently fractional.  No cycle/byte accounting happens here.
# repro: allow-file(ERT004)

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memsim.dram import DramConfig

#: Table III -- ASIC area breakdown (mm^2, 28 nm).
ASIC_AREA_MM2 = {
    "seeding_machines": 9.598,
    "kmer_sorter_metadata": 14.94,
    "kmer_reuse_cache": 6.99,
    "total": 31.53,
}

#: Table III -- power breakdown (mW).
ASIC_POWER_W = {
    "seeding_machines": 11.768,
    "kmer_sorter_metadata": 9.594,
    "kmer_reuse_cache": 1.527,
    "accelerator_total": 22.889,
    "dram": 2.186,
    "system_total": 25.075,
}

#: Table IV -- per-FPGA resource utilization (percent of XCVU9P).
FPGA_RESOURCES = {
    "index_fu": {"lut": 0.32, "bram": 0.0, "uram": 0.0},
    "walker_fu": {"lut": 13.76, "bram": 0.0, "uram": 0.0},
    "leaf_gathering_fu": {"lut": 3.36, "bram": 0.0, "uram": 0.0},
    "command_queues": {"lut": 1.92, "bram": 6.08, "uram": 0.0},
    "context_memories": {"lut": 0.0, "bram": 15.04, "uram": 3.28},
    "control_processors": {"lut": 0.56, "bram": 0.0, "uram": 0.0},
    "data_fetcher": {"lut": 3.68, "bram": 0.0, "uram": 0.0},
    "smem_result_buffer": {"lut": 0.0, "bram": 0.0, "uram": 13.28},
    "misc": {"lut": 1.12, "bram": 0.0, "uram": 0.0},
    "seeding_machines_total": {"lut": 24.72, "bram": 21.12, "uram": 16.56},
    "kmer_sorter": {"lut": 1.95, "bram": 0.3, "uram": 26.77},
    "kmer_reuse_cache": {"lut": 10.04, "bram": 5.0, "uram": 18.33},
    "seeding_accelerator_total": {"lut": 36.71, "bram": 26.42, "uram": 61.66},
    "aws_shell": {"lut": 19.74, "bram": 12.63, "uram": 12.20},
    "total": {"lut": 56.45, "bram": 39.05, "uram": 73.86},
}

#: Which PE class serves each traffic phase (§IV-B).
PHASE_TO_PE = {
    "index_lookup": "index",
    "table_lookup": "index",
    "prefix_count": "index",
    "tree_root": "walker",
    "tree_traversal": "walker",
    "ref_fetch": "walker",
    "leaf_gather": "gather",
    "occ_lookup": "walker",
    "sa_lookup": "walker",
}


@dataclass(frozen=True)
class AcceleratorConfig:
    """One simulator target."""

    name: str
    clock_hz: float
    n_machines: int
    contexts_per_machine: int
    #: PEs per machine by class (Table IV: 1 index FU, 3 walkers, 2 leaf
    #: gatherers per seeding machine).
    pes: "dict[str, int]" = field(default_factory=lambda: {
        "index": 1, "walker": 3, "gather": 2})
    #: Decode/compute cycles per op by phase (§IV-B).
    decode_cycles: "dict[str, int]" = field(default_factory=lambda: {
        "index_lookup": 1,
        "table_lookup": 1,
        "prefix_count": 1,
        "tree_root": 2,
        "tree_traversal": 3,
        "ref_fetch": 3,
        "leaf_gather": 2,
        "occ_lookup": 4,
        "sa_lookup": 2,
    })
    dram: DramConfig = field(default_factory=DramConfig)

    def __post_init__(self) -> None:
        if self.n_machines < 1 or self.contexts_per_machine < 1:
            raise ValueError("need at least one machine and context")
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")

    def scaled(self, **changes) -> "AcceleratorConfig":
        """A copy with some fields replaced (ablation sweeps)."""
        from dataclasses import replace
        return replace(self, **changes)


def asic_config(contexts_total: int = 256) -> AcceleratorConfig:
    """The paper's ASIC: 16 seeding machines, 1.38 GHz, 8 DRAM channels."""
    machines = 16
    return AcceleratorConfig(
        name="asic",
        clock_hz=1.38e9,
        n_machines=machines,
        contexts_per_machine=max(1, contexts_total // machines),
        dram=DramConfig(channels=8, banks_per_channel=16, row_size=2048,
                        t_hit=55, t_miss=110, cycles_per_line=5),
    )


def fpga_config() -> AcceleratorConfig:
    """One AWS F1 FPGA: 8 seeding machines, 250 MHz, 4 DRAM channels with
    the degraded effective bandwidth of §VI (the f1.4xlarge has two such
    FPGAs; Fig 11's FPGA-ERT bar is the two-FPGA aggregate)."""
    return AcceleratorConfig(
        name="fpga",
        clock_hz=250e6,
        n_machines=8,
        contexts_per_machine=16,
        dram=DramConfig(channels=4, banks_per_channel=16, row_size=2048,
                        t_hit=40, t_miss=75, cycles_per_line=3),
    )


def microblaze_config() -> AcceleratorConfig:
    """The rejected softcore design point (§IV-A): node decode is 10-16x
    slower than the custom decoder, everything else equal to the FPGA."""
    base = fpga_config()
    slow = {phase: cycles * 12 for phase, cycles in base.decode_cycles.items()}
    return base.scaled(name="fpga-microblaze", decode_cycles=slow)
