"""The seeding accelerator: cycle-level simulator, configs, energy model.

Methodology follows the paper's own (§V): the functional ERT engine emits
per-read memory traces; the simulator replays them against a model of the
accelerator -- parallel seeding machines holding Index Fetcher / Tree
Walker / Leaf Gatherer processing elements with fine-grained context
switching, fed by a channelized DRAM model (standing in for Ramulator).

* :mod:`repro.accel.config` -- ASIC and FPGA configurations plus the
  Table III / Table IV area, power and resource constants;
* :mod:`repro.accel.ops` -- turning functional runs into per-job op
  streams (compute burst + memory access);
* :mod:`repro.accel.machine` -- the event-driven simulator;
* :mod:`repro.accel.energy` -- area/energy efficiency accounting
  (Table V).
"""

from repro.accel.config import (
    ASIC_AREA_MM2,
    ASIC_POWER_W,
    FPGA_RESOURCES,
    AcceleratorConfig,
    asic_config,
    fpga_config,
)
from repro.accel.energy import EfficiencyRow, GENAX_ROW, efficiency_row
from repro.accel.host import HostConfig, HostModel, result_record_bytes
from repro.accel.machine import AcceleratorSim, SimResult
from repro.accel.ops import Op, capture_ert_jobs, capture_reuse_jobs

__all__ = [
    "ASIC_AREA_MM2",
    "ASIC_POWER_W",
    "AcceleratorConfig",
    "AcceleratorSim",
    "EfficiencyRow",
    "FPGA_RESOURCES",
    "GENAX_ROW",
    "HostConfig",
    "HostModel",
    "Op",
    "result_record_bytes",
    "SimResult",
    "asic_config",
    "capture_ert_jobs",
    "capture_reuse_jobs",
    "efficiency_row",
    "fpga_config",
]
