"""Failure taxonomy and retry policy of the batch scheduler.

The paper's bit-equivalence claim (§V) only survives production traffic
if a worker dying mid-batch cannot corrupt or reorder output.  This
module gives the scheduler a *typed* failure model:

* every way a pool can fail maps to exactly one
  :class:`ParallelExecutionError` subclass, each carrying the submission
  index of the batch that failed;
* *environmental* failures (a crashed worker, an expired batch timeout)
  are ``retryable`` -- batches are pure functions of their inputs, so
  resubmitting one to a respawned pool is always safe;
* *deterministic* failures (an exception raised by the task itself, an
  unpicklable payload) are not -- rerunning them burns the retry budget
  to reproduce the same defect, so they propagate on first occurrence;
* :class:`RetryPolicy` bounds the recovery work: per-batch attempt
  budget, exponential backoff between respawns, and an optional
  per-batch timeout.

Checker rule ERT009 enforces the routing mechanically: a broad
``except`` around pool submission or result collection must re-raise
through one of these types.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Fallback retry budget when neither ``ParallelConfig.retries`` nor
#: ``$REPRO_RETRIES`` decides: survive two transient faults per batch.
DEFAULT_RETRIES = 2


class ParallelExecutionError(RuntimeError):
    """Base of every failure the batch scheduler can surface.

    ``batch_index`` is the failing batch's submission index (``None``
    when the failure is not attributable to one batch, e.g. the pool
    could not be built at all).
    """

    #: Whether resubmitting the batch to a fresh pool can succeed.
    retryable: bool = False

    def __init__(self, message: str,
                 batch_index: "int | None" = None) -> None:
        super().__init__(message)
        self.batch_index = batch_index


class WorkerCrashError(ParallelExecutionError):
    """A worker process died (SIGKILL, OOM kill, segfault, or an
    initializer failure) and the executor reported a broken pool."""

    retryable = True


class BatchTimeoutError(ParallelExecutionError):
    """A batch's result did not arrive within the configured per-batch
    timeout; the pool is presumed wedged and is killed before retry."""

    retryable = True


class BatchSerializationError(ParallelExecutionError):
    """A batch or its result failed to pickle across the process
    boundary.  Deterministic: the same payload fails the same way on
    every attempt, so this is never retried."""

    retryable = False


class BatchTaskError(ParallelExecutionError):
    """The task itself raised inside the worker.  Deterministic by the
    engine-purity contract (same batch, same index, same exception), so
    this is never retried; the original exception rides as
    ``__cause__``."""

    retryable = False


class PoolUnavailableError(ParallelExecutionError):
    """The worker pool could not be built (or rebuilt after a crash).
    The scheduler reacts by degrading to the in-process serial path
    rather than failing the run."""

    retryable = False


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on the scheduler's recovery work.

    A batch is attempted at most ``1 + retries`` times; between attempts
    the scheduler sleeps ``backoff_s * backoff_factor ** (failures - 1)``
    seconds, so a flapping pool backs off exponentially instead of
    hot-looping respawns.  ``batch_timeout`` (seconds, ``None`` = wait
    forever) bounds how long the in-order merge waits for the head
    batch's result.
    """

    retries: int = DEFAULT_RETRIES
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    batch_timeout: "float | None" = None

    @property
    def max_attempts(self) -> int:
        return 1 + max(0, self.retries)

    def delay(self, failures: int) -> float:
        """Backoff before the next attempt after ``failures`` failures."""
        return self.backoff_s * self.backoff_factor ** max(0, failures - 1)


def default_retries() -> int:
    """Retry budget when unspecified: ``$REPRO_RETRIES``, else
    :data:`DEFAULT_RETRIES`.  Garbage values fall back to the default;
    negative values clamp to 0 (fail on first fault)."""
    value = os.environ.get("REPRO_RETRIES", "")
    try:
        return max(0, int(value))
    except ValueError:
        return DEFAULT_RETRIES
