"""The batch scheduler: bounded in-flight fan-out, in-order merge,
fault-tolerant execution.

Execution model (tentpole of the parallel layer):

* the parent packs reads into :class:`~repro.parallel.batch.ReadBatch`
  units and submits them to a ``ProcessPoolExecutor`` whose workers were
  initialized once with an *engine spec* -- either a shared-memory index
  attachment (``("shm", name, size, gather_limit)``, zero-copy) or a
  pickled engine (``("pickle", engine)``, for index types without a flat
  buffer form);
* at most ``max_inflight`` batches are outstanding; results are consumed
  strictly in submission order, so concatenating per-batch payloads
  reproduces the serial output **byte for byte** regardless of worker
  finishing order;
* every batch returns ``(payload, stats delta, telemetry snapshot)``;
  the parent folds stats into one :class:`~repro.seeding.engine.
  EngineStats` and merges worker telemetry into the live registry, so
  ``--profile`` / ``--metrics-out`` see the same counters as a serial
  run;
* ``workers <= 1`` short-circuits to an in-process loop over the same
  batches -- no pool, no pickling, live telemetry -- which still gains
  the per-batch pre-encoding and the engine's ``begin_batch`` hoists
  (the serial fast path).

Fault model (see :mod:`repro.parallel.faults` and docs/performance.md):

* failures are classified into typed errors -- a dead worker or expired
  per-batch timeout is *retryable* (batches are pure functions), an
  exception raised by the task itself or a pickling failure is
  deterministic and propagates immediately;
* on a retryable failure the scheduler kills the pool, backs off
  exponentially, respawns, and resubmits every unconsumed batch in
  submission order -- the merge point never moves, so output stays
  byte-identical to serial across any number of recoveries;
* every freshly (re)spawned pool is probed with a no-op task before
  batches flow, so "the pool cannot be built" (e.g. its initializer
  always dies) is detected deterministically; in that case the remaining
  batches degrade to the in-process serial path with a
  ``RuntimeWarning`` and a ``parallel.fallback_serial`` telemetry
  counter rather than failing the run.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from collections import deque
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from pickle import PicklingError
from typing import Any, Callable, Iterable, Iterator, Sequence, Tuple

from repro import telemetry
from repro.logging import get_logger
from repro.core.engine import ErtSeedingEngine
from repro.core.index import ErtIndex
from repro.extend.paired import PairedAligner
from repro.extend.pipeline import ReadAligner
from repro.extend.sam import SamRecord
from repro.kernels import (
    KernelBatchStats,
    batched_banded_sw,
    batched_sw_traceback,
    resolve_kernels,
    seed_batch,
    vector_decline_reason,
)
from repro.memsim.trace import MemoryTracer
from repro.parallel.batch import ReadBatch, iter_chunks, pack_batch
from repro.parallel.faults import (
    BatchSerializationError,
    BatchTaskError,
    BatchTimeoutError,
    ParallelExecutionError,
    PoolUnavailableError,
    RetryPolicy,
    WorkerCrashError,
    default_retries,
)
from repro.parallel.shm import SharedIndexBuffer, attach_index
from repro.seeding.algorithm import SeedingParams, seed_read
from repro.seeding.engine import EngineStats, SeedingEngine
from repro.telemetry.progress import ProgressReporter

#: One batch's wire result: payload, engine-stats delta, telemetry
#: snapshot delta (None in serial mode, where telemetry records live).
BatchResult = Tuple[Any, "dict[str, int]", "dict[str, Any] | None"]

EngineSpec = Tuple[Any, ...]

#: Structured operational events (pool lifecycle, faults, degradation);
#: a no-op unless the run configured `repro.logging` (--log-jsonl).
_log = get_logger("parallel.scheduler")


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs of the batch execution layer.

    ``workers=None`` defers to :func:`default_workers` (the
    ``REPRO_WORKERS`` environment variable, else 1), which is how the CI
    matrix drives the whole test suite through the pool without touching
    every call site.  ``retries=None`` likewise defers to
    ``$REPRO_RETRIES`` (else :data:`~repro.parallel.faults.
    DEFAULT_RETRIES`); ``batch_timeout`` is in seconds, ``None`` waits
    forever.
    """

    workers: "int | None" = None
    batch_size: int = 64
    max_inflight: "int | None" = None
    retries: "int | None" = None
    batch_timeout: "float | None" = None
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    #: Multiprocessing start method for the pool ("fork"/"spawn"/
    #: "forkserver"); None defers to the platform default.  Output and
    #: merged telemetry are identical either way -- spawn just pays a
    #: slower worker boot, which the fault/exemplar tests exercise.
    start_method: "str | None" = None
    #: Kernel selection ("scalar"/"vector"); None defers to
    #: ``$REPRO_KERNELS`` (else scalar).  "vector" routes seeding through
    #: the batched kernels (:mod:`repro.kernels`) wherever the engine is
    #: eligible -- output stays byte-identical at any worker count.
    kernels: "str | None" = None

    def resolved_workers(self) -> int:
        if self.workers is not None:
            return max(1, self.workers)
        return default_workers()

    def resolved_kernels(self) -> str:
        return resolve_kernels(self.kernels)

    def resolved_inflight(self, workers: int) -> int:
        if self.max_inflight is not None:
            return max(1, self.max_inflight)
        return 2 * workers

    def resolved_policy(self) -> RetryPolicy:
        retries = (self.retries if self.retries is not None
                   else default_retries())
        return RetryPolicy(retries=max(0, retries),
                           backoff_s=self.backoff_s,
                           backoff_factor=self.backoff_factor,
                           batch_timeout=self.batch_timeout)


def default_workers() -> int:
    """Worker count when unspecified: ``$REPRO_WORKERS``, else 1."""
    value = os.environ.get("REPRO_WORKERS", "")
    try:
        return max(1, int(value))
    except ValueError:
        if value:
            warnings.warn(
                f"ignoring unparsable REPRO_WORKERS={value!r}; "
                f"running with 1 worker", RuntimeWarning, stacklevel=2)
        return 1


# ----------------------------------------------------------------------
# Per-read exemplar capture
# ----------------------------------------------------------------------
#
# Capture lives here, not inside seed_read()/align_sam(): the runners
# are the one place that knows the read *name* (the exemplar identity)
# and runs identically on the serial fast path and inside pool workers.
# Each helper costs exactly one telemetry flag check when disabled and
# never touches the payload, so output stays byte-identical with
# exemplars on or off.


def _read_counter_delta(engine: SeedingEngine,
                        before: "dict[str, int]") -> "dict[str, int]":
    after = engine.stats.as_dict()
    return {name: value - before.get(name, 0)
            for name, value in after.items()}


def instrumented_seed_read(engine: SeedingEngine, name: str, read: Any,
                           params: SeedingParams) -> Any:
    """``seed_read`` plus per-read exemplar capture: engine counter
    deltas, seed/hit totals, and memsim bytes when a memory tracer is
    attached to the engine's index (``ert-repro explain`` reuses this
    exact helper, which is what makes its replayed counters comparable
    to the recorded record field-for-field)."""
    probe = telemetry.read_probe()
    if probe is None:
        return seed_read(engine, read, params)
    before = engine.stats.as_dict()
    tracer = getattr(getattr(engine, "index", None), "tracer", None)
    bytes_before = tracer.total_bytes if tracer is not None else 0
    result = seed_read(engine, read, params)
    counters = _read_counter_delta(engine, before)
    counters["seeds"] = len(result.all_seeds)
    counters["seed_hits"] = sum(s.hit_count for s in result.all_seeds)
    if tracer is not None:
        counters["memsim_bytes"] = tracer.total_bytes - bytes_before
    telemetry.record_read(probe, name, counters, task="seed")
    return result


def instrumented_seed_batch(engine: SeedingEngine,
                            names: "Sequence[str]",
                            reads: "Sequence[Any]",
                            params: SeedingParams) -> "list[Any]":
    """``seed_batch`` plus per-read exemplar capture derived from the
    batch accumulators.

    The vector sweep cannot probe per read (its hot loops are
    telemetry-call-free by construction), so capture works the other way
    around: one wall-clock probe brackets the whole batch, the kernels
    count per-read work into a :class:`~repro.kernels.stats.
    KernelBatchStats`, and afterwards each read gets an exemplar whose
    counters are its accumulator column and whose wall time is its
    work-weighted share of the batch.  Offers happen in input order, so
    the reservoir/slowlog are reproducible at any worker count, same as
    the scalar path.  Callers must have checked
    :func:`~repro.kernels.seeding.vector_decline_reason` first.
    """
    probe = telemetry.read_probe()
    if probe is None:
        return seed_batch(engine, reads, params)
    stats = KernelBatchStats(len(reads))
    results = seed_batch(engine, reads, params, stats=stats)
    shares = stats.wall_shares(telemetry.probe_ms(probe)).tolist()

    def make_counters(i: int) -> "dict[str, int]":
        counters = stats.read_counters(i)
        all_seeds = results[i].all_seeds
        counters["seeds"] = len(all_seeds)
        counters["seed_hits"] = sum(s.hit_count for s in all_seeds)
        return counters

    telemetry.record_reads(probe, list(names), shares, make_counters,
                           task="seed", kernels="vector")
    return results


def instrumented_align_sam(aligner: ReadAligner, read: Any, name: str,
                           quality: str,
                           seeding: Any = None,
                           seed_counters: "dict[str, int] | None" = None,
                           seed_ms: float = 0.0) -> SamRecord:
    """``ReadAligner.align_sam`` plus per-read exemplar capture (engine
    deltas + the aligner's per-read extension stats: SW cells, seeds,
    chains).

    The vector path injects its precomputed ``seeding`` result together
    with that read's kernel-counter column and wall-time share from the
    batched seeding sweep (``seed_counters``/``seed_ms``); the exemplar
    then covers seed+extend exactly like a scalar one and is tagged
    ``kernels="vector"`` so ``ert-repro explain`` replays it through the
    vector kernels.
    """
    probe = telemetry.read_probe()
    if probe is None:
        return aligner.align_sam(read, name, quality, seeding=seeding)
    before = aligner.engine.stats.as_dict()
    record = aligner.align_sam(read, name, quality, seeding=seeding)
    counters = _read_counter_delta(aligner.engine, before)
    counters.update(aligner.read_stats)
    if seed_counters is None:
        telemetry.record_read(probe, name, counters, task="align")
    else:
        counters.update(seed_counters)
        telemetry.record_read(probe, name, counters, task="align",
                              wall_ms=telemetry.probe_ms(probe) + seed_ms,
                              kernels="vector")
    return record


def instrumented_align_pair(paired: PairedAligner, read1: Any, read2: Any,
                            name: str, quality1: str,
                            quality2: str,
                            seeding1: Any = None, seeding2: Any = None,
                            seed_counters: "dict[str, int] | None" = None,
                            seed_ms: float = 0.0) -> "list[SamRecord]":
    """``PairedAligner.align_pair`` plus one exemplar per *pair* (the
    scheduling unit of the paired path).  Vector-path parameters mirror
    :func:`instrumented_align_sam`, with ``seed_counters``/``seed_ms``
    already merged/summed over both mates."""
    probe = telemetry.read_probe()
    if probe is None:
        return paired.align_pair(read1, read2, name, quality1, quality2,
                                 seeding1=seeding1, seeding2=seeding2)
    engine = paired.aligner.engine
    before = engine.stats.as_dict()
    records = paired.align_pair(read1, read2, name, quality1, quality2,
                                seeding1=seeding1, seeding2=seeding2)
    counters = _read_counter_delta(engine, before)
    if seed_counters is None:
        telemetry.record_read(probe, name, counters, task="align-pe")
    else:
        counters.update(seed_counters)
        telemetry.record_read(probe, name, counters, task="align-pe",
                              wall_ms=telemetry.probe_ms(probe) + seed_ms,
                              kernels="vector")
    return records


# ----------------------------------------------------------------------
# Per-batch task runners (constructed inside each worker)
# ----------------------------------------------------------------------


class _SeedRunner:
    """Three-round seeding; emits the CLI's TSV lines verbatim."""

    def __init__(self, engine: SeedingEngine,
                 options: "dict[str, Any]") -> None:
        self.engine = engine
        self.params: SeedingParams = options["params"]
        self.vector = options.get("kernels") == "vector"

    def __call__(self, batch: ReadBatch) -> "list[str]":
        engine = self.engine
        reads = batch.reads()
        engine.begin_batch(reads)
        lines: "list[str]" = []
        if self.vector:
            reason = vector_decline_reason(engine)
            if reason is None:
                # Whole-batch vectorized walk through the instrumented
                # wrapper, so the exemplar reservoir/slowlog survive
                # vector mode; per-read results come back in input
                # order, so the TSV stream is byte-identical.
                for name, result in zip(
                        batch.names,
                        instrumented_seed_batch(engine, batch.names,
                                                reads, self.params)):
                    for seed in result.all_seeds:
                        hits = ",".join(str(h) for h in seed.hits)
                        lines.append(
                            f"{name}\t{seed.read_start}\t{seed.length}"
                            f"\t{seed.hit_count}\t{hits}\n")
                return lines
            telemetry.count("kernels.fallback_scalar." + reason)
        for name, read in zip(batch.names, reads):
            result = instrumented_seed_read(engine, name, read,
                                            self.params)
            for seed in result.all_seeds:
                hits = ",".join(str(h) for h in seed.hits)
                lines.append(f"{name}\t{seed.read_start}\t{seed.length}"
                             f"\t{seed.hit_count}\t{hits}\n")
        return lines


class _AlignRunner:
    """Single-end alignment to SAM records."""

    def __init__(self, engine: SeedingEngine,
                 options: "dict[str, Any]") -> None:
        reference = engine.index.reference  # type: ignore[attr-defined]
        self.vector = options.get("kernels") == "vector"
        self.aligner = ReadAligner(
            reference, engine, params=options.get("params"),
            sw_batch=batched_banded_sw if self.vector else None,
            tb_batch=batched_sw_traceback if self.vector else None)

    def __call__(self, batch: ReadBatch) -> "list[SamRecord]":
        reads = batch.reads()
        engine = self.aligner.engine
        engine.begin_batch(reads)
        if self.vector:
            reason = vector_decline_reason(engine)
            if reason is None:
                return self._vector_batch(batch, reads)
            telemetry.count("kernels.fallback_scalar." + reason)
        return [instrumented_align_sam(self.aligner, read, name, quality)
                for name, quality, read
                in zip(batch.names, batch.qualities, reads)]

    def _vector_batch(self, batch: ReadBatch,
                      reads: "list[Any]") -> "list[SamRecord]":
        """Batched seeding, then per-read extension through the
        instrumented wrapper -- each exemplar merges the read's kernel
        counters and seed wall-time share from the batch sweep, so the
        slowlog covers seed+extend exactly like the scalar path."""
        engine = self.aligner.engine
        probe = telemetry.read_probe()
        if probe is None:
            seeded = seed_batch(engine, reads, self.aligner.params)
            return [self.aligner.align_sam(read, name, quality,
                                           seeding=seeding)
                    for name, quality, read, seeding
                    in zip(batch.names, batch.qualities, reads, seeded)]
        stats = KernelBatchStats(len(reads))
        seeded = seed_batch(engine, reads, self.aligner.params,
                            stats=stats)
        shares = stats.wall_shares(telemetry.probe_ms(probe))
        return [instrumented_align_sam(
                    self.aligner, read, name, quality, seeding=seeding,
                    seed_counters=stats.read_counters(i),
                    seed_ms=float(shares[i]))
                for i, (name, quality, read, seeding)
                in enumerate(zip(batch.names, batch.qualities, reads,
                                 seeded))]


class _AlignPairsRunner:
    """Paired-end alignment over interleaved (mate1, mate2) batches."""

    def __init__(self, engine: SeedingEngine,
                 options: "dict[str, Any]") -> None:
        reference = engine.index.reference  # type: ignore[attr-defined]
        self.vector = options.get("kernels") == "vector"
        self.paired = PairedAligner(
            ReadAligner(reference, engine, params=options.get("params"),
                        sw_batch=batched_banded_sw if self.vector
                        else None,
                        tb_batch=batched_sw_traceback if self.vector
                        else None),
            insert_mean=options["insert_mean"],
            insert_sd=options["insert_sd"])

    def __call__(self, batch: ReadBatch) -> "list[SamRecord]":
        reads = batch.reads()
        engine = self.paired.aligner.engine
        engine.begin_batch(reads)
        seeded: "list[Any] | None" = None
        stats: "KernelBatchStats | None" = None
        shares: Any = None
        if self.vector:
            reason = vector_decline_reason(engine)
            if reason is None:
                probe = telemetry.read_probe()
                if probe is None:
                    seeded = seed_batch(engine, reads,
                                        self.paired.aligner.params)
                else:
                    stats = KernelBatchStats(len(reads))
                    seeded = seed_batch(engine, reads,
                                        self.paired.aligner.params,
                                        stats=stats)
                    shares = stats.wall_shares(telemetry.probe_ms(probe))
            else:
                telemetry.count("kernels.fallback_scalar." + reason)
        records: "list[SamRecord]" = []
        for i in range(0, len(reads), 2):
            name = batch.names[i].split("/")[0]
            if seeded is not None:
                # One exemplar per pair, so the pair's seed counters are
                # the sum of both mates' accumulator columns.
                merged: "dict[str, int] | None" = None
                seed_ms = 0.0
                if stats is not None:
                    first = stats.read_counters(i)
                    second = stats.read_counters(i + 1)
                    merged = {key: first[key] + second[key]
                              for key in first}
                    seed_ms = float(shares[i] + shares[i + 1])
                records.extend(instrumented_align_pair(
                    self.paired, reads[i], reads[i + 1], name,
                    batch.qualities[i], batch.qualities[i + 1],
                    seeding1=seeded[i], seeding2=seeded[i + 1],
                    seed_counters=merged, seed_ms=seed_ms))
                continue
            records.extend(instrumented_align_pair(
                self.paired, reads[i], reads[i + 1], name,
                batch.qualities[i], batch.qualities[i + 1]))
        return records


class _TrafficRunner:
    """Seeding under a fresh per-batch memory tracer; totals are exactly
    additive across batches (per-read accounting, no cross-read state)."""

    def __init__(self, engine: SeedingEngine,
                 options: "dict[str, Any]") -> None:
        self.engine = engine
        self.params: SeedingParams = options["params"]

    def __call__(self, batch: ReadBatch) \
            -> "tuple[int, int, dict[str, tuple[int, int]]]":
        index = self.engine.index  # type: ignore[attr-defined]
        tracer = MemoryTracer()
        index.attach_tracer(tracer)
        try:
            reads = batch.reads()
            self.engine.begin_batch(reads)
            for read in reads:
                seed_read(self.engine, read, self.params)
        finally:
            index.attach_tracer(None)
        by_phase = {phase: (stats.requests, stats.bytes)
                    for phase, stats in tracer.by_phase.items()}
        return tracer.total_requests, tracer.total_bytes, by_phase


_RUNNERS: "dict[str, Callable[[SeedingEngine, dict[str, Any]], Any]]" = {
    "seed": _SeedRunner,
    "align": _AlignRunner,
    "align-pe": _AlignPairsRunner,
    "traffic": _TrafficRunner,
}


# ----------------------------------------------------------------------
# Worker lifecycle
# ----------------------------------------------------------------------

#: Per-process worker state, populated once by the pool initializer.
_WORKER: "dict[str, Any]" = {}


def _make_engine(spec: EngineSpec) -> SeedingEngine:
    kind = spec[0]
    if kind == "local":
        return spec[1]
    if kind == "shm":
        _, name, size, gather_limit = spec
        recorder = telemetry.recorder()
        recorder.begin("shm.attach", {"segment": name, "bytes": size})
        try:
            index = attach_index(name, size)
        finally:
            recorder.end("shm.attach")
        return ErtSeedingEngine(index, gather_limit=gather_limit)
    if kind == "pickle":
        return spec[1]
    raise ValueError(f"unknown engine spec kind {kind!r}")


def _worker_init(spec: EngineSpec, task: str, options: "dict[str, Any]",
                 telemetry_on: bool,
                 events_epoch: "int | None" = None) -> None:
    fault = options.get("fault")
    if fault is not None and fault.get("kind") == "init-raise":
        raise RuntimeError("injected pool-init fault")
    # fork_reset, not reset: under fork this process may have inherited
    # an open parent span (the recovery span during a respawn); a plain
    # reset would refuse and kill the worker in its initializer.  It runs
    # *before* engine construction so timeline capture (restarted on the
    # parent's epoch just below) can see the shm attach.
    telemetry.fork_reset()
    if telemetry_on:
        telemetry.enable()
    else:
        telemetry.disable()
    if events_epoch is not None:
        telemetry.start_recording(events_epoch)
    with telemetry.recorder().scope("worker.init"):
        engine = _make_engine(spec)
        _WORKER["runner"] = _RUNNERS[task](engine, options)
    _WORKER["engine"] = engine
    _WORKER["telemetry"] = telemetry_on
    _WORKER["events"] = events_epoch is not None
    _WORKER["fault"] = fault


def _trip_injected_fault(fault: "dict[str, Any] | None") -> None:
    """Fault-injection hook for the test battery
    (``tests/test_parallel_faults.py``): trip at most once per ``token``
    file (``O_EXCL`` creation is the cross-process turnstile), so a
    retried batch runs clean on a respawned pool."""
    if fault is None:
        return
    token = fault.get("token")
    if token is not None:
        try:
            os.close(os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return
    kind = fault["kind"]
    if kind == "sigkill":
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "hang":
        time.sleep(float(fault.get("seconds", 30.0)))
    elif kind == "raise":
        raise RuntimeError("injected batch fault")


def _run_batch(batch: ReadBatch, batch_index: int) -> BatchResult:
    _trip_injected_fault(_WORKER.get("fault"))
    engine: SeedingEngine = _WORKER["engine"]
    engine.reset_stats()
    if _WORKER["telemetry"]:
        telemetry.reset()
    recorder = telemetry.recorder()
    with recorder.scope("batch", {"index": batch_index,
                                  "reads": len(batch.names)}):
        payload = _WORKER["runner"](batch)
    snap: "dict[str, Any] | None" = (telemetry.snapshot()
                                     if _WORKER["telemetry"] else None)
    if _WORKER.get("events"):
        # The drained worker track rides back inside the snapshot slot of
        # the existing wire tuple; merge_snapshot absorbs it in the
        # parent even when metrics are disabled.
        track = telemetry.drain_timeline()
        if track is not None:
            snap = {"timeline": track} if snap is None \
                else dict(snap, timeline=track)
    return payload, engine.stats.as_dict(), snap


# ----------------------------------------------------------------------
# Pool lifecycle (crash recovery)
# ----------------------------------------------------------------------


def _worker_ready() -> bool:
    """No-op probe task: completing it proves the pool's workers came up
    (their initializer ran) and the result channel works."""
    return True


class _PoolManager:
    """Owns the executor across respawns.

    One instance spans the whole run: it builds the initial pool and
    kills/rebuilds it after a retryable failure.  Every (re)spawn is
    probed with a no-op task before batches flow -- a pool whose
    initializer always dies is indistinguishable from one that cannot
    be constructed, and the probe converts both into a deterministic
    :class:`PoolUnavailableError` instead of letting init failures
    masquerade as mid-batch worker crashes.
    """

    def __init__(self, workers: int, spec: EngineSpec, task: str,
                 options: "dict[str, Any]", telemetry_on: bool,
                 events_epoch: "int | None" = None,
                 start_method: "str | None" = None) -> None:
        self._workers = workers
        self._task = task
        self._initargs = (spec, task, options, telemetry_on, events_epoch)
        self._start_method = start_method
        self._pool: "ProcessPoolExecutor | None" = None

    def spawn(self) -> None:
        try:
            mp_context = (multiprocessing.get_context(self._start_method)
                          if self._start_method is not None else None)
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers, mp_context=mp_context,
                initializer=_worker_init, initargs=self._initargs)
            self._pool.submit(_worker_ready).result()
        except Exception as exc:
            self.kill()
            _log.error("pool.unavailable", workers=self._workers,
                       task=self._task, error=str(exc))
            raise PoolUnavailableError(
                f"cannot build a working {self._workers}-worker pool: "
                f"{exc}") from exc
        _log.info("pool.spawn", workers=self._workers, task=self._task,
                  start_method=(self._start_method
                                or multiprocessing.get_start_method()))

    def submit(self, batch: ReadBatch,
               batch_index: int) -> "Future[BatchResult]":
        """Submit one batch; a submission-time pool failure comes back
        as a failed future so the merge loop owns all classification."""
        assert self._pool is not None
        try:
            return self._pool.submit(_run_batch, batch, batch_index)
        except (BrokenExecutor, RuntimeError) as exc:
            failed: "Future[BatchResult]" = Future()
            failed.set_exception(exc)
            return failed

    def kill(self) -> None:
        """Tear the pool down without waiting: cancel queued work and
        terminate worker processes outright, so a wedged batch cannot
        stall recovery (or leak a worker holding the index mapping)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            try:
                proc.kill()
            except (OSError, ValueError, AttributeError):
                pass  # already dead or reaped
        for proc in processes:
            try:
                proc.join(timeout=1.0)
            except (OSError, ValueError, AssertionError):
                pass

    def respawn(self) -> None:
        self.kill()
        self.spawn()

    def shutdown(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)


class _PendingBatch:
    """Submission-order bookkeeping for one in-flight batch."""

    __slots__ = ("index", "batch", "failures", "future")

    def __init__(self, index: int, batch: ReadBatch,
                 future: "Future[BatchResult]") -> None:
        self.index = index
        self.batch = batch
        self.failures = 0
        self.future = future


def _classify_failure(exc: BaseException,
                      batch_index: int) -> ParallelExecutionError:
    """Map a raw executor exception to the typed taxonomy."""
    if isinstance(exc, FuturesTimeoutError):
        return BatchTimeoutError(
            f"batch {batch_index} timed out", batch_index)
    if isinstance(exc, BrokenExecutor):
        return WorkerCrashError(
            f"worker pool broke while running batch {batch_index}: {exc}",
            batch_index)
    if isinstance(exc, PicklingError):
        return BatchSerializationError(
            f"batch {batch_index} failed to cross the process boundary: "
            f"{exc}", batch_index)
    return BatchTaskError(
        f"task raised inside the worker on batch {batch_index}: "
        f"{exc!r}", batch_index)


def _fallback_engine(spec: EngineSpec) -> SeedingEngine:
    """In-process engine for the degraded path: attach the (still live)
    parent-owned segment for shm specs, reuse the engine otherwise."""
    if spec[0] == "shm":
        _, name, size, gather_limit = spec
        return ErtSeedingEngine(attach_index(name, size),
                                gather_limit=gather_limit)
    return spec[1]


def _serial_batches(engine: SeedingEngine, task: str,
                    options: "dict[str, Any]",
                    batches: "Iterable[ReadBatch]") \
        -> "Iterator[BatchResult]":
    """The in-process loop shared by the serial fast path and the
    degraded-mode fallback."""
    runner = _RUNNERS[task](engine, options)
    recorder = telemetry.recorder()
    for index, batch in enumerate(batches):
        engine.reset_stats()
        with recorder.scope("batch", {"index": index,
                                      "reads": len(batch.names)}):
            payload = runner(batch)
        yield payload, engine.stats.as_dict(), None


def _degrade_to_serial(spec: EngineSpec, task: str,
                       options: "dict[str, Any]",
                       batches: "Sequence[ReadBatch]",
                       cause: ParallelExecutionError) \
        -> "Iterator[BatchResult]":
    """Graceful degradation: finish the remaining batches in-process.

    Output is unaffected -- the serial loop runs the same batch units
    through the same runners -- only throughput degrades, which is worth
    a warning and a counter but never a failed run.
    """
    warnings.warn(
        f"worker pool unavailable ({cause}); degrading to in-process "
        f"serial execution for {len(batches)} remaining batch(es)",
        RuntimeWarning, stacklevel=3)
    telemetry.count("parallel.fallback_serial")
    _log.error("pool.degrade_serial", task=task, reason=str(cause),
               remaining_batches=len(batches))
    return _serial_batches(_fallback_engine(spec), task, options, batches)


def _pool_map(spec: EngineSpec, task: str, options: "dict[str, Any]",
              batches: "Sequence[ReadBatch]",
              config: ParallelConfig, workers: int,
              reporter: "ProgressReporter | None" = None) \
        -> "Iterator[BatchResult]":
    """The fault-tolerant pool path behind :func:`map_batches`."""
    policy = config.resolved_policy()
    recorder = telemetry.recorder()
    # Ship the parent's trace epoch through the pool initializer so
    # worker events land on the same timeline (the monotonic clock is
    # system-wide on the platforms we run on).
    events_epoch = recorder.epoch_ns if recorder.recording else None
    manager = _PoolManager(workers, spec, task, options,
                           telemetry.enabled(), events_epoch,
                           start_method=config.start_method)
    try:
        manager.spawn()
    except PoolUnavailableError as exc:
        yield from _degrade_to_serial(spec, task, options, batches, exc)
        return
    max_inflight = config.resolved_inflight(workers)
    pending: "deque[_PendingBatch]" = deque()
    next_index = 0
    try:
        while next_index < len(batches) or pending:
            while next_index < len(batches) and len(pending) < max_inflight:
                batch = batches[next_index]
                recorder.instant("parallel.submit", {"batch": next_index})
                pending.append(_PendingBatch(
                    next_index, batch, manager.submit(batch, next_index)))
                next_index += 1
                recorder.counter("parallel.inflight", len(pending))
            if reporter is not None:
                reporter.set_inflight(len(pending))
            head = pending[0]
            try:
                result = head.future.result(timeout=policy.batch_timeout)
            except (FuturesTimeoutError, BrokenExecutor,
                    PicklingError) as exc:
                failure = _classify_failure(exc, head.index)
            except ParallelExecutionError:
                raise
            except Exception as exc:
                raise _classify_failure(exc, head.index) from exc
            else:
                pending.popleft()
                recorder.instant("parallel.merge", {"batch": head.index})
                recorder.counter("parallel.inflight", len(pending))
                yield result
                continue
            # -- recovery: failure surfaced at the merge point ---------
            head.failures += 1
            recorder.instant("parallel.fault",
                             {"batch": head.index,
                              "kind": type(failure).__name__})
            _log.warn("batch.fault", batch=head.index,
                      kind=type(failure).__name__, attempt=head.failures,
                      retryable=failure.retryable, error=str(failure))
            if isinstance(failure, BatchTimeoutError):
                telemetry.count("parallel.batch_timeouts")
            elif isinstance(failure, WorkerCrashError):
                telemetry.count("parallel.worker_crashes")
                if reporter is not None:
                    reporter.crash()
            if not failure.retryable or head.failures >= policy.max_attempts:
                raise failure
            with telemetry.span("parallel.recovery"):
                telemetry.count("parallel.retries")
                telemetry.count("parallel.pool_respawns")
                time.sleep(policy.delay(head.failures))
                recorder.instant("parallel.respawn", {"workers": workers})
                _log.info("pool.respawn", workers=workers,
                          after_batch=head.index,
                          backoff_s=policy.delay(head.failures))
                try:
                    manager.respawn()
                except PoolUnavailableError as exc:
                    remaining = [entry.batch for entry in pending] \
                        + list(batches[next_index:])
                    yield from _degrade_to_serial(spec, task, options,
                                                  remaining, exc)
                    return
                for entry in pending:
                    entry.future = manager.submit(entry.batch, entry.index)
    finally:
        manager.kill()


# ----------------------------------------------------------------------
# The scheduler
# ----------------------------------------------------------------------


def map_batches(spec: EngineSpec, task: str, options: "dict[str, Any]",
                batches: "Iterable[ReadBatch]",
                config: ParallelConfig,
                reporter: "ProgressReporter | None" = None) \
        -> "Iterator[BatchResult]":
    """Run ``batches`` through the worker pool, yielding results in
    submission order with at most ``max_inflight`` outstanding.

    With one worker (or a ``local`` spec) everything runs in-process over
    the same batch units -- the serial fast path.  Pool failures are
    classified, retried and degraded per the module docstring; when a
    typed error escapes this generator, every consumed prefix result was
    already byte-exact and no partial batch has been yielded.  An
    optional :class:`~repro.telemetry.progress.ProgressReporter` gets
    in-flight depth and crash notifications (completed-read counts are
    the consumer's job -- see :func:`_aggregate`).
    """
    workers = config.resolved_workers()
    if workers <= 1 or spec[0] == "local":
        yield from _serial_batches(_make_engine(spec), task, options,
                                   batches)
        return
    yield from _pool_map(spec, task, options, list(batches), config,
                         workers, reporter)


def _aggregate(results: "Iterable[BatchResult]",
               batches: "Sequence[ReadBatch] | None" = None,
               reporter: "ProgressReporter | None" = None) \
        -> "tuple[list[Any], EngineStats]":
    """Collect payloads in order; fold stats and worker telemetry.

    Worker snapshots merge keyed by submission order, so gauges resolve
    to the highest batch index deterministically -- the same value a
    serial run would leave behind -- at any worker count.  When the
    submitted ``batches`` are provided alongside a ``reporter``, each
    merged batch advances the heartbeat by its read count.
    """
    payloads: "list[Any]" = []
    stats = EngineStats()
    for order, (payload, stat_delta, snap) in enumerate(results):
        payloads.append(payload)
        stats.add_dict(stat_delta)
        if snap is not None:
            telemetry.merge_snapshot(snap, order=order)
        if reporter is not None and batches is not None:
            reporter.advance(len(batches[order].names))
    return payloads, stats


def _execute_over_index(index: ErtIndex, task: str,
                        options: "dict[str, Any]",
                        batches: "list[ReadBatch]", config: ParallelConfig,
                        gather_limit: int = 500,
                        reporter: "ProgressReporter | None" = None) \
        -> "tuple[list[Any], EngineStats]":
    workers = config.resolved_workers()
    if workers <= 1:
        engine = ErtSeedingEngine(index, gather_limit=gather_limit)
        return _aggregate(map_batches(("local", engine), task, options,
                                      batches, config, reporter),
                          batches, reporter)
    with SharedIndexBuffer(index) as shared:
        spec: EngineSpec = ("shm", shared.name, shared.size, gather_limit)
        return _aggregate(map_batches(spec, task, options, batches, config,
                                      reporter),
                          batches, reporter)


# ----------------------------------------------------------------------
# High-level entry points (what the CLI calls)
# ----------------------------------------------------------------------


def seed_reads(index: ErtIndex, reads: "Sequence[object]",
               params: "SeedingParams | None" = None,
               config: "ParallelConfig | None" = None,
               gather_limit: int = 500,
               reporter: "ProgressReporter | None" = None) \
        -> "tuple[list[str], EngineStats]":
    """Seed ``reads`` in batches; returns the CLI's TSV lines (one per
    seed, newline-terminated, in input order) plus aggregated stats."""
    config = config or ParallelConfig()
    options: "dict[str, Any]" = {"params": params or SeedingParams(),
                                 "kernels": config.resolved_kernels()}
    batches = [pack_batch(chunk)
               for chunk in iter_chunks(reads, config.batch_size)]
    per_batch, stats = _execute_over_index(index, "seed", options, batches,
                                           config, gather_limit,
                                           reporter=reporter)
    return [line for lines in per_batch for line in lines], stats


def align_reads(index: ErtIndex, reads: "Sequence[object]",
                params: "SeedingParams | None" = None,
                config: "ParallelConfig | None" = None,
                reporter: "ProgressReporter | None" = None) \
        -> "tuple[list[SamRecord], EngineStats]":
    """Align ``reads`` to SAM records, byte-identical to the serial
    per-read loop, in input order."""
    config = config or ParallelConfig()
    options: "dict[str, Any]" = {"params": params or SeedingParams(),
                                 "kernels": config.resolved_kernels()}
    batches = [pack_batch(chunk)
               for chunk in iter_chunks(reads, config.batch_size)]
    per_batch, stats = _execute_over_index(index, "align", options,
                                           batches, config,
                                           reporter=reporter)
    return [rec for recs in per_batch for rec in recs], stats


def align_pairs(index: ErtIndex, reads: "Sequence[object]",
                params: "SeedingParams | None" = None,
                insert_mean: int = 350, insert_sd: int = 50,
                config: "ParallelConfig | None" = None,
                reporter: "ProgressReporter | None" = None) \
        -> "tuple[list[SamRecord], EngineStats]":
    """Align interleaved paired-end ``reads`` (mate1, mate2, ...).

    Batching happens at pair granularity (``batch_size`` pairs per
    batch) so mates never split across workers.
    """
    if len(reads) % 2:
        raise ValueError("interleaved read set must hold an even count")
    config = config or ParallelConfig()
    options: "dict[str, Any]" = {"params": params or SeedingParams(),
                                 "kernels": config.resolved_kernels(),
                                 "insert_mean": insert_mean,
                                 "insert_sd": insert_sd}
    batches = [pack_batch(chunk)
               for chunk in iter_chunks(reads, 2 * config.batch_size)]
    per_batch, stats = _execute_over_index(index, "align-pe", options,
                                           batches, config,
                                           reporter=reporter)
    return [rec for recs in per_batch for rec in recs], stats


def traffic_totals(engine: SeedingEngine, reads: "Sequence[object]",
                   params: "SeedingParams | None" = None,
                   config: "ParallelConfig | None" = None) \
        -> "tuple[int, int, dict[str, tuple[int, int]]]":
    """Aggregate per-batch memory-traffic totals over the pool.

    ERT engines ship their index through shared memory; other engine
    types fall back to pickling the engine once per worker (still one
    copy per worker, never one per batch).
    """
    config = config or ParallelConfig()
    options: "dict[str, Any]" = {"params": params or SeedingParams()}
    batches = [pack_batch(chunk)
               for chunk in iter_chunks(reads, config.batch_size)]
    workers = config.resolved_workers()
    if workers <= 1:
        results, _ = _aggregate(map_batches(("local", engine), "traffic",
                                            options, batches, config))
    elif isinstance(engine, ErtSeedingEngine):
        with SharedIndexBuffer(engine.index) as shared:
            spec: EngineSpec = ("shm", shared.name, shared.size,
                                engine.gather_limit)
            results, _ = _aggregate(map_batches(spec, "traffic", options,
                                                batches, config))
    else:
        results, _ = _aggregate(map_batches(("pickle", engine), "traffic",
                                            options, batches, config))
    requests = sum(r[0] for r in results)
    nbytes = sum(r[1] for r in results)
    by_phase: "dict[str, tuple[int, int]]" = {}
    for _, _, phases in results:
        for phase, (preq, pbytes) in phases.items():
            prev = by_phase.get(phase, (0, 0))
            by_phase[phase] = (prev[0] + preq, prev[1] + pbytes)
    return requests, nbytes, by_phase
