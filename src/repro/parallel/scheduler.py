"""The batch scheduler: bounded in-flight fan-out, in-order merge.

Execution model (tentpole of the parallel layer):

* the parent packs reads into :class:`~repro.parallel.batch.ReadBatch`
  units and submits them to a ``ProcessPoolExecutor`` whose workers were
  initialized once with an *engine spec* -- either a shared-memory index
  attachment (``("shm", name, size, gather_limit)``, zero-copy) or a
  pickled engine (``("pickle", engine)``, for index types without a flat
  buffer form);
* at most ``max_inflight`` batches are outstanding; results are consumed
  strictly in submission order, so concatenating per-batch payloads
  reproduces the serial output **byte for byte** regardless of worker
  finishing order;
* every batch returns ``(payload, stats delta, telemetry snapshot)``;
  the parent folds stats into one :class:`~repro.seeding.engine.
  EngineStats` and merges worker telemetry into the live registry, so
  ``--profile`` / ``--metrics-out`` see the same counters as a serial
  run;
* ``workers <= 1`` short-circuits to an in-process loop over the same
  batches -- no pool, no pickling, live telemetry -- which still gains
  the per-batch pre-encoding and the engine's ``begin_batch`` hoists
  (the serial fast path).
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence, Tuple

from repro import telemetry
from repro.core.engine import ErtSeedingEngine
from repro.core.index import ErtIndex
from repro.extend.paired import PairedAligner
from repro.extend.pipeline import ReadAligner
from repro.extend.sam import SamRecord
from repro.memsim.trace import MemoryTracer
from repro.parallel.batch import ReadBatch, iter_chunks, pack_batch
from repro.parallel.shm import SharedIndexBuffer, attach_index
from repro.seeding.algorithm import SeedingParams, seed_read
from repro.seeding.engine import EngineStats, SeedingEngine

#: One batch's wire result: payload, engine-stats delta, telemetry
#: snapshot delta (None in serial mode, where telemetry records live).
BatchResult = Tuple[Any, "dict[str, int]", "dict[str, Any] | None"]

EngineSpec = Tuple[Any, ...]


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs of the batch execution layer.

    ``workers=None`` defers to :func:`default_workers` (the
    ``REPRO_WORKERS`` environment variable, else 1), which is how the CI
    matrix drives the whole test suite through the pool without touching
    every call site.
    """

    workers: "int | None" = None
    batch_size: int = 64
    max_inflight: "int | None" = None

    def resolved_workers(self) -> int:
        if self.workers is not None:
            return max(1, self.workers)
        return default_workers()

    def resolved_inflight(self, workers: int) -> int:
        if self.max_inflight is not None:
            return max(1, self.max_inflight)
        return 2 * workers


def default_workers() -> int:
    """Worker count when unspecified: ``$REPRO_WORKERS``, else 1."""
    value = os.environ.get("REPRO_WORKERS", "")
    try:
        return max(1, int(value))
    except ValueError:
        return 1


# ----------------------------------------------------------------------
# Per-batch task runners (constructed inside each worker)
# ----------------------------------------------------------------------


class _SeedRunner:
    """Three-round seeding; emits the CLI's TSV lines verbatim."""

    def __init__(self, engine: SeedingEngine,
                 options: "dict[str, Any]") -> None:
        self.engine = engine
        self.params: SeedingParams = options["params"]

    def __call__(self, batch: ReadBatch) -> "list[str]":
        engine = self.engine
        reads = batch.reads()
        engine.begin_batch(reads)
        lines: "list[str]" = []
        for name, read in zip(batch.names, reads):
            result = seed_read(engine, read, self.params)
            for seed in result.all_seeds:
                hits = ",".join(str(h) for h in seed.hits)
                lines.append(f"{name}\t{seed.read_start}\t{seed.length}"
                             f"\t{seed.hit_count}\t{hits}\n")
        return lines


class _AlignRunner:
    """Single-end alignment to SAM records."""

    def __init__(self, engine: SeedingEngine,
                 options: "dict[str, Any]") -> None:
        reference = engine.index.reference  # type: ignore[attr-defined]
        self.aligner = ReadAligner(reference, engine,
                                   params=options.get("params"))

    def __call__(self, batch: ReadBatch) -> "list[SamRecord]":
        reads = batch.reads()
        self.aligner.engine.begin_batch(reads)
        return [self.aligner.align_sam(read, name, quality)
                for name, quality, read
                in zip(batch.names, batch.qualities, reads)]


class _AlignPairsRunner:
    """Paired-end alignment over interleaved (mate1, mate2) batches."""

    def __init__(self, engine: SeedingEngine,
                 options: "dict[str, Any]") -> None:
        reference = engine.index.reference  # type: ignore[attr-defined]
        self.paired = PairedAligner(
            ReadAligner(reference, engine, params=options.get("params")),
            insert_mean=options["insert_mean"],
            insert_sd=options["insert_sd"])

    def __call__(self, batch: ReadBatch) -> "list[SamRecord]":
        reads = batch.reads()
        self.paired.aligner.engine.begin_batch(reads)
        records: "list[SamRecord]" = []
        for i in range(0, len(reads), 2):
            name = batch.names[i].split("/")[0]
            records.extend(self.paired.align_pair(
                reads[i], reads[i + 1], name,
                batch.qualities[i], batch.qualities[i + 1]))
        return records


class _TrafficRunner:
    """Seeding under a fresh per-batch memory tracer; totals are exactly
    additive across batches (per-read accounting, no cross-read state)."""

    def __init__(self, engine: SeedingEngine,
                 options: "dict[str, Any]") -> None:
        self.engine = engine
        self.params: SeedingParams = options["params"]

    def __call__(self, batch: ReadBatch) \
            -> "tuple[int, int, dict[str, tuple[int, int]]]":
        index = self.engine.index  # type: ignore[attr-defined]
        tracer = MemoryTracer()
        index.attach_tracer(tracer)
        try:
            reads = batch.reads()
            self.engine.begin_batch(reads)
            for read in reads:
                seed_read(self.engine, read, self.params)
        finally:
            index.attach_tracer(None)
        by_phase = {phase: (stats.requests, stats.bytes)
                    for phase, stats in tracer.by_phase.items()}
        return tracer.total_requests, tracer.total_bytes, by_phase


_RUNNERS: "dict[str, Callable[[SeedingEngine, dict[str, Any]], Any]]" = {
    "seed": _SeedRunner,
    "align": _AlignRunner,
    "align-pe": _AlignPairsRunner,
    "traffic": _TrafficRunner,
}


# ----------------------------------------------------------------------
# Worker lifecycle
# ----------------------------------------------------------------------

#: Per-process worker state, populated once by the pool initializer.
_WORKER: "dict[str, Any]" = {}


def _make_engine(spec: EngineSpec) -> SeedingEngine:
    kind = spec[0]
    if kind == "local":
        return spec[1]
    if kind == "shm":
        _, name, size, gather_limit = spec
        index = attach_index(name, size)
        return ErtSeedingEngine(index, gather_limit=gather_limit)
    if kind == "pickle":
        return spec[1]
    raise ValueError(f"unknown engine spec kind {kind!r}")


def _worker_init(spec: EngineSpec, task: str, options: "dict[str, Any]",
                 telemetry_on: bool) -> None:
    engine = _make_engine(spec)
    _WORKER["engine"] = engine
    _WORKER["runner"] = _RUNNERS[task](engine, options)
    _WORKER["telemetry"] = telemetry_on
    if telemetry_on:
        telemetry.reset()
        telemetry.enable()
    else:
        telemetry.disable()


def _run_batch(batch: ReadBatch) -> BatchResult:
    engine: SeedingEngine = _WORKER["engine"]
    engine.reset_stats()
    if _WORKER["telemetry"]:
        telemetry.reset()
    payload = _WORKER["runner"](batch)
    snap = telemetry.snapshot() if _WORKER["telemetry"] else None
    return payload, engine.stats.as_dict(), snap


# ----------------------------------------------------------------------
# The scheduler
# ----------------------------------------------------------------------


def map_batches(spec: EngineSpec, task: str, options: "dict[str, Any]",
                batches: "Iterable[ReadBatch]",
                config: ParallelConfig) -> "Iterator[BatchResult]":
    """Run ``batches`` through the worker pool, yielding results in
    submission order with at most ``max_inflight`` outstanding.

    With one worker (or a ``local`` spec) everything runs in-process over
    the same batch units -- the serial fast path.
    """
    workers = config.resolved_workers()
    if workers <= 1 or spec[0] == "local":
        engine = _make_engine(spec)
        runner = _RUNNERS[task](engine, options)
        for batch in batches:
            engine.reset_stats()
            yield runner(batch), engine.stats.as_dict(), None
        return
    telemetry_on = telemetry.enabled()
    with ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_init,
            initargs=(spec, task, options, telemetry_on)) as pool:
        pending: "deque[Future[BatchResult]]" = deque()
        for batch in batches:
            pending.append(pool.submit(_run_batch, batch))
            if len(pending) >= config.resolved_inflight(workers):
                yield pending.popleft().result()
        while pending:
            yield pending.popleft().result()


def _aggregate(results: "Iterable[BatchResult]") \
        -> "tuple[list[Any], EngineStats]":
    """Collect payloads in order; fold stats and worker telemetry."""
    payloads: "list[Any]" = []
    stats = EngineStats()
    for payload, stat_delta, snap in results:
        payloads.append(payload)
        stats.add_dict(stat_delta)
        if snap is not None:
            telemetry.merge_snapshot(snap)
    return payloads, stats


def _execute_over_index(index: ErtIndex, task: str,
                        options: "dict[str, Any]",
                        batches: "list[ReadBatch]", config: ParallelConfig,
                        gather_limit: int = 500) \
        -> "tuple[list[Any], EngineStats]":
    workers = config.resolved_workers()
    if workers <= 1:
        engine = ErtSeedingEngine(index, gather_limit=gather_limit)
        return _aggregate(map_batches(("local", engine), task, options,
                                      batches, config))
    with SharedIndexBuffer(index) as shared:
        spec: EngineSpec = ("shm", shared.name, shared.size, gather_limit)
        return _aggregate(map_batches(spec, task, options, batches, config))


# ----------------------------------------------------------------------
# High-level entry points (what the CLI calls)
# ----------------------------------------------------------------------


def seed_reads(index: ErtIndex, reads: "Sequence[object]",
               params: "SeedingParams | None" = None,
               config: "ParallelConfig | None" = None,
               gather_limit: int = 500) \
        -> "tuple[list[str], EngineStats]":
    """Seed ``reads`` in batches; returns the CLI's TSV lines (one per
    seed, newline-terminated, in input order) plus aggregated stats."""
    config = config or ParallelConfig()
    options: "dict[str, Any]" = {"params": params or SeedingParams()}
    batches = [pack_batch(chunk)
               for chunk in iter_chunks(reads, config.batch_size)]
    per_batch, stats = _execute_over_index(index, "seed", options, batches,
                                           config, gather_limit)
    return [line for lines in per_batch for line in lines], stats


def align_reads(index: ErtIndex, reads: "Sequence[object]",
                params: "SeedingParams | None" = None,
                config: "ParallelConfig | None" = None) \
        -> "tuple[list[SamRecord], EngineStats]":
    """Align ``reads`` to SAM records, byte-identical to the serial
    per-read loop, in input order."""
    config = config or ParallelConfig()
    options: "dict[str, Any]" = {"params": params or SeedingParams()}
    batches = [pack_batch(chunk)
               for chunk in iter_chunks(reads, config.batch_size)]
    per_batch, stats = _execute_over_index(index, "align", options,
                                           batches, config)
    return [rec for recs in per_batch for rec in recs], stats


def align_pairs(index: ErtIndex, reads: "Sequence[object]",
                params: "SeedingParams | None" = None,
                insert_mean: int = 350, insert_sd: int = 50,
                config: "ParallelConfig | None" = None) \
        -> "tuple[list[SamRecord], EngineStats]":
    """Align interleaved paired-end ``reads`` (mate1, mate2, ...).

    Batching happens at pair granularity (``batch_size`` pairs per
    batch) so mates never split across workers.
    """
    if len(reads) % 2:
        raise ValueError("interleaved read set must hold an even count")
    config = config or ParallelConfig()
    options: "dict[str, Any]" = {"params": params or SeedingParams(),
                                 "insert_mean": insert_mean,
                                 "insert_sd": insert_sd}
    batches = [pack_batch(chunk)
               for chunk in iter_chunks(reads, 2 * config.batch_size)]
    per_batch, stats = _execute_over_index(index, "align-pe", options,
                                           batches, config)
    return [rec for recs in per_batch for rec in recs], stats


def traffic_totals(engine: SeedingEngine, reads: "Sequence[object]",
                   params: "SeedingParams | None" = None,
                   config: "ParallelConfig | None" = None) \
        -> "tuple[int, int, dict[str, tuple[int, int]]]":
    """Aggregate per-batch memory-traffic totals over the pool.

    ERT engines ship their index through shared memory; other engine
    types fall back to pickling the engine once per worker (still one
    copy per worker, never one per batch).
    """
    config = config or ParallelConfig()
    options: "dict[str, Any]" = {"params": params or SeedingParams()}
    batches = [pack_batch(chunk)
               for chunk in iter_chunks(reads, config.batch_size)]
    workers = config.resolved_workers()
    if workers <= 1:
        results, _ = _aggregate(map_batches(("local", engine), "traffic",
                                            options, batches, config))
    elif isinstance(engine, ErtSeedingEngine):
        with SharedIndexBuffer(engine.index) as shared:
            spec: EngineSpec = ("shm", shared.name, shared.size,
                                engine.gather_limit)
            results, _ = _aggregate(map_batches(spec, "traffic", options,
                                                batches, config))
    else:
        results, _ = _aggregate(map_batches(("pickle", engine), "traffic",
                                            options, batches, config))
    requests = sum(r[0] for r in results)
    nbytes = sum(r[1] for r in results)
    by_phase: "dict[str, tuple[int, int]]" = {}
    for _, _, phases in results:
        for phase, (preq, pbytes) in phases.items():
            prev = by_phase.get(phase, (0, 0))
            by_phase[phase] = (prev[0] + preq, prev[1] + pbytes)
    return requests, nbytes, by_phase
