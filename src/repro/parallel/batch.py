"""Read batching: the unit of work the scheduler ships to a worker.

A :class:`ReadBatch` packs a slice of the input read set into one
contiguous ``uint8`` code array plus an offsets vector (names and
quality strings ride along as tuples).  One batch costs one pickle
round-trip regardless of read count, and :meth:`ReadBatch.reads`
materializes per-read views of the shared code array -- no per-read
copies on either side of the pipe.

The same packing feeds the serial fast path: pre-encoding a batch up
front lets the engine hoist per-read work (reverse complements, scoring
scheme construction) to batch granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


@dataclass(frozen=True)
class ReadBatch:
    """A fixed-size slice of the input reads, packed for one worker."""

    names: "tuple[str, ...]"
    qualities: "tuple[str, ...]"
    codes: np.ndarray
    offsets: np.ndarray

    def __len__(self) -> int:
        return len(self.names)

    def reads(self) -> "list[np.ndarray]":
        """Per-read views of the packed code array (one object per read,
        so engines may key per-read caches by identity)."""
        offsets = self.offsets
        return [self.codes[int(offsets[i]):int(offsets[i + 1])]
                for i in range(len(self.names))]


def pack_batch(reads: "Sequence[object]") -> ReadBatch:
    """Pack reads into one batch.

    Accepts either :class:`repro.sequence.simulate.Read`-like objects
    (``.name`` / ``.codes`` / ``.quality``) or bare code arrays (which
    get empty names/qualities) -- the latter is the
    :func:`repro.analysis.datavol.measure_traffic` calling convention.
    """
    names: "list[str]" = []
    qualities: "list[str]" = []
    arrays: "list[np.ndarray]" = []
    for read in reads:
        codes = getattr(read, "codes", read)
        names.append(getattr(read, "name", ""))
        qualities.append(getattr(read, "quality", ""))
        arrays.append(np.asarray(codes, dtype=np.uint8))
    offsets = np.zeros(len(arrays) + 1, dtype=np.int64)
    for i, arr in enumerate(arrays):
        offsets[i + 1] = offsets[i] + arr.size
    packed = (np.concatenate(arrays) if arrays
              else np.zeros(0, dtype=np.uint8))
    return ReadBatch(names=tuple(names), qualities=tuple(qualities),
                     codes=packed, offsets=offsets)


def iter_chunks(items: "Sequence[T]", size: int) -> "Iterator[Sequence[T]]":
    """Yield ``items`` in fixed-size runs (the last may be short)."""
    if size < 1:
        raise ValueError("batch size must be at least 1")
    for start in range(0, len(items), size):
        yield items[start:start + size]
