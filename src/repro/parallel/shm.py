"""Zero-copy index sharing via ``multiprocessing.shared_memory``.

The parent serializes a built :class:`~repro.core.index.ErtIndex` once
with :func:`repro.core.io.index_to_buffer` and places the flat payload in
a POSIX shared-memory segment.  Each worker process then *attaches* the
segment by name and opens it with :func:`repro.core.io.index_from_buffer`
-- every numpy array of the reconstructed index is a read-only view
straight into the segment, so N workers share one physical copy of the
entry table, tree blobs and packed reference (the software analogue of
the paper's 64 seeding lanes hitting one ERT, §IV).

Lifecycle contract (enforced mechanically by checker rule ERT008): only
this package constructs ``SharedMemory`` objects.  The parent owns the
segment -- it creates, closes and unlinks it; workers attach and merely
close their mapping when the process exits.  Because a segment outliving
the run is a system-wide leak (it survives the interpreter), every parent
path is hardened: construction failures unlink eagerly, context-manager
exit unlinks even when close fails, and an ``atexit`` guard sweeps any
segment still registered when the interpreter shuts down -- e.g. when an
unhandled worker-crash error unwinds past the owner.
"""

from __future__ import annotations

import atexit
import multiprocessing
from multiprocessing import resource_tracker, shared_memory

from repro.core.index import ErtIndex
from repro.core.io import index_from_buffer, index_to_buffer
from repro.logging import get_logger

_log = get_logger("parallel.shm")

#: Segments created by this process that are not yet unlinked, by name.
#: The atexit sweep below is a *guard*, not the cleanup path: normal
#: runs unlink through ``SharedIndexBuffer.__exit__`` and leave this
#: empty.
_LIVE_SEGMENTS: "dict[str, SharedIndexBuffer]" = {}


def _sweep_live_segments() -> None:
    """Last-chance unlink of any segment whose owner never ran: without
    it, a run killed between creation and cleanup leaves the payload in
    ``/dev/shm`` until reboot."""
    for owner in list(_LIVE_SEGMENTS.values()):
        _log.warn("shm.sweep", segment=owner.name, size=owner.size)
        try:
            owner.close()
            owner.unlink()
        except OSError:
            pass  # already gone (e.g. swept by the resource tracker)


atexit.register(_sweep_live_segments)


class SharedIndexBuffer:
    """Parent-side owner of one index's shared-memory segment.

    Usable as a context manager; exiting closes *and unlinks* the
    segment, so keep it open for as long as any worker may attach.
    """

    def __init__(self, index: ErtIndex) -> None:
        payload = index_to_buffer(index)
        self._shm: "shared_memory.SharedMemory | None" = \
            shared_memory.SharedMemory(create=True, size=len(payload))
        try:
            self._shm.buf[:len(payload)] = payload
        except Exception:
            # The segment exists but holds no usable payload; remove it
            # now or nothing ever will.
            self._shm.close()
            self._shm.unlink()
            self._shm = None
            raise
        #: Segment name workers pass to :func:`attach_index`.
        self.name: str = self._shm.name
        #: Logical payload size (the kernel may round the segment up).
        self.size: int = len(payload)
        _LIVE_SEGMENTS[self.name] = self
        _log.info("shm.create", segment=self.name, size=self.size)

    def close(self) -> None:
        """Drop the parent's mapping (the segment itself survives)."""
        if self._shm is not None:
            self._shm.close()

    def unlink(self) -> None:
        """Remove the segment from the system; call once, after every
        worker is done."""
        if self._shm is not None:
            _LIVE_SEGMENTS.pop(self.name, None)
            shm, self._shm = self._shm, None
            shm.unlink()
            _log.info("shm.unlink", segment=self.name)

    def __enter__(self) -> "SharedIndexBuffer":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        try:
            self.close()
        finally:
            self.unlink()


def attach_index(name: str, size: int) -> ErtIndex:
    """Worker-side attach: open segment ``name`` and reconstruct the
    index over it without copying the payload.

    The returned index pins the segment mapping (``_shm`` attribute), so
    its array views stay valid for the index's lifetime.  If
    reconstruction fails, the mapping is closed before the error
    propagates -- a worker that dies during initialization must not
    hold the segment mapped for the rest of its (possibly pooled)
    process lifetime.
    """
    shm = shared_memory.SharedMemory(name=name)
    try:
        # Attach-only mapping: the parent owns the segment's lifetime.
        # Under the ``spawn`` start method each worker has its *own*
        # resource tracker, which would treat the attach as a leak and
        # unlink the parent's segment at worker exit (bpo-39959) -- so
        # deregister the mapping there.  Under ``fork`` (the Linux
        # default) parent and workers share one tracker and the attach
        # re-register is an idempotent set-add; unregistering here would
        # instead erase the parent's own registration.
        if multiprocessing.get_start_method(allow_none=False) != "fork":
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except (AttributeError, KeyError):
                pass
        index = index_from_buffer(shm.buf[:size])
    except Exception:
        shm.close()
        raise
    index._shm = shm  # type: ignore[attr-defined]
    return index
