"""Batch execution layer: shared-memory index, worker-pool pipelines.

The paper's throughput comes from 64 seeding lanes sharing one ERT
(§IV); this package is the host-software analogue.  One process builds
(or loads) the index, serializes it once into a shared-memory segment
(:class:`SharedIndexBuffer`), and N worker processes attach it zero-copy
(:func:`attach_index`).  Reads stream through a bounded, order-preserving
batch scheduler (:mod:`repro.parallel.scheduler`), so the merged output
is byte-identical to a serial run, and per-worker engine stats plus
telemetry snapshots fold back into the parent.

Entry points:

* :func:`seed_reads` / :func:`align_reads` / :func:`align_pairs` -- the
  CLI's ``seed`` / ``align`` / ``align-pe`` workloads;
* :func:`traffic_totals` -- batched memory-traffic measurement for
  ``compare`` (:func:`repro.analysis.datavol.measure_traffic`);
* :class:`ParallelConfig` / :func:`default_workers` -- ``--workers`` /
  ``--batch-size`` / ``$REPRO_WORKERS`` resolution;
* :mod:`repro.parallel.faults` -- the typed failure taxonomy
  (:class:`ParallelExecutionError` and friends) and :class:`RetryPolicy`
  behind worker-crash recovery, per-batch timeouts and the serial
  degradation path (``--retries`` / ``--batch-timeout`` /
  ``$REPRO_RETRIES``).

Checker rule ERT008 keeps this package the *only* place that constructs
``ProcessPoolExecutor`` or ``SharedMemory`` objects, so worker lifecycle
(initialization, telemetry aggregation, segment cleanup) has exactly one
implementation.  See ``docs/performance.md``.
"""

from __future__ import annotations

from repro.parallel.batch import ReadBatch, iter_chunks, pack_batch
from repro.parallel.faults import (
    BatchSerializationError,
    BatchTaskError,
    BatchTimeoutError,
    ParallelExecutionError,
    PoolUnavailableError,
    RetryPolicy,
    WorkerCrashError,
    default_retries,
)
from repro.parallel.scheduler import (
    ParallelConfig,
    align_pairs,
    align_reads,
    default_workers,
    map_batches,
    seed_reads,
    traffic_totals,
)
from repro.parallel.shm import SharedIndexBuffer, attach_index

__all__ = [
    "BatchSerializationError",
    "BatchTaskError",
    "BatchTimeoutError",
    "ParallelConfig",
    "ParallelExecutionError",
    "PoolUnavailableError",
    "ReadBatch",
    "RetryPolicy",
    "SharedIndexBuffer",
    "WorkerCrashError",
    "align_pairs",
    "align_reads",
    "attach_index",
    "default_retries",
    "default_workers",
    "iter_chunks",
    "map_batches",
    "pack_batch",
    "seed_reads",
    "traffic_totals",
]
