"""repro: reproduction of the ISCA 2021 ERT seeding paper.

Subpackages:

* :mod:`repro.sequence` -- DNA substrate (references, simulators, I/O)
* :mod:`repro.fmindex`  -- the FMD-index baseline
* :mod:`repro.seeding`  -- the engine-agnostic three-round seeding algorithm
* :mod:`repro.core`     -- the Enumerated Radix Tree (the paper's contribution)
* :mod:`repro.memsim`   -- traffic tracing, caches, DRAM row-buffer model
* :mod:`repro.accel`    -- the seeding-accelerator simulator
* :mod:`repro.extend`   -- Smith-Waterman, chaining, SAM, full aligner
* :mod:`repro.analysis` -- traffic measurement, roofline, divergence
* :mod:`repro.telemetry`-- metrics registry, span tracer, profile reports
* :mod:`repro.baselines`-- hash-table seeding (related-work comparison)

The most common entry points are re-exported here.
"""

from repro import telemetry
from repro.core import ErtConfig, ErtSeedingEngine, build_ert, load_ert, save_ert
from repro.extend import ReadAligner
from repro.fmindex import FmdConfig, FmdIndex, FmdSeedingEngine
from repro.seeding import SeedingParams, seed_read
from repro.sequence import GenomeSimulator, ReadSimulator, Reference

__version__ = "1.0.0"

__all__ = [
    "ErtConfig",
    "ErtSeedingEngine",
    "FmdConfig",
    "FmdIndex",
    "FmdSeedingEngine",
    "GenomeSimulator",
    "ReadAligner",
    "ReadSimulator",
    "Reference",
    "SeedingParams",
    "build_ert",
    "load_ert",
    "save_ert",
    "seed_read",
    "telemetry",
]
