"""Command-line interface: the workflows a downstream user actually runs.

``ert-repro`` mirrors the shape of real aligner tooling (index once,
align many times):

* ``simulate-genome`` / ``simulate-reads`` -- produce FASTA/FASTQ inputs;
* ``build-index``  -- construct an ERT and persist it (.npz);
* ``index-stats``  -- census of a persisted index (Fig 8 / §III-A3 data);
* ``seed``         -- three-round seeding, one TSV line per seed;
* ``align``        -- full pipeline to SAM;
* ``report``       -- render a saved telemetry snapshot as a profile
  (or re-export it as OpenMetrics text with ``--format openmetrics``);
* ``explain``      -- replay one read through the serial engine with
  full instrumentation and print its cost attribution;
* ``check``        -- run the repository's static-analysis rules
  (:mod:`repro.checks`, see docs/static_analysis.md);
* ``ledger``       -- record benchmark runs and gate on throughput
  regressions (:mod:`repro.ledger`, see docs/observability.md).

``seed``, ``align``, ``align-pe`` and ``compare`` take ``--profile``
(print a per-stage wall-clock/counter report), ``--metrics-out FILE``
(write the full telemetry snapshot; ``--metrics-format openmetrics``
switches the file from JSON to Prometheus-scrapable OpenMetrics text),
``--slowlog FILE`` (append the per-read exemplar sample -- reservoir
plus top-K slowest -- as JSONL), ``--log-jsonl FILE`` /
``--log-level`` (structured operational logs: scheduler, fault
recovery, shared-memory lifecycle) and ``--trace-out FILE`` (record a
timeline and write Chrome/Perfetto ``trace_event`` JSON -- open it at
https://ui.perfetto.dev).  The read-driven commands also take
``--progress`` (a rate-limited stderr heartbeat: reads/s, batches in
flight, crashes survived, ETA).

``seed``, ``align``, ``align-pe`` and ``compare`` take ``--workers N``
and ``--batch-size M``: reads stream through the :mod:`repro.parallel`
batch scheduler (shared-memory index, order-preserving merge), so the
output is byte-identical to a serial run at any worker count.  The
default worker count comes from ``$REPRO_WORKERS`` (else 1).  With
workers > 1 they also take ``--retries R`` (per-batch retry budget
after a worker crash or batch timeout; default ``$REPRO_RETRIES``,
else 2) and ``--batch-timeout SEC``; see the failure model in
``docs/performance.md``.  ``--kernels vector`` (default
``$REPRO_KERNELS``, else scalar) routes seeding through the batched
numpy kernels (:mod:`repro.kernels`) with byte-identical output.

Every subcommand is a thin shell over the library API, so everything it
does is equally available programmatically.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import zlib

from repro import logging as repro_logging
from repro import telemetry
from repro.checks import cli as checks_cli
from repro.ledger import cli as ledger_cli
from repro.core import (
    ErtConfig,
    ErtSeedingEngine,
    build_ert,
    hit_distribution,
    index_census,
    load_ert,
    save_ert,
)
from repro.extend import write_sam
from repro.kernels import KERNEL_CHOICES, resolve_kernels
from repro.parallel import (
    ParallelConfig,
    align_pairs,
    align_reads,
    seed_reads,
)
from repro.seeding import SeedingParams
from repro.sequence import (
    GenomeSimulator,
    ReadSimulator,
    read_fasta,
    read_fastq,
    write_fasta,
    write_fastq,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ert-repro",
        description="Enumerated Radix Tree seeding (ISCA 2021 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sim_g = sub.add_parser("simulate-genome",
                           help="generate a repeat-rich synthetic genome")
    sim_g.add_argument("--length", type=int, required=True)
    sim_g.add_argument("--seed", type=int, default=0)
    sim_g.add_argument("--name", default="synthetic")
    sim_g.add_argument("--out", required=True)

    sim_r = sub.add_parser("simulate-reads",
                           help="sample Illumina-like reads from a FASTA")
    sim_r.add_argument("--reference", required=True)
    sim_r.add_argument("--count", type=int, required=True)
    sim_r.add_argument("--read-length", type=int, default=101)
    sim_r.add_argument("--error-fraction", type=float, default=0.2)
    sim_r.add_argument("--seed", type=int, default=0)
    sim_r.add_argument("--out", required=True)

    build = sub.add_parser("build-index", help="build and persist an ERT")
    build.add_argument("--reference", required=True)
    build.add_argument("--k", type=int, default=8)
    build.add_argument("--max-seed-len", type=int, default=151)
    build.add_argument("--table-threshold", type=int, default=256)
    build.add_argument("--table-x", type=int, default=4)
    build.add_argument("--prefix-merging", action="store_true")
    build.add_argument("--out", required=True)

    stats = sub.add_parser("index-stats", help="census of a persisted ERT")
    stats.add_argument("--index", required=True)

    seed = sub.add_parser("seed", help="seed reads, one TSV line per seed")
    seed.add_argument("--index", required=True)
    seed.add_argument("--reads", required=True)
    seed.add_argument("--min-seed-len", type=int, default=19)
    seed.add_argument("--max-hits", type=int, default=500)
    seed.add_argument("--out", default="-")
    _add_telemetry_args(seed)
    _add_progress_arg(seed)
    _add_parallel_args(seed)

    align = sub.add_parser("align", help="align reads to SAM")
    align.add_argument("--index", required=True)
    align.add_argument("--reads", required=True)
    align.add_argument("--min-seed-len", type=int, default=19)
    align.add_argument("--out", required=True)
    _add_telemetry_args(align)
    _add_progress_arg(align)
    _add_parallel_args(align)

    align_pe = sub.add_parser(
        "align-pe", help="align interleaved paired-end reads to SAM")
    align_pe.add_argument("--index", required=True)
    align_pe.add_argument("--reads", required=True,
                          help="interleaved FASTQ (mate1, mate2, ...)")
    align_pe.add_argument("--min-seed-len", type=int, default=19)
    align_pe.add_argument("--insert-mean", type=int, default=350)
    align_pe.add_argument("--insert-sd", type=int, default=50)
    align_pe.add_argument("--out", required=True)
    _add_telemetry_args(align_pe)
    _add_progress_arg(align_pe)
    _add_parallel_args(align_pe)

    report = sub.add_parser(
        "report", help="render a saved telemetry snapshot (--metrics-out "
                       "file) as a per-stage profile")
    report.add_argument("--metrics", required=True,
                        help="JSON file written by --metrics-out")
    report.add_argument("--format", choices=("profile", "openmetrics"),
                        default="profile",
                        help="profile (default, human-readable tables) or "
                             "openmetrics (Prometheus exposition text)")

    explain = sub.add_parser(
        "explain",
        help="replay one read from a FASTQ through the serial engine "
             "with full instrumentation and print where its time went")
    explain.add_argument("--index", required=True)
    explain.add_argument("--reads", required=True,
                         help="FASTQ holding the read to replay")
    explain.add_argument("--read-id", required=True,
                         help="read name as shown in the slowlog / "
                              "exemplar tables")
    explain.add_argument("--task", choices=("seed", "align"),
                         default="seed")
    explain.add_argument("--kernels", choices=("scalar", "vector"),
                         default=None,
                         help="replay through the scalar engine or the "
                              "batched vector kernels; defaults to "
                              "whatever the slowlog record says the run "
                              "used (else scalar)")
    explain.add_argument("--min-seed-len", type=int, default=19)
    explain.add_argument("--max-hits", type=int, default=500)
    explain.add_argument(
        "--slowlog", default=None, metavar="FILE",
        help="cross-check the replayed counters against this slowlog's "
             "recorded entry for the read (non-zero exit on mismatch)")
    explain.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the replayed record as JSON instead "
                              "of tables")

    compare = sub.add_parser(
        "compare",
        help="measure FMD vs ERT memory traffic on a read set (Fig 12)")
    compare.add_argument("--reference", required=True)
    compare.add_argument("--reads", required=True)
    compare.add_argument("--k", type=int, default=8)
    compare.add_argument("--min-seed-len", type=int, default=19)
    _add_telemetry_args(compare)
    _add_parallel_args(compare)

    check = sub.add_parser(
        "check", help="run the repo's static-analysis rules "
                      "(non-zero exit on violations)")
    checks_cli.configure_parser(check)

    ledger = sub.add_parser(
        "ledger", help="record benchmark runs and gate on throughput "
                       "regressions (non-zero exit on a regression)")
    ledger_cli.configure_parser(ledger)
    return parser


def _add_telemetry_args(parser) -> None:
    parser.add_argument(
        "--profile", action="store_true",
        help="collect telemetry and print a per-stage profile")
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="collect telemetry and write the snapshot as JSON")
    parser.add_argument(
        "--metrics-format", choices=("json", "openmetrics"),
        default="json",
        help="--metrics-out format: json (default, consumable by "
             "'report') or openmetrics (Prometheus exposition text "
             "with per-bucket exemplars)")
    parser.add_argument(
        "--slowlog", default=None, metavar="FILE",
        help="sample per-read exemplars and append them (reservoir + "
             "top-K slowest) to FILE as JSONL; feed any read id shown "
             "there to 'ert-repro explain'")
    parser.add_argument(
        "--log-jsonl", default=None, metavar="FILE",
        help="append structured operational logs (scheduler, fault "
             "recovery, shared-memory lifecycle) to FILE as JSONL")
    parser.add_argument(
        "--log-level", choices=repro_logging.LEVELS, default="info",
        help="minimum level for --log-jsonl (default info)")
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="record a timeline and write Chrome/Perfetto trace_event "
             "JSON (open at https://ui.perfetto.dev); includes "
             "per-worker tracks at --workers > 1")


def _add_progress_arg(parser) -> None:
    parser.add_argument(
        "--progress", action="store_true",
        help="print a rate-limited stderr heartbeat (reads/s, batches "
             "in flight, worker crashes, ETA)")


def _positive_int(label):
    """Argparse type factory: an int that must be >= 1, with an error
    message naming the option (rejected at parse time rather than
    silently clamped deep inside ``ParallelConfig``)."""
    def parse(text):
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{label} must be an integer, got {text!r}")
        if value < 1:
            raise argparse.ArgumentTypeError(
                f"{label} must be >= 1, got {value}")
        return value
    return parse


def _nonnegative_int(label):
    """Argparse type for an int >= 0 (retry budgets: 0 = fail fast)."""
    def parse(text):
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{label} must be an integer, got {text!r}")
        if value < 0:
            raise argparse.ArgumentTypeError(
                f"{label} must be >= 0, got {value}")
        return value
    return parse


def _positive_float(label):
    """Argparse type for a float that must be > 0 (timeouts)."""
    def parse(text):
        try:
            value = float(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{label} must be a number, got {text!r}")
        if value <= 0:
            raise argparse.ArgumentTypeError(
                f"{label} must be > 0, got {value}")
        return value
    return parse


def _add_parallel_args(parser) -> None:
    parser.add_argument(
        "--workers", type=_positive_int("--workers"), default=None,
        metavar="N",
        help="worker processes for the batch scheduler (default: "
             "$REPRO_WORKERS, else 1 = in-process); output is "
             "byte-identical at any count")
    parser.add_argument(
        "--batch-size", type=_positive_int("--batch-size"), default=64,
        metavar="M",
        help="reads per scheduler batch (default 64)")
    parser.add_argument(
        "--retries", type=_nonnegative_int("--retries"), default=None,
        metavar="R",
        help="per-batch retry budget after a worker crash or batch "
             "timeout (default: $REPRO_RETRIES, else 2; 0 = fail on "
             "first fault)")
    parser.add_argument(
        "--batch-timeout", type=_positive_float("--batch-timeout"),
        default=None, metavar="SEC",
        help="seconds to wait for one batch before killing and "
             "respawning the pool (default: wait forever)")
    parser.add_argument(
        "--kernels", choices=KERNEL_CHOICES, default=None,
        help="seeding/extension kernels: scalar (the per-read oracle) "
             "or vector (batched numpy walks + wavefront SW; "
             "byte-identical output).  Default: $REPRO_KERNELS, else "
             "scalar")


def _parallel_config(args) -> ParallelConfig:
    return ParallelConfig(workers=args.workers, batch_size=args.batch_size,
                          retries=args.retries,
                          batch_timeout=args.batch_timeout,
                          kernels=getattr(args, "kernels", None))


def _telemetry_begin(args) -> bool:
    """Enable telemetry for this command iff the user asked for output.
    Returns whether a metrics session is active (the default stays a
    true no-op).  ``--trace-out`` additionally starts timeline
    recording, and ``--log-jsonl`` opens the structured-log sink; both
    are independent of the metrics flag."""
    active = bool(args.profile or args.metrics_out or args.slowlog)
    if active:
        telemetry.reset()
        telemetry.enable()
    if args.log_jsonl:
        repro_logging.configure(path=args.log_jsonl,
                                level=args.log_level)
    if args.trace_out:
        telemetry.start_recording()
    return active


def _write_slowlog(path, exemplars: dict) -> None:
    """Append the sampled exemplar records as JSONL, slowlog entries
    first (they are what ``explain`` cross-checks against)."""
    seen = set()
    with open(path, "a") as handle:
        for source in ("slowest", "reservoir"):
            for rec in exemplars.get(source, []):
                key = (rec["read_id"], rec.get("task"), rec["wall_ms"])
                if key in seen:
                    continue
                seen.add(key)
                record = {"source": source}
                record.update(rec)
                handle.write(json.dumps(record, sort_keys=True) + "\n")


def _telemetry_finish(args, active: bool, title: str,
                      profile_stream=None) -> None:
    if args.trace_out:
        telemetry.stop_recording()
        telemetry.write_trace(args.trace_out, telemetry.current_trace())
        print(f"wrote timeline trace to {args.trace_out} "
              f"(open at https://ui.perfetto.dev)", file=sys.stderr)
    if args.log_jsonl:
        repro_logging.shutdown()
    if not active:
        return
    telemetry.disable()
    snap = telemetry.snapshot()
    if args.metrics_out:
        if args.metrics_format == "openmetrics":
            with open(args.metrics_out, "w") as handle:
                handle.write(telemetry.render_openmetrics(snap))
            print(f"wrote OpenMetrics exposition to {args.metrics_out}",
                  file=sys.stderr)
        else:
            telemetry.write_json(args.metrics_out, snap)
            print(f"wrote telemetry snapshot to {args.metrics_out}",
                  file=sys.stderr)
    if args.slowlog:
        exemplars = snap.get("exemplars", {})
        _write_slowlog(args.slowlog, exemplars)
        print(f"wrote {len(exemplars.get('slowest', []))} slowlog + "
              f"{len(exemplars.get('reservoir', []))} reservoir "
              f"exemplars to {args.slowlog}", file=sys.stderr)
    if args.profile:
        print(telemetry.render_profile(snap, title=title),
              file=profile_stream or sys.stdout)


def _make_reporter(args, total: int) -> "telemetry.ProgressReporter | None":
    """A live heartbeat when ``--progress`` was given (forced on even
    without a TTY -- asking for it means wanting the lines in a log)."""
    if not getattr(args, "progress", False):
        return None
    return telemetry.ProgressReporter(total=total, force=True)


def _cmd_simulate_genome(args) -> int:
    reference = GenomeSimulator(seed=args.seed).generate(args.length,
                                                         name=args.name)
    write_fasta(args.out, [reference])
    print(f"wrote {len(reference):,} bp to {args.out}")
    return 0


def _cmd_simulate_reads(args) -> int:
    reference = read_fasta(args.reference)[0]
    sim = ReadSimulator(reference, read_length=args.read_length,
                        error_read_fraction=args.error_fraction,
                        seed=args.seed)
    reads = sim.simulate(args.count)
    write_fastq(args.out, reads)
    print(f"wrote {len(reads)} reads to {args.out}")
    return 0


def _cmd_build_index(args) -> int:
    reference = read_fasta(args.reference)[0]
    config = ErtConfig(k=args.k, max_seed_len=args.max_seed_len,
                       table_threshold=args.table_threshold,
                       table_x=args.table_x,
                       prefix_merging=args.prefix_merging)
    index = build_ert(reference, config)
    save_ert(index, args.out)
    sizes = index.index_bytes()
    print(f"built ERT (k={args.k}) over {len(reference):,} bp: "
          f"{sizes['total'] / 1024:.0f} KiB "
          f"(table {sizes['index_table'] / 1024:.0f}, "
          f"trees {sizes['trees'] / 1024:.0f}); saved to {args.out}")
    return 0


def _cmd_index_stats(args) -> int:
    index = load_ert(args.index)
    census = index_census(index)
    print(f"reference      : {index.reference.name} "
          f"({len(index.reference):,} bp)")
    print(f"k              : {index.config.k} "
          f"({census.n_entries:,} entries)")
    print(f"entry kinds    : EMPTY {census.empty:,} "
          f"({census.empty_fraction * 100:.1f}%), LEAF {census.leaf:,}, "
          f"TREE {census.tree:,}, TABLE {census.table:,}")
    for key, value in census.index_bytes.items():
        print(f"bytes[{key:13s}]: {value:,}")
    print("hit distribution (k-mers with > X hits):")
    for threshold, count in hit_distribution(index):
        print(f"  > {threshold:5d}: {count:,}")
    return 0


def _open_out(path):
    return sys.stdout if path == "-" else open(path, "w")


#: One-entry index cache keyed by (abspath, inode, mtime_ns, size,
#: content fingerprint): repeated subcommand invocations in one process
#: (tests, notebooks, compare sweeps) reload only when the file actually
#: changed.
_INDEX_CACHE: "dict[tuple, object]" = {}

_FINGERPRINT_PAGE = 4096


def _index_fingerprint(path, size):
    """CRC of the file's first and last page.

    Stat alone is not enough for the cache key: on filesystems with
    coarse mtime granularity a same-size rewrite within one tick is
    invisible to ``(mtime_ns, size)``, and the cache would serve the
    stale index.  Hashing two pages is O(1) in file size and catches any
    rewrite that touches the header or the trailing payload.
    """
    with open(path, "rb") as fh:
        crc = zlib.crc32(fh.read(_FINGERPRINT_PAGE))
        if size > _FINGERPRINT_PAGE:
            fh.seek(max(_FINGERPRINT_PAGE, size - _FINGERPRINT_PAGE))
            crc = zlib.crc32(fh.read(_FINGERPRINT_PAGE), crc)
    return crc


def load_index_cached(path):
    """Load a persisted ERT, reusing the in-process copy while the file
    is unchanged (same resolved path, inode, size, mtime and first/last
    page content)."""
    stat = os.stat(path)
    key = (os.path.abspath(path), stat.st_ino, stat.st_mtime_ns,
           stat.st_size, _index_fingerprint(path, stat.st_size))
    index = _INDEX_CACHE.get(key)
    if index is None:
        _INDEX_CACHE.clear()
        index = _INDEX_CACHE.setdefault(key, load_ert(path))
    return index


def _cmd_seed(args) -> int:
    index = load_index_cached(args.index)
    reads = read_fastq(args.reads)
    params = SeedingParams(min_seed_len=args.min_seed_len,
                           max_hits_per_seed=args.max_hits)
    active = _telemetry_begin(args)
    reporter = _make_reporter(args, len(reads))
    lines, stats = seed_reads(index, reads, params,
                              config=_parallel_config(args),
                              reporter=reporter)
    if reporter is not None:
        reporter.finish()
    out = _open_out(args.out)
    try:
        out.write("read\tstart\tlength\thit_count\thits\n")
        for line in lines:
            out.write(line)
    finally:
        if out is not sys.stdout:
            out.close()
    n_seeds = len(lines)
    truncated = stats.truncated_hit_lists
    clipped = (f" ({truncated} hit lists truncated by "
               f"--max-hits {args.max_hits})" if truncated else "")
    print(f"seeded {len(reads)} reads -> {n_seeds} seeds{clipped}",
          file=sys.stderr)
    # With TSV on stdout the profile must not corrupt it.
    _telemetry_finish(args, active, title=f"seed profile ({args.reads})",
                      profile_stream=sys.stderr if args.out == "-"
                      else sys.stdout)
    return 0


def _cmd_align(args) -> int:
    index = load_index_cached(args.index)
    reference = index.reference
    reads = read_fastq(args.reads)
    active = _telemetry_begin(args)
    reporter = _make_reporter(args, len(reads))
    records, _stats = align_reads(
        index, reads, SeedingParams(min_seed_len=args.min_seed_len),
        config=_parallel_config(args), reporter=reporter)
    if reporter is not None:
        reporter.finish()
    write_sam(args.out, reference, records)
    mapped = sum(1 for rec in records if not rec.flag & 0x4)
    print(f"aligned {len(reads)} reads ({mapped} mapped) -> {args.out}",
          file=sys.stderr)
    _telemetry_finish(args, active, title=f"align profile ({args.reads})")
    return 0


def _cmd_align_pe(args) -> int:
    index = load_index_cached(args.index)
    reference = index.reference
    reads = read_fastq(args.reads)
    if len(reads) % 2:
        raise SystemExit("interleaved FASTQ must hold an even read count")
    active = _telemetry_begin(args)
    reporter = _make_reporter(args, len(reads))
    records, _stats = align_pairs(
        index, reads, SeedingParams(min_seed_len=args.min_seed_len),
        insert_mean=args.insert_mean, insert_sd=args.insert_sd,
        config=_parallel_config(args), reporter=reporter)
    if reporter is not None:
        reporter.finish()
    write_sam(args.out, reference, records)
    proper = sum(1 for rec in records if rec.flag & 0x2) // 2
    print(f"aligned {len(reads) // 2} pairs ({proper} proper) -> "
          f"{args.out}", file=sys.stderr)
    _telemetry_finish(args, active,
                      title=f"align-pe profile ({args.reads})")
    return 0


def _cmd_report(args) -> int:
    snap = telemetry.load_snapshot(args.metrics)
    if args.format == "openmetrics":
        sys.stdout.write(telemetry.render_openmetrics(snap))
        return 0
    print(telemetry.render_profile(snap, title=f"telemetry report "
                                               f"({args.metrics})"))
    return 0


def _explain_replay(args, read, kernels: str = "scalar") -> "dict | None":
    """Replay ``read`` through the engine exactly as the batch scheduler
    would run it and return the captured exemplar record.

    ``kernels="vector"`` drives the batched kernels at batch size 1; the
    per-read kernel counters are batch-composition invariant, so the
    replayed record matches what a full vector batch recorded for this
    read field-for-field.
    """
    from repro.extend.pipeline import ReadAligner
    from repro.kernels import (
        KernelBatchStats,
        batched_banded_sw,
        batched_sw_traceback,
        seed_batch,
        vector_decline_reason,
    )
    from repro.parallel.scheduler import (
        instrumented_align_sam,
        instrumented_seed_batch,
        instrumented_seed_read,
    )

    # Mirror the CLI seeding path: the scheduler builds the engine with
    # gather_limit=500 and the per-seed hit cap rides in SeedingParams.
    engine = ErtSeedingEngine(load_index_cached(args.index),
                              gather_limit=500)
    if kernels == "vector":
        reason = vector_decline_reason(engine)
        if reason is not None:
            print(f"vector replay unavailable ({reason}); "
                  f"falling back to scalar", file=sys.stderr)
            kernels = "scalar"
    telemetry.reset()
    telemetry.enable()
    try:
        engine.reset_stats()
        engine.begin_batch([read.codes])
        if args.task == "seed":
            params = SeedingParams(min_seed_len=args.min_seed_len,
                                   max_hits_per_seed=args.max_hits)
            if kernels == "vector":
                instrumented_seed_batch(engine, [read.name],
                                        [read.codes], params)
            else:
                instrumented_seed_read(engine, read.name, read.codes,
                                       params)
        else:
            params = SeedingParams(min_seed_len=args.min_seed_len)
            vec = kernels == "vector"
            aligner = ReadAligner(engine.index.reference, engine,
                                  params=params,
                                  sw_batch=batched_banded_sw if vec
                                  else None,
                                  tb_batch=batched_sw_traceback if vec
                                  else None)
            if vec:
                # One-read replica of the scheduler's vector align
                # batch: batched seeding under a probe, then the
                # instrumented extension with the read's seed counters
                # and wall share folded in.
                probe = telemetry.read_probe()
                stats = KernelBatchStats(1)
                seeded = seed_batch(engine, [read.codes], params,
                                    stats=stats)
                shares = stats.wall_shares(telemetry.probe_ms(probe))
                instrumented_align_sam(
                    aligner, read.codes, read.name, read.quality,
                    seeding=seeded[0],
                    seed_counters=stats.read_counters(0),
                    seed_ms=float(shares[0]))
            else:
                instrumented_align_sam(aligner, read.codes, read.name,
                                       read.quality)
        snap = telemetry.snapshot()
    finally:
        telemetry.disable()
    slowest = snap.get("exemplars", {}).get("slowest", [])
    return slowest[0] if slowest else None


def _load_slowlog_entry(path, read_id: str, task: str) -> "dict | None":
    entry = None
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("read_id") == read_id and \
                    record.get("task") == task:
                entry = record
    return entry


def _cmd_explain(args) -> int:
    reads = [r for r in read_fastq(args.reads) if r.name == args.read_id]
    if not reads:
        print(f"read {args.read_id!r} not found in {args.reads}",
              file=sys.stderr)
        return 2
    # Peek at the slowlog record first: when the run used the vector
    # kernels the record says so, and the replay must go through the
    # same path for the counters to be comparable.  Without a slowlog
    # to consult, fall back to the usual $REPRO_KERNELS resolution so
    # an explain run in a vector environment replays vector.
    recorded = (_load_slowlog_entry(args.slowlog, args.read_id,
                                    args.task)
                if args.slowlog else None)
    kernels = (args.kernels or (recorded or {}).get("kernels")
               or resolve_kernels())
    rec = _explain_replay(args, reads[0], kernels=kernels)
    if rec is None:
        print("replay recorded no exemplar (telemetry disabled?)",
              file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(rec, sort_keys=True))
    else:
        counters = rec.get("counters", {})
        mode = rec.get("kernels", "scalar")
        print(f"read {rec['read_id']} ({rec['task']}, {mode} kernels): "
              f"{rec['wall_ms']:.3f} ms replayed wall time")
        width = max([len(k) for k in counters] or [7])
        for name, value in sorted(counters.items(),
                                  key=lambda kv: (-kv[1], kv[0])):
            print(f"  {name.ljust(width)}  {value:,}")
    if not args.slowlog:
        return 0
    if recorded is None:
        print(f"no {rec['task']} entry for {args.read_id!r} in "
              f"{args.slowlog}", file=sys.stderr)
        return 2
    mismatches = []
    replayed = rec.get("counters", {})
    for name in sorted(set(replayed) | set(recorded.get("counters", {}))):
        want = recorded.get("counters", {}).get(name, 0)
        got = replayed.get(name, 0)
        if want != got:
            mismatches.append(f"  {name}: recorded {want:,} != "
                              f"replayed {got:,}")
    if mismatches:
        print(f"counter mismatch against {args.slowlog}:",
              file=sys.stderr)
        print("\n".join(mismatches), file=sys.stderr)
        return 1
    print(f"replay matches the slowlog record exactly "
          f"({len(replayed)} counters; recorded wall "
          f"{recorded['wall_ms']:.3f} ms)", file=sys.stderr)
    return 0


def _cmd_compare(args) -> int:
    from repro.analysis import format_table, measure_traffic

    reference = read_fasta(args.reference)[0]
    reads = [r.codes for r in read_fastq(args.reads)]
    params = SeedingParams(min_seed_len=args.min_seed_len)
    active = _telemetry_begin(args)
    rows = []
    profiles = {}
    for name, engine, size in _comparison_engines(reference, args.k):
        profile = measure_traffic(engine, reads, params, name=name,
                                  workers=args.workers,
                                  batch_size=args.batch_size)
        profiles[name] = profile
        rows.append([name, profile.requests_per_read, profile.kb_per_read,
                     size / 1024])
    print(format_table(
        ["config", "mem requests/read", "KB/read", "index KiB"], rows,
        title=f"FMD vs ERT memory traffic over {len(reads)} reads "
              f"(paper Fig 12)"))
    ratio = (profiles["BWA-MEM2 (FMD)"].bytes_per_read
             / profiles["ERT"].bytes_per_read)
    print(f"\nERT data-efficiency gain: {ratio:.1f}x "
          f"(paper: 4.5x at human scale)")
    _telemetry_finish(args, active,
                      title=f"compare profile ({args.reads})",
                      profile_stream=sys.stderr)
    return 0


#: Built comparison indexes keyed by (reference identity, k): one FMD
#: and one ERT build per configuration, however many times ``compare``
#: (or a sweep over it) runs in this process.  Engines are constructed
#: fresh per call -- they carry mutable stats -- but share the cached
#: indexes, and both indexes share the one loaded reference object.
_COMPARE_INDEX_CACHE: "dict[tuple, tuple]" = {}


def _comparison_engines(reference, k):
    import zlib

    from repro.fmindex import FmdConfig, FmdIndex, FmdSeedingEngine

    key = (reference.name, len(reference),
           zlib.crc32(reference.codes.tobytes()), k)
    cached = _COMPARE_INDEX_CACHE.get(key)
    if cached is None:
        _COMPARE_INDEX_CACHE.clear()
        fmd_index = FmdIndex(reference, FmdConfig.bwa_mem2())
        ert_index = build_ert(reference, ErtConfig(k=k, max_seed_len=151))
        cached = _COMPARE_INDEX_CACHE.setdefault(
            key, (reference, fmd_index, ert_index))
    _reference, fmd_index, ert_index = cached
    return [
        ("BWA-MEM2 (FMD)", FmdSeedingEngine(fmd_index),
         fmd_index.index_bytes()["total"]),
        ("ERT", ErtSeedingEngine(ert_index),
         ert_index.index_bytes()["total"]),
    ]


_COMMANDS = {
    "simulate-genome": _cmd_simulate_genome,
    "simulate-reads": _cmd_simulate_reads,
    "build-index": _cmd_build_index,
    "index-stats": _cmd_index_stats,
    "seed": _cmd_seed,
    "align": _cmd_align,
    "align-pe": _cmd_align_pe,
    "report": _cmd_report,
    "explain": _cmd_explain,
    "compare": _cmd_compare,
    "check": checks_cli.run,
    "ledger": ledger_cli.run,
}


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
