"""The ERT seeding engine (paper §III).

Forward search consumes k characters with one index-table lookup (plus one
second-level table lookup for dense k-mers, §III-E), then walks the radix
tree; LEP positions come from the entry's precomputed bits inside the k-mer
and from DIVERGE transitions in the tree.  Backward search runs the same
machinery over the reverse-complemented read -- the double-strand text makes
the structure symmetric (§III-A3).

Hits are gathered *eagerly* at each backward search's dead end, exactly
like the hardware flow ("if we reach a dead end ... all leaf nodes in the
downstream sub-tree are gathered"), and cached so that seed emission costs
no further walks.  With ``prefix_merging`` on, adjacent backward searches
are resolved in pairs from a single traversal using the per-leaf prefix
characters (§III-B).
"""

from __future__ import annotations

import numpy as np

from repro.core.index import EntryKind, ErtIndex
from repro.core.walker import TreeCursor
from repro.seeding.engine import ForwardSearch, SeedingEngine
from repro.seeding.types import Mem
from repro.sequence.alphabet import COMPLEMENT


class ErtSeedingEngine(SeedingEngine):
    """Seeding engine over an :class:`~repro.core.index.ErtIndex`."""

    def __init__(self, index: ErtIndex, gather_limit: int = 500) -> None:
        super().__init__()
        self.index = index
        self.gather_limit = gather_limit
        self.name = "ert-pm" if index.config.prefix_merging else "ert"
        # The ERT walk resolves k characters through the entry table
        # before any tree traversal, so no primitive accepts a segment
        # shorter than k; seed_read() skips such reads up front.
        self.min_query_len = index.config.k
        self._rev: "dict[int, np.ndarray]" = {}
        self._hits: "dict[tuple, tuple[int, tuple[int, ...]]]" = {}
        # Strong references backing every id() used as a cache key below:
        # a bare id(read) can be recycled once the array is garbage
        # collected, silently serving another read's cached revcomp/hits.
        # Pinning the array for the cache's lifetime makes its id stable.
        self._pinned: "dict[int, np.ndarray]" = {}
        # Batch-level revcomp cache filled by begin_batch(); survives
        # begin_read() so every read of the batch finds its precomputed
        # reverse complement.
        self._batch_rev: "dict[int, np.ndarray]" = {}
        self._batch_pinned: "dict[int, np.ndarray]" = {}
        # Rolling k-mer entry codes per batch sequence (forward reads
        # and their cached reverse complements), also from begin_batch().
        self._batch_codes: "dict[int, np.ndarray]" = {}
        # Big-endian 2-bit pack weights for the second-level table
        # subcode: one dot product instead of a per-character loop.
        x = index.config.table_x
        self._subcode_weights = (4 ** np.arange(x - 1, -1, -1)).astype(np.int64)

    # ------------------------------------------------------------------
    # Per-read state
    # ------------------------------------------------------------------

    def begin_read(self) -> None:
        self._rev.clear()
        self._hits.clear()
        self._pinned.clear()

    def begin_batch(self, reads: "list[np.ndarray]") -> None:
        """Precompute every read's reverse complement with one
        ``COMPLEMENT`` gather over the concatenated batch instead of one
        per read (the :mod:`repro.parallel` serial fast path)."""
        reads = list(reads)
        # ERT001 exception: each id() key's referent is pinned in
        # _batch_pinned for the batch cache's lifetime.
        self._batch_pinned = {id(r): r for r in reads}  # repro: allow(ERT001)
        self._batch_rev = {}
        self._batch_codes = {}
        if not reads:
            return
        # Reverse the whole complemented buffer once so every per-read
        # slice below is contiguous and ascending -- negative-stride
        # views made every downstream indexing op pay a gather, which is
        # what made this "fast path" lose to the per-read loop.
        buf = np.concatenate(reads)
        rev = COMPLEMENT[buf][::-1].copy()
        total = int(rev.size)
        # Rolling k-mer codes over both strands in two matmuls: every
        # _kmer_entry() lookup on a batch sequence then reads its packed
        # entry code from this cache instead of re-packing k characters
        # in Python.  Windows straddling read boundaries are garbage and
        # excluded by the per-read slicing below.
        k = self.index.config.k
        fwd_codes = rev_codes = None
        if total >= k:
            weights = 4 ** np.arange(k - 1, -1, -1, dtype=np.int64)
            windows = np.lib.stride_tricks.sliding_window_view
            fwd_codes = windows(buf, k) @ weights
            rev_codes = windows(rev, k) @ weights
        base = 0
        for read in reads:
            n = int(read.size)
            lo = total - base - n
            rc = rev[lo:lo + n]
            self._batch_rev[id(read)] = rc  # repro: allow(ERT001)
            if n >= k and fwd_codes is not None:
                span = n - k + 1
                # ERT001 exception: read is pinned by _batch_pinned and
                # rc by _batch_rev for this cache's lifetime.
                self._batch_codes[id(read)] = (  # repro: allow(ERT001)
                    fwd_codes[base:base + span])
                self._batch_codes[id(rc)] = (  # repro: allow(ERT001)
                    rev_codes[lo:lo + span])
            base += n

    def _key(self, read: np.ndarray) -> int:
        # ERT001 exception: the very next statement pins `read` in
        # self._pinned for the cache's lifetime, so this id() cannot be
        # recycled while _rev/_hits hold entries keyed by it.
        key = id(read)  # repro: allow(ERT001)
        if key not in self._pinned:
            self._pinned[key] = read
        return key

    def _revcomp(self, read: np.ndarray) -> np.ndarray:
        key = self._key(read)
        cached = self._rev.get(key)
        if cached is None:
            cached = self._batch_rev.get(key)
            if cached is None:
                cached = COMPLEMENT[read][::-1].copy()
            self._rev[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Core walk
    # ------------------------------------------------------------------

    def _kmer_entry(self, seq: np.ndarray, start: int,
                    min_hits: int) -> "tuple[int, int, list[int]]":
        """Resolve the k-mer window at ``start``.

        Returns ``(code, matched_len, lep_offsets)`` where ``matched_len``
        is how many of the window's characters match with at least
        ``min_hits`` occurrences (capped by the read tail) and
        ``lep_offsets`` are hit-count-change offsets in ``1..matched_len-1``
        relative to ``start``.
        """
        k = self.index.config.k
        n = int(seq.size)
        tail = min(k, n - start)
        # Full-k windows of a batch sequence hit the rolling-code cache
        # (begin_batch); _batch_codes keys stay pinned for its lifetime,
        # so a miss cannot alias a recycled id.
        cached = (self._batch_codes.get(id(seq))  # repro: allow(ERT001)
                  if tail == k else None)
        if cached is not None:
            code = int(cached[start])
        else:
            code = self.index.kmer_code(seq[start:start + tail])
        self.index.trace_index_entry(code)
        self.stats.index_lookups += 1
        if min_hits == 1:
            matched = min(int(self.index.prefix_len[code]), tail)
            bits = int(self.index.lep_bits[code])
            leps = [l for l in range(1, matched) if (bits >> (l - 1)) & 1]
            return code, matched, leps
        # Reseeding path: the entry's change bits do not carry counts, so
        # consult the auxiliary prefix-count tables (see index module).
        matched = 0
        leps = []
        prev = None
        for length in range(1, tail + 1):
            count = self.index.prefix_count(seq[start:start + length])
            if count < min_hits:
                break
            if prev is not None and count != prev and length - 1 >= 1:
                leps.append(length - 1)
            prev = count
            matched = length
        return code, matched, leps

    # repro: hot -- per-character tree walk; counters go into EngineStats.
    def _walk(self, seq: np.ndarray, start: int, min_hits: int,
              collect_leps: bool,
              use_table: bool = True) -> "tuple[int, list[int], TreeCursor | None]":
        """Longest match of ``seq[start:]``; returns
        ``(end, leps, cursor)`` with ``cursor`` None when the match never
        left the k-mer window."""
        index = self.index
        k = index.config.k
        n = int(seq.size)
        tail = min(k, n - start)
        code, matched, lep_offsets = self._kmer_entry(seq, start, min_hits)
        leps = [start + l for l in lep_offsets] if collect_leps else []
        if matched < tail or tail < k:
            end = start + matched
            if collect_leps and end > start and (not leps or leps[-1] != end):
                leps.append(end)
            return end, leps, None

        cursor = None
        pos = start + k
        x = index.config.table_x
        if (use_table and min_hits == 1
                and index.entry_kind[code] == EntryKind.TABLE
                and n - pos >= x):
            subcode = int(seq[pos:pos + x] @ self._subcode_weights)
            index.trace_table_entry(code, subcode)
            entry = index.tables[code][subcode]
            if collect_leps:
                leps.extend(pos + j for j in range(entry.matched)
                            if (entry.lep_bits >> j) & 1)
            if entry.matched < x:
                end = pos + entry.matched
                if collect_leps and (not leps or leps[-1] != end):
                    leps.append(end)
                return end, leps, None
            cursor = TreeCursor(index, code, min_hits, self.stats,
                                enter_root=False)
            cursor.restore(entry.state)
            pos += x
        else:
            cursor = TreeCursor(index, code, min_hits, self.stats)

        while pos < n:
            if not cursor.advance(int(seq[pos])):
                break
            if collect_leps and cursor.count_changed:
                leps.append(pos)
            pos += 1
        end = pos
        if collect_leps and end > start and (not leps or leps[-1] != end):
            leps.append(end)
        return end, leps, cursor

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------

    def forward_search(self, read: np.ndarray, start: int,
                       min_hits: int = 1) -> ForwardSearch:
        self._check_read(read)
        end, leps, _cursor = self._walk(read, start, min_hits,
                                        collect_leps=True)
        if end <= start:
            return ForwardSearch(start, start, ())
        return ForwardSearch(start, end, tuple(leps))

    def backward_search(self, read: np.ndarray, end: int,
                        min_hits: int = 1) -> int:
        """Maximal left extension of the segment ending at ``end``: a
        forward walk of the reverse-complemented read (§III-A3 step 6)."""
        self._check_read(read)
        rc = self._revcomp(read)
        n = int(read.size)
        q = n - end
        rc_end, _leps, cursor = self._walk(rc, q, min_hits,
                                           collect_leps=False)
        length = rc_end - q
        s = end - length
        if cursor is not None and length >= self.index.config.k:
            self._cache_hits_from_rev_cursor(read, cursor, s, end)
        return s

    def _cache_hits_from_rev_cursor(self, read: np.ndarray,
                                    cursor: TreeCursor, s: int,
                                    end: int) -> None:
        """Eager leaf gathering at a backward dead end, mapped to forward
        coordinates: an occurrence of the reverse-complemented segment at
        ``t`` is an occurrence of the segment itself at ``2N - t - L``."""
        count = cursor.count
        length = end - s
        if count > self.gather_limit:
            self._hits[(self._key(read), s, end)] = (count, ())
            return
        two_n = int(self.index.text.size)
        rev_positions = cursor.gather()
        hits = tuple(sorted(two_n - t - length for t in rev_positions))
        self._hits[(self._key(read), s, end)] = (count, hits)

    def count(self, read: np.ndarray, start: int, end: int) -> int:
        self._check_read(read)
        k = self.index.config.k
        if end - start <= k:
            return self.index.prefix_count(read[start:end])
        code, matched, _ = self._kmer_entry(read, start, 1)
        if matched < k:
            return 0
        cursor = TreeCursor(self.index, code, 1, self.stats)
        for pos in range(start + k, end):
            if not cursor.advance(int(read[pos])):
                return 0
        return cursor.count

    def locate(self, read: np.ndarray, start: int, end: int,
               limit: "int | None" = None) -> "tuple[int, list[int]]":
        self._check_read(read)
        cached = self._hits.get((self._key(read), start, end))
        if cached is not None:
            count, hits = cached
            if limit is not None and count > limit:
                self.stats.truncated_hit_lists += 1
                return count, []
            if hits or count == 0:
                return count, list(hits)
        return self._locate_walk(read, start, end, limit)

    def _locate_walk(self, read: np.ndarray, start: int, end: int,
                     limit: "int | None") -> "tuple[int, list[int]]":
        k = self.index.config.k
        if end - start < k:
            raise ValueError(
                f"ERT locate needs segments of at least k={k} characters; "
                f"got [{start}, {end}) -- use min_seed_len >= k")
        cursor = self._walk_exact(read, start, end)
        count = cursor.count
        if limit is not None and count > limit:
            self.stats.truncated_hit_lists += 1
            return count, []
        return count, cursor.gather()

    def _walk_exact(self, read: np.ndarray, start: int, end: int) -> TreeCursor:
        k = self.index.config.k
        code, matched, _ = self._kmer_entry(read, start, 1)
        if matched < k:
            raise RuntimeError(f"segment [{start}, {end}) does not occur")
        cursor = TreeCursor(self.index, code, 1, self.stats)
        for pos in range(start + k, end):
            if not cursor.advance(int(read[pos])):
                raise RuntimeError(
                    f"segment [{start}, {end}) does not occur; walk died "
                    f"at {pos}")
        return cursor

    def last_seed(self, read: np.ndarray, start: int, min_len: int,
                  max_intv: int) -> "tuple[int, int] | None":
        self._check_read(read)
        k = self.index.config.k
        if min_len < k:
            raise ValueError(
                f"LAST with min_len={min_len} below k={k}: the ERT cannot "
                f"observe counts for matches shorter than its k-mer")
        n = int(read.size)
        if n - start < k:
            return None
        code, matched, _ = self._kmer_entry(read, start, 1)
        if matched < k:
            return None
        cursor = TreeCursor(self.index, code, 1, self.stats)
        length = k
        count = int(self.index.kmer_count[code])
        while True:
            if length >= min_len and count < max_intv:
                self._cache_from_forward_cursor(read, cursor, start,
                                                start + length)
                return start + length, count
            if start + length >= n:
                return None
            if not cursor.advance(int(read[start + length])):
                return None
            count = cursor.count
            length += 1

    def _cache_from_forward_cursor(self, read: np.ndarray,
                                   cursor: TreeCursor, start: int,
                                   end: int) -> None:
        count = cursor.count
        if count > self.gather_limit:
            self._hits[(self._key(read), start, end)] = (count, ())
            return
        self._hits[(self._key(read), start, end)] = (count, tuple(cursor.gather()))

    # ------------------------------------------------------------------
    # Prefix-merged backward sweep (§III-B)
    # ------------------------------------------------------------------

    def backward_sweep(self, read: np.ndarray, leps: "tuple[int, ...]",
                       min_hits: int, prev_pivot: int,
                       use_pruning: bool) -> "list[Mem]":
        if not self.index.config.prefix_merging:
            return super().backward_sweep(read, leps, min_hits, prev_pivot,
                                          use_pruning)
        mems: "list[Mem]" = []
        idx = len(leps) - 1
        while idx >= 0:
            p = leps[idx]
            pair = idx >= 1 and leps[idx - 1] == p - 1
            if pair:
                consumed, s = self._merged_pair(read, p, min_hits, mems)
            else:
                consumed = 1
                s = self.backward_search(read, p, min_hits)
                self.stats.backward_searches += 1
                if s < p:
                    mems.append(Mem(s, p))
            if use_pruning and s <= prev_pivot:
                self.stats.pruned_backward_searches += idx - (consumed - 1)
                break
            idx -= consumed
        return mems

    def _merged_pair(self, read: np.ndarray, p: int, min_hits: int,
                     mems: "list[Mem]") -> "tuple[int, int]":
        """Resolve the adjacent pair of backward searches ending at ``p``
        and ``p - 1`` with one traversal when the leaf prefix characters
        allow it.  Returns (LEPs consumed, leftmost reach of the pair) for
        the §III-F pruning decision."""
        s1 = self.backward_search(read, p - 1, min_hits)
        self.stats.backward_searches += 1
        if s1 < p - 1:
            mems.append(Mem(s1, p - 1))
        cached = self._hits.get((self._key(read), s1, p - 1))
        s_p = None
        if cached is not None and cached[1]:
            count1, hits1 = cached
            length1 = (p - 1) - s1
            text = self.index.text
            # Prefix-character check: which occurrences of read[s1:p-1]
            # are followed by read[p-1]?  (Stored per leaf as 2-bit prefix
            # characters of the reverse-complement walk; no extra memory
            # traffic -- the leaves were just gathered.)
            want = int(read[p - 1])
            extenders = tuple(h for h in hits1
                              if h + length1 < text.size
                              and int(text[h + length1]) == want)
            if len(extenders) >= min_hits:
                s_p = s1
                self._hits[(self._key(read), s1, p)] = (len(extenders), extenders)
                self.stats.merged_backward_searches += 1
                mems.append(Mem(s1, p))
        if s_p is None:
            # The merged resolution failed (subset died earlier, or the
            # gather was skipped): fall back to a full traversal.
            s_p = self.backward_search(read, p, min_hits)
            self.stats.backward_searches += 1
            if s_p < p:
                mems.append(Mem(s_p, p))
        return 2, min(s_p, s1)

    # ------------------------------------------------------------------

    def _check_read(self, read: np.ndarray) -> None:
        if int(read.size) > self.index.config.max_seed_len:
            raise ValueError(
                f"read of {read.size} bp exceeds the index's max_seed_len "
                f"({self.index.config.max_seed_len}); rebuild with a larger "
                f"max_seed_len")
