"""ERT construction (§III-A3).

The paper builds the index by enumerating all 4^k k-mers and growing each
k-mer's radix tree from a pre-built FMD-index.  Functionally the trees
depend only on the k-mer's occurrence positions, so this builder takes the
direct route: a vectorized scan groups every window of the double-strand
text by k-mer code, and each group is partitioned recursively on successive
extension characters.  The resulting structure is identical to the paper's:

* merged singleton paths become UNIFORM nodes;
* a group of size one -- or a group whose members share their entire
  remaining extension window -- becomes an early-path-compressed LEAF
  (§III-A2, the ~2x space saving);
* occurrences whose extension string runs off the end of the text form the
  ``$`` terminations (``ended``) of a DIVERGE node;
* per-k-mer LEP bits and longest-existing-prefix lengths are computed for
  *all* 4^k entries, EMPTY ones included, from length-1..k occurrence
  count tables (these tables are retained: they answer the minimum-hit
  prefix queries reseeding needs).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ErtConfig
from repro.core.index import EntryKind, ErtIndex, JumpEntry
from repro.core.layout import LayoutStats, layout_tree
from repro.core.nodes import DivergeNode, LeafNode, Node, UniformNode
from repro.core.walker import TreeCursor
from repro.memsim.trace import AddressSpace
from repro.sequence.reference import Reference


def rolling_codes(text: np.ndarray, length: int) -> np.ndarray:
    """Big-endian 2-bit codes of every ``length``-window of ``text``."""
    n = int(text.size)
    if length > n:
        return np.empty(0, dtype=np.int64)
    out = np.zeros(n - length + 1, dtype=np.int64)
    for j in range(length):
        out <<= 2
        out |= text[j:n - length + 1 + j]
    return out


def _leaf(text: np.ndarray, positions: np.ndarray) -> LeafNode:
    pos = tuple(int(p) for p in np.sort(positions))
    prefix = tuple(int(text[p - 1]) if p > 0 else -1 for p in pos)
    return LeafNode(pos, prefix)


def _build_node(text: np.ndarray, positions: np.ndarray, depth: int,
                k: int, cap: int) -> Node:
    """Subtree over ``positions`` (k-mer starts) at extension ``depth``."""
    if positions.size == 1 or depth >= cap:
        return _leaf(text, positions)
    # Collect the longest shared singleton run starting at `depth`.
    run = []
    d = depth
    n = int(text.size)
    while d < cap:
        ext = positions + k + d
        if int(ext.max()) >= n:
            break  # someone's extension string terminates here
        chars = text[ext]
        first = int(chars[0])
        if not (chars == first).all():
            break  # divergence
        run.append(first)
        d += 1
    if d >= cap:
        child: Node = _leaf(text, positions)
    else:
        child = _build_diverge(text, positions, d, k, cap)
    if run:
        return UniformNode(np.array(run, dtype=np.uint8), child,
                           int(positions.size))
    return child


def _build_diverge(text: np.ndarray, positions: np.ndarray, depth: int,
                   k: int, cap: int) -> DivergeNode:
    ext = positions + k + depth
    alive_mask = ext < text.size
    ended = tuple(int(p) for p in np.sort(positions[~alive_mask]))
    alive = positions[alive_mask]
    children: "dict[int, Node]" = {}
    if alive.size:
        chars = text[alive + k + depth]
        for c in range(4):
            sub = alive[chars == c]
            if sub.size:
                children[c] = _build_node(text, sub, depth + 1, k, cap)
    return DivergeNode(children, ended, int(positions.size))


def _entry_metadata(
    text: np.ndarray, config: ErtConfig,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, list[np.ndarray]]":
    """LEP bits, longest-prefix lengths and counts for all 4^k entries."""
    k = config.k
    n_entries = config.n_entries
    counts_by_len = [
        np.bincount(rolling_codes(text, length), minlength=4 ** length)
        .astype(np.int64)
        for length in range(1, k + 1)
    ]
    all_codes = np.arange(n_entries, dtype=np.int64)
    lep_bits = np.zeros(n_entries, dtype=np.int32)
    prefix_len = np.zeros(n_entries, dtype=np.int8)
    prev = counts_by_len[0][all_codes >> (2 * (k - 1))]
    prefix_len += (prev > 0).astype(np.int8)
    for length in range(2, k + 1):
        cur = counts_by_len[length - 1][all_codes >> (2 * (k - length))]
        # Bit (length - 2): hit count changes when the match grows from
        # length-1 to length characters (leaving convention; see
        # repro.seeding.engine docstring).
        lep_bits |= ((cur != prev).astype(np.int32)) << (length - 2)
        prefix_len += ((cur > 0) & (prev > 0)).astype(np.int8)
        prev = cur
    kmer_count = counts_by_len[-1]
    return lep_bits, prefix_len, kmer_count, counts_by_len


def build_ert(reference: Reference, config: "ErtConfig | None" = None,
              space: "AddressSpace | None" = None,
              method: str = "scan") -> ErtIndex:
    """Build a complete ERT index for ``reference``.

    ``method`` selects how k-mer occurrences are enumerated:

    * ``"scan"`` (default) -- a vectorized sliding-window scan of the
      double-strand text;
    * ``"fmd"`` -- the paper's own construction path (§III-A3: "built by
      first enumerating all possible k-mers and then querying a pre-built
      FMD-index"), kept as a structurally independent cross-check: both
      methods must produce identical indexes
      (``tests/test_fmd_construction.py``).
    """
    config = config or ErtConfig()
    text = reference.both_strands
    k = config.k
    cap = config.max_ext

    lep_bits, prefix_len, kmer_count, counts_by_len = _entry_metadata(
        text, config)

    if method == "fmd":
        starts, ends, sorted_codes, order = _occurrences_via_fmd(
            reference, k)
    elif method == "scan":
        codes = rolling_codes(text, k)
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [sorted_codes.size]))
    else:
        raise ValueError(f"unknown construction method {method!r}")

    entry_kind = np.zeros(config.n_entries, dtype=np.uint8)
    roots: "dict[int, Node]" = {}
    tree_base: "dict[int, int]" = {}
    layout_stats = LayoutStats()
    trees_bytes = 0
    table_codes = []

    for lo, hi in zip(starts, ends):
        code = int(sorted_codes[lo])
        positions = np.sort(order[lo:hi])
        root = _build_node(text, positions, 0, k, cap)
        roots[code] = root
        if isinstance(root, LeafNode):
            entry_kind[code] = EntryKind.LEAF
        elif config.multilevel and positions.size > config.table_threshold:
            entry_kind[code] = EntryKind.TABLE
            table_codes.append(code)
        else:
            entry_kind[code] = EntryKind.TREE
        blob = layout_tree(root, config, layout_stats)
        tree_base[code] = trees_bytes
        trees_bytes += blob

    tables = {code: None for code in table_codes}
    index = ErtIndex(
        reference=reference, config=config, entry_kind=entry_kind,
        lep_bits=lep_bits, prefix_len=prefix_len, kmer_count=kmer_count,
        roots=roots, tree_base=tree_base, tables=tables,
        prefix_counts=counts_by_len, trees_bytes=trees_bytes,
        layout_stats=layout_stats, space=space)

    for code in table_codes:
        index.tables[code] = _build_jump_table(index, code)
    return index


def _occurrences_via_fmd(
    reference: Reference, k: int,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Enumerate per-k-mer occurrence groups by FMD-index queries.

    This mirrors the paper's construction: every possible k-mer is looked
    up in a pre-built FMD-index of the reference; existing ones have
    their suffix-array interval located.  Returns the same
    (starts, ends, sorted_codes, order) shape the scan path produces.
    """
    from repro.fmindex.fmd import FmdIndex

    fmd = FmdIndex(reference)
    groups = []
    codes = []
    n = int(reference.both_strands.size)
    for code in range(4 ** k):
        pattern = np.array([(code >> (2 * (k - 1 - j))) & 3
                            for j in range(k)], dtype=np.uint8)
        bi = fmd.pattern_interval(pattern)
        if bi.is_empty:
            continue
        positions = [p for p in fmd.locate(bi) if p + k <= n]
        if positions:
            groups.append(np.array(sorted(positions), dtype=np.int64))
            codes.append(code)
    starts = []
    ends = []
    order_parts = []
    total = 0
    sorted_codes = []
    for code, positions in zip(codes, groups):
        starts.append(total)
        total += positions.size
        ends.append(total)
        order_parts.append(positions)
        sorted_codes.extend([code] * positions.size)
    order = (np.concatenate(order_parts) if order_parts
             else np.empty(0, dtype=np.int64))
    return (np.array(starts, dtype=np.int64),
            np.array(ends, dtype=np.int64),
            np.array(sorted_codes, dtype=np.int64), order)


def _build_jump_table(index: ErtIndex, code: int) -> "list[JumpEntry]":
    """Precompute the walk outcome of every x-character suffix (§III-E)."""
    x = index.config.table_x
    entries = []
    for subcode in range(4 ** x):
        cursor = TreeCursor(index, code, enter_root=False)
        matched = 0
        bits = 0
        for j in range(x):
            c = (subcode >> (2 * (x - 1 - j))) & 3
            if not cursor.advance(c):
                break
            if cursor.count_changed:
                bits |= 1 << j
            matched += 1
        state = cursor.snapshot() if matched == x else None
        entries.append(JumpEntry(matched=matched, lep_bits=bits,
                                 state=state, count=cursor.count))
    return entries
