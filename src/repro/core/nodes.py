"""Radix-tree node kinds (paper Fig 4).

Three concrete node classes, each storing the number of reference
occurrences below it (``count``) so walks can report hit-set changes (LEP)
and honour minimum-hit thresholds:

* :class:`UniformNode` -- a merged singleton path: every surviving
  occurrence continues with the same character string, matched in one
  multi-character comparison.
* :class:`DivergeNode` -- a branch point with more than one valid
  continuation.  Occurrences whose extension string terminates here
  (the k-mer sits so close to the end of the double-strand text that no
  further characters exist -- the ``$`` children in Fig 4) are kept in
  ``ended``.
* :class:`LeafNode` -- early path compression (§III-A2): from here every
  surviving occurrence shares one suffix, so the node stores the occurrence
  positions and matching proceeds by fetching the reference text at the
  first position.  ``prefix_chars`` carries the per-occurrence preceding
  character used by prefix merging (§III-B).

EMPTY nodes need no class: a missing child in a ``DivergeNode`` (or a
mismatch inside a uniform string / leaf comparison) *is* the dead end.

``offset``/``nbytes`` are assigned by :mod:`repro.core.layout` when the
tree is serialized.
"""

from __future__ import annotations

import numpy as np


class Node:
    """Base class; concrete nodes carry ``count`` occurrences below."""

    __slots__ = ("count", "offset", "nbytes")

    kind = "node"

    def __init__(self, count: int) -> None:
        self.count = count
        self.offset = -1
        self.nbytes = 0

    def children_nodes(self) -> "list[Node]":
        """Child nodes in deterministic order (for layout and gathering)."""
        return []


class UniformNode(Node):
    """A merged singleton path: ``chars`` then exactly one child."""

    __slots__ = ("chars", "child")

    kind = "uniform"

    def __init__(self, chars: np.ndarray, child: Node, count: int) -> None:
        super().__init__(count)
        if chars.size == 0:
            raise ValueError("uniform node must carry at least one character")
        self.chars = chars
        self.child = child

    def children_nodes(self) -> "list[Node]":
        return [self.child]


class DivergeNode(Node):
    """A branch point: per-character children plus text-end terminations."""

    __slots__ = ("children", "ended")

    kind = "diverge"

    def __init__(self, children: "dict[int, Node]",
                 ended: "tuple[int, ...]", count: int) -> None:
        super().__init__(count)
        if not children and not ended:
            raise ValueError("diverge node needs children or ended hits")
        self.children = children
        self.ended = ended

    def children_nodes(self) -> "list[Node]":
        return [self.children[c] for c in sorted(self.children)]


class LeafNode(Node):
    """Early-path-compressed leaf: all occurrences share one suffix.

    ``positions`` are the start positions (in the double-strand text) of
    the *k-mer occurrence* this path descends from; the shared suffix is
    read from the reference at ``positions[0]``.  ``prefix_chars[i]`` is
    the character preceding ``positions[i]`` (or -1 at text start), stored
    for prefix merging.
    """

    __slots__ = ("positions", "prefix_chars")

    kind = "leaf"

    def __init__(self, positions: "tuple[int, ...]",
                 prefix_chars: "tuple[int, ...]") -> None:
        super().__init__(len(positions))
        if not positions:
            raise ValueError("leaf must hold at least one occurrence")
        if len(prefix_chars) != len(positions):
            raise ValueError("one prefix character per occurrence required")
        self.positions = positions
        self.prefix_chars = prefix_chars
