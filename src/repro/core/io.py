"""On-disk ERT index format: build once, reuse across alignment runs.

The paper stresses that ERT construction (~1 h for GRCh38) happens once
per reference and is amortized over many runs (§III-A3); that only works
with a persistent format.  The format here is a single ``.npz`` archive:

* the reference (name + 2-bit codes),
* the structural config as JSON,
* the four entry-metadata arrays,
* the 1..k prefix-count tables,
* every radix tree as its *serialized blob* (the wire format of
  :mod:`repro.core.serialize`), concatenated exactly as the trees region
  lays them out, plus the per-k-mer base offsets.

Loading decodes the blobs back into node objects and rebuilds the jump
tables (cheap relative to tree construction).
"""

from __future__ import annotations

import json
import os
from typing import Union

import numpy as np

from repro.core.builder import _build_jump_table
from repro.core.config import ErtConfig, LayoutPolicy
from repro.core.index import EntryKind, ErtIndex
from repro.core.layout import LayoutStats, layout_tree
from repro.core.serialize import decode_tree, encode_tree
from repro.sequence.reference import Reference

FORMAT_VERSION = 1


class IndexFormatError(ValueError):
    """Raised when an index file cannot be understood."""


#: Anything ``np.savez``/``np.load`` accept as a file location.
PathLike = Union[str, "os.PathLike[str]"]


def save_ert(index: ErtIndex, path: PathLike) -> None:
    """Write an ERT index to ``path`` (a ``.npz`` archive)."""
    codes = sorted(index.roots)
    blobs = bytearray(index.trees_region.size)
    bases = np.empty(len(codes), dtype=np.int64)
    sizes = np.empty(len(codes), dtype=np.int64)
    for i, code in enumerate(codes):
        root = index.roots[code]
        base = index.tree_base[code]
        blob_size = _blob_size(index, code)
        encoded = encode_tree(root, blob_size,
                              index.config.prefix_merging)
        blobs[base:base + blob_size] = encoded
        bases[i] = base
        sizes[i] = blob_size
    meta = {
        "format_version": FORMAT_VERSION,
        "reference_name": index.reference.name,
        "config": {
            "k": index.config.k,
            "max_seed_len": index.config.max_seed_len,
            "table_threshold": index.config.table_threshold,
            "table_x": index.config.table_x,
            "multilevel": index.config.multilevel,
            "layout": index.config.layout.value,
            "prefix_merging": index.config.prefix_merging,
        },
    }
    arrays = {
        "meta_json": np.frombuffer(json.dumps(meta).encode(),
                                   dtype=np.uint8),
        "reference": index.reference.codes,
        "entry_kind": index.entry_kind,
        "lep_bits": index.lep_bits,
        "prefix_len": index.prefix_len,
        "kmer_count": index.kmer_count,
        "tree_codes": np.array(codes, dtype=np.int64),
        "tree_bases": bases,
        "tree_sizes": sizes,
        "tree_blobs": np.frombuffer(bytes(blobs), dtype=np.uint8),
    }
    for length, counts in enumerate(index.prefix_counts, start=1):
        arrays[f"prefix_counts_{length}"] = counts
    np.savez_compressed(path, **arrays)


def _blob_size(index: ErtIndex, code: int) -> int:
    """Size of one tree's blob: distance to the next base (or region end)."""
    base = index.tree_base[code]
    larger = [b for b in index.tree_base.values() if b > base]
    end = min(larger) if larger else index.trees_region.size
    return end - base


def load_ert(path: PathLike) -> ErtIndex:
    """Load an ERT index written by :func:`save_ert`."""
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["meta_json"].tobytes()).decode())
        if meta.get("format_version") != FORMAT_VERSION:
            raise IndexFormatError(
                f"unsupported index format {meta.get('format_version')!r}")
        cfg = meta["config"]
        config = ErtConfig(
            k=cfg["k"], max_seed_len=cfg["max_seed_len"],
            table_threshold=cfg["table_threshold"], table_x=cfg["table_x"],
            multilevel=cfg["multilevel"],
            layout=LayoutPolicy(cfg["layout"]),
            prefix_merging=cfg["prefix_merging"])
        reference = Reference(name=meta["reference_name"],
                              codes=archive["reference"].copy())
        entry_kind = archive["entry_kind"].copy()
        lep_bits = archive["lep_bits"].copy()
        prefix_len = archive["prefix_len"].copy()
        kmer_count = archive["kmer_count"].copy()
        prefix_counts = [archive[f"prefix_counts_{length}"].copy()
                         for length in range(1, config.k + 1)]
        blobs = archive["tree_blobs"].tobytes()
        codes = archive["tree_codes"]
        bases = archive["tree_bases"]
        sizes = archive["tree_sizes"]

    roots = {}
    tree_base = {}
    layout_stats = LayoutStats()
    trees_bytes = 0
    for code, base, size in zip(codes.tolist(), bases.tolist(),
                                sizes.tolist()):
        root = decode_tree(blobs[base:base + size])
        # Re-lay-out to rebuild layout statistics; offsets are identical
        # because the layout is a pure function of the tree shape.
        layout_tree(root, config, layout_stats)
        roots[code] = root
        tree_base[code] = base
        trees_bytes = max(trees_bytes, base + size)

    tables = {code: None for code in codes.tolist()
              if entry_kind[code] == EntryKind.TABLE}
    index = ErtIndex(
        reference=reference, config=config, entry_kind=entry_kind,
        lep_bits=lep_bits, prefix_len=prefix_len, kmer_count=kmer_count,
        roots=roots, tree_base=tree_base, tables=tables,
        prefix_counts=prefix_counts, trees_bytes=trees_bytes,
        layout_stats=layout_stats)
    for code in tables:
        index.tables[code] = _build_jump_table(index, code)
    return index
