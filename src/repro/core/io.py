"""On-disk and in-memory ERT index formats: build once, reuse everywhere.

The paper stresses that ERT construction (~1 h for GRCh38) happens once
per reference and is amortized over many runs (§III-A3); that only works
with a persistent format.  Two formats share one assembly path:

* the **archive format** (:func:`save_ert` / :func:`load_ert`) -- a
  single ``.npz`` holding the reference (name + 2-bit codes), the
  structural config as JSON, the four entry-metadata arrays, the 1..k
  prefix-count tables, and every radix tree as its *serialized blob*
  (the wire format of :mod:`repro.core.serialize`) concatenated exactly
  as the trees region lays them out, plus the per-k-mer base offsets;

* the **flat buffer format** (:func:`index_to_buffer` /
  :func:`index_from_buffer`) -- the same payload framed as one
  contiguous byte buffer: magic, a JSON directory, then every array
  64-byte aligned.  Loading from a buffer builds numpy *views* into it
  (zero copy), which is how :mod:`repro.parallel` attaches one shared
  index to N worker processes through ``multiprocessing.shared_memory``
  without pickling the index per worker.

Loading decodes the blobs back into node objects and rebuilds the jump
tables (cheap relative to tree construction).
"""

from __future__ import annotations

import json
import os
from typing import Mapping, Union

import numpy as np

from repro.core.builder import _build_jump_table
from repro.core.config import ErtConfig, LayoutPolicy
from repro.core.index import EntryKind, ErtIndex
from repro.core.layout import LayoutStats, layout_tree
from repro.core.nodes import Node
from repro.core.serialize import (
    BlobLike,
    decode_tree,
    encode_tree,
    tree_blob_view,
)
from repro.sequence.reference import Reference

FORMAT_VERSION = 1

#: Frame marker of the flat buffer format (8 bytes, versioned).
BUFFER_MAGIC = b"ERTBUF01"

#: Every array payload in the flat buffer starts on this alignment so
#: zero-copy views keep natural numpy alignment (and cache-line tiling).
BUFFER_ALIGN = 64


class IndexFormatError(ValueError):
    """Raised when an index file or buffer cannot be understood."""


#: Anything ``np.savez``/``np.load`` accept as a file location.
PathLike = Union[str, "os.PathLike[str]"]


# ----------------------------------------------------------------------
# Shared encode/assemble helpers
# ----------------------------------------------------------------------


def _encode_trees(
    index: ErtIndex,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, bytes]":
    """Serialize every tree into the concatenated blobs region.

    Returns ``(codes, bases, sizes, blobs)`` with the trees encoded at
    exactly the offsets the layout assigned.
    """
    codes = sorted(index.roots)
    blobs = bytearray(index.trees_region.size)
    bases = np.empty(len(codes), dtype=np.int64)
    sizes = np.empty(len(codes), dtype=np.int64)
    for i, code in enumerate(codes):
        root = index.roots[code]
        base = index.tree_base[code]
        blob_size = _blob_size(index, code)
        encoded = encode_tree(root, blob_size,
                              index.config.prefix_merging)
        blobs[base:base + blob_size] = encoded
        bases[i] = base
        sizes[i] = blob_size
    return (np.array(codes, dtype=np.int64), bases, sizes, bytes(blobs))


def _meta_dict(index: ErtIndex) -> "dict[str, object]":
    return {
        "format_version": FORMAT_VERSION,
        "reference_name": index.reference.name,
        "config": {
            "k": index.config.k,
            "max_seed_len": index.config.max_seed_len,
            "table_threshold": index.config.table_threshold,
            "table_x": index.config.table_x,
            "multilevel": index.config.multilevel,
            "layout": index.config.layout.value,
            "prefix_merging": index.config.prefix_merging,
        },
    }


def _config_from_meta(meta: "Mapping[str, object]") -> ErtConfig:
    if meta.get("format_version") != FORMAT_VERSION:
        raise IndexFormatError(
            f"unsupported index format {meta.get('format_version')!r}")
    cfg = meta["config"]
    assert isinstance(cfg, dict)
    return ErtConfig(
        k=cfg["k"], max_seed_len=cfg["max_seed_len"],
        table_threshold=cfg["table_threshold"], table_x=cfg["table_x"],
        multilevel=cfg["multilevel"],
        layout=LayoutPolicy(cfg["layout"]),
        prefix_merging=cfg["prefix_merging"])


def _assemble_index(meta: "Mapping[str, object]",
                    arrays: "Mapping[str, np.ndarray]",
                    blobs: BlobLike) -> ErtIndex:
    """Build an :class:`ErtIndex` from its decoded payload.

    ``arrays`` values are used as-is -- the archive loader hands in
    copies, the buffer loader hands in zero-copy views -- and ``blobs``
    is only ever *read through* (per-tree windows via
    :func:`tree_blob_view`), never copied.
    """
    config = _config_from_meta(meta)
    reference_name = meta["reference_name"]
    assert isinstance(reference_name, str)
    reference = Reference(name=reference_name, codes=arrays["reference"])
    entry_kind = arrays["entry_kind"]
    prefix_counts = [arrays[f"prefix_counts_{length}"]
                     for length in range(1, config.k + 1)]

    roots: "dict[int, Node]" = {}
    tree_base: "dict[int, int]" = {}
    layout_stats = LayoutStats()
    trees_bytes = 0
    for code, base, size in zip(arrays["tree_codes"].tolist(),
                                arrays["tree_bases"].tolist(),
                                arrays["tree_sizes"].tolist()):
        root = decode_tree(tree_blob_view(blobs, base, size))
        # Re-lay-out to rebuild layout statistics; offsets are identical
        # because the layout is a pure function of the tree shape.
        layout_tree(root, config, layout_stats)
        roots[code] = root
        tree_base[code] = base
        trees_bytes = max(trees_bytes, base + size)

    tables = {code: None for code in arrays["tree_codes"].tolist()
              if entry_kind[code] == EntryKind.TABLE}
    index = ErtIndex(
        reference=reference, config=config, entry_kind=entry_kind,
        lep_bits=arrays["lep_bits"], prefix_len=arrays["prefix_len"],
        kmer_count=arrays["kmer_count"], roots=roots, tree_base=tree_base,
        tables=tables, prefix_counts=prefix_counts,
        trees_bytes=trees_bytes, layout_stats=layout_stats)
    for code in tables:
        index.tables[code] = _build_jump_table(index, code)
    return index


# ----------------------------------------------------------------------
# Archive format (.npz)
# ----------------------------------------------------------------------


def save_ert(index: ErtIndex, path: PathLike) -> None:
    """Write an ERT index to ``path`` (a ``.npz`` archive)."""
    codes, bases, sizes, blobs = _encode_trees(index)
    arrays = {
        "meta_json": np.frombuffer(json.dumps(_meta_dict(index)).encode(),
                                   dtype=np.uint8),
        "reference": index.reference.codes,
        "entry_kind": index.entry_kind,
        "lep_bits": index.lep_bits,
        "prefix_len": index.prefix_len,
        "kmer_count": index.kmer_count,
        "tree_codes": codes,
        "tree_bases": bases,
        "tree_sizes": sizes,
        "tree_blobs": np.frombuffer(blobs, dtype=np.uint8),
    }
    for length, counts in enumerate(index.prefix_counts, start=1):
        arrays[f"prefix_counts_{length}"] = counts
    np.savez_compressed(path, **arrays)


def _blob_size(index: ErtIndex, code: int) -> int:
    """Size of one tree's blob: distance to the next base (or region end)."""
    base = index.tree_base[code]
    larger = [b for b in index.tree_base.values() if b > base]
    end = min(larger) if larger else index.trees_region.size
    return end - base


def load_ert(path: PathLike) -> ErtIndex:
    """Load an ERT index written by :func:`save_ert`."""
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["meta_json"].tobytes()).decode())
        arrays = {name: archive[name].copy() for name in archive.files
                  if name not in ("meta_json", "tree_blobs")}
        blobs = archive["tree_blobs"].tobytes()
    return _assemble_index(meta, arrays, blobs)


# ----------------------------------------------------------------------
# Flat buffer format (shared-memory attach)
# ----------------------------------------------------------------------


def _align_up(offset: int, align: int = BUFFER_ALIGN) -> int:
    return (offset + align - 1) // align * align


def index_to_buffer(index: ErtIndex) -> bytes:
    """Serialize ``index`` into one contiguous flat buffer.

    Layout: ``BUFFER_MAGIC``, a little-endian ``uint64`` directory
    length, the UTF-8 JSON directory (meta plus per-array name, dtype,
    shape, offset), then each array payload aligned to
    :data:`BUFFER_ALIGN`.  The buffer is position-independent, so it can
    be dropped into a ``multiprocessing.shared_memory`` segment and
    re-opened with :func:`index_from_buffer` as pure views.
    """
    codes, bases, sizes, blobs = _encode_trees(index)
    arrays: "dict[str, np.ndarray]" = {
        "reference": np.ascontiguousarray(index.reference.codes),
        "entry_kind": np.ascontiguousarray(index.entry_kind),
        "lep_bits": np.ascontiguousarray(index.lep_bits),
        "prefix_len": np.ascontiguousarray(index.prefix_len),
        "kmer_count": np.ascontiguousarray(index.kmer_count),
        "tree_codes": codes,
        "tree_bases": bases,
        "tree_sizes": sizes,
        "tree_blobs": np.frombuffer(blobs, dtype=np.uint8),
    }
    for length, counts in enumerate(index.prefix_counts, start=1):
        arrays[f"prefix_counts_{length}"] = np.ascontiguousarray(counts)

    directory = _meta_dict(index)
    specs: "list[dict[str, object]]" = []
    # Directory size depends on the offsets, which depend on the
    # directory size; reserve the directory with placeholder offsets
    # first, then fill real offsets into the same-sized rendering.
    placeholder = [{"name": name, "dtype": arr.dtype.str,
                    "shape": list(arr.shape), "offset": 2 ** 60}
                   for name, arr in arrays.items()]
    directory["arrays"] = placeholder
    header_len = len(json.dumps(directory).encode())
    payload_base = _align_up(len(BUFFER_MAGIC) + 8 + header_len)

    cursor = payload_base
    for name, arr in arrays.items():
        cursor = _align_up(cursor)
        specs.append({"name": name, "dtype": arr.dtype.str,
                      "shape": list(arr.shape), "offset": cursor})
        cursor += arr.nbytes
    directory["arrays"] = specs
    header = json.dumps(directory).encode()
    # Offsets render at fixed width (the placeholder is wider than any
    # real offset), so the directory can only have shrunk; pad it back.
    if len(header) > header_len:
        raise IndexFormatError("buffer directory grew past its reservation")
    header = header + b" " * (header_len - len(header))

    out = bytearray(cursor)
    out[:len(BUFFER_MAGIC)] = BUFFER_MAGIC
    out[len(BUFFER_MAGIC):len(BUFFER_MAGIC) + 8] = len(header).to_bytes(
        8, "little")
    out[len(BUFFER_MAGIC) + 8:len(BUFFER_MAGIC) + 8 + len(header)] = header
    for spec, arr in zip(specs, arrays.values()):
        offset = spec["offset"]
        assert isinstance(offset, int)
        out[offset:offset + arr.nbytes] = arr.tobytes()
    return bytes(out)


def index_from_buffer(buffer: BlobLike) -> ErtIndex:
    """Open a buffer written by :func:`index_to_buffer` as an index.

    Every array becomes a **read-only zero-copy view** into ``buffer``
    (``np.frombuffer``); only the tree node objects and jump tables are
    materialized per process.  The caller owns the buffer's lifetime --
    for a shared-memory segment, keep the segment open for as long as
    the returned index is in use (:func:`repro.parallel.attach_index`
    pins it for you).
    """
    view = memoryview(buffer)
    if view.format != "B":
        view = view.cast("B")
    if view.nbytes < len(BUFFER_MAGIC) + 8:
        raise IndexFormatError("buffer too short for an index frame")
    if bytes(view[:len(BUFFER_MAGIC)]) != BUFFER_MAGIC:
        raise IndexFormatError(
            f"bad magic {bytes(view[:len(BUFFER_MAGIC)])!r}; not an ERT "
            f"buffer")
    header_len = int.from_bytes(
        bytes(view[len(BUFFER_MAGIC):len(BUFFER_MAGIC) + 8]), "little")
    header_base = len(BUFFER_MAGIC) + 8
    meta = json.loads(bytes(view[header_base:header_base + header_len]))

    arrays: "dict[str, np.ndarray]" = {}
    specs = meta["arrays"]
    assert isinstance(specs, list)
    for spec in specs:
        shape = tuple(spec["shape"])
        count = 1
        for dim in shape:
            count *= dim
        arr = np.frombuffer(view, dtype=np.dtype(spec["dtype"]),
                            count=count, offset=spec["offset"])
        arr = arr.reshape(shape)
        # The buffer may be shared across processes: views stay read-only
        # so no worker can scribble on another worker's index.
        arr.flags.writeable = False
        arrays[spec["name"]] = arr
    blobs = arrays["tree_blobs"]
    return _assemble_index(meta, arrays, blobs)
