"""Binary node encoding: the serialized form the size model describes.

:mod:`repro.core.layout` assigns every node a byte offset and size; this
module actually produces those bytes and parses them back, so the layout
is not merely a size estimate -- every tree round-trips through its blob
(tested structurally), and the on-disk index format
(:mod:`repro.core.io`) stores trees exactly this way.

Wire format (little-endian):

``DIVERGE``  (size ``5 + 4*children + 4*ended``)
    byte 0      kind=0 in bits 0-1, child-presence bitmap in bits 2-5
    byte 1      number of ended occurrences (uint8)
    bytes 2-4   occurrence count below this node (uint24, exact at the
                genome sizes this reproduction runs)
    then        4-byte blob offset per present child, in code order
    then        4-byte text position per ended occurrence

``UNIFORM``  (size ``9 + ceil(len/4)``)
    byte 0      kind=1
    byte 1      run length (uint8; max_seed_len < 256 guarantees fit)
    bytes 2-4   occurrence count (uint24)
    bytes 5-8   child blob offset (uint32)
    then        run characters, 2-bit packed, 4 per byte

``LEAF``     (size ``3 + 4*positions [+ prefix block]``)
    byte 0      kind=2, bit 2 = prefix block present
    bytes 1-2   number of occurrence positions (uint16)
    then        4-byte text position per occurrence (sorted)
    prefix block (only with prefix merging): 2-bit prefix characters,
                4 per byte, then a validity bitmap (1 bit per position;
                an occurrence at text position 0 has no prefix)

Decoding is buffer-backed: every parse helper reads through the buffer
protocol, so a tree can be decoded straight out of ``bytes``, a
``memoryview`` or a ``uint8`` numpy array without copying the region
first.  That is what lets :mod:`repro.parallel` attach trees directly
from a ``multiprocessing.shared_memory`` segment (:func:`tree_blob_view`
produces the zero-copy window).
"""

from __future__ import annotations

import struct
from typing import Sequence, Union

from repro.core.layout import node_size
from repro.core.nodes import DivergeNode, LeafNode, Node, UniformNode

import numpy as np

KIND_DIVERGE = 0
KIND_UNIFORM = 1
KIND_LEAF = 2

#: Anything the decode path accepts: the buffer protocol is all it needs.
BlobLike = Union[bytes, bytearray, memoryview, "np.ndarray"]

_U32 = struct.Struct("<I")


class SerializeError(ValueError):
    """Raised when a tree cannot be encoded or a blob cannot be parsed."""


def _pack_u24(buf: bytearray, offset: int, value: int) -> None:
    if not 0 <= value < 1 << 24:
        raise SerializeError(f"count {value} exceeds uint24")
    buf[offset:offset + 3] = value.to_bytes(3, "little")


def _unpack_u24(blob: BlobLike, offset: int) -> int:
    return int.from_bytes(bytes(blob[offset:offset + 3]), "little")


def _pack_2bit(values: "Sequence[int]") -> bytes:
    out = bytearray((len(values) + 3) // 4)
    for i, v in enumerate(values):
        out[i // 4] |= (int(v) & 3) << (2 * (i % 4))
    return bytes(out)


def _unpack_2bit(blob: BlobLike, offset: int, count: int) -> "list[int]":
    return [(int(blob[offset + i // 4]) >> (2 * (i % 4))) & 3
            for i in range(count)]


def _pack_bits(flags: "Sequence[bool]") -> bytes:
    out = bytearray((len(flags) + 7) // 8)
    for i, flag in enumerate(flags):
        if flag:
            out[i // 8] |= 1 << (i % 8)
    return bytes(out)


def _unpack_bits(blob: BlobLike, offset: int, count: int) -> "list[bool]":
    return [bool(int(blob[offset + i // 8]) >> (i % 8) & 1)
            for i in range(count)]


def tree_blob_view(buffer: BlobLike, base: int, size: int) -> memoryview:
    """Zero-copy window over one tree's serialized blob.

    ``buffer`` may be the whole trees region in any buffer-protocol form
    (``bytes``, a shared-memory ``memoryview``, a ``uint8`` array); the
    returned memoryview shares its storage, so :func:`decode_tree` over it
    never copies the region.  This is the attach path for indexes living
    in ``multiprocessing.shared_memory`` (see :mod:`repro.core.io`).
    """
    view = memoryview(buffer)
    if view.format != "B":
        view = view.cast("B")
    if base < 0 or base + size > view.nbytes:
        raise SerializeError(
            f"blob window [{base}, {base + size}) outside buffer of "
            f"{view.nbytes} bytes")
    return view[base:base + size]


def encode_tree(root: Node, blob_size: int, prefix_merging: bool) -> bytes:
    """Encode a laid-out tree (offsets already assigned) into its blob."""
    blob = bytearray(blob_size)
    stack = [root]
    while stack:
        node = stack.pop()
        if node.offset < 0:
            raise SerializeError("node has no layout offset; lay out first")
        encoded = _encode_node(node, prefix_merging)
        expected = node_size(node, prefix_merging)
        if len(encoded) != expected:
            raise SerializeError(
                f"{node.kind} node encoded to {len(encoded)} bytes, size "
                f"model says {expected}")
        end = node.offset + len(encoded)
        if end > blob_size:
            raise SerializeError("node extends past the blob")
        blob[node.offset:end] = encoded
        stack.extend(node.children_nodes())
    return bytes(blob)


def _encode_node(node: Node, prefix_merging: bool) -> bytes:
    if isinstance(node, DivergeNode):
        bitmap = 0
        for code in node.children:
            bitmap |= 1 << code
        if len(node.ended) > 255:
            raise SerializeError("more than 255 ended occurrences")
        out = bytearray(5)
        out[0] = KIND_DIVERGE | (bitmap << 2)
        out[1] = len(node.ended)
        _pack_u24(out, 2, node.count)
        for code in sorted(node.children):
            out += _U32.pack(node.children[code].offset)
        for pos in node.ended:
            out += _U32.pack(pos)
        return bytes(out)
    if isinstance(node, UniformNode):
        if node.chars.size > 255:
            raise SerializeError("uniform run longer than 255 characters")
        out = bytearray(9)
        out[0] = KIND_UNIFORM
        out[1] = int(node.chars.size)
        _pack_u24(out, 2, node.count)
        out[5:9] = _U32.pack(node.child.offset)
        out += _pack_2bit(node.chars.tolist())
        return bytes(out)
    if isinstance(node, LeafNode):
        npos = len(node.positions)
        if npos >= 1 << 16:
            raise SerializeError("leaf with more than 65535 occurrences")
        out = bytearray(3)
        out[0] = KIND_LEAF | ((1 << 2) if prefix_merging else 0)
        out[1:3] = struct.pack("<H", npos)
        for pos in node.positions:
            out += _U32.pack(pos)
        if prefix_merging:
            chars = [max(0, c) for c in node.prefix_chars]
            valid = [c >= 0 for c in node.prefix_chars]
            out += _pack_2bit(chars)
            out += _pack_bits(valid)
        return bytes(out)
    raise SerializeError(f"unknown node type {type(node)!r}")


def decode_tree(blob: BlobLike, root_offset: int = 0) -> Node:
    """Parse a tree blob back into node objects (offsets preserved).

    ``blob`` may be any buffer-protocol object; pair with
    :func:`tree_blob_view` to decode straight out of a shared-memory
    segment without copying the region.
    """
    return _decode_node(blob, root_offset)


def _decode_node(blob: BlobLike, offset: int) -> Node:
    if offset < 0 or offset >= len(blob):
        raise SerializeError(f"node offset {offset} outside blob")
    header = int(blob[offset])
    kind = header & 3
    if kind == KIND_DIVERGE:
        bitmap = (header >> 2) & 0xF
        n_ended = int(blob[offset + 1])
        count = _unpack_u24(blob, offset + 2)
        cursor = offset + 5
        children = {}
        for code in range(4):
            if bitmap >> code & 1:
                child_off, = _U32.unpack_from(blob, cursor)
                cursor += 4
                children[code] = _decode_node(blob, child_off)
        ended = []
        for _ in range(n_ended):
            pos, = _U32.unpack_from(blob, cursor)
            cursor += 4
            ended.append(pos)
        node = DivergeNode(children, tuple(ended), count)
        node.offset = offset
        node.nbytes = cursor - offset
        return node
    if kind == KIND_UNIFORM:
        length = int(blob[offset + 1])
        if length == 0:
            raise SerializeError("uniform node with empty run")
        count = _unpack_u24(blob, offset + 2)
        child_off, = _U32.unpack_from(blob, offset + 5)
        chars = np.array(_unpack_2bit(blob, offset + 9, length),
                         dtype=np.uint8)
        node = UniformNode(chars, _decode_node(blob, child_off), count)
        node.offset = offset
        node.nbytes = 9 + (length + 3) // 4
        return node
    if kind == KIND_LEAF:
        has_prefix = bool(header >> 2 & 1)
        npos, = struct.unpack_from("<H", blob, offset + 1)
        if npos == 0:
            raise SerializeError("leaf with no occurrences")
        cursor = offset + 3
        positions = []
        for _ in range(npos):
            pos, = _U32.unpack_from(blob, cursor)
            cursor += 4
            positions.append(pos)
        if has_prefix:
            chars = _unpack_2bit(blob, cursor, npos)
            cursor += (npos + 3) // 4
            valid = _unpack_bits(blob, cursor, npos)
            cursor += (npos + 7) // 8
            prefix = tuple(c if v else -1 for c, v in zip(chars, valid))
        else:
            prefix = tuple(-1 for _ in range(npos))
        node = LeafNode(tuple(positions), prefix)
        node.offset = offset
        node.nbytes = cursor - offset
        return node
    raise SerializeError(f"unknown node kind {kind}")


def trees_equal(a: Node, b: Node, check_prefix: bool = True) -> bool:
    """Structural equality of two trees (used by round-trip tests)."""
    if a.kind != b.kind or a.count != b.count:
        return False
    if isinstance(a, LeafNode):
        if a.positions != b.positions:
            return False
        return not check_prefix or a.prefix_chars == b.prefix_chars
    if isinstance(a, UniformNode):
        return (np.array_equal(a.chars, b.chars)
                and trees_equal(a.child, b.child, check_prefix))
    if isinstance(a, DivergeNode):
        if a.ended != b.ended or set(a.children) != set(b.children):
            return False
        return all(trees_equal(a.children[c], b.children[c], check_prefix)
                   for c in a.children)
    return False
