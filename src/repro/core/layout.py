"""Node serialization and the cache-friendly tiled layout (§III-D).

Node byte sizes follow the concrete wire format of
:mod:`repro.core.serialize` (which every tree round-trips through):

* ``DIVERGE``: 5 B header (kind, child bitmap, ended count, uint24 count)
  + 4 B per child pointer + 4 B per ended hit;
* ``UNIFORM``: 9 B header (kind, run length, count, child pointer)
  + packed run characters (4 per byte);
* ``LEAF``:    3 B header (kind, position count) + 4 B per occurrence
  (+ 2-bit prefix characters and a validity bitmap under prefix merging).

Three serialization orders are provided.  ``TILED`` packs each subtree
greedily into 64 B tiles so a root-to-leaf walk touches few cache lines
(the paper reports ~3 nodes traversed per 64 B, 50 % utilization);
``DFS``/``BFS`` are the comparison orders for the ablation benchmark.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.config import ErtConfig, LayoutPolicy
from repro.core.nodes import DivergeNode, LeafNode, Node, UniformNode

TILE = 64


def node_size(node: Node, prefix_merging: bool) -> int:
    """Serialized size of one node in bytes (see repro.core.serialize)."""
    if isinstance(node, DivergeNode):
        return 5 + 4 * len(node.children) + 4 * len(node.ended)
    if isinstance(node, UniformNode):
        return 9 + (int(node.chars.size) + 3) // 4
    if isinstance(node, LeafNode):
        npos = len(node.positions)
        size = 3 + 4 * npos
        if prefix_merging:
            size += (npos + 3) // 4 + (npos + 7) // 8
        return size
    raise TypeError(f"unknown node type {type(node)!r}")


@dataclass
class LayoutStats:
    """Aggregate statistics of a serialized forest."""

    total_bytes: int = 0
    n_nodes: int = 0
    n_tiles: int = 0
    nodes_per_tile: "dict[int, int]" = field(default_factory=dict)

    @property
    def mean_nodes_per_tile(self) -> float:
        # Derived reporting stat, not accounting state (ERT004 exception).
        if not self.nodes_per_tile:
            return 0.0  # repro: allow(ERT004)
        total = sum(tile * count for tile, count in self.nodes_per_tile.items())
        return total / sum(self.nodes_per_tile.values())  # repro: allow(ERT004)


def _assign_sizes(root: Node, prefix_merging: bool) -> "list[Node]":
    """Compute ``nbytes`` for every node; return all nodes (preorder)."""
    nodes = []
    stack = [root]
    while stack:
        node = stack.pop()
        node.nbytes = node_size(node, prefix_merging)
        nodes.append(node)
        stack.extend(reversed(node.children_nodes()))
    return nodes


def _dfs_offsets(root: Node) -> int:
    offset = 0
    stack = [root]
    while stack:
        node = stack.pop()
        node.offset = offset
        offset += node.nbytes
        stack.extend(reversed(node.children_nodes()))
    return offset


def _bfs_offsets(root: Node) -> int:
    offset = 0
    queue = deque([root])
    while queue:
        node = queue.popleft()
        node.offset = offset
        offset += node.nbytes
        queue.extend(node.children_nodes())
    return offset


def _tiled_offsets(root: Node) -> int:
    """Greedy tile packing: open a tile, pull the pending subtree roots'
    descendants breadth-first while they fit, spill the rest to later
    tiles.  A node larger than a tile gets a tile run of its own."""
    offset = 0
    pending = deque([root])
    # ERT001 exceptions: `placed` holds id()s as node identity, which is
    # safe here because every id()-ed node stays strongly reachable from
    # `root` (the caller's argument) for this whole call -- nothing can
    # be collected and have its id recycled while the set is alive, and
    # the set does not outlive the call.
    placed = set()
    while pending:
        start = pending.popleft()
        if id(start) in placed:  # repro: allow(ERT001)
            continue
        # Open a fresh tile at the next tile boundary.
        offset = (offset + TILE - 1) & ~(TILE - 1)
        room = TILE
        local = deque([start])
        first_in_tile = True
        while local:
            node = local.popleft()
            if id(node) in placed:  # repro: allow(ERT001)
                continue
            if node.nbytes <= room or first_in_tile:
                node.offset = offset
                offset += node.nbytes
                room -= node.nbytes
                placed.add(id(node))  # repro: allow(ERT001)
                first_in_tile = False
                local.extend(node.children_nodes())
                if room <= 0:
                    break
            else:
                pending.append(node)
        pending.extend(local)
    return offset


def layout_tree(root: Node, config: ErtConfig,
                stats: "LayoutStats | None" = None) -> int:
    """Assign byte offsets to every node of one tree; return the blob size
    (rounded up to a whole tile so distinct trees never share a line)."""
    nodes = _assign_sizes(root, config.prefix_merging)
    if config.layout is LayoutPolicy.DFS:
        size = _dfs_offsets(root)
    elif config.layout is LayoutPolicy.BFS:
        size = _bfs_offsets(root)
    else:
        size = _tiled_offsets(root)
    size = (size + TILE - 1) & ~(TILE - 1)
    if stats is not None:
        stats.total_bytes += size
        stats.n_nodes += len(nodes)
        tiles = {}
        for node in nodes:
            tiles.setdefault(node.offset // TILE, 0)
            tiles[node.offset // TILE] += 1
        stats.n_tiles += len(tiles)
        for count in tiles.values():
            stats.nodes_per_tile[count] = stats.nodes_per_tile.get(count, 0) + 1
    return size
