"""The paper's primary contribution: Enumerated Radix Trees (ERT).

* :mod:`repro.core.config` -- :class:`ErtConfig`, all structural knobs
  (k-mer length, multi-level tables, layout policy, prefix merging).
* :mod:`repro.core.nodes` -- the four node kinds of the customized radix
  tree (UNIFORM / DIVERGE / LEAF, with EMPTY arising as absent branches).
* :mod:`repro.core.builder` -- index construction (§III-A3).
* :mod:`repro.core.index` -- the built :class:`ErtIndex`: enumerated index
  table with LEP bits, per-k-mer radix trees, byte-accurate regions.
* :mod:`repro.core.layout` -- node serialization and the tiled layout
  (§III-D), plus DFS/BFS alternatives for the ablation bench.
* :mod:`repro.core.walker` -- forward walks, leaf gathering, traffic tags.
* :mod:`repro.core.engine` -- :class:`ErtSeedingEngine` (with the §III-B
  prefix-merged backward sweep and the §III-F pruning inherited from the
  canonical algorithm).
* :mod:`repro.core.reuse` -- the §III-C k-mer-reuse batched pipeline.
* :mod:`repro.core.census` -- hit-distribution and tree-shape statistics
  (paper Figs 8 and the §III-E depth claims).
"""

from repro.core.builder import build_ert
from repro.core.census import depth_census, hit_distribution, index_census
from repro.core.config import ErtConfig, LayoutPolicy
from repro.core.engine import ErtSeedingEngine
from repro.core.index import EntryKind, ErtIndex
from repro.core.io import load_ert, save_ert
from repro.core.reuse import KmerReuseDriver, ReuseStats
from repro.core.serialize import decode_tree, encode_tree, trees_equal

__all__ = [
    "EntryKind",
    "ErtConfig",
    "ErtIndex",
    "ErtSeedingEngine",
    "KmerReuseDriver",
    "LayoutPolicy",
    "ReuseStats",
    "build_ert",
    "decode_tree",
    "depth_census",
    "encode_tree",
    "hit_distribution",
    "index_census",
    "load_ert",
    "save_ert",
    "trees_equal",
]
