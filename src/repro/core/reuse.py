"""K-mer reuse: the three-phase batched seeding pipeline (§III-C, Fig 6).

Forward and backward search phases are decoupled across a *batch* of reads
to expose the temporal locality that per-read processing destroys:

* **Phase 1 (forward)** -- forward searches for every read; each required
  backward search is recorded in a metadata table as
  (k-mer of the reverse-complemented segment, read id, LEP position).
* **Phase 2 (sort)** -- the metadata table is sorted by k-mer, modelling
  the accelerator's hardware sorter (§IV-D).
* **Phase 3 (backward)** -- searches for the same k-mer run back to back;
  a direct-mapped reuse cache (4 MB, 64 B lines, like the accelerator's)
  absorbs the repeated index-entry, tree-root and upper-tree fetches.

Because backward searches no longer run right-to-left within a read, the
§III-F pruning cannot apply (the paper notes the resulting slight increase
in leaf gathering); the final per-read SMEM set is reconciled with the same
containment filter and is bit-identical to the per-read pipeline's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro import telemetry
from repro.core.engine import ErtSeedingEngine
from repro.memsim.cache import CacheModel
from repro.seeding.algorithm import (
    SeedingParams,
    filter_contained,
    last_round,
    reseed_round,
    smems_to_seeds,
)
from repro.seeding.types import Mem, SeedingResult
from repro.telemetry.spans import Tracer


@dataclass(frozen=True)
class BackwardTask:
    """One deferred backward search in the metadata table (Fig 6)."""

    kmer: int
    read_id: int
    position: int
    paired: bool = False


@dataclass
class ReuseStats:
    """Counters and timings of one batch (used by the §III-C benches)."""

    reads: int = 0
    tasks: int = 0
    unique_kmers: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    forward_seconds: float = 0.0
    sort_seconds: float = 0.0
    backward_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def reuse_fraction(self) -> float:
        """Fraction of backward tasks whose k-mer was already seen in the
        batch (the paper reports ~45 % at batch size 1000)."""
        if not self.tasks:
            return 0.0
        return 1.0 - self.unique_kmers / self.tasks


class KmerReuseDriver:
    """Batched three-phase seeding over an :class:`ErtSeedingEngine`."""

    def __init__(self, engine: ErtSeedingEngine,
                 params: "SeedingParams | None" = None,
                 cache_bytes: int = 4 * 1024 * 1024,
                 cache_ways: int = 1) -> None:
        self.engine = engine
        self.params = params or SeedingParams()
        self.cache_bytes = cache_bytes
        self.cache_ways = cache_ways
        self.last_stats: "ReuseStats | None" = None
        #: Optional callable invoked between work units (per read in
        #: phase 1, per k-mer group in phase 3, per read afterwards); the
        #: accelerator trace capture uses it to segment jobs.
        self.unit_hook: "Optional[Callable[[str], None]]" = None

    def _mark(self, label: str) -> None:
        if self.unit_hook is not None:
            self.unit_hook(label)

    def _task_kmer(self, read: np.ndarray, position: int) -> int:
        """K-mer code of the reverse-complemented segment ending at
        ``position`` (what phase 3 will actually look up)."""
        rc = self.engine._revcomp(read)
        q = int(read.size) - position
        k = self.engine.index.config.k
        return self.engine.index.kmer_code(rc[q:q + k])

    def seed_batch(self, reads: "list[np.ndarray]") -> "list[SeedingResult]":
        """Seed a batch of reads; returns one result per read, identical
        to what per-read :func:`~repro.seeding.algorithm.seed_read` yields.
        """
        engine = self.engine
        params = self.params
        stats = ReuseStats(reads=len(reads))
        engine.begin_read()  # one shared scratch space for the whole batch

        # Phase wall-clocks come from a batch-local span tracer so the
        # ReuseStats the §III-C benches read are populated whether or not
        # global telemetry is on; the telemetry.span() calls mirror the
        # same phases into the --profile report when it is (ERT003: all
        # timing flows through repro.telemetry).
        phases = Tracer()
        with telemetry.span("seed_batch"):
            # Phase 1: forward extension; defer every backward search.
            with telemetry.span("forward"), phases.span("forward"):
                tasks: "list[BackwardTask]" = []
                merge = engine.index.config.prefix_merging
                for rid, read in enumerate(reads):
                    x = 0
                    n = int(read.size)
                    while x < n:
                        forward = engine.forward_search(read, x)
                        engine.stats.forward_searches += 1
                        if forward.is_empty:
                            x += 1
                            continue
                        tasks.extend(self._plan_tasks(read, rid,
                                                      forward.leps, merge))
                        x = forward.end
                    self._mark(f"forward:{rid}")
                stats.tasks = len(tasks)

            # Phase 2: group by k-mer (hardware sorter stand-in).
            with telemetry.span("sort"), phases.span("sort"):
                tasks.sort(key=lambda t: t.kmer)
                stats.unique_kmers = len({t.kmer for t in tasks})

            # Phase 3: backward extension with the reuse cache attached.
            with telemetry.span("backward"), phases.span("backward"):
                cache = CacheModel(self.cache_bytes, ways=self.cache_ways)
                engine.index.reuse_cache = cache
                mems: "list[list[Mem]]" = [[] for _ in reads]
                try:
                    current_kmer = None
                    for task in tasks:
                        if task.kmer != current_kmer:
                            if current_kmer is not None:
                                self._mark(f"kmer:{current_kmer}")
                            current_kmer = task.kmer
                        read = reads[task.read_id]
                        if task.paired:
                            engine._merged_pair(read, task.position, 1,
                                                mems[task.read_id])
                        else:
                            s = engine.backward_search(read, task.position)
                            engine.stats.backward_searches += 1
                            if s < task.position:
                                mems[task.read_id].append(Mem(s,
                                                              task.position))
                    if current_kmer is not None:
                        self._mark(f"kmer:{current_kmer}")
                finally:
                    engine.index.reuse_cache = None
                stats.cache_hits = cache.stats.hits
                stats.cache_misses = cache.stats.misses

            # Reconciliation + rounds 2 and 3, per read.
            with telemetry.span("reconcile"):
                results = []
                for rid, read in enumerate(reads):
                    result = SeedingResult()
                    smems = filter_contained(mems[rid])
                    result.smems = smems_to_seeds(engine, read, smems, params)
                    if params.reseed:
                        result.reseed_seeds = reseed_round(
                            engine, read, result.smems, params)
                    if params.use_last:
                        result.last_seeds = last_round(engine, read, params)
                    results.append(result)
                    self._mark(f"reconcile:{rid}")

        stats.forward_seconds = phases.stats["forward"].total_s
        stats.sort_seconds = phases.stats["sort"].total_s
        stats.backward_seconds = phases.stats["backward"].total_s
        telemetry.add_counters({
            "reuse.reads": stats.reads,
            "reuse.tasks": stats.tasks,
            "reuse.unique_kmers": stats.unique_kmers,
            "reuse.cache_hits": stats.cache_hits,
            "reuse.cache_misses": stats.cache_misses,
        })
        self.last_stats = stats
        return results

    def _plan_tasks(self, read: np.ndarray, rid: int,
                    leps: "tuple[int, ...]",
                    merge: bool) -> "list[BackwardTask]":
        """Turn a forward search's LEPs into metadata-table entries.

        With prefix merging, adjacent LEP pairs become one *paired* task
        keyed by the k-mer of the pair's shorter segment -- the tree the
        merged traversal actually walks."""
        out = []
        idx = len(leps) - 1
        while idx >= 0:
            p = leps[idx]
            if merge and idx >= 1 and leps[idx - 1] == p - 1:
                out.append(BackwardTask(self._task_kmer(read, p - 1), rid,
                                        p, paired=True))
                idx -= 2
            else:
                out.append(BackwardTask(self._task_kmer(read, p), rid, p))
                idx -= 1
        return out
