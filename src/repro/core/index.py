"""The built ERT index: enumerated table, trees, regions, traffic hooks.

An :class:`ErtIndex` owns:

* the **first-level index table** -- for *every* possible k-mer (4^k
  entries): entry kind (EMPTY / LEAF / TREE / TABLE), the k-1 LEP bits,
  the longest existing prefix length and the occurrence count (Fig 4);
* the **radix trees** (one per non-unique existing k-mer) serialized into a
  byte-accurate region so walks can be charged per cache line;
* the **second-level jump tables** (§III-E) for k-mers above the density
  threshold: precomputed x-character walk states with fan-out 4^x;
* the **auxiliary prefix-count tables** (counts of every 1..k-1-mer),
  consulted only when a search carries a minimum-hit threshold
  (reseeding) and the index entry's change bits are not enough;
* an optional :class:`~repro.memsim.cache.CacheModel` standing in for the
  accelerator's k-mer reuse cache -- accesses that hit it cost no traffic.

All memory traffic funnels through :meth:`ErtIndex.trace` with the phase
tags of Fig 13: ``index_lookup``, ``table_lookup``, ``tree_root``,
``tree_traversal``, ``leaf_gather``, ``ref_fetch``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.config import ErtConfig
from repro.core.layout import LayoutStats
from repro.core.nodes import Node
from repro.memsim.cache import CacheModel
from repro.memsim.trace import AddressSpace, MemoryTracer
from repro.sequence.reference import Reference

PHASE_INDEX = "index_lookup"
PHASE_TABLE = "table_lookup"
PHASE_ROOT = "tree_root"
PHASE_TRAVERSAL = "tree_traversal"
PHASE_GATHER = "leaf_gather"
PHASE_REF = "ref_fetch"
PHASE_PREFIX = "prefix_count"


class EntryKind(enum.IntEnum):
    """First-level index-table entry kinds (Fig 4)."""

    EMPTY = 0
    LEAF = 1
    TREE = 2
    TABLE = 3


@dataclass
class JumpEntry:
    """Second-level table entry: the outcome of walking ``x`` suffix
    characters from the tree root, precomputed at build time.

    ``matched``: characters of the suffix that exist (0..x).
    ``lep_bits``: bit ``j`` set iff extending from ``j`` to ``j+1``
    matched characters changes the hit count (same convention as the
    first-level LEP bits).
    ``state``: the walk state after all ``x`` characters, or ``None`` when
    the suffix dies inside the window.
    """

    matched: int
    lep_bits: int
    state: "object | None"
    count: int


class ErtIndex:
    """Container for a built ERT (see :func:`repro.core.builder.build_ert`)."""

    def __init__(self, reference: Reference, config: ErtConfig,
                 entry_kind: np.ndarray, lep_bits: np.ndarray,
                 prefix_len: np.ndarray, kmer_count: np.ndarray,
                 roots: "dict[int, Node]", tree_base: "dict[int, int]",
                 tables: "dict[int, list[JumpEntry]]",
                 prefix_counts: "list[np.ndarray]",
                 trees_bytes: int, layout_stats: LayoutStats,
                 space: "AddressSpace | None" = None) -> None:
        self.reference = reference
        self.config = config
        self.text = reference.both_strands
        self.entry_kind = entry_kind
        self.lep_bits = lep_bits
        self.prefix_len = prefix_len
        self.kmer_count = kmer_count
        self.roots = roots
        self.tree_base = tree_base
        self.tables = tables
        self.prefix_counts = prefix_counts
        self.layout_stats = layout_stats
        self.tracer: "MemoryTracer | None" = None
        self.reuse_cache: "CacheModel | None" = None

        self.space = space or AddressSpace()
        cfg = config
        self.index_region = self.space.allocate(
            "ert.index_table", cfg.n_entries * cfg.index_entry_bytes)
        self.trees_region = self.space.allocate("ert.trees", trees_bytes)
        table_bytes = len(tables) * (4 ** cfg.table_x) * cfg.table_entry_bytes
        self.tables_region = self.space.allocate("ert.tables", table_bytes)
        aux_bytes = sum(4 ** l * 4 for l in range(1, cfg.k))
        self.aux_region = self.space.allocate("ert.prefix_counts", aux_bytes)
        self.ref_region = self.space.allocate(
            "ref.packed", (self.text.size + 3) // 4)
        # Second-level tables are laid out densely in registration order.
        self._table_slot = {code: i for i, code in enumerate(sorted(tables))}

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------

    def trace(self, base: int, offset: int, size: int, phase: str,
              region_name: str = "") -> None:
        """Report an access, filtered through the k-mer reuse cache.

        The cache operates at line granularity: lines already resident
        cost no DRAM traffic (the accelerator's "skipping two otherwise
        mandatory DRAM accesses", §III-C).
        """
        if self.tracer is None and self.reuse_cache is None:
            return
        addr = base + offset
        if self.reuse_cache is not None:
            line = 64
            first = addr // line
            last = (addr + size - 1) // line
            for ln in range(first, last + 1):
                if self.reuse_cache.lookup(ln * line):
                    continue
                if self.tracer is not None:
                    self.tracer.access(ln * line, line, phase, region_name)
            return
        self.tracer.access(addr, size, phase, region_name)

    def trace_index_entry(self, code: int) -> None:
        self.trace(self.index_region.base,
                   code * self.config.index_entry_bytes,
                   self.config.index_entry_bytes, PHASE_INDEX,
                   self.index_region.name)

    def trace_table_entry(self, code: int, subcode: int) -> None:
        slot = self._table_slot[code]
        entry_bytes = self.config.table_entry_bytes
        offset = (slot * (4 ** self.config.table_x) + subcode) * entry_bytes
        self.trace(self.tables_region.base, offset, entry_bytes,
                   PHASE_TABLE, self.tables_region.name)

    def trace_node(self, code: int, node: Node, phase: str) -> None:
        self.trace(self.trees_region.base,
                   self.tree_base[code] + node.offset,
                   max(node.nbytes, 1), phase, self.trees_region.name)

    def trace_ref_line(self, text_pos: int, phase: str = PHASE_REF) -> None:
        """One cache line of the 2-bit-packed reference around ``text_pos``."""
        byte = text_pos // 4
        line = byte & ~63
        self.trace(self.ref_region.base, line, 64, phase,
                   self.ref_region.name)

    def trace_prefix_count(self, length: int, code: int) -> None:
        offset = sum(4 ** l * 4 for l in range(1, length)) + code * 4
        self.trace(self.aux_region.base, offset, 4, PHASE_PREFIX,
                   self.aux_region.name)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def kmer_code(self, codes: np.ndarray) -> int:
        """Big-endian 2-bit pack of ``k`` base codes (shorter inputs are
        padded with ``A``, i.e. zero bits, on the right)."""
        value = 0
        for c in codes:
            value = (value << 2) | int(c)
        value <<= 2 * (self.config.k - len(codes))
        return value

    def prefix_count(self, codes: np.ndarray, traced: bool = True) -> int:
        """Occurrences of a pattern of length 1..k (aux-table query)."""
        length = len(codes)
        if not 1 <= length <= self.config.k:
            raise ValueError("prefix_count handles lengths 1..k only")
        value = 0
        for c in codes:
            value = (value << 2) | int(c)
        if length == self.config.k:
            if traced:
                self.trace_index_entry(value)
            return int(self.kmer_count[value])
        if traced:
            self.trace_prefix_count(length, value)
        return int(self.prefix_counts[length - 1][value])

    def index_bytes(self) -> "dict[str, int]":
        """Byte footprint per component (paper reports table + trees)."""
        return {
            "index_table": self.index_region.size,
            "trees": self.trees_region.size,
            "tables": self.tables_region.size,
            "prefix_counts": self.aux_region.size,
            "total": (self.index_region.size + self.trees_region.size
                      + self.tables_region.size + self.aux_region.size),
        }

    def attach_tracer(self, tracer: "MemoryTracer | None") -> None:
        self.tracer = tracer
