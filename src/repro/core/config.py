"""Structural configuration of an Enumerated Radix Tree index."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LayoutPolicy(enum.Enum):
    """How radix-tree nodes are serialized into memory (§III-D).

    ``TILED`` clusters likely-co-accessed subtrees into cache-line-sized
    tiles (the paper's choice, guaranteeing >= log4(n+1) node visits per
    tile); ``DFS`` and ``BFS`` are the straw-man orders the paper compares
    against, kept for the ablation benchmark.
    """

    TILED = "tiled"
    DFS = "dfs"
    BFS = "bfs"


@dataclass(frozen=True)
class ErtConfig:
    """All structural knobs of the ERT.

    Parameters
    ----------
    k:
        Enumerated k-mer length.  The paper uses 15 against the 3 Gbp human
        genome (index table with 4^15 entries); at this reproduction's
        synthetic-genome scales the default 8 keeps the table density --
        and therefore the EMPTY fraction and hit skew -- representative.
    max_seed_len:
        Maximum match length the trees support (reads must not be longer).
        The paper builds for 101 bp Illumina reads; 151 leaves headroom.
    table_threshold:
        K-mers with more than this many occurrences get a second-level
        index table (Fig 4 entry kind TABLE; the paper uses > 256).
    table_x:
        Suffix characters enumerated by the second-level table (§III-E;
        the paper settles on x = 4, fan-out 256).
    multilevel:
        Enable second-level tables at all (off reproduces the x = 1
        baseline of the §III-E ablation).
    layout:
        Node serialization policy (§III-D).
    prefix_merging:
        Store one prefix character per leaf and resolve adjacent backward
        searches in a single traversal (§III-B, the ERT-PM configuration).
    index_entry_bytes / table_entry_bytes:
        Modelled byte width of first-/second-level index entries (type +
        LEP bits + pointer, 8 B in the paper).
    """

    k: int = 8
    max_seed_len: int = 151
    table_threshold: int = 256
    table_x: int = 4
    multilevel: bool = True
    layout: LayoutPolicy = LayoutPolicy.TILED
    prefix_merging: bool = False
    index_entry_bytes: int = 8
    table_entry_bytes: int = 8

    def __post_init__(self) -> None:
        if not 2 <= self.k <= 14:
            raise ValueError("k must be in 2..14 (4^k index entries)")
        if self.max_seed_len <= self.k:
            raise ValueError("max_seed_len must exceed k")
        if self.max_seed_len - self.k > 255:
            raise ValueError(
                "max_seed_len - k must fit a uint8 (serialized UNIFORM "
                "runs store their length in one byte)")
        if self.table_x < 1:
            raise ValueError("table_x must be at least 1")
        if self.table_threshold < 2:
            raise ValueError("table_threshold must be at least 2")

    @property
    def n_entries(self) -> int:
        """Number of first-level index-table entries (4^k)."""
        return 4 ** self.k

    @property
    def max_ext(self) -> int:
        """Maximum tree depth: characters matchable beyond the k-mer."""
        return self.max_seed_len - self.k
