"""Index statistics: hit distributions and tree shapes.

These back three of the paper's empirical claims:

* Fig 8 -- the k-mer hit distribution is heavily skewed (very few k-mers
  carry most of the hits), which motivates the multi-level table (§III-E);
* §III-A3 -- a large fraction of index entries is EMPTY (38.8 % at k=15
  on GRCh38) yet still carries LEP bits;
* §III-E -- most trees are shallow ("83 % of leaf nodes have depths <= 8"),
  which is why two index levels suffice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.index import EntryKind, ErtIndex
from repro.core.nodes import DivergeNode, LeafNode, UniformNode


@dataclass
class IndexCensus:
    """Aggregate shape of one built index."""

    n_entries: int
    empty: int
    leaf: int
    tree: int
    table: int
    total_occurrences: int
    index_bytes: "dict[str, int]"

    @property
    def empty_fraction(self) -> float:
        return self.empty / self.n_entries if self.n_entries else 0.0


def index_census(index: ErtIndex) -> IndexCensus:
    """Count entry kinds and sizes (reproduces the §III-A3 numbers)."""
    kinds = index.entry_kind
    return IndexCensus(
        n_entries=int(kinds.size),
        empty=int(np.count_nonzero(kinds == EntryKind.EMPTY)),
        leaf=int(np.count_nonzero(kinds == EntryKind.LEAF)),
        tree=int(np.count_nonzero(kinds == EntryKind.TREE)),
        table=int(np.count_nonzero(kinds == EntryKind.TABLE)),
        total_occurrences=int(index.kmer_count.sum()),
        index_bytes=index.index_bytes(),
    )


def hit_distribution(index: ErtIndex,
                     thresholds: "tuple[int, ...]" = (1, 2, 5, 10, 20, 50,
                                                      100, 200, 500, 1000)
                     ) -> "list[tuple[int, int]]":
    """Number of k-mers with more than X hits, for each threshold X.

    This is exactly the curve of the paper's Fig 8 ("for a given number of
    hits X, the number of k-mers that have hits > X").
    """
    counts = index.kmer_count
    return [(x, int(np.count_nonzero(counts > x))) for x in thresholds]


@dataclass
class DepthCensus:
    """Distribution of leaf depths (extension characters below the k-mer)."""

    leaf_depths: "dict[int, int]" = field(default_factory=dict)

    @property
    def total_leaves(self) -> int:
        return sum(self.leaf_depths.values())

    def fraction_at_most(self, depth: int) -> float:
        """Fraction of leaves at depth <= ``depth`` (§III-E claims 83 %
        at depth 8 for the human genome)."""
        total = self.total_leaves
        if not total:
            return 0.0
        shallow = sum(count for d, count in self.leaf_depths.items()
                      if d <= depth)
        return shallow / total


def depth_census(index: ErtIndex) -> DepthCensus:
    """Walk every tree and histogram the depth of each leaf."""
    census = DepthCensus()
    for root in index.roots.values():
        stack = [(root, 0)]
        while stack:
            node, depth = stack.pop()
            if isinstance(node, LeafNode):
                census.leaf_depths[depth] = census.leaf_depths.get(depth, 0) + 1
            elif isinstance(node, UniformNode):
                stack.append((node.child, depth + int(node.chars.size)))
            elif isinstance(node, DivergeNode):
                if node.ended:
                    census.leaf_depths[depth] = (
                        census.leaf_depths.get(depth, 0) + 1)
                for child in node.children_nodes():
                    stack.append((child, depth + 1))
    return census
