"""Walking ERT radix trees: cursors, gathering, and traffic emission.

A :class:`TreeCursor` consumes read characters one at a time but emits
memory traffic at *node/cache-line* granularity, which is exactly the
paper's point: a UNIFORM node's whole character run, or a leaf's reference
comparison, costs one fetch regardless of how many characters it resolves
(multi-character lookup, §III-A2).  Nodes packed into the same tile by the
§III-D layout produce no additional line fetches (the "~3 nodes per 64 B"
effect).

Node fetches are deferred until a character actually requires the node's
data -- decoding a DIVERGE node yields the chosen child's *address*; the
child itself is fetched on the next consumed character, exactly like the
hardware Tree Walker (§IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.index import (
    PHASE_GATHER,
    PHASE_ROOT,
    PHASE_TRAVERSAL,
    ErtIndex,
)
from repro.core.nodes import DivergeNode, LeafNode, Node, UniformNode
from repro.seeding.engine import EngineStats

LINE = 64


@dataclass
class WalkState:
    """Snapshot of a cursor (stored in second-level jump entries)."""

    node: Node
    within: int
    pending: "Node | None"
    depth: int
    count: int


class TreeCursor:
    """Character-at-a-time walk over one k-mer's radix tree."""

    def __init__(self, index: ErtIndex, code: int, min_hits: int = 1,
                 stats: "EngineStats | None" = None,
                 enter_root: bool = True) -> None:
        self.index = index
        self.code = code
        self.min_hits = min_hits
        self.stats = stats
        self._text = index.text
        self._k = index.config.k
        self._last_line = -1
        self._last_ref_line = -1
        root = index.roots[code]
        self.node: Node = root
        self.within = 0
        self.pending: "Node | None" = None
        self.depth = 0
        self.count = root.count
        self.count_changed = False
        if enter_root:
            self._enter_root(root)

    # ------------------------------------------------------------------
    # Traffic helpers
    # ------------------------------------------------------------------

    def _enter_root(self, root: Node) -> None:
        # A unique k-mer's single reference pointer lives inline in the
        # 8-byte index entry (Fig 4, early path compression at the root),
        # so it costs no tree access; everything else fetches the root.
        inline = isinstance(root, LeafNode) and len(root.positions) == 1
        if not inline:
            self._emit_node(root, PHASE_ROOT)
            if self.stats is not None:
                self.stats.tree_root_fetches += 1

    # repro: hot -- one call per node fetch; counters live in the stats
    # struct the engine passes in, flushed to telemetry per batch.
    def _emit_node(self, node: Node, phase: str) -> None:
        """Fetch a node: one access per cache line it spans that is not
        the line most recently touched."""
        if self.stats is not None:
            self.stats.nodes_visited += 1
        base = self.index.tree_base[self.code] + node.offset
        first = base // LINE
        last = (base + max(node.nbytes, 1) - 1) // LINE
        for line in range(first, last + 1):
            if line == self._last_line:
                continue
            self.index.trace(self.index.trees_region.base, line * LINE, LINE,
                             phase, self.index.trees_region.name)
        self._last_line = last

    def _emit_ref(self, text_pos: int) -> None:
        line = (text_pos // 4) // LINE
        if line != self._last_ref_line:
            self.index.trace_ref_line(text_pos)
            self._last_ref_line = line
            if self.stats is not None:
                self.stats.leaf_fetches += 1

    # ------------------------------------------------------------------
    # Walking
    # ------------------------------------------------------------------

    def _settle(self, phase: str) -> None:
        """Descend through nodes whose data is exhausted (deferred fetch)."""
        while True:
            node = self.node
            if self.pending is not None:
                nxt = self.pending
                self.pending = None
                self._emit_node(nxt, phase)
                self.node = nxt
                self.within = 0
            elif (isinstance(node, UniformNode)
                    and self.within == node.chars.size):
                self._emit_node(node.child, phase)
                self.node = node.child
                self.within = 0
            else:
                return

    # repro: hot -- one call per read character consumed.
    def advance(self, c: int, phase: str = PHASE_TRAVERSAL) -> bool:
        """Consume one read character; False (state unchanged) at a dead
        end -- mismatch, missing branch, text end, or a branch whose
        occupancy falls below ``min_hits``."""
        self._settle(phase)
        node = self.node
        self.count_changed = False
        if isinstance(node, LeafNode):
            pos = node.positions[0] + self._k + self.depth
            if pos >= self._text.size:
                return False
            self._emit_ref(pos)
            if int(self._text[pos]) != c:
                return False
            self.within += 1
            self.depth += 1
            return True
        if isinstance(node, UniformNode):
            if int(node.chars[self.within]) != c:
                return False
            self.within += 1
            self.depth += 1
            return True
        # DivergeNode: decoding selects the child; hit count changes.
        child = node.children.get(c)
        if child is None or child.count < self.min_hits:
            return False
        self.pending = child
        self.within = 0
        self.count_changed = child.count != self.count
        self.count = child.count
        self.depth += 1
        return True

    # ------------------------------------------------------------------
    # Snapshots (second-level jump tables)
    # ------------------------------------------------------------------

    def snapshot(self) -> WalkState:
        return WalkState(node=self.node, within=self.within,
                         pending=self.pending, depth=self.depth,
                         count=self.count)

    def restore(self, state: WalkState, emit: bool = True,
                phase: str = PHASE_TRAVERSAL) -> None:
        """Land on a precomputed state (jump-table fast path).

        The landing node's data still has to come from memory -- the jump
        skipped the root and the top of the tree, not the node it lands
        on -- so the fetch is emitted here.
        """
        self.node = state.node
        self.within = state.within
        self.pending = state.pending
        self.depth = state.depth
        self.count = state.count
        self.count_changed = False
        if emit:
            self._emit_node(state.node, phase)

    # ------------------------------------------------------------------
    # Leaf gathering (depth-first search, §IV-B)
    # ------------------------------------------------------------------

    def _gather_root(self) -> Node:
        return self.pending if self.pending is not None else self.node

    def gather(self) -> "list[int]":
        """All occurrence positions of the currently matched prefix.

        Runs the Leaf Gatherer's DFS over the remaining subtree; every
        node visited beyond the already-fetched current node costs memory
        traffic tagged ``leaf_gather``.
        """
        root = self._gather_root()
        positions: "list[int]" = []
        stack = [root]
        while stack:
            node = stack.pop()
            if node is not self.node:
                self._emit_node(node, PHASE_GATHER)
            if isinstance(node, LeafNode):
                positions.extend(node.positions)
            elif isinstance(node, DivergeNode):
                positions.extend(node.ended)
                stack.extend(node.children_nodes())
            else:
                stack.append(node.child)
        return sorted(positions)
