"""Multi-contig references (the paper indexes chromosomes 1-22, X, Y).

Real references are a set of contigs; BWA concatenates them into one
text and maps hit positions back to per-contig coordinates.
:class:`MultiReference` does the same: it exposes a single concatenated
:class:`~repro.sequence.reference.Reference` for the index structures and
translates forward-strand positions into ``(contig, offset)`` pairs.

Hits that straddle a contig boundary are artifacts of concatenation and
are reported as ``None``, exactly like strand-junction hits.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.sequence.reference import ForwardHit, Reference, Strand


@dataclass(frozen=True)
class ContigHit:
    """A hit expressed in one contig's coordinates."""

    contig: str
    strand: Strand
    start: int
    length: int


class MultiReference:
    """A set of named contigs behind one concatenated index text."""

    def __init__(self, contigs: "list[Reference]") -> None:
        if not contigs:
            raise ValueError("at least one contig required")
        names = [c.name for c in contigs]
        if len(set(names)) != len(names):
            raise ValueError("contig names must be unique")
        self.contigs = list(contigs)
        self._starts = []
        offset = 0
        for contig in contigs:
            self._starts.append(offset)
            offset += len(contig)
        self.concatenated = Reference(
            name="|".join(names),
            codes=np.concatenate([c.codes for c in contigs]))

    def __len__(self) -> int:
        return len(self.concatenated)

    @property
    def names(self) -> "list[str]":
        return [c.name for c in self.contigs]

    def contig_of(self, forward_pos: int) -> "tuple[Reference, int]":
        """The contig containing a forward-strand position, plus its
        start offset in the concatenated text."""
        if not 0 <= forward_pos < len(self):
            raise ValueError(f"position {forward_pos} outside reference")
        idx = bisect.bisect_right(self._starts, forward_pos) - 1
        return self.contigs[idx], self._starts[idx]

    def resolve(self, x_pos: int, length: int) -> "ContigHit | None":
        """Map a hit in the concatenated double-strand text to a contig.

        Returns ``None`` for strand-junction or contig-junction hits.
        """
        hit: "ForwardHit | None" = self.concatenated.to_forward(x_pos, length)
        if hit is None:
            return None
        contig, base = self.contig_of(hit.start)
        if hit.end > base + len(contig):
            return None  # straddles a contig boundary
        return ContigHit(contig=contig.name, strand=hit.strand,
                         start=hit.start - base, length=hit.length)

    def sam_header_lines(self, program: str = "repro-ert") -> "list[str]":
        lines = ["@HD\tVN:1.6\tSO:unknown"]
        lines.extend(f"@SQ\tSN:{c.name}\tLN:{len(c)}" for c in self.contigs)
        lines.append(f"@PG\tID:{program}\tPN:{program}")
        return lines
