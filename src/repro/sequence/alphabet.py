"""The 2-bit DNA alphabet and conversions between strings and code arrays.

All index structures in this repository operate on numpy ``uint8`` arrays of
*codes* in ``{0, 1, 2, 3}`` standing for ``A, C, G, T`` (the same 2-bit
encoding BWA-MEM uses).  Code 4 is reserved for the sentinel used by the
suffix-array machinery and never appears in a read or reference.
"""

from __future__ import annotations

import numpy as np

#: The DNA alphabet in code order: ``BASES[code]`` is the base character.
BASES = "ACGT"

#: Number of real (non-sentinel) symbols.
SIGMA = 4

#: Sentinel code, lexicographically *smallest* in the suffix-array ordering
#: used by :mod:`repro.fmindex` (it is remapped there); reads and references
#: never contain it.
SENTINEL = 4

_CHAR_TO_CODE = np.full(256, 255, dtype=np.uint8)
for _i, _b in enumerate(BASES):
    _CHAR_TO_CODE[ord(_b)] = _i
    _CHAR_TO_CODE[ord(_b.lower())] = _i

#: ``COMPLEMENT[code]`` is the code of the Watson-Crick complement
#: (A<->T, C<->G), i.e. ``3 - code``.
COMPLEMENT = np.array([3, 2, 1, 0], dtype=np.uint8)


class AlphabetError(ValueError):
    """Raised when a sequence contains characters outside ``ACGT``."""


def encode(seq: str) -> np.ndarray:
    """Encode a DNA string into a ``uint8`` code array.

    Ambiguous bases (``N`` etc.) are rejected; the paper's methodology
    processes ambiguous-base reads on the host CPU and converts ambiguous
    reference bases to standard nucleotides before indexing (§V), so by the
    time sequences reach the index layer they are pure ``ACGT``.

    >>> encode("ACGT").tolist()
    [0, 1, 2, 3]
    """
    buf = np.frombuffer(seq.encode("ascii"), dtype=np.uint8)
    codes = _CHAR_TO_CODE[buf]
    if codes.max(initial=0) > 3:
        bad = seq[int(np.argmax(codes > 3))]
        raise AlphabetError(f"non-ACGT character {bad!r} in sequence")
    return codes


def decode(codes: np.ndarray) -> str:
    """Decode a code array back into a DNA string.

    >>> decode(np.array([0, 1, 2, 3], dtype=np.uint8))
    'ACGT'
    """
    arr = np.asarray(codes)
    if arr.size and (arr.min() < 0 or arr.max() > 3):
        raise AlphabetError("code array contains values outside 0..3")
    lut = np.frombuffer(BASES.encode("ascii"), dtype=np.uint8)
    return lut[arr].tobytes().decode("ascii")


def complement_code(code: int) -> int:
    """Return the complement of a single 2-bit base code (``3 - code``)."""
    if not 0 <= code <= 3:
        raise AlphabetError(f"code {code} outside 0..3")
    return 3 - code


def revcomp_codes(codes: np.ndarray) -> np.ndarray:
    """Reverse-complement a code array.

    >>> revcomp_codes(encode("AACG")).tolist() == encode("CGTT").tolist()
    True
    """
    return COMPLEMENT[np.asarray(codes, dtype=np.uint8)][::-1].copy()


def revcomp(seq: str) -> str:
    """Reverse-complement a DNA string."""
    return decode(revcomp_codes(encode(seq)))
