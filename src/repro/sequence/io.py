"""Minimal FASTA/FASTQ reading and writing.

Only the features the examples and tests need: multi-record FASTA with
wrapped lines, four-line FASTQ records.  Ambiguous bases are rejected at
encode time (see :mod:`repro.sequence.alphabet`); callers that must tolerate
them should pre-filter, matching the paper's host-side handling of
ambiguous-base reads (§V).
"""

from __future__ import annotations

from pathlib import Path

from repro.sequence.alphabet import encode
from repro.sequence.reference import Reference
from repro.sequence.simulate import Read


class FastaError(ValueError):
    """Raised on malformed FASTA/FASTQ input."""


def read_fasta(path) -> "list[Reference]":
    """Parse a FASTA file into a list of :class:`Reference` records."""
    records = []
    name = None
    chunks: "list[str]" = []
    with open(path) as handle:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    records.append(_make_reference(name, chunks))
                name = line[1:].split()[0] if len(line) > 1 else ""
                chunks = []
            else:
                if name is None:
                    raise FastaError("sequence data before first FASTA header")
                chunks.append(line)
    if name is not None:
        records.append(_make_reference(name, chunks))
    if not records:
        raise FastaError(f"no FASTA records in {path}")
    return records


def _make_reference(name: str, chunks: "list[str]") -> Reference:
    seq = "".join(chunks)
    if not seq:
        raise FastaError(f"FASTA record {name!r} has no sequence")
    return Reference.from_string(seq, name=name or "unnamed")


def write_fasta(path, references, width: int = 70) -> None:
    """Write references to a FASTA file with lines wrapped at ``width``."""
    with open(path, "w") as handle:
        for ref in references:
            handle.write(f">{ref.name}\n")
            seq = ref.sequence
            for i in range(0, len(seq), width):
                handle.write(seq[i:i + width] + "\n")


def read_fastq(path) -> "list[Read]":
    """Parse a FASTQ file into a list of :class:`Read` records."""
    reads = []
    with open(path) as handle:
        lines = [line.rstrip("\n") for line in handle]
    lines = [line for line in lines if line]
    if len(lines) % 4 != 0:
        raise FastaError(f"FASTQ file {path} is not a multiple of 4 lines")
    for i in range(0, len(lines), 4):
        header, seq, plus, quality = lines[i:i + 4]
        if not header.startswith("@"):
            raise FastaError(f"FASTQ record {i // 4} missing '@' header")
        if not plus.startswith("+"):
            raise FastaError(f"FASTQ record {i // 4} missing '+' separator")
        if len(seq) != len(quality):
            raise FastaError(
                f"FASTQ record {i // 4} sequence/quality length mismatch")
        reads.append(Read(name=header[1:].split()[0],
                          codes=encode(seq), quality=quality))
    return reads


def write_fastq(path, reads) -> None:
    """Write reads to a FASTQ file."""
    with open(path, "w") as handle:
        for read in reads:
            quality = read.quality or "I" * len(read)
            handle.write(f"@{read.name}\n{read.sequence}\n+\n{quality}\n")


def ensure_parent(path) -> Path:
    """Create the parent directory of ``path`` if needed and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return path
