"""DNA sequence substrate: encodings, references, simulators and file I/O.

This package provides everything the index structures sit on top of:

* :mod:`repro.sequence.alphabet` -- the 2-bit DNA alphabet, encoding between
  strings and numpy code arrays, and reverse complementation.
* :mod:`repro.sequence.reference` -- :class:`Reference`, a named reference
  genome exposing the double-strand text that all indexes are built over.
* :mod:`repro.sequence.simulate` -- synthetic genome and read simulators used
  in place of GRCh38 / Platinum Genomes (see DESIGN.md substitution table).
* :mod:`repro.sequence.io` -- minimal FASTA/FASTQ reading and writing.
"""

from repro.sequence.alphabet import (
    BASES,
    complement_code,
    decode,
    encode,
    revcomp,
    revcomp_codes,
)
from repro.sequence.io import (
    read_fasta,
    read_fastq,
    write_fasta,
    write_fastq,
)
from repro.sequence.multi import ContigHit, MultiReference
from repro.sequence.reference import Reference, Strand
from repro.sequence.simulate import (
    GenomeSimulator,
    PairedReadSimulator,
    Read,
    ReadPair,
    ReadSimulator,
)

__all__ = [
    "BASES",
    "ContigHit",
    "GenomeSimulator",
    "MultiReference",
    "PairedReadSimulator",
    "Read",
    "ReadPair",
    "ReadSimulator",
    "Reference",
    "Strand",
    "complement_code",
    "decode",
    "encode",
    "read_fasta",
    "read_fastq",
    "revcomp",
    "revcomp_codes",
    "write_fasta",
    "write_fastq",
]
