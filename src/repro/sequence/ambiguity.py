"""Ambiguous-base (IUPAC / N) handling, as the paper's methodology does.

§V: "Reads containing ambiguous base pairs (non-A/C/G/T) are processed on
the host-CPU and ambiguous base pairs in the reference genome are
converted to one of the standard nucleotides."  Concretely:

* :func:`sanitize_reference` converts every non-ACGT reference character
  to a deterministic pseudo-random standard base (seeded, so index builds
  are reproducible);
* :func:`split_unambiguous_segments` cuts a read into its maximal ACGT
  runs -- since the sanitized reference contains no ambiguity codes, no
  exact match can cross an ambiguous read base, so the runs can be seeded
  independently (this is the "host processing" path);
* :func:`is_ambiguous` routes reads between the accelerator path (pure
  ACGT) and the host path.
"""

from __future__ import annotations

import numpy as np

from repro.sequence.alphabet import BASES, encode

_STANDARD = set(BASES) | set(BASES.lower())

#: IUPAC ambiguity codes and the standard bases they may stand for.
IUPAC = {
    "R": "AG", "Y": "CT", "S": "CG", "W": "AT", "K": "GT", "M": "AC",
    "B": "CGT", "D": "AGT", "H": "ACT", "V": "ACG", "N": "ACGT",
}


def is_ambiguous(seq: str) -> bool:
    """True if the sequence contains any non-ACGT character."""
    return any(ch not in _STANDARD for ch in seq)


def sanitize_reference(seq: str, seed: int = 0) -> str:
    """Replace every ambiguity code with a standard base.

    The replacement respects the IUPAC code's allowed set (an ``R``
    becomes ``A`` or ``G``) and is drawn from a seeded generator, so the
    same input always yields the same sanitized reference -- a requirement
    for reproducible index builds.  Unknown characters resolve over the
    full alphabet.
    """
    if not is_ambiguous(seq):
        return seq.upper()
    rng = np.random.default_rng(seed)
    out = []
    for ch in seq.upper():
        if ch in _STANDARD:
            out.append(ch)
            continue
        choices = IUPAC.get(ch, BASES)
        out.append(choices[int(rng.integers(0, len(choices)))])
    return "".join(out)


def split_unambiguous_segments(seq: str) -> "list[tuple[int, np.ndarray]]":
    """Maximal ACGT runs of a read as ``(offset, codes)`` pairs.

    >>> [(off, len(codes)) for off, codes in
    ...  split_unambiguous_segments("ACGNNTTA")]
    [(0, 3), (5, 3)]
    """
    segments = []
    start = None
    upper = seq.upper()
    for i, ch in enumerate(upper):
        if ch in BASES:
            if start is None:
                start = i
        else:
            if start is not None:
                segments.append((start, encode(upper[start:i])))
                start = None
    if start is not None:
        segments.append((start, encode(upper[start:])))
    return segments
