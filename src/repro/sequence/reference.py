"""Reference genomes and the double-strand text the indexes are built over.

Both the FMD-index (Li 2012) and the ERT (§III-A3 of the paper) find exact
matches on *both* DNA strands.  They do so by indexing the concatenation of
the forward strand and its reverse complement:

    ``X = R . revcomp(R)``

A hit at position ``p`` in ``X`` with ``p < len(R)`` is a forward-strand hit;
a hit at ``p >= len(R)`` lies on the reverse-complement strand and maps back
to a forward-strand interval via :meth:`Reference.to_forward`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.sequence.alphabet import decode, encode, revcomp_codes


class Strand(enum.Enum):
    """Which DNA strand a hit lies on."""

    FORWARD = "+"
    REVERSE = "-"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ForwardHit:
    """A hit mapped back to forward-strand coordinates."""

    strand: Strand
    start: int
    length: int

    @property
    def end(self) -> int:
        return self.start + self.length


@dataclass
class Reference:
    """A named reference genome.

    Parameters
    ----------
    name:
        Contig / assembly name (e.g. ``"chr_synthetic_1"``).
    codes:
        Forward strand as a ``uint8`` code array (values 0..3).
    """

    name: str
    codes: np.ndarray
    _both: np.ndarray = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        self.codes = np.ascontiguousarray(self.codes, dtype=np.uint8)
        if self.codes.ndim != 1:
            raise ValueError("reference codes must be a 1-D array")
        if self.codes.size == 0:
            raise ValueError("reference must be non-empty")
        if self.codes.max() > 3:
            raise ValueError("reference codes must be in 0..3")

    @classmethod
    def from_string(cls, seq: str, name: str = "ref") -> "Reference":
        """Build a reference from an ``ACGT`` string."""
        return cls(name=name, codes=encode(seq))

    def __len__(self) -> int:
        return int(self.codes.size)

    @property
    def sequence(self) -> str:
        """Forward strand as a string (materialized on demand)."""
        return decode(self.codes)

    @property
    def both_strands(self) -> np.ndarray:
        """``X = R . revcomp(R)``, the text every index is built over."""
        if self._both is None:
            self._both = np.concatenate(
                [self.codes, revcomp_codes(self.codes)])
        return self._both

    def to_forward(self, pos: int, length: int) -> "ForwardHit | None":
        """Map a hit at ``X[pos:pos+length]`` to forward-strand coordinates.

        A reverse-strand hit covering ``X[pos:pos+length]`` corresponds to
        the forward interval whose reverse complement it is.  Hits that
        straddle the strand junction are biological artifacts of the
        concatenated text (BWA discards them during chaining); ``None`` is
        returned for those.
        """
        n = len(self)
        if pos < 0 or pos + length > 2 * n:
            raise ValueError(f"hit [{pos}, {pos + length}) outside X of size {2 * n}")
        if pos + length <= n:
            return ForwardHit(Strand.FORWARD, pos, length)
        if pos >= n:
            off = pos - n
            return ForwardHit(Strand.REVERSE, n - off - length, length)
        return None

    def fetch(self, pos: int, length: int) -> np.ndarray:
        """Return ``X[pos:pos+length]`` (used by ERT early path compression).

        This is the "reference fetch" the paper counts as a separate DRAM
        access category (Fig 13): decompressing a compressed leaf requires
        reading the actual genome sequence at the leaf pointer.
        """
        both = self.both_strands
        if pos < 0 or pos + length > both.size:
            raise ValueError("fetch outside reference text")
        return both[pos:pos + length]
