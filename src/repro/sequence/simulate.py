"""Synthetic genome and read simulators.

These stand in for the paper's GRCh38 reference and Platinum Genomes reads
(see the substitution table in DESIGN.md).  What matters for seeding
behaviour is not absolute genome size but the *repeat structure*: the heavy
tail of the k-mer hit distribution (paper Fig 8) is what drives ERT's TABLE
entries, leaf gathering costs and the k-mer reuse opportunity.  The
:class:`GenomeSimulator` therefore plants the three repeat classes the human
genome is known for:

* **interspersed repeats** -- Alu/LINE-like elements copied (with light
  mutation) to many random loci; these create high-occurrence k-mers;
* **tandem repeats** -- short motifs repeated back-to-back (micro/mini
  satellites); these create locally dense radix trees;
* **segmental duplications** -- long, low-copy, high-identity blocks; these
  create deep shared tree paths that early path compression targets.

:class:`ReadSimulator` mimics the Illumina short-read model used in §V:
fixed-length reads sampled uniformly from either strand, a configurable
fraction carrying substitution errors (the paper's cycle-accurate traces used
~80 % perfect / ~20 % non-perfect reads from ERR194147).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sequence.alphabet import COMPLEMENT, decode
from repro.sequence.reference import Reference, Strand


@dataclass(frozen=True)
class Read:
    """A simulated sequencing read.

    ``origin``/``strand`` record the ground-truth sampling location so that
    alignment examples can score themselves; real FASTQ reads parsed from
    disk leave them as ``None``.
    """

    name: str
    codes: np.ndarray
    quality: str = ""
    origin: "int | None" = None
    strand: "Strand | None" = None

    def __len__(self) -> int:
        return int(self.codes.size)

    @property
    def sequence(self) -> str:
        return decode(self.codes)


@dataclass
class GenomeSimulator:
    """Generate repeat-rich synthetic genomes.

    Parameters mirror coarse human-genome statistics: roughly half of the
    human genome is repetitive, and interspersed elements alone cover ~45 %.
    Fractions are of total genome length.
    """

    seed: int = 0
    interspersed_fraction: float = 0.30
    tandem_fraction: float = 0.08
    segdup_fraction: float = 0.07
    element_length: int = 300
    tandem_motif_len: tuple = (2, 24)
    segdup_length: int = 2000
    mutation_rate: float = 0.02

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def _mutate(self, codes: np.ndarray) -> np.ndarray:
        """Apply point substitutions at ``mutation_rate`` to a copy."""
        out = codes.copy()
        mask = self._rng.random(out.size) < self.mutation_rate
        if mask.any():
            shift = self._rng.integers(1, 4, size=int(mask.sum()), dtype=np.uint8)
            out[mask] = (out[mask] + shift) % 4
        return out

    def generate(self, length: int, name: str = "synthetic") -> Reference:
        """Generate a genome of ``length`` bp with planted repeats."""
        if length < 100:
            raise ValueError("genome length must be at least 100 bp")
        genome = self._rng.integers(0, 4, size=length, dtype=np.uint8)

        self._plant_interspersed(genome)
        self._plant_tandem(genome)
        self._plant_segdups(genome)
        return Reference(name=name, codes=genome)

    def _plant_interspersed(self, genome: np.ndarray) -> None:
        length = genome.size
        elem_len = min(self.element_length, max(20, length // 20))
        budget = int(length * self.interspersed_fraction)
        n_families = max(1, budget // (elem_len * 50))
        families = [
            self._rng.integers(0, 4, size=elem_len, dtype=np.uint8)
            for _ in range(n_families)
        ]
        placed = 0
        while placed + elem_len <= budget:
            family = families[self._rng.integers(0, len(families))]
            pos = int(self._rng.integers(0, length - elem_len))
            genome[pos:pos + elem_len] = self._mutate(family)
            placed += elem_len

    def _plant_tandem(self, genome: np.ndarray) -> None:
        length = genome.size
        budget = int(length * self.tandem_fraction)
        placed = 0
        lo, hi = self.tandem_motif_len
        while placed < budget:
            motif_len = int(self._rng.integers(lo, hi + 1))
            copies = int(self._rng.integers(5, 40))
            total = motif_len * copies
            if total > length // 4:
                total = length // 4
                copies = max(2, total // motif_len)
                total = motif_len * copies
            if total == 0 or total > length:
                break
            motif = self._rng.integers(0, 4, size=motif_len, dtype=np.uint8)
            pos = int(self._rng.integers(0, length - total))
            genome[pos:pos + total] = np.tile(motif, copies)
            placed += total

    def _plant_segdups(self, genome: np.ndarray) -> None:
        length = genome.size
        dup_len = min(self.segdup_length, max(100, length // 10))
        budget = int(length * self.segdup_fraction)
        placed = 0
        while placed + dup_len <= budget:
            src = int(self._rng.integers(0, length - dup_len))
            dst = int(self._rng.integers(0, length - dup_len))
            genome[dst:dst + dup_len] = self._mutate(genome[src:src + dup_len])
            placed += dup_len


@dataclass(frozen=True)
class ReadPair:
    """A simulated fragment's two reads (Illumina FR orientation)."""

    first: Read
    second: Read
    fragment_start: int
    fragment_length: int
    strand: Strand


@dataclass
class ReadSimulator:
    """Sample Illumina-like reads from a reference.

    ``error_read_fraction`` controls how many reads carry errors at all
    (paper §V: ~20 % of ERR194147 reads are non-perfect); reads selected to
    carry errors receive substitutions at ``substitution_rate`` per base,
    with at least one substitution guaranteed.
    """

    reference: Reference
    read_length: int = 101
    error_read_fraction: float = 0.2
    substitution_rate: float = 0.01
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.read_length > len(self.reference):
            raise ValueError("read length exceeds reference length")
        self._rng = np.random.default_rng(self.seed)

    def simulate(self, count: int) -> "list[Read]":
        """Generate ``count`` reads."""
        return [self._one(i) for i in range(count)]

    def simulate_coverage(self, coverage: float) -> "list[Read]":
        """Generate enough reads for the given sequencing depth.

        The paper's reuse opportunity (§III-C) exists because real runs
        cover every reference position 30-50 times; this helper sizes a
        read set by that depth instead of a raw count.
        """
        if coverage <= 0:
            raise ValueError("coverage must be positive")
        count = max(1, round(coverage * len(self.reference)
                             / self.read_length))
        return self.simulate(int(count))

    def _one(self, index: int) -> Read:
        n = len(self.reference)
        x = self.reference.both_strands
        # Sample so the read never straddles the strand junction.
        strand = Strand.FORWARD if self._rng.random() < 0.5 else Strand.REVERSE
        start_fwd = int(self._rng.integers(0, n - self.read_length + 1))
        if strand is Strand.FORWARD:
            pos = start_fwd
        else:
            pos = 2 * n - start_fwd - self.read_length
        codes = x[pos:pos + self.read_length].copy()

        is_error_read = self._rng.random() < self.error_read_fraction
        if is_error_read:
            mask = self._rng.random(codes.size) < self.substitution_rate
            if not mask.any():
                mask[self._rng.integers(0, codes.size)] = True
            shift = self._rng.integers(1, 4, size=int(mask.sum()), dtype=np.uint8)
            codes[mask] = (codes[mask] + shift) % 4

        quality = "I" * self.read_length
        return Read(
            name=f"read_{index}",
            codes=codes,
            quality=quality,
            origin=start_fwd,
            strand=strand,
        )


@dataclass
class PairedReadSimulator:
    """Sample paired-end reads in Illumina FR orientation.

    A fragment of roughly ``insert_mean`` bp is drawn from either strand;
    the first read covers the fragment's 5' end, the second read is the
    reverse complement of its 3' end, so on the forward reference the
    mates face each other (forward-read position < reverse-read position).
    """

    reference: Reference
    read_length: int = 101
    insert_mean: int = 350
    insert_sd: int = 50
    error_read_fraction: float = 0.2
    substitution_rate: float = 0.01
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.insert_mean < self.read_length:
            raise ValueError("insert size must cover one read")
        if self.insert_mean + 4 * self.insert_sd > len(self.reference):
            raise ValueError("reference too short for the insert size")
        self._rng = np.random.default_rng(self.seed)

    def simulate(self, count: int) -> "list[ReadPair]":
        return [self._one(i) for i in range(count)]

    def _mutate(self, codes: np.ndarray) -> np.ndarray:
        if self._rng.random() >= self.error_read_fraction:
            return codes
        mask = self._rng.random(codes.size) < self.substitution_rate
        if not mask.any():
            mask[self._rng.integers(0, codes.size)] = True
        out = codes.copy()
        shift = self._rng.integers(1, 4, size=int(mask.sum()),
                                   dtype=np.uint8)
        out[mask] = (out[mask] + shift) % 4
        return out

    def _one(self, index: int) -> ReadPair:
        n = len(self.reference)
        rl = self.read_length
        length = int(np.clip(self._rng.normal(self.insert_mean,
                                              self.insert_sd),
                             rl, n))
        start = int(self._rng.integers(0, n - length + 1))
        fwd = self.reference.codes[start:start + length]
        left = fwd[:rl].copy()
        right = COMPLEMENT[fwd[length - rl:]][::-1].copy()
        if self._rng.random() < 0.5:
            strand = Strand.FORWARD
            first_codes, second_codes = left, right
            first_origin, first_strand = start, Strand.FORWARD
            second_origin, second_strand = start + length - rl, Strand.REVERSE
        else:
            strand = Strand.REVERSE
            first_codes, second_codes = right, left
            first_origin, first_strand = start + length - rl, Strand.REVERSE
            second_origin, second_strand = start, Strand.FORWARD
        quality = "I" * rl
        first = Read(name=f"pair_{index}/1", codes=self._mutate(first_codes),
                     quality=quality, origin=first_origin,
                     strand=first_strand)
        second = Read(name=f"pair_{index}/2",
                      codes=self._mutate(second_codes), quality=quality,
                      origin=second_origin, strand=second_strand)
        return ReadPair(first=first, second=second, fragment_start=start,
                        fragment_length=length, strand=strand)
