"""Exporters and the human-readable profile report.

A telemetry *snapshot* is the plain-dict form produced by
:func:`repro.telemetry.snapshot`::

    {"counters": {...}, "gauges": {...}, "histograms": {...},
     "spans": {...}}

This module writes snapshots as JSON (one run per file) or JSONL (one
labelled run per line, for benchmark trajectories), reads them back, and
renders the per-stage table behind ``ert-repro report`` and the CLI's
``--profile`` flag.  Everything here is standard-library only so the
telemetry package never drags the analysis stack into hot paths.
"""

from __future__ import annotations

import json

from repro.telemetry.metrics import bucket_percentile


SNAPSHOT_KEYS = ("counters", "gauges", "histograms", "spans",
                 "exemplars")


def write_json(path, snapshot: dict) -> None:
    """Write one snapshot as an indented JSON document."""
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")


def write_jsonl(path, snapshot: dict, label: str = "") -> None:
    """Append one snapshot as a single JSONL record tagged ``label``."""
    record = {"label": label}
    record.update(snapshot)
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def write_trace(path, document: dict) -> None:
    """Write a Chrome/Perfetto trace document (the object produced by
    :func:`repro.telemetry.current_trace` /
    :func:`repro.telemetry.events.trace_document`) as compact JSON.
    Open the file at https://ui.perfetto.dev or ``chrome://tracing``."""
    with open(path, "w") as handle:
        json.dump(document, handle, separators=(",", ":"))
        handle.write("\n")


def load_trace(path) -> dict:
    """Read back a trace written by :func:`write_trace` (accepts both
    the object form and a bare event array)."""
    with open(path) as handle:
        data = json.load(handle)
    if isinstance(data, list):
        return {"traceEvents": data}
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError(f"{path}: not a trace_event document")
    return data


def load_snapshot(path) -> dict:
    """Read a snapshot written by :func:`write_json` (missing sections
    are filled in empty, so partial files still render)."""
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: not a telemetry snapshot")
    for key in SNAPSHOT_KEYS:
        # ``exemplars`` is an optional section -- snapshots carry it only
        # when reads were sampled, so loading must not invent the key or
        # write/load would stop round-tripping.
        if key != "exemplars":
            data.setdefault(key, {})
    return data


# ----------------------------------------------------------------------
# Profile rendering
# ----------------------------------------------------------------------


def _format_table(headers: "list[str]", rows: "list[list[str]]") -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
             "  ".join("-" * w for w in widths)]
    for row in rows:
        lines.append("  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(row)))
    return "\n".join(lines)


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:,.2f}"


def render_spans(spans: dict) -> str:
    """Per-stage timing table: indentation mirrors span nesting and the
    ``% root`` column is relative to each stage's top-level ancestor."""
    if not spans:
        return "(no spans recorded)"
    roots = {path: stat for path, stat in spans.items() if "/" not in path}
    rows = []
    for path in sorted(spans):
        stat = spans[path]
        depth = path.count("/")
        label = "  " * depth + path.rsplit("/", 1)[-1]
        root = roots.get(path.split("/", 1)[0])
        share = (100.0 * stat["total_s"] / root["total_s"]
                 if root and root["total_s"] > 0 else 100.0)
        rows.append([label, f"{stat['count']:,}", _ms(stat["total_s"]),
                     _ms(stat["self_s"]), _ms(stat["total_s"]
                                              / max(1, stat["count"])),
                     f"{share:.1f}"])
    return _format_table(
        ["stage", "calls", "total ms", "self ms", "ms/call", "% root"],
        rows)


def render_profile(snapshot: dict, title: "str | None" = None) -> str:
    """The full human-readable report: spans, counters, gauges,
    histogram summaries."""
    parts = []
    if title:
        parts.append(title)
    parts.append("== per-stage wall clock ==")
    parts.append(render_spans(snapshot.get("spans", {})))
    counters = snapshot.get("counters", {})
    if counters:
        parts.append("")
        parts.append("== counters ==")
        parts.append(_format_table(
            ["counter", "value"],
            [[name, f"{value:,}"] for name, value
             in sorted(counters.items())]))
    gauges = snapshot.get("gauges", {})
    if gauges:
        parts.append("")
        parts.append("== gauges ==")
        parts.append(_format_table(
            ["gauge", "value"],
            [[name, f"{value:,.6g}"] for name, value
             in sorted(gauges.items())]))
    histograms = snapshot.get("histograms", {})
    if histograms:
        parts.append("")
        parts.append("== histograms ==")
        rows = []
        for name, hist in sorted(histograms.items()):
            count = hist.get("count", 0)
            mean = hist["total"] / count if count else 0.0
            row = [name, f"{count:,}", f"{mean:,.1f}",
                   f"{hist['min']:g}" if hist["min"] is not None
                   else "-",
                   f"{hist['max']:g}" if hist["max"] is not None
                   else "-"]
            for q in (0.50, 0.90, 0.99, 0.999):
                # Recompute from the buckets rather than trusting stored
                # p50/p90/p99/p99.9 keys, so snapshots written before
                # the percentile columns existed still render.
                value = bucket_percentile(
                    hist["edges"], hist["counts"], count,
                    hist["min"], hist["max"], q)
                row.append(f"{value:,.1f}" if value is not None else "-")
            rows.append(row)
        parts.append(_format_table(
            ["histogram", "samples", "mean", "min", "max", "p50", "p90",
             "p99", "p99.9"], rows))
    exemplars = snapshot.get("exemplars", {})
    if exemplars.get("slowest"):
        parts.append("")
        parts.append("== slowest reads (exemplar slowlog) ==")
        parts.append(render_slowlog(exemplars))
    return "\n".join(parts)


def render_slowlog(exemplars: dict, limit: int = 10) -> str:
    """Table view of the exemplar slowlog: the top recorded reads by
    wall time, with the counters that explain the cost.  Feed any read
    id shown here to ``ert-repro explain`` for the full breakdown."""
    rows = []
    for rec in exemplars.get("slowest", [])[:limit]:
        counters = rec.get("counters", {})
        top = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
        rows.append([rec["read_id"], rec.get("task", "-"),
                     f"{rec['wall_ms']:,.3f}",
                     " ".join(f"{k}={v:,}" for k, v in top) or "-"])
    if not rows:
        return "(no exemplars recorded)"
    return _format_table(["read", "task", "wall ms", "top counters"], rows)
