"""Process-wide metrics: counters, gauges, and bucketed histograms.

The registry is deliberately dependency-free and single-threaded (like the
rest of the reproduction): a metric is created on first use and lives until
:meth:`MetricsRegistry.reset`.  Three metric kinds cover everything the
paper's figures need:

* :class:`Counter` -- monotonically increasing totals (walk steps, leaf
  gathers, truncated hit lists, DRAM page opens...);
* :class:`Gauge` -- last-written values (index bytes, simulated cycles);
* :class:`Histogram` -- bucketed distributions (seed lengths, hit counts,
  extension window sizes) with fixed, explicit bucket edges.

Metric names are dot-separated paths, ``<subsystem>.<noun>[.<qualifier>]``
(see ``docs/observability.md`` for the conventions).  Nothing in this
module consults the global telemetry enable flag -- that guard lives in
:mod:`repro.telemetry` so the registry itself stays testable in isolation.
"""

from __future__ import annotations

from bisect import bisect_left


#: Default histogram bucket edges: a 1-2.5-5 decade ladder that resolves
#: both read-scale quantities (seed lengths) and hit-count tails.
DEFAULT_EDGES = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
                 10000)

#: Bucket edges for [0, 1] fractions (lane occupancy, wavefront fill):
#: deciles, with extra resolution near full occupancy where the batched
#: kernels are expected to live.
FRACTION_EDGES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95,
                  0.99, 1.0)


class Counter:
    """A monotonically increasing integer total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += n


class Gauge:
    """A last-write-wins scalar."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A bucketed distribution with explicit, ascending edges.

    A value ``v`` lands in the first bucket whose edge satisfies
    ``v <= edge``; values above the last edge land in the implicit
    overflow bucket, so ``len(counts) == len(edges) + 1``.
    """

    __slots__ = ("edges", "counts", "count", "total", "min", "max",
                 "exemplars")

    def __init__(self, edges: "tuple[float, ...] | None" = None) -> None:
        edges = tuple(edges) if edges is not None else DEFAULT_EDGES
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("bucket edges must be strictly ascending")
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        # Bucket index -> {"value": float, "labels": {...}}: one exemplar
        # per bucket, latest wins (OpenMetrics exposition semantics).
        self.exemplars: "dict[int, dict]" = {}

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_many(self, values: "object") -> None:
        """Observe every value in ``values`` (any iterable of numbers).

        This is the batch-flush path for the vector kernels: the sweep
        accumulates per-lane quantities in plain ndarrays and the driver
        lands the whole column in one call, so the hot loops never touch
        the registry (rules ERT007/ERT017)."""
        for value in values:
            self.observe(float(value))

    def observe_bucketed(self, counts: "list[int]", total: float,
                         lo: float, hi: float) -> None:
        """Fold pre-bucketed observations in: ``counts[i]`` observations
        landed in bucket ``i`` of this ladder, summing to ``total`` with
        extremes ``lo``/``hi``.

        This is the batch-flush fast path for numpy-native producers
        (the vector kernels): they bucket a whole accumulator column
        with ``searchsorted`` -- the same ``bisect_left`` semantics as
        :meth:`observe` -- and hand plain lists here, so the registry
        pays O(buckets) per batch instead of O(values) while this
        module stays dependency-free."""
        if len(counts) != len(self.counts):
            raise ValueError(
                f"bucketed counts length {len(counts)} does not match "
                f"this histogram's {len(self.counts)} buckets")
        observed = 0
        for i, c in enumerate(counts):
            if c:
                self.counts[i] += c
                observed += c
        if not observed:
            return
        self.count += observed
        self.total += total
        if self.min is None or lo < self.min:
            self.min = lo
        if self.max is None or hi > self.max:
            self.max = hi

    def attach_exemplar(self, value: float,
                        labels: "dict[str, str]") -> None:
        """Pin a labelled exemplar ("this specific read produced this
        observation") to the bucket that ``value`` lands in.  Latest
        write per bucket wins; exporters render it next to the bucket
        line (OpenMetrics ``# {labels} value`` syntax)."""
        self.exemplars[bisect_left(self.edges, value)] = {
            "value": float(value),
            "labels": {str(k): str(v) for k, v in labels.items()}}

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> "float | None":
        """Estimated ``q``-quantile (``0 < q <= 1``) via linear
        interpolation inside the bucket holding the target rank; see
        :func:`bucket_percentile`."""
        return bucket_percentile(self.edges, self.counts, self.count,
                                 self.min, self.max, q)

    def merge(self, data: dict) -> None:
        """Fold another histogram's :meth:`as_dict` snapshot into this
        one.  Bucket edges must match -- merging is only meaningful when
        both sides observed into the same ladder."""
        if tuple(data["edges"]) != self.edges:
            raise ValueError(
                f"cannot merge histograms with different bucket edges: "
                f"{tuple(data['edges'])} vs {self.edges}")
        for i, c in enumerate(data["counts"]):
            self.counts[i] += c
        self.count += data["count"]
        self.total += data["total"]
        other_min, other_max = data["min"], data["max"]
        if other_min is not None and (self.min is None
                                      or other_min < self.min):
            self.min = other_min
        if other_max is not None and (self.max is None
                                      or other_max > self.max):
            self.max = other_max
        for bucket, exemplar in data.get("exemplars", {}).items():
            # Incoming wins, matching attach_exemplar's latest-wins rule
            # under the scheduler's in-submission-order merge.  JSON
            # round-trips turn the int bucket keys into strings.
            self.exemplars[int(bucket)] = exemplar

    def as_dict(self) -> dict:
        data = {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "p99.9": self.percentile(0.999),
        }
        if self.exemplars:
            data["exemplars"] = {str(bucket): exemplar for bucket,
                                 exemplar in sorted(self.exemplars.items())}
        return data


def bucket_percentile(edges, counts, count, lo, hi, q) -> "float | None":
    """Quantile estimate from bucketed data by linear interpolation.

    The bucket holding the target rank ``q * count`` is located by
    cumulative count; the estimate interpolates linearly between that
    bucket's bounds.  Bounds are tightened with the *observed* extremes:
    the first bucket's lower bound is the recorded ``min`` (its edge
    would otherwise be unbounded below) and the overflow bucket's upper
    bound is the recorded ``max``.  Exact within a bucket only when
    values are uniform inside it -- the standard histogram-quantile
    trade-off (same scheme as Prometheus's ``histogram_quantile``).

    Returns ``None`` for an empty histogram; ``q`` outside ``(0, 1]``
    raises.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError(f"percentile q must be in (0, 1], got {q}")
    if not count:
        return None
    target = q * count
    cumulative = 0.0
    for i, bucket_count in enumerate(counts):
        if not bucket_count:
            continue
        if cumulative + bucket_count >= target:
            if i == 0:
                lower = lo if lo is not None else edges[0]
            else:
                lower = edges[i - 1]
            if i < len(edges):
                upper = edges[i]
            else:
                upper = hi if hi is not None else edges[-1]
            if hi is not None:
                upper = min(upper, hi)
            if upper <= lower:
                return float(lower)
            fraction = (target - cumulative) / bucket_count
            return float(lower + fraction * (upper - lower))
        cumulative += bucket_count
    return float(hi) if hi is not None else float(edges[-1])


class MetricsRegistry:
    """Name -> metric map with create-on-first-use accessors."""

    def __init__(self) -> None:
        self.counters: "dict[str, Counter]" = {}
        self.gauges: "dict[str, Gauge]" = {}
        self.histograms: "dict[str, Histogram]" = {}
        # Highest merge order seen per gauge (see merge_snapshot): keyed
        # separately so live gauge.set() calls stay order-free.
        self._gauge_orders: "dict[str, int]" = {}

    # -- accessors -----------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge()
        return metric

    def histogram(self, name: str,
                  edges: "tuple[float, ...] | None" = None) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(edges)
        return metric

    # -- bulk operations -----------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self._gauge_orders.clear()

    def merge_snapshot(self, data: dict, order: "int | None" = None) -> None:
        """Fold a :meth:`snapshot` -- typically produced in another
        process by a :mod:`repro.parallel` worker -- into the live
        metrics: counters add, histograms merge bucket-wise, gauges
        resolve by ``order``.

        ``order`` is the snapshot's submission index (the batch number in
        a parallel run): for each gauge the snapshot with the *highest*
        order wins, regardless of merge call sequence, so the merged
        value is the one a serial run would have left behind -- stable at
        any worker count.  Without ``order`` gauges fall back to
        last-write-wins (and take precedence over any ordered value seen
        so far, matching plain gauge semantics)."""
        for name, value in data.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in data.get("gauges", {}).items():
            if order is None:
                self._gauge_orders.pop(name, None)
                self.gauge(name).set(value)
            elif order >= self._gauge_orders.get(name, -1):
                self._gauge_orders[name] = order
                self.gauge(name).set(value)
        for name, hist in data.get("histograms", {}).items():
            self.histogram(name, tuple(hist["edges"])).merge(hist)

    def snapshot(self) -> dict:
        """Plain-data copy of every metric (JSON-serializable)."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self.gauges.items())},
            "histograms": {name: h.as_dict()
                           for name, h in sorted(self.histograms.items())},
        }


def sanitize(label: str) -> str:
    """Turn a free-form label ("BWA-MEM2 (FMD)") into a metric-name
    segment: lowercase, with runs of non-alphanumerics collapsed to ``-``."""
    out = []
    last_dash = True
    for ch in label.lower():
        if ch.isalnum():
            out.append(ch)
            last_dash = False
        elif not last_dash:
            out.append("-")
            last_dash = True
    return "".join(out).strip("-")
