"""Per-read exemplars: the "which read was slow, and why" layer.

Aggregate metrics (histograms, counters) answer *how much*; when a p99
moves they cannot answer *which reads* moved it.  This module keeps a
small, bounded set of per-read records -- read id, wall time, and the
counter deltas that read produced (seeding rounds, reseed/LEP work, seed
hits, SW cells, memsim bytes when a tracer is attached) -- so a latency
regression comes with named, replayable evidence (`ert-repro explain`).

Two capture policies run side by side in :class:`ExemplarCollector`:

* a **reservoir** (Algorithm R) holding a uniform sample of all reads,
  so the normal population stays visible next to the outliers;
* a **top-K slowest** min-heap (the *slowlog*): the K worst reads are
  always kept, never sampled away -- tail latency is the whole point.

Both are bounded (no per-read growth), both survive the worker boundary:
a worker snapshots its collector per batch and the parent folds it in
through :func:`repro.telemetry.merge_snapshot`, exactly like counters
and histograms.  Reservoir sampling uses a ``random.Random`` seeded at
construction (rule ERT002): given the scheduler's in-order merge, the
merged sample is deterministic at any worker count for a fixed batch
size.

This module owns the per-read clock (``perf_counter_ns``), which is why
it lives inside ``repro.telemetry`` -- rule ERT003 confines raw clock
reads to this package.
"""

from __future__ import annotations

import heapq
import random
import time

#: Reservoir capacity: enough to see the shape of the population
#: without the snapshot dominating the wire cost of a batch result.
DEFAULT_RESERVOIR = 64

#: Slowlog capacity: the always-kept worst offenders.
DEFAULT_TOP_K = 16

#: Fixed reservoir seed (ERT002: no hidden global RNG state).  One
#: constant, not configurable per run: sampling must not become an
#: accidental source of run-to-run diffs.
DEFAULT_SEED = 0x0E57

#: Bucket edges for the ``read.wall_ms`` histogram the collector feeds:
#: sub-millisecond resolution at the head (a read is typically well
#: under 1 ms at test scale), decade ladder up to 10 s.
READ_WALL_MS_EDGES = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
                      50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
                      10000.0)


class ExemplarCollector:
    """Bounded per-read record capture: reservoir + top-K slowlog.

    Records are plain dicts (JSON-ready)::

        {"read_id": "r17", "task": "seed", "wall_ms": 3.21,
         "counters": {"nodes_visited": 812, "seeds": 9, ...}}

    ``record`` and ``merge`` keep both structures bounded; ``snapshot``
    emits the wire form that :meth:`merge` folds back in on the parent
    side of the worker boundary.
    """

    def __init__(self, reservoir_size: int = DEFAULT_RESERVOIR,
                 top_k: int = DEFAULT_TOP_K,
                 seed: int = DEFAULT_SEED) -> None:
        if reservoir_size < 1 or top_k < 1:
            raise ValueError("reservoir_size and top_k must be >= 1")
        self.reservoir_size = reservoir_size
        self.top_k = top_k
        self.seed = seed
        self.count = 0
        self.reservoir: "list[dict]" = []
        self._offered = 0
        self._rng = random.Random(seed)
        # Min-heap of (wall_ms, insertion_seq, record): the root is the
        # *fastest* of the kept slow reads, i.e. the eviction candidate.
        self._slow: "list[tuple[float, int, dict]]" = []
        self._seq = 0

    # -- capture -------------------------------------------------------

    def start(self) -> int:
        """Begin timing one read; pass the token to :meth:`record`."""
        return time.perf_counter_ns()

    def elapsed_ms(self, started_ns: int) -> float:
        """Wall milliseconds since :meth:`start` returned ``started_ns``.

        Batch drivers use this to apportion one batch-level probe across
        the reads of the batch (the per-lane accumulators supply the
        weights); the raw clock read stays inside ``repro.telemetry``
        per rule ERT003."""
        return (time.perf_counter_ns() - started_ns) / 1e6

    def record(self, read_id: str, started_ns: int,
               counters: "dict[str, int] | None" = None,
               task: str = "seed",
               wall_ms: "float | None" = None,
               kernels: "str | None" = None) -> dict:
        """Close the probe opened by :meth:`start` and capture the
        read's record (returned, whether or not it was sampled).

        ``wall_ms`` overrides the probe-derived wall time -- batch
        drivers pass each read's share of the batch probe.  ``kernels``
        tags the record with the backend that produced it (``"vector"``);
        scalar records omit the field, so ``ert-repro explain`` treats a
        missing tag as scalar."""
        if wall_ms is None:
            wall_ms = self.elapsed_ms(started_ns)
        rec = {"read_id": str(read_id), "task": task,
               "wall_ms": wall_ms,
               "counters": {name: value
                            for name, value in (counters or {}).items()
                            if value}}
        if kernels is not None:
            rec["kernels"] = kernels
        self.count += 1
        self._offer_reservoir(rec)
        self._offer_slow(rec)
        return rec

    def record_batch(self, read_ids: "list[str]",
                     wall_ms: "list[float]",
                     make_counters: "object",
                     task: str = "seed",
                     kernels: "str | None" = None) -> None:
        """Offer a whole batch of reads, materializing a record only for
        the reads that are actually kept.

        Equivalent to calling :meth:`record` once per read -- the
        reservoir RNG, the slowlog heap and the sequence counter advance
        exactly as per-read offers would, so the kept sample is
        bit-identical -- but a read that lands in neither sink costs a
        few integer operations instead of a dict build.  That is what
        keeps vector exemplar capture inside the kernel telemetry
        budget: the batch driver offers every read, yet only ~reservoir
        + slowlog many records are ever constructed.

        ``make_counters(i)`` is called lazily for kept read ``i`` and
        returns its counter dict (zero values are stripped here, like
        :meth:`record`).
        """
        cap = self.reservoir_size
        for i, read_id in enumerate(read_ids):
            self.count += 1
            self._offered += 1
            slot = len(self.reservoir)
            if slot >= cap:
                slot = self._rng.randrange(self._offered)
            wall = wall_ms[i]
            slow = (len(self._slow) < self.top_k
                    or wall > self._slow[0][0])
            if slot >= cap and not slow:
                self._seq += 1
                continue
            rec = {"read_id": str(read_id), "task": task,
                   "wall_ms": wall,
                   "counters": {name: value
                                for name, value in make_counters(i).items()
                                if value}}
            if kernels is not None:
                rec["kernels"] = kernels
            if slot < cap:
                if slot == len(self.reservoir):
                    self.reservoir.append(rec)
                else:
                    self.reservoir[slot] = rec
            if slow:
                entry = (wall, self._seq, rec)
                if len(self._slow) < self.top_k:
                    heapq.heappush(self._slow, entry)
                else:
                    heapq.heapreplace(self._slow, entry)
            self._seq += 1

    def _offer_reservoir(self, rec: dict) -> None:
        """Algorithm R over the stream of offered records.  The RNG is
        consumed once per offer past capacity, so the kept sample is a
        pure function of (seed, offer order) -- deterministic under the
        scheduler's in-order merge."""
        self._offered += 1
        if len(self.reservoir) < self.reservoir_size:
            self.reservoir.append(rec)
            return
        slot = self._rng.randrange(self._offered)
        if slot < self.reservoir_size:
            self.reservoir[slot] = rec

    def _offer_slow(self, rec: dict) -> None:
        entry = (rec["wall_ms"], self._seq, rec)
        self._seq += 1
        if len(self._slow) < self.top_k:
            heapq.heappush(self._slow, entry)
        elif entry[0] > self._slow[0][0]:
            heapq.heapreplace(self._slow, entry)

    # -- views ---------------------------------------------------------

    def slowest(self) -> "list[dict]":
        """The slowlog, worst first (wall time descending; insertion
        order breaks ties so the view is stable)."""
        return [entry[2]
                for entry in sorted(self._slow,
                                    key=lambda e: (-e[0], e[1]))]

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    # -- lifecycle / wire ----------------------------------------------

    def reset(self) -> None:
        """Drop every record and re-seed the reservoir RNG (a reset
        collector replays identically -- workers reset per batch)."""
        self.count = 0
        self.reservoir = []
        self._offered = 0
        self._rng = random.Random(self.seed)
        self._slow = []
        self._seq = 0

    def snapshot(self) -> dict:
        """JSON-ready wire form (what a worker ships per batch)."""
        return {"count": self.count,
                "reservoir": list(self.reservoir),
                "slowest": self.slowest()}

    def merge(self, data: dict) -> None:
        """Fold another collector's :meth:`snapshot` into this one.

        Slowlog entries compete on wall time, so the merged top-K is
        exact.  Reservoir entries are re-offered through Algorithm R,
        which keeps the sample bounded and uniform-ish across workers;
        with in-order merging the result is deterministic.
        """
        self.count += int(data.get("count", 0))
        for rec in data.get("slowest", []):
            self._offer_slow(rec)
        for rec in data.get("reservoir", []):
            self._offer_reservoir(rec)
