"""Lightweight observability for the seeding/alignment stack.

The paper's whole argument is quantitative -- bytes per read, page opens,
cycles per seeding round -- so this package gives every subsystem one
process-wide place to put numbers:

* a metrics registry (:mod:`repro.telemetry.metrics`): counters, gauges,
  bucketed histograms;
* a span tracer (:mod:`repro.telemetry.spans`): nested wall-clock stage
  timings with exclusive-time accounting;
* exporters (:mod:`repro.telemetry.export`): JSON / JSONL snapshots and
  the human-readable per-stage profile.

**Telemetry is off by default** and everything routes through one
module-level flag.  While disabled, :func:`span` returns a shared no-op
context manager and every recording helper returns after a single flag
check, so instrumented code pays (and the overhead benchmark enforces)
essentially nothing.  Hot inner loops additionally avoid per-event calls
altogether: engines keep counting into their existing stats structs and
the per-read drivers *flush deltas* into the registry only when telemetry
is enabled.

Typical use::

    from repro import telemetry

    telemetry.enable()
    with telemetry.span("align"):
        aligner.align(read)
    print(telemetry.render_profile(telemetry.snapshot()))
"""

from __future__ import annotations

from bisect import bisect_left

from repro.telemetry.events import TimelineRecorder, trace_document
from repro.telemetry.exemplars import (
    READ_WALL_MS_EDGES,
    ExemplarCollector,
)
from repro.telemetry.export import (
    load_snapshot,
    render_profile,
    render_slowlog,
    render_spans,
    write_json,
    write_jsonl,
    write_trace,
)
from repro.telemetry.openmetrics import parse_openmetrics, render_openmetrics
from repro.telemetry.metrics import (
    DEFAULT_EDGES,
    FRACTION_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_percentile,
    sanitize,
)
from repro.telemetry.progress import ProgressReporter
from repro.telemetry.spans import NoopSpan, SpanStat, Tracer

__all__ = [
    "Counter",
    "DEFAULT_EDGES",
    "ExemplarCollector",
    "FRACTION_EDGES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopSpan",
    "ProgressReporter",
    "READ_WALL_MS_EDGES",
    "SpanStat",
    "TimelineRecorder",
    "Tracer",
    "add_counters",
    "bucket_percentile",
    "count",
    "current_trace",
    "disable",
    "drain_timeline",
    "enable",
    "enabled",
    "exemplars",
    "instant",
    "load_snapshot",
    "merge_snapshot",
    "observe",
    "observe_bucketed",
    "observe_many",
    "parse_openmetrics",
    "probe_ms",
    "read_probe",
    "record_read",
    "record_reads",
    "recorder",
    "recording",
    "registry",
    "render_openmetrics",
    "render_profile",
    "render_slowlog",
    "render_spans",
    "reset",
    "sanitize",
    "set_gauge",
    "snapshot",
    "span",
    "start_recording",
    "stop_recording",
    "trace_document",
    "trace_events",
    "tracer",
    "write_json",
    "write_jsonl",
    "write_trace",
]


#: The single switch everything checks.  Not exported mutable state --
#: flip it through :func:`enable` / :func:`disable` only.
_enabled = False

_registry = MetricsRegistry()
_recorder = TimelineRecorder()
#: The global tracer carries the timeline bridge: when recording is on,
#: every span also lands B/E events in the recorder.
_tracer = Tracer(events=_recorder)
_exemplars = ExemplarCollector()
_NOOP_SPAN = NoopSpan()


def enable() -> None:
    """Turn telemetry on (it starts off)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn telemetry off; recorded data is kept until :func:`reset`."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    return _enabled


def registry() -> MetricsRegistry:
    """The process-wide metrics registry (always live, even when
    telemetry is disabled -- recording helpers are what check the flag)."""
    return _registry


def tracer() -> Tracer:
    """The process-wide span tracer."""
    return _tracer


def exemplars() -> ExemplarCollector:
    """The process-wide per-read exemplar collector (reservoir sample
    plus top-K slowlog; see :mod:`repro.telemetry.exemplars`)."""
    return _exemplars


def reset() -> None:
    """Drop all recorded metrics, span aggregates and exemplars."""
    _registry.reset()
    _tracer.reset()
    _exemplars.reset()


def fork_reset() -> None:
    """Reset for a freshly forked worker process: drop every inherited
    metric and abandon any span the parent had open at fork time (the
    parent closes those spans in its own process; in the child they
    could never close, and :func:`reset` would refuse to run).  The
    timeline recorder is re-homed to the child pid; the pool
    initializer restarts it on the parent's epoch when capture is on."""
    _registry.reset()
    _tracer.abandon()
    _exemplars.reset()
    _recorder.fork_reset()


# ----------------------------------------------------------------------
# Timeline recording (the event stream behind ``--trace-out``)
# ----------------------------------------------------------------------
#
# Recording has its own switch, independent of the metrics flag: metrics
# answer "how much", the timeline answers "when", and either is useful
# alone.  :func:`reset` deliberately leaves the recorder untouched --
# worker processes reset metrics per batch while their timeline keeps
# accumulating until drained (see repro.parallel.scheduler._run_batch).


def recorder() -> TimelineRecorder:
    """The process-wide timeline event recorder."""
    return _recorder


def start_recording(epoch_ns: "int | None" = None) -> int:
    """Clear the timeline and start recording events.  Pass another
    recorder's epoch to align this process's events with its timeline
    (what pool workers do); the default anchors the trace at *now*.
    Returns the epoch in use."""
    return _recorder.start(epoch_ns)


def stop_recording() -> None:
    """Stop recording; buffered events stay available for export."""
    _recorder.stop()


def recording() -> bool:
    return _recorder.recording


def instant(name: str, arg: "object | None" = None) -> None:
    """Record a point-in-time event (a no-op unless recording)."""
    _recorder.instant(name, arg)


def drain_timeline() -> "dict | None":
    """Drain the local event ring as a JSON-able track (what a worker
    ships back per batch), or ``None`` when not recording."""
    if not _recorder.recording:
        return None
    return _recorder.drain_track()


def current_trace() -> dict:
    """The full Chrome/Perfetto trace JSON object for everything
    recorded so far (own ring plus absorbed worker tracks); pass it to
    :func:`write_trace`."""
    return trace_document(_recorder.tracks(), _recorder.epoch_ns)


def trace_events() -> "list[dict]":
    """Chrome ``trace_event`` dicts for everything recorded (own ring
    plus absorbed worker tracks)."""
    return current_trace()["traceEvents"]


# ----------------------------------------------------------------------
# Recording helpers -- each is a no-op after one flag check when disabled.
# ----------------------------------------------------------------------


def span(name: str):
    """Time a stage: ``with telemetry.span("align"): ...``.  Returns a
    shared do-nothing context manager while telemetry is disabled."""
    if not _enabled:
        return _NOOP_SPAN
    return _tracer.span(name)


def count(name: str, n: int = 1) -> None:
    """Increment counter ``name`` by ``n``."""
    if _enabled:
        _registry.counter(name).inc(n)


def add_counters(values: "dict[str, int]", prefix: str = "") -> None:
    """Bulk-increment counters, skipping zero deltas.  This is the flush
    path for engine/stat structs: hot loops keep counting into plain
    attributes and drivers publish the per-read delta here."""
    if not _enabled:
        return
    for name, value in values.items():
        if value:
            _registry.counter(prefix + name).inc(value)


def set_gauge(name: str, value: float) -> None:
    if _enabled:
        _registry.gauge(name).set(value)


def observe(name: str, value: float,
            edges: "tuple[float, ...] | None" = None) -> None:
    """Record ``value`` into histogram ``name`` (bucket edges fixed at
    first use)."""
    if _enabled:
        _registry.histogram(name, edges).observe(value)


def observe_many(name: str, values: "object",
                 edges: "tuple[float, ...] | None" = None) -> None:
    """Record every value of an iterable into histogram ``name`` in one
    call -- the batch-flush path for per-lane accumulator columns (the
    vector kernels hand whole ndarrays here at span boundaries)."""
    if _enabled:
        _registry.histogram(name, edges).observe_many(values)


def observe_bucketed(name: str, counts: "list[int]", total: float,
                     lo: float, hi: float,
                     edges: "tuple[float, ...] | None" = None) -> None:
    """Fold pre-bucketed observations into histogram ``name`` -- the
    batch-flush fast path for producers that bucket whole accumulator
    columns themselves (see :meth:`Histogram.observe_bucketed`)."""
    if _enabled:
        _registry.histogram(name, edges).observe_bucketed(counts, total,
                                                          lo, hi)


def read_probe() -> "int | None":
    """Open a per-read exemplar probe: returns a clock token to pass to
    :func:`record_read`, or ``None`` while telemetry is disabled (the
    disabled path costs one flag check; callers skip their counter
    bookkeeping entirely on ``None``)."""
    if not _enabled:
        return None
    return _exemplars.start()


def probe_ms(token: "int | None") -> float:
    """Wall milliseconds elapsed on a :func:`read_probe` token (``0.0``
    for a disabled probe).  Batch drivers read the probe once and split
    the time across the batch's reads via the per-lane accumulators --
    the raw clock stays confined to ``repro.telemetry`` (ERT003)."""
    if token is None:
        return 0.0
    return _exemplars.elapsed_ms(token)


def record_read(token: "int | None", read_id: str,
                counters: "dict[str, int] | None" = None,
                task: str = "seed",
                wall_ms: "float | None" = None,
                kernels: "str | None" = None) -> "dict | None":
    """Close a :func:`read_probe`: capture the read's exemplar record
    (reservoir + slowlog), observe its wall time into the
    ``read.wall_ms`` histogram, and pin the record to that histogram
    bucket as an OpenMetrics exemplar.  Returns the record, or ``None``
    when the probe was disabled.

    ``wall_ms`` overrides the probe-derived wall time (a batch driver
    records many reads against one probe, passing each read's share);
    ``kernels`` tags the record with the backend (``"vector"``) so
    ``ert-repro explain`` replays it through the same path."""
    if token is None or not _enabled:
        return None
    rec = _exemplars.record(read_id, token, counters, task=task,
                            wall_ms=wall_ms, kernels=kernels)
    hist = _registry.histogram("read.wall_ms", READ_WALL_MS_EDGES)
    hist.observe(rec["wall_ms"])
    hist.attach_exemplar(rec["wall_ms"], {"read_id": rec["read_id"]})
    return rec


def record_reads(token: "int | None", read_ids: "list[str]",
                 wall_ms: "list[float]", make_counters: "object",
                 task: str = "seed",
                 kernels: "str | None" = None) -> None:
    """Batch form of :func:`record_read` for the vector kernel drivers:
    one call captures exemplars for a whole batch against one probe.

    Produces exactly the state per-read :func:`record_read` calls
    would -- same reservoir membership (the RNG advances once per
    offer), same slowlog, same ``read.wall_ms`` histogram and bucket
    exemplars (latest read per bucket wins) -- but record dicts are
    only materialized for kept reads, and ``make_counters(i)`` is only
    invoked for those, which is what holds observed-vector overhead to
    the kernel telemetry budget."""
    if token is None or not _enabled:
        return
    _exemplars.record_batch(read_ids, wall_ms, make_counters,
                            task=task, kernels=kernels)
    hist = _registry.histogram("read.wall_ms", READ_WALL_MS_EDGES)
    hist.observe_many(wall_ms)
    last_per_bucket: "dict[int, int]" = {}
    edges = hist.edges
    for i, wall in enumerate(wall_ms):
        last_per_bucket[bisect_left(edges, wall)] = i
    for i in last_per_bucket.values():
        hist.attach_exemplar(wall_ms[i], {"read_id": read_ids[i]})


def snapshot() -> dict:
    """Plain-data copy of everything recorded so far (JSON-ready)."""
    data = _registry.snapshot()
    data["spans"] = _tracer.snapshot()
    if not _exemplars.is_empty:
        data["exemplars"] = _exemplars.snapshot()
    return data


def merge_snapshot(data: dict, order: "int | None" = None) -> None:
    """Fold a snapshot produced elsewhere -- typically by a
    :mod:`repro.parallel` worker process -- into the live registry and
    tracer: counters and histograms add, span aggregates merge per path,
    gauges resolve by ``order`` (the snapshot's batch submission index;
    highest order wins, so merged gauges are deterministic under
    out-of-order worker completion) or last-write-wins when ``order`` is
    omitted.  Timeline tracks (the ``"timeline"`` key a worker's
    :func:`drain_timeline` attaches) are absorbed whenever recording is
    on, even if metrics are disabled.  Otherwise a no-op while telemetry
    is disabled, so schedulers can call it unconditionally."""
    if _recorder.recording:
        _recorder.absorb(data.get("timeline"))
    if not _enabled:
        return
    _registry.merge_snapshot(data, order=order)
    _tracer.merge_snapshot(data.get("spans", {}))
    worker_exemplars = data.get("exemplars")
    if worker_exemplars:
        _exemplars.merge(worker_exemplars)
