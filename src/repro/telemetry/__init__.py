"""Lightweight observability for the seeding/alignment stack.

The paper's whole argument is quantitative -- bytes per read, page opens,
cycles per seeding round -- so this package gives every subsystem one
process-wide place to put numbers:

* a metrics registry (:mod:`repro.telemetry.metrics`): counters, gauges,
  bucketed histograms;
* a span tracer (:mod:`repro.telemetry.spans`): nested wall-clock stage
  timings with exclusive-time accounting;
* exporters (:mod:`repro.telemetry.export`): JSON / JSONL snapshots and
  the human-readable per-stage profile.

**Telemetry is off by default** and everything routes through one
module-level flag.  While disabled, :func:`span` returns a shared no-op
context manager and every recording helper returns after a single flag
check, so instrumented code pays (and the overhead benchmark enforces)
essentially nothing.  Hot inner loops additionally avoid per-event calls
altogether: engines keep counting into their existing stats structs and
the per-read drivers *flush deltas* into the registry only when telemetry
is enabled.

Typical use::

    from repro import telemetry

    telemetry.enable()
    with telemetry.span("align"):
        aligner.align(read)
    print(telemetry.render_profile(telemetry.snapshot()))
"""

from __future__ import annotations

from repro.telemetry.export import (
    load_snapshot,
    render_profile,
    render_spans,
    write_json,
    write_jsonl,
)
from repro.telemetry.metrics import (
    DEFAULT_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    sanitize,
)
from repro.telemetry.spans import NoopSpan, SpanStat, Tracer

__all__ = [
    "Counter",
    "DEFAULT_EDGES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopSpan",
    "SpanStat",
    "Tracer",
    "add_counters",
    "count",
    "disable",
    "enable",
    "enabled",
    "load_snapshot",
    "merge_snapshot",
    "observe",
    "registry",
    "render_profile",
    "render_spans",
    "reset",
    "sanitize",
    "set_gauge",
    "snapshot",
    "span",
    "tracer",
    "write_json",
    "write_jsonl",
]


#: The single switch everything checks.  Not exported mutable state --
#: flip it through :func:`enable` / :func:`disable` only.
_enabled = False

_registry = MetricsRegistry()
_tracer = Tracer()
_NOOP_SPAN = NoopSpan()


def enable() -> None:
    """Turn telemetry on (it starts off)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn telemetry off; recorded data is kept until :func:`reset`."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    return _enabled


def registry() -> MetricsRegistry:
    """The process-wide metrics registry (always live, even when
    telemetry is disabled -- recording helpers are what check the flag)."""
    return _registry


def tracer() -> Tracer:
    """The process-wide span tracer."""
    return _tracer


def reset() -> None:
    """Drop all recorded metrics and span aggregates."""
    _registry.reset()
    _tracer.reset()


def fork_reset() -> None:
    """Reset for a freshly forked worker process: drop every inherited
    metric and abandon any span the parent had open at fork time (the
    parent closes those spans in its own process; in the child they
    could never close, and :func:`reset` would refuse to run)."""
    _registry.reset()
    _tracer.abandon()


# ----------------------------------------------------------------------
# Recording helpers -- each is a no-op after one flag check when disabled.
# ----------------------------------------------------------------------


def span(name: str):
    """Time a stage: ``with telemetry.span("align"): ...``.  Returns a
    shared do-nothing context manager while telemetry is disabled."""
    if not _enabled:
        return _NOOP_SPAN
    return _tracer.span(name)


def count(name: str, n: int = 1) -> None:
    """Increment counter ``name`` by ``n``."""
    if _enabled:
        _registry.counter(name).inc(n)


def add_counters(values: "dict[str, int]", prefix: str = "") -> None:
    """Bulk-increment counters, skipping zero deltas.  This is the flush
    path for engine/stat structs: hot loops keep counting into plain
    attributes and drivers publish the per-read delta here."""
    if not _enabled:
        return
    for name, value in values.items():
        if value:
            _registry.counter(prefix + name).inc(value)


def set_gauge(name: str, value: float) -> None:
    if _enabled:
        _registry.gauge(name).set(value)


def observe(name: str, value: float,
            edges: "tuple[float, ...] | None" = None) -> None:
    """Record ``value`` into histogram ``name`` (bucket edges fixed at
    first use)."""
    if _enabled:
        _registry.histogram(name, edges).observe(value)


def snapshot() -> dict:
    """Plain-data copy of everything recorded so far (JSON-ready)."""
    data = _registry.snapshot()
    data["spans"] = _tracer.snapshot()
    return data


def merge_snapshot(data: dict, order: "int | None" = None) -> None:
    """Fold a snapshot produced elsewhere -- typically by a
    :mod:`repro.parallel` worker process -- into the live registry and
    tracer: counters and histograms add, span aggregates merge per path,
    gauges resolve by ``order`` (the snapshot's batch submission index;
    highest order wins, so merged gauges are deterministic under
    out-of-order worker completion) or last-write-wins when ``order`` is
    omitted.  A no-op while telemetry is disabled, so schedulers can
    call it unconditionally."""
    if not _enabled:
        return
    _registry.merge_snapshot(data, order=order)
    _tracer.merge_snapshot(data.get("spans", {}))
