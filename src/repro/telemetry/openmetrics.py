"""OpenMetrics text exposition for telemetry snapshots.

:func:`render_openmetrics` turns the plain-dict snapshot produced by
:func:`repro.telemetry.snapshot` into the OpenMetrics 1.0 text format
(the Prometheus exposition superset), so a run's metrics can be scraped,
pushed to a Pushgateway, or diffed with standard tooling:

* counters  -> ``<ns>_<name>_total``;
* gauges    -> ``<ns>_<name>``;
* histograms -> cumulative ``_bucket{le="..."}`` series plus ``_sum`` /
  ``_count``, with per-bucket **exemplars** (``# {read_id="r17"} 3.2``)
  carried over from :meth:`repro.telemetry.metrics.Histogram.
  attach_exemplar`;
* span aggregates -> ``<ns>_span_seconds_total`` / ``_calls_total``
  labelled by span path.

:func:`parse_openmetrics` is the matching *strict* validator -- stdlib
only, used by the tests and the CI observability job to prove the
exported text is well-formed (metadata before samples, family/sample
name agreement, cumulative non-decreasing buckets, a ``+Inf`` bucket
equal to ``_count``, exemplars only where the spec allows them, and the
mandatory ``# EOF`` terminator).
"""

from __future__ import annotations

import math
import re

#: Default metric namespace (the conventional "job prefix").
NAMESPACE = "ert"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_METADATA = re.compile(
    r"# (TYPE|HELP|UNIT) ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$")
_SAMPLE = re.compile(
    r"([a-zA-Z_:][a-zA-Z0-9_:]*)"          # sample name
    r"(\{[^{}]*\})?"                        # optional label set
    r" ([+-]?(?:Inf|[0-9.eE+-]+)|NaN)"      # value
    r"(?: (-?[0-9.eE+-]+))?"                # optional timestamp
    r"(?: # (\{[^{}]*\}) ([+-]?(?:Inf|[0-9.eE+-]+)|NaN)"
    r"(?: (-?[0-9.eE+-]+))?)?$")            # optional exemplar
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: Sample-name suffixes each family type may expose.
_ALLOWED_SUFFIXES = {
    "counter": ("_total", "_created"),
    "gauge": ("",),
    "histogram": ("_bucket", "_count", "_sum", "_created"),
}


def metric_name(name: str, namespace: str = NAMESPACE) -> str:
    """Map a dotted registry name to a legal OpenMetrics family name:
    ``seeding.nodes_visited`` -> ``ert_seeding_nodes_visited``."""
    flat = "".join(ch if ch.isalnum() else "_" for ch in name.lower())
    flat = re.sub(r"_+", "_", flat).strip("_")
    family = f"{namespace}_{flat}" if namespace else flat
    if not _NAME_OK.match(family):
        raise ValueError(f"cannot form a metric name from {name!r}")
    return family


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels(pairs: "dict[str, str]") -> str:
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape_label(str(value))}"'
                    for key, value in pairs.items())
    return "{" + body + "}"


def _num(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _exemplar_suffix(exemplar: "dict | None") -> str:
    if not exemplar:
        return ""
    return (f" # {_labels(exemplar.get('labels', {}))}"
            f" {_num(exemplar['value'])}")


def render_openmetrics(snapshot: dict,
                       namespace: str = NAMESPACE) -> str:
    """Render a telemetry snapshot as OpenMetrics text (ends with the
    mandatory ``# EOF\\n`` terminator)."""
    lines: "list[str]" = []

    for name, value in sorted(snapshot.get("counters", {}).items()):
        family = metric_name(name, namespace)
        lines.append(f"# TYPE {family} counter")
        lines.append(f"# HELP {family} repro counter {name}")
        lines.append(f"{family}_total {_num(value)}")

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        family = metric_name(name, namespace)
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"# HELP {family} repro gauge {name}")
        lines.append(f"{family} {_num(value)}")

    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        family = metric_name(name, namespace)
        lines.append(f"# TYPE {family} histogram")
        lines.append(f"# HELP {family} repro histogram {name}")
        edges = list(hist["edges"])
        counts = list(hist["counts"])
        exemplars = {int(k): v
                     for k, v in hist.get("exemplars", {}).items()}
        cumulative = 0
        for i, edge in enumerate(edges):
            cumulative += counts[i]
            lines.append(
                f'{family}_bucket{{le="{_num(edge)}"}} {cumulative}'
                + _exemplar_suffix(exemplars.get(i)))
        total = cumulative + counts[len(edges)]
        lines.append(f'{family}_bucket{{le="+Inf"}} {total}'
                     + _exemplar_suffix(exemplars.get(len(edges))))
        lines.append(f"{family}_count {total}")
        lines.append(f"{family}_sum {_num(hist['total'])}")

    spans = snapshot.get("spans", {})
    if spans:
        seconds = metric_name("span.seconds", namespace)
        calls = metric_name("span.calls", namespace)
        lines.append(f"# TYPE {seconds} counter")
        lines.append(f"# HELP {seconds} total wall seconds per span path")
        for path in sorted(spans):
            lines.append(f'{seconds}_total{{path="{_escape_label(path)}"}}'
                         f" {_num(spans[path]['total_s'])}")
        lines.append(f"# TYPE {calls} counter")
        lines.append(f"# HELP {calls} total calls per span path")
        for path in sorted(spans):
            lines.append(f'{calls}_total{{path="{_escape_label(path)}"}}'
                         f" {_num(spans[path]['count'])}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Strict validation / parsing
# ----------------------------------------------------------------------


class OpenMetricsParseError(ValueError):
    """Raised by :func:`parse_openmetrics` with the offending line."""

    def __init__(self, lineno: int, line: str, reason: str) -> None:
        super().__init__(f"line {lineno}: {reason}: {line!r}")
        self.lineno = lineno
        self.line = line
        self.reason = reason


def _parse_labels(text: "str | None") -> "dict[str, str]":
    if not text:
        return {}
    body = text[1:-1]
    if not body:
        return {}
    labels: "dict[str, str]" = {}
    pos = 0
    while pos < len(body):
        match = _LABEL.match(body, pos)
        if match is None:
            raise ValueError(f"malformed label set {text!r}")
        labels[match.group(1)] = match.group(2)
        pos = match.end()
        if pos < len(body):
            if body[pos] != ",":
                raise ValueError(f"malformed label set {text!r}")
            pos += 1
    return labels


def _family_for(sample: str,
                families: "dict[str, dict]") -> "tuple[str, str] | None":
    """Resolve a sample name to (family, suffix); longest family wins so
    ``x_bucket`` belongs to histogram ``x`` even if a family ``x_b``
    exists."""
    best: "tuple[str, str] | None" = None
    for family, info in families.items():
        for suffix in _ALLOWED_SUFFIXES[info["type"]]:
            if sample == family + suffix:
                if best is None or len(family) > len(best[0]):
                    best = (family, suffix)
    return best


def parse_openmetrics(text: str) -> dict:
    """Parse and strictly validate OpenMetrics text.

    Returns ``{"families": {name: {"type", "help", "samples": [
    {"name", "labels", "value", "exemplar"}]}}}``.  Raises
    :class:`OpenMetricsParseError` on any structural violation.
    """
    if not text.endswith("\n"):
        raise OpenMetricsParseError(0, "", "text must end with a newline")
    lines = text.split("\n")[:-1]
    if not lines or lines[-1] != "# EOF":
        raise OpenMetricsParseError(len(lines), lines[-1] if lines else "",
                                    "missing terminal # EOF line")
    families: "dict[str, dict]" = {}
    current: "str | None" = None
    for lineno, line in enumerate(lines[:-1], start=1):
        if not line:
            raise OpenMetricsParseError(lineno, line, "blank line")
        if line.startswith("#"):
            meta = _METADATA.match(line)
            if meta is None:
                raise OpenMetricsParseError(
                    lineno, line, "malformed comment (only TYPE/HELP/UNIT "
                    "metadata comments are allowed)")
            kind, family, payload = meta.groups()
            if kind == "TYPE":
                if payload not in _ALLOWED_SUFFIXES:
                    raise OpenMetricsParseError(
                        lineno, line, f"unsupported type {payload!r}")
                if family in families:
                    raise OpenMetricsParseError(
                        lineno, line, f"duplicate TYPE for {family}")
                families[family] = {"type": payload, "help": None,
                                    "samples": []}
                current = family
            else:
                if family not in families or family != current:
                    raise OpenMetricsParseError(
                        lineno, line,
                        f"{kind} for {family} outside its TYPE block")
                if kind == "HELP":
                    families[family]["help"] = payload
            continue
        sample = _SAMPLE.match(line)
        if sample is None:
            raise OpenMetricsParseError(lineno, line, "malformed sample")
        name, labeltext, value, _ts, ex_labels, ex_value, _ex_ts = \
            sample.groups()
        resolved = _family_for(name, families)
        if resolved is None:
            raise OpenMetricsParseError(
                lineno, line, f"sample {name} has no preceding TYPE "
                f"declaration (or an illegal suffix for its family type)")
        family, suffix = resolved
        if family != current:
            raise OpenMetricsParseError(
                lineno, line, f"sample for {family} is interleaved with "
                f"family {current}")
        try:
            labels = _parse_labels(labeltext)
        except ValueError as exc:
            raise OpenMetricsParseError(lineno, line, str(exc)) from exc
        if ex_labels is not None and suffix not in ("_bucket", "_total"):
            raise OpenMetricsParseError(
                lineno, line, "exemplars are only allowed on _bucket and "
                "_total samples")
        ftype = families[family]["type"]
        if ftype == "histogram" and suffix == "_bucket" and "le" not in labels:
            raise OpenMetricsParseError(
                lineno, line, "histogram _bucket sample is missing its "
                "le label")
        exemplar = None
        if ex_labels is not None:
            try:
                exemplar = {"labels": _parse_labels(ex_labels),
                            "value": float(ex_value)}
            except ValueError as exc:
                raise OpenMetricsParseError(lineno, line,
                                            str(exc)) from exc
        families[family]["samples"].append(
            {"name": name, "labels": labels, "value": float(value),
             "exemplar": exemplar})
    _validate_histograms(families)
    return {"families": families}


def _validate_histograms(families: "dict[str, dict]") -> None:
    for family, info in families.items():
        if info["type"] != "histogram":
            continue
        buckets = [s for s in info["samples"]
                   if s["name"] == family + "_bucket"]
        counts = [s for s in info["samples"]
                  if s["name"] == family + "_count"]
        if not buckets:
            raise OpenMetricsParseError(
                0, family, "histogram exposes no _bucket samples")
        values = [b["value"] for b in buckets]
        if any(b > a for a, b in zip(values[1:], values)):
            raise OpenMetricsParseError(
                0, family, "histogram buckets are not cumulative "
                "non-decreasing")
        if buckets[-1]["labels"].get("le") != "+Inf":
            raise OpenMetricsParseError(
                0, family, "histogram is missing its +Inf bucket")
        if counts and counts[0]["value"] != buckets[-1]["value"]:
            raise OpenMetricsParseError(
                0, family, "_count disagrees with the +Inf bucket")
