"""Span-based wall-clock tracing with nesting and exclusive time.

A span measures one stage of the pipeline::

    with tracer.span("align"):
        with tracer.span("seed"):
            ...

Spans aggregate by *path*: the example records ``align`` and
``align/seed``.  For every path the tracer keeps call count, total
(inclusive) seconds, exclusive seconds (total minus time spent in child
spans), and min/max per call -- which is exactly what a per-stage profile
table needs, and lets the report verify that children sum consistently
with their parent's wall-clock.

The tracer takes an injectable ``clock`` so tests can drive it
deterministically.  The zero-overhead-when-disabled guarantee is *not*
implemented here: :func:`repro.telemetry.span` returns a shared no-op
context manager when telemetry is off, and this module is only reached
when it is on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass
class SpanStat:
    """Aggregated timings for one span path."""

    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    min_s: float = 0.0
    max_s: float = 0.0

    def add(self, elapsed: float, child_s: float) -> None:
        if self.count == 0 or elapsed < self.min_s:
            self.min_s = elapsed
        if elapsed > self.max_s:
            self.max_s = elapsed
        self.count += 1
        self.total_s += elapsed
        self.self_s += elapsed - child_s

    def merge(self, data: dict) -> None:
        """Fold another :meth:`as_dict` aggregate for the same path into
        this one (cross-process aggregation for parallel workers)."""
        if data["count"] == 0:
            return
        if self.count == 0 or data["min_s"] < self.min_s:
            self.min_s = data["min_s"]
        if data["max_s"] > self.max_s:
            self.max_s = data["max_s"]
        self.count += data["count"]
        self.total_s += data["total_s"]
        self.self_s += data["self_s"]

    def as_dict(self) -> dict:
        return {"count": self.count, "total_s": self.total_s,
                "self_s": self.self_s, "min_s": self.min_s,
                "max_s": self.max_s}


class _Span:
    """One live span (a context manager tied to its tracer's stack)."""

    __slots__ = ("tracer", "name", "path", "start", "child_s")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self.tracer = tracer
        self.name = name
        self.path = name
        self.start = 0.0
        self.child_s = 0.0

    def __enter__(self) -> "_Span":
        tracer = self.tracer
        if tracer._stack:
            self.path = f"{tracer._stack[-1].path}/{self.name}"
        tracer._stack.append(self)
        events = tracer.events
        if events is not None and events.recording:
            events.begin(self.name)
        self.start = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self.tracer
        elapsed = tracer._clock() - self.start
        events = tracer.events
        if events is not None and events.recording:
            events.end(self.name)
        tracer._stack.pop()
        if tracer._stack:
            tracer._stack[-1].child_s += elapsed
        stat = tracer.stats.get(self.path)
        if stat is None:
            stat = tracer.stats[self.path] = SpanStat()
        stat.add(elapsed, self.child_s)


class Tracer:
    """Aggregating span tracer (see module docstring)."""

    def __init__(self, clock=time.perf_counter, events=None) -> None:
        self.stats: "dict[str, SpanStat]" = {}
        self._stack: "list[_Span]" = []
        self._clock = clock
        #: Optional :class:`repro.telemetry.events.TimelineRecorder`:
        #: when attached and recording, every span also emits timeline
        #: B/E events (the bridge behind ``--trace-out``).  Local tracers
        #: (batch-scoped aggregation) leave this ``None``.
        self.events = events

    def span(self, name: str) -> _Span:
        """Context manager timing one stage; nests under the active span."""
        return _Span(self, name)

    @property
    def depth(self) -> int:
        return len(self._stack)

    @property
    def is_empty(self) -> bool:
        return not self.stats

    def reset(self) -> None:
        if self._stack:
            raise RuntimeError(
                f"cannot reset the tracer inside an open span "
                f"({self._stack[-1].path!r})")
        self.stats.clear()

    def abandon(self) -> None:
        """Drop all aggregates *and* any open spans without closing them.

        For freshly forked worker processes only: a child forked while
        the parent sat inside an open span inherits that span on the
        stack, and the parent -- not the child -- will close it.
        :meth:`reset`'s open-span guard is correct in-process but would
        make every such worker die in its initializer.
        """
        self._stack.clear()
        self.stats.clear()

    def merge_snapshot(self, data: dict) -> None:
        """Fold a :meth:`snapshot` from another tracer (typically a
        :mod:`repro.parallel` worker process) into the live aggregates,
        path by path."""
        for path, stat_data in data.items():
            stat = self.stats.get(path)
            if stat is None:
                stat = self.stats[path] = SpanStat()
            stat.merge(stat_data)

    def snapshot(self) -> dict:
        """Plain-data copy of the per-path aggregates, sorted by path so
        a parent always precedes its children."""
        return {path: stat.as_dict()
                for path, stat in sorted(self.stats.items())}


class NoopSpan:
    """The disabled-mode span: enter/exit do nothing.  A single shared
    instance is handed out for every ``span()`` call while telemetry is
    off, so the disabled cost is one flag check and two empty calls."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None
