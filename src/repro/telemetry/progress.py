"""Live run reporting: a rate-limited, TTY-aware stderr heartbeat.

Long ``seed``/``align`` runs were previously silent until the final
summary line; with the batch scheduler in the loop there is real
operational state worth surfacing as it happens -- reads completed,
instantaneous throughput, batches in flight, worker crashes survived,
and an ETA.  :class:`ProgressReporter` prints exactly that, under two
hard constraints:

* **Rate-limited.**  At most one heartbeat per ``min_interval_s``
  (default 0.5 s on a TTY, 10 s otherwise), however often the scheduler
  reports progress -- a 100k-read run does not emit 100k lines.
* **TTY-aware.**  On a terminal the heartbeat redraws one line with
  ``\\r`` and clears itself when done; piped to a file it degrades to
  plain, sparse, newline-terminated lines (or stays silent unless
  forced).  Machine consumers should use ``--trace-out`` /
  ``--metrics-out``, never parse the heartbeat.

This module is the *only* place in ``src/repro/`` (outside the CLI)
allowed to write progress to stderr -- checker rule ERT010 enforces
that; all other status must flow through telemetry events/metrics.

The reporter is deliberately decoupled from the telemetry enable flag:
``--progress`` works on runs that record no metrics at all.
"""

from __future__ import annotations

import sys
import time

#: Heartbeat floor when the stream is not a terminal: sparse lines, so a
#: captured CI log stays readable.
NON_TTY_INTERVAL_S = 10.0


class ProgressReporter:
    """Streams a heartbeat for one batched run.

    The scheduler calls :meth:`advance` as batches merge,
    :meth:`set_inflight` as submissions move, and :meth:`crash` when a
    worker dies; :meth:`finish` prints the terminal summary and restores
    the line.  All methods are cheap no-ops when the reporter is
    disabled (non-TTY stream without ``force``).
    """

    def __init__(self, total: int, label: str = "reads",
                 stream=None, min_interval_s: float = 0.5,
                 clock=time.monotonic, force: bool = False) -> None:
        self.total = max(0, int(total))
        self.label = label
        self.stream = sys.stderr if stream is None else stream
        try:
            self._tty = bool(self.stream.isatty())
        except (AttributeError, ValueError):
            self._tty = False
        self.enabled = force or self._tty
        self.min_interval_s = (min_interval_s if self._tty
                               else max(min_interval_s, NON_TTY_INTERVAL_S))
        self._clock = clock
        self._start = clock()
        self._last_emit = float("-inf")
        self._last_line_len = 0
        self.done = 0
        self.inflight = 0
        self.crashes = 0
        self.heartbeats = 0

    # -- scheduler-facing hooks ----------------------------------------

    def advance(self, n: int) -> None:
        """``n`` more units (reads) fully merged into the output."""
        self.done += n
        self._maybe_emit()

    def set_inflight(self, n: int) -> None:
        self.inflight = n

    def crash(self) -> None:
        """A worker died; surface it immediately (crashes are rare and
        operationally urgent, so they bypass the rate limit)."""
        self.crashes += 1
        self._maybe_emit(urgent=True)

    def finish(self) -> None:
        """Final summary; on a TTY this replaces the heartbeat line."""
        if not self.enabled:
            return
        elapsed = max(self._clock() - self._start, 1e-9)
        line = (f"{self.label}: {self.done:,}/{self.total:,} done in "
                f"{elapsed:.1f}s ({self.done / elapsed:,.0f}/s)"
                + (f", {self.crashes} worker crash(es) survived"
                   if self.crashes else ""))
        self._write_line(line, final=True)

    # -- rendering -----------------------------------------------------

    def render(self) -> str:
        """The current heartbeat line (exposed for tests)."""
        elapsed = max(self._clock() - self._start, 1e-9)
        rate = self.done / elapsed
        if self.total and 0 < self.done < self.total and rate > 0:
            eta = (self.total - self.done) / rate
            eta_part = f" eta {eta:,.0f}s"
        else:
            eta_part = ""
        pct = (f" ({100.0 * self.done / self.total:.0f}%)"
               if self.total else "")
        crash_part = (f" crashes {self.crashes}" if self.crashes else "")
        return (f"{self.label}: {self.done:,}/{self.total:,}{pct} "
                f"{rate:,.0f}/s inflight {self.inflight}"
                f"{eta_part}{crash_part}")

    def _maybe_emit(self, urgent: bool = False) -> None:
        if not self.enabled:
            return
        now = self._clock()
        if not urgent and now - self._last_emit < self.min_interval_s:
            return
        self._last_emit = now
        self.heartbeats += 1
        self._write_line(self.render())

    def _write_line(self, line: str, final: bool = False) -> None:
        if self._tty:
            # Redraw in place, blanking any longer previous line.
            pad = " " * max(0, self._last_line_len - len(line))
            self.stream.write("\r" + line + pad)
            if final:
                self.stream.write("\n")
            self._last_line_len = len(line)
        else:
            self.stream.write(line + "\n")
        try:
            self.stream.flush()
        except (AttributeError, ValueError, OSError):
            pass
