"""Ring-buffered timeline events and the Chrome/Perfetto trace export.

The span tracer (:mod:`repro.telemetry.spans`) answers *how much* time
each stage took in aggregate; this module answers *when*: it records a
bounded stream of timestamped events -- span begin/end pairs, point
instants (a batch submission, a pool respawn), and counter samples
(batches in flight) -- that exports as Chrome ``trace_event`` JSON,
loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
That is the time-resolved view the paper's evaluation is built on:
scheduler stalls, crash-recovery gaps and per-worker occupancy are
visible as tracks instead of being averaged away.

Design constraints, in order:

* **Zero cost while off.**  Every recording method returns after a
  single ``self.recording`` check; nothing is allocated.  Like the rest
  of telemetry, recording is opt-in (``--trace-out`` or
  :func:`repro.telemetry.start_recording`).
* **Bounded memory.**  Events land in a fixed-capacity ring; when it
  wraps, the *oldest* events are overwritten and counted in
  ``dropped``.  The export repairs the seam: an ``E`` whose ``B`` was
  overwritten is discarded, and a ``B`` left open at the end of the
  stream is closed with a synthetic ``E``, so the emitted trace always
  has matched begin/end pairs.
* **Cross-process mergeable.**  Each event carries a monotonic
  ``perf_counter_ns`` timestamp; a recorder is pinned to the pid that
  created it.  Worker recorders are started on the *parent's* epoch
  (shipped through the pool initializer), drained per batch into plain
  JSON-able tracks, and absorbed into the parent recorder -- on Linux
  and macOS the monotonic clock is system-wide, so worker events align
  with parent events on one timeline without any translation.

An event is the 4-tuple ``(ph, ts_ns, name, arg)`` where ``ph`` is the
Chrome phase letter (``B``/``E``/``i``/``C``), ``ts_ns`` the raw
monotonic timestamp, and ``arg`` an optional JSON-able payload (the
sampled value for counter events).
"""

from __future__ import annotations

import os
import time

#: Chrome trace_event phase letters used by the recorder.
PH_BEGIN = "B"
PH_END = "E"
PH_INSTANT = "i"
PH_COUNTER = "C"

#: Default ring capacity (events).  ~64k events cover hundreds of
#: thousands of reads at batch granularity; per-read span events from a
#: long run wrap the ring and keep the most recent window, which is the
#: useful one for "what was the run doing when it slowed down".
DEFAULT_CAPACITY = 1 << 16


class TimelineRecorder:
    """A bounded, per-process timeline event buffer.

    One recorder lives in each process (the module-level one in
    :mod:`repro.telemetry`); worker processes drain theirs into plain
    *tracks* that the parent absorbs.  The ``clock`` is injectable for
    deterministic tests and must return integer nanoseconds.
    """

    __slots__ = ("capacity", "recording", "pid", "label", "epoch_ns",
                 "dropped", "_buf", "_next", "_wrapped", "_clock",
                 "_foreign")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 clock=time.perf_counter_ns) -> None:
        if capacity < 1:
            raise ValueError("recorder capacity must be at least 1")
        self.capacity = capacity
        self.recording = False
        self.pid = os.getpid()
        self.label = "main"
        #: Trace epoch: timestamps export relative to this instant.
        self.epoch_ns = 0
        #: Events overwritten by ring wrap-around since ``start``.
        self.dropped = 0
        self._buf: "list[tuple]" = []
        self._next = 0
        self._wrapped = False
        self._clock = clock
        #: Tracks absorbed from other processes (workers), untouched by
        #: ``clear`` of the local ring only via :meth:`clear`.
        self._foreign: "list[dict]" = []

    # -- lifecycle -----------------------------------------------------

    def start(self, epoch_ns: "int | None" = None) -> int:
        """Clear the buffer and begin recording.  ``epoch_ns`` anchors
        the trace timeline; workers pass the parent's epoch so their
        events align, the parent lets it default to *now*.  Returns the
        epoch in use."""
        self.clear()
        self.epoch_ns = self._clock() if epoch_ns is None else epoch_ns
        self.recording = True
        return self.epoch_ns

    def stop(self) -> None:
        """Stop recording; buffered events are kept for export."""
        self.recording = False

    def clear(self) -> None:
        """Drop every buffered event (own ring and absorbed tracks)."""
        self._buf = []
        self._next = 0
        self._wrapped = False
        self.dropped = 0
        self._foreign = []

    def fork_reset(self) -> None:
        """Re-home the recorder in a freshly forked worker: adopt the
        child pid, drop every inherited event, and stop recording (the
        pool initializer restarts it on the parent's epoch when timeline
        capture is on)."""
        self.pid = os.getpid()
        self.label = f"worker-{self.pid}"
        self.recording = False
        self.clear()

    # -- recording (hot path: one flag check when off) -----------------

    def begin(self, name: str, arg: "object | None" = None) -> None:
        if not self.recording:
            return
        self._append((PH_BEGIN, self._clock(), name, arg))

    def end(self, name: str) -> None:
        if not self.recording:
            return
        self._append((PH_END, self._clock(), name, None))

    def instant(self, name: str, arg: "object | None" = None) -> None:
        if not self.recording:
            return
        self._append((PH_INSTANT, self._clock(), name, arg))

    def counter(self, name: str, value: float) -> None:
        if not self.recording:
            return
        self._append((PH_COUNTER, self._clock(), name, value))

    def scope(self, name: str, arg: "object | None" = None) -> "_EventScope":
        """Context manager emitting a ``B``/``E`` pair around its body
        (cheap no-ops while not recording).  This is how non-span code
        (pool initializers, the scheduler merge loop) lands durations on
        the timeline without involving the span tracer."""
        return _EventScope(self, name, arg)

    def _append(self, event: tuple) -> None:
        if self._wrapped:
            self._buf[self._next] = event
            self.dropped += 1
        else:
            self._buf.append(event)
        self._next += 1
        if self._next == self.capacity:
            self._next = 0
            self._wrapped = True

    # -- draining and merging ------------------------------------------

    def __len__(self) -> int:
        return len(self._buf)

    def events(self) -> "list[tuple]":
        """Own-ring events in chronological (insertion) order."""
        if not self._wrapped:
            return list(self._buf)
        return self._buf[self._next:] + self._buf[:self._next]

    def drain_track(self) -> dict:
        """Snapshot the own ring as a plain JSON-able *track* and clear
        it (recording state is untouched).  This is what a worker ships
        back per batch."""
        track = {"pid": self.pid, "label": self.label,
                 "events": self.events(), "dropped": self.dropped}
        self._buf = []
        self._next = 0
        self._wrapped = False
        self.dropped = 0
        return track

    def absorb(self, track: "dict | None") -> None:
        """Fold a track drained in another process into this recorder;
        it rides along to the export untouched.  ``None`` and empty
        tracks are ignored so schedulers can call this unconditionally."""
        if track and track.get("events"):
            self._foreign.append(track)

    def tracks(self) -> "list[dict]":
        """Every track this recorder knows: its own ring first, then the
        absorbed worker tracks."""
        own = {"pid": self.pid, "label": self.label,
               "events": self.events(), "dropped": self.dropped}
        return [own] + list(self._foreign)


class _EventScope:
    """B/E pair emitter for :meth:`TimelineRecorder.scope`."""

    __slots__ = ("recorder", "name", "arg")

    def __init__(self, recorder: TimelineRecorder, name: str,
                 arg: "object | None") -> None:
        self.recorder = recorder
        self.name = name
        self.arg = arg

    def __enter__(self) -> "_EventScope":
        self.recorder.begin(self.name, self.arg)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.recorder.end(self.name)


# ----------------------------------------------------------------------
# Chrome trace_event conversion
# ----------------------------------------------------------------------


def _us(ts_ns: int, epoch_ns: int) -> float:
    """Monotonic ns -> trace microseconds relative to the epoch."""
    return (ts_ns - epoch_ns) / 1000.0


def _repair_pairs(events: "list[tuple]") -> "list[tuple]":
    """Enforce matched ``B``/``E`` pairs within one track.

    Ring wrap-around drops the *oldest* events, which are exactly the
    outermost ``B``'s; their orphaned ``E``'s are discarded here.  A
    ``B`` still open at the end of the stream (an in-flight span at
    export time, or an ``E`` lost to a worker crash) is closed with a
    synthetic ``E`` at the last seen timestamp, so every emitted track
    nests cleanly.
    """
    out: "list[tuple]" = []
    stack: "list[int]" = []  # indices into out of open B events
    last_ts = 0
    for event in events:
        ph, ts_ns = event[0], event[1]
        last_ts = max(last_ts, ts_ns)
        if ph == PH_BEGIN:
            stack.append(len(out))
            out.append(event)
        elif ph == PH_END:
            if stack and out[stack[-1]][2] == event[2]:
                stack.pop()
                out.append(event)
            # else: the matching B was overwritten -- drop the orphan E.
        else:
            out.append(event)
    for _ in range(len(stack)):
        open_b = out[stack.pop()]
        out.append((PH_END, last_ts, open_b[2], None))
    return out


def to_trace_events(tracks: "list[dict]", epoch_ns: int) -> "list[dict]":
    """Convert recorder tracks to Chrome ``trace_event`` dicts, sorted
    by timestamp, with one ``process_name`` metadata record per pid.

    Every event carries ``pid`` (the recording process) and ``tid`` 0 --
    the reproduction is single-threaded per process, so Perfetto renders
    one row per process, which is the per-worker occupancy view.
    """
    out: "list[dict]" = []
    seen_pids: "dict[int, str]" = {}
    for track in tracks:
        pid = int(track.get("pid", 0))
        label = str(track.get("label", f"pid-{pid}"))
        seen_pids.setdefault(pid, label)
        for event in _repair_pairs([tuple(e) for e in track["events"]]):
            ph, ts_ns, name, arg = event
            record: "dict[str, object]" = {
                "name": name, "ph": ph, "ts": _us(int(ts_ns), epoch_ns),
                "pid": pid, "tid": 0, "cat": "repro",
            }
            if ph == PH_INSTANT:
                record["s"] = "t"
                if arg is not None:
                    record["args"] = arg if isinstance(arg, dict) \
                        else {"value": arg}
            elif ph == PH_COUNTER:
                record["args"] = {"value": arg}
            elif ph == PH_BEGIN and arg is not None:
                record["args"] = arg if isinstance(arg, dict) \
                    else {"value": arg}
            out.append(record)
    # Stable sort on ts only: events at equal timestamps keep their
    # per-track insertion order, which is what preserves B/E nesting
    # within a pid when a span opens and closes in the same tick.
    out.sort(key=lambda r: r["ts"])
    meta = [{"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": label}}
            for pid, label in sorted(seen_pids.items())]
    return meta + out


def trace_document(tracks: "list[dict]", epoch_ns: int) -> dict:
    """The full JSON-object form of a trace (what ``--trace-out``
    writes): Chrome/Perfetto accept either a bare event array or this
    object form; the object form lets us attach metadata."""
    return {
        "traceEvents": to_trace_events(tracks, epoch_ns),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "ert-repro telemetry timeline",
            "dropped_events": sum(int(t.get("dropped", 0))
                                  for t in tracks),
        },
    }
