"""Banded affine Smith-Waterman with full traceback (CIGAR production).

The score-only kernel in :mod:`repro.extend.smith_waterman` models the
hardware cost; alignment *output* needs the operation string.  This
variant keeps banded pointer matrices for the three affine states and
walks them back from the best cell, emitting a BWA-style CIGAR with
soft-clips for the unaligned read ends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.extend.smith_waterman import NEG_INF, ScoringScheme

# Traceback codes for the H matrix.
_STOP, _DIAG, _FROM_E, _FROM_F = 0, 1, 2, 3


@dataclass(frozen=True)
class TracedAlignment:
    """A local alignment with its operation string.

    ``cigar`` is a list of ``(op, length)`` with ops in ``M=X I D S``
    (``M`` match, ``X`` mismatch, ``I`` insertion to the reference /
    extra query base, ``D`` deletion, ``S`` soft clip); query/target
    coordinates are 0-based half-open.
    """

    score: int
    query_start: int
    query_end: int
    target_start: int
    target_end: int
    cigar: "tuple[tuple[str, int], ...]"

    @property
    def is_aligned(self) -> bool:
        return self.score > 0

    def cigar_string(self) -> str:
        return "".join(f"{length}{op}" for op, length in self.cigar)


def _merge(ops: "list[tuple[str, int]]") -> "tuple[tuple[str, int], ...]":
    merged = []
    for op, length in ops:
        if length == 0:
            continue
        if merged and merged[-1][0] == op:
            merged[-1] = (op, merged[-1][1] + length)
        else:
            merged.append((op, length))
    return tuple(merged)


def banded_sw_traceback(query: np.ndarray, target: np.ndarray,
                        scheme: "ScoringScheme | None" = None,
                        band: int = 41) -> TracedAlignment:
    """Local alignment with CIGAR, banded like the score-only kernel."""
    scheme = scheme or ScoringScheme()
    if band < 1:
        raise ValueError("band must be at least 1")
    q = np.asarray(query, dtype=np.int16)
    t = np.asarray(target, dtype=np.int16)
    m, n = q.size, t.size
    if m == 0 or n == 0:
        return TracedAlignment(0, 0, 0, 0, 0,
                               _merge([("S", m)]) if m else ())
    half = band // 2
    width = 2 * half + 2

    h_prev = np.zeros(n + 1, dtype=np.int64)
    e_prev = np.full(n + 1, NEG_INF, dtype=np.int64)
    # Pointer matrices, band-relative: column j maps to j - (i - half).
    h_ptr = np.zeros((m + 1, width), dtype=np.int8)
    e_open = np.zeros((m + 1, width), dtype=bool)
    f_open = np.zeros((m + 1, width), dtype=bool)

    def rel(i, j):
        return j - (i - half)

    best = 0
    best_i = best_j = 0
    for i in range(1, m + 1):
        lo = max(1, i - half)
        hi = min(n, i + half)
        if lo > hi:
            break
        h_cur = np.zeros(n + 1, dtype=np.int64)
        e_cur = np.full(n + 1, NEG_INF, dtype=np.int64)
        f = NEG_INF
        f_was_open = False
        for j in range(lo, hi + 1):
            r = rel(i, j)
            if not 0 <= r < width:
                continue
            # E: gap in the query (consume target), vertical state.
            open_e = h_prev[j] + scheme.gap_open
            extend_e = e_prev[j] + scheme.gap_extend
            if open_e >= extend_e:
                e_cur[j] = open_e
                e_open[i][r] = True
            else:
                e_cur[j] = extend_e
                e_open[i][r] = False
            # F: gap in the target (consume query), horizontal state.
            open_f = h_cur[j - 1] + scheme.gap_open
            extend_f = f + scheme.gap_extend
            if open_f >= extend_f:
                f = open_f
                f_was_open = True
            else:
                f = extend_f
                f_was_open = False
            f_open[i][r] = f_was_open
            diag = h_prev[j - 1] + (scheme.match if t[j - 1] == q[i - 1]
                                    else scheme.mismatch)
            h = max(0, diag, int(e_cur[j]), f)
            h_cur[j] = h
            if h == 0:
                h_ptr[i][r] = _STOP
            elif h == diag:
                h_ptr[i][r] = _DIAG
            elif h == e_cur[j]:
                h_ptr[i][r] = _FROM_E
            else:
                h_ptr[i][r] = _FROM_F
            if h > best:
                best, best_i, best_j = int(h), i, j
        h_prev, e_prev = h_cur, e_cur

    if best == 0:
        return TracedAlignment(0, 0, 0, 0, 0, _merge([("S", m)]))

    # Walk back from the best cell.
    ops: "list[tuple[str, int]]" = []
    i, j = best_i, best_j
    state = "H"
    while i > 0 and j > 0:
        r = rel(i, j)
        if state == "H":
            ptr = h_ptr[i][r]
            if ptr == _STOP:
                break
            if ptr == _DIAG:
                ops.append(("M" if t[j - 1] == q[i - 1] else "X", 1))
                i -= 1
                j -= 1
            elif ptr == _FROM_E:
                state = "E"
            else:
                state = "F"
        elif state == "E":
            # E came from the previous row, same column: it consumed a
            # query base (an insertion relative to the reference).
            ops.append(("I", 1))
            if e_open[i][rel(i, j)]:
                state = "H"
            i -= 1
        else:  # F: same row, previous column: consumed a target base.
            ops.append(("D", 1))
            if f_open[i][rel(i, j)]:
                state = "H"
            j -= 1

    ops.reverse()
    query_start, target_start = i, j
    cigar = ([("S", query_start)] + ops + [("S", m - best_i)])
    return TracedAlignment(score=best, query_start=query_start,
                           query_end=best_i, target_start=target_start,
                           target_end=best_j, cigar=_merge(cigar))
