"""Banded affine Smith-Waterman with full traceback (CIGAR production).

The score-only kernel in :mod:`repro.extend.smith_waterman` models the
hardware cost; alignment *output* needs the operation string.  This
variant keeps banded pointer matrices for the three affine states and
walks them back from the best cell, emitting a BWA-style CIGAR with
soft-clips for the unaligned read ends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.extend.smith_waterman import NEG_INF, ScoringScheme, SwWorkspace

# Traceback codes for the H matrix.
_STOP, _DIAG, _FROM_E, _FROM_F = 0, 1, 2, 3


@dataclass(frozen=True)
class TracedAlignment:
    """A local alignment with its operation string.

    ``cigar`` is a list of ``(op, length)`` with ops in ``M=X I D S``
    (``M`` match, ``X`` mismatch, ``I`` insertion to the reference /
    extra query base, ``D`` deletion, ``S`` soft clip); query/target
    coordinates are 0-based half-open.
    """

    score: int
    query_start: int
    query_end: int
    target_start: int
    target_end: int
    cigar: "tuple[tuple[str, int], ...]"

    @property
    def is_aligned(self) -> bool:
        return self.score > 0

    def cigar_string(self) -> str:
        return "".join(f"{length}{op}" for op, length in self.cigar)


def _merge(ops: "list[tuple[str, int]]") -> "tuple[tuple[str, int], ...]":
    merged = []
    for op, length in ops:
        if length == 0:
            continue
        if merged and merged[-1][0] == op:
            merged[-1] = (op, merged[-1][1] + length)
        else:
            merged.append((op, length))
    return tuple(merged)


def banded_sw_traceback(query: np.ndarray, target: np.ndarray,
                        scheme: "ScoringScheme | None" = None,
                        band: int = 41,
                        workspace: "SwWorkspace | None" = None
                        ) -> TracedAlignment:
    """Local alignment with CIGAR, banded like the score-only kernel."""
    scheme = scheme or ScoringScheme()
    if band < 1:
        raise ValueError("band must be at least 1")
    q = np.asarray(query, dtype=np.int16)
    t = np.asarray(target, dtype=np.int16)
    m, n = q.size, t.size
    if m == 0 or n == 0:
        # Same unaligned shape as the best == 0 path below: a full
        # soft-clip, normalized through _merge (so m == 0 yields ()).
        return TracedAlignment(0, 0, 0, 0, 0, _merge([("S", m)]))
    half = band // 2
    width = 2 * half + 2

    # Two rotating H/E row pairs from the caller's workspace; refilling
    # them beats the fresh (n + 1) allocations the per-row loop used to
    # make (the same ERT014 reuse rule the score-only kernel follows).
    workspace = workspace or SwWorkspace()
    h_prev, e_prev, h_cur, e_cur = workspace.rows(n)
    h_prev[:] = 0
    e_prev[:] = NEG_INF
    # Pointer matrices, band-relative: column j maps to j - (i - half).
    h_ptr = np.zeros((m + 1, width), dtype=np.int8)
    e_open = np.zeros((m + 1, width), dtype=bool)
    f_open = np.zeros((m + 1, width), dtype=bool)

    def rel(i, j):
        return j - (i - half)

    best = 0
    best_i = best_j = 0
    for i in range(1, m + 1):
        lo = max(1, i - half)
        hi = min(n, i + half)
        if lo > hi:
            break
        # Within the band, rel(i, j) sweeps lo - (i - half) .. hi -
        # (i - half), always inside [0, width).  E (vertical) and the
        # diagonal term depend only on the previous row, so both are
        # one vector op; F (horizontal) chains through the current row
        # and stays in the scalar loop, on plain Python ints -- the
        # recurrences and tie-breaks are identical to the per-cell
        # form, only the arithmetic moved out of numpy scalar indexing.
        r_lo = rel(i, lo)
        span = hi - lo + 1
        open_e = h_prev[lo:hi + 1] + scheme.gap_open
        extend_e = e_prev[lo:hi + 1] + scheme.gap_extend
        e_row = np.maximum(open_e, extend_e)
        e_open[i, r_lo:r_lo + span] = open_e >= extend_e
        diag_row = h_prev[lo - 1:hi] + np.where(
            t[lo - 1:hi] == q[i - 1], scheme.match, scheme.mismatch)
        e_vals = e_row.tolist()
        diag_vals = diag_row.tolist()
        h_row = [0] * span
        ptr_row = [_STOP] * span
        f_row = [False] * span
        f = NEG_INF
        # h_cur[lo - 1] sits outside the band on this row, hence 0.
        h_left = 0
        for c in range(span):
            # F: gap in the target (consume query), horizontal state.
            open_f = h_left + scheme.gap_open
            extend_f = f + scheme.gap_extend
            if open_f >= extend_f:
                f = open_f
                f_row[c] = True
            else:
                f = extend_f
            e = e_vals[c]
            diag = diag_vals[c]
            h = max(0, diag, e, f)
            h_row[c] = h
            h_left = h
            if h == 0:
                pass
            elif h == diag:
                ptr_row[c] = _DIAG
            elif h == e:
                ptr_row[c] = _FROM_E
            else:
                ptr_row[c] = _FROM_F
            if h > best:
                best, best_i, best_j = h, i, lo + c
        f_open[i, r_lo:r_lo + span] = f_row
        h_ptr[i, r_lo:r_lo + span] = ptr_row
        h_cur[lo:hi + 1] = h_row
        e_cur[lo:hi + 1] = e_row
        # The next row reads at most one cell either side of this row's
        # filled span (lo' - 1 >= lo - 1 for the diagonal term, hi' <=
        # hi + 1 for E); pin those to the out-of-band boundary values so
        # the reused buffers never leak a stale cell into the band.
        h_cur[lo - 1] = 0
        e_cur[lo - 1] = NEG_INF
        if hi < n:
            h_cur[hi + 1] = 0
            e_cur[hi + 1] = NEG_INF
        h_prev, h_cur = h_cur, h_prev
        e_prev, e_cur = e_cur, e_prev

    if best == 0:
        return TracedAlignment(0, 0, 0, 0, 0, _merge([("S", m)]))
    return walk_back(q, t, h_ptr, e_open, f_open, best, best_i, best_j,
                     half, m)


def walk_back(q: np.ndarray, t: np.ndarray, h_ptr: np.ndarray,
              e_open: np.ndarray, f_open: np.ndarray, best: int,
              best_i: int, best_j: int, half: int, m: int) \
        -> TracedAlignment:
    """Walk band-relative pointer planes back from the best cell.

    Shared by the scalar kernel above and the batched wavefront kernel
    (:func:`repro.kernels.traceback.batched_sw_traceback`), which fills
    per-lane planes of the same layout -- sharing the walk is what makes
    their CIGARs identical by construction.
    """
    ops: "list[tuple[str, int]]" = []
    i, j = best_i, best_j
    state = "H"
    while i > 0 and j > 0:
        r = j - (i - half)
        if state == "H":
            ptr = h_ptr[i][r]
            if ptr == _STOP:
                break
            if ptr == _DIAG:
                ops.append(("M" if t[j - 1] == q[i - 1] else "X", 1))
                i -= 1
                j -= 1
            elif ptr == _FROM_E:
                state = "E"
            else:
                state = "F"
        elif state == "E":
            # E came from the previous row, same column: it consumed a
            # query base (an insertion relative to the reference).
            ops.append(("I", 1))
            if e_open[i][r]:
                state = "H"
            i -= 1
        else:  # F: same row, previous column: consumed a target base.
            ops.append(("D", 1))
            if f_open[i][r]:
                state = "H"
            j -= 1

    ops.reverse()
    query_start, target_start = i, j
    cigar = ([("S", query_start)] + ops + [("S", m - best_i)])
    return TracedAlignment(score=best, query_start=query_start,
                           query_end=best_i, target_start=target_start,
                           target_end=best_j, cigar=_merge(cigar))
