"""Minimal SAM output for the alignment pipeline.

Produces spec-conformant single-end records: header (``@HD``/``@SQ``/
``@PG``), FLAG with the reverse-strand bit, 1-based POS, CIGAR from the
traceback kernel, and a simple MAPQ model (higher when the best chain
dominates the runner-up).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sequence.reference import Reference, Strand
from repro.sequence.alphabet import revcomp

FLAG_UNMAPPED = 0x4
FLAG_REVERSE = 0x10


@dataclass(frozen=True)
class SamRecord:
    """One alignment line."""

    qname: str
    flag: int
    rname: str
    pos: int  # 1-based; 0 when unmapped
    mapq: int
    cigar: str
    seq: str
    qual: str
    tags: "tuple[str, ...]" = ()

    def to_line(self) -> str:
        fields = [self.qname, str(self.flag), self.rname, str(self.pos),
                  str(self.mapq), self.cigar or "*", "*", "0", "0",
                  self.seq, self.qual or "*"]
        fields.extend(self.tags)
        return "\t".join(fields)


def sam_header(reference: Reference,
               program: str = "repro-ert") -> "list[str]":
    return [
        "@HD\tVN:1.6\tSO:unknown",
        f"@SQ\tSN:{reference.name}\tLN:{len(reference)}",
        f"@PG\tID:{program}\tPN:{program}",
    ]


def unmapped_record(name: str, sequence: str, quality: str = "") -> SamRecord:
    return SamRecord(qname=name, flag=FLAG_UNMAPPED, rname="*", pos=0,
                     mapq=0, cigar="", seq=sequence, qual=quality)


def mapped_record(name: str, sequence: str, quality: str,
                  reference: Reference, strand: Strand, position: int,
                  cigar: str, score: int, mapq: int) -> SamRecord:
    flag = FLAG_REVERSE if strand is Strand.REVERSE else 0
    seq = revcomp(sequence) if strand is Strand.REVERSE else sequence
    qual = quality[::-1] if strand is Strand.REVERSE else quality
    return SamRecord(
        qname=name, flag=flag, rname=reference.name, pos=position + 1,
        mapq=mapq, cigar=cigar, seq=seq, qual=qual,
        tags=(f"AS:i:{score}",))


def mapq_from_scores(best: int, runner_up: int, read_len: int) -> int:
    """A simple uniqueness-based mapping quality in 0..60."""
    if best <= 0:
        return 0
    gap = max(0, best - max(runner_up, 0))
    return min(60, int(60 * gap / max(read_len, 1)))


def write_sam(path, reference: Reference, records) -> None:
    with open(path, "w") as handle:
        for line in sam_header(reference):
            handle.write(line + "\n")
        for record in records:
            handle.write(record.to_line() + "\n")
