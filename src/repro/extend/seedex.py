"""The SeedEx seed-extension accelerator model (paper §VI, Table VI).

The paper pairs the FPGA seeding accelerator with 8 SeedEx lanes, each
holding 3 banded Smith-Waterman units (41 PEs, band 41) and one
edit-distance unit.  A systolic banded unit computes one band row per
cycle, so one extension of a ``q``-base query costs about ``q + band``
cycles; the edit-distance unit clears near-perfect candidates in a single
pass at the same rate.  This model turns per-read extension workloads
into lane cycles and throughput.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SeedExConfig:
    """Lane provisioning (§VI: "8 seed-extension accelerator lanes ...
    3 banded Smith-Waterman units (each with 41 PEs, band-size=41) and
    1 edit-distance unit")."""

    lanes: int = 8
    sw_units_per_lane: int = 3
    edit_units_per_lane: int = 1
    band: int = 41
    clock_hz: float = 250e6
    pipeline_fill: int = 20

    def __post_init__(self) -> None:
        if self.lanes < 1 or self.sw_units_per_lane < 1:
            raise ValueError("at least one lane and one SW unit required")


@dataclass
class ExtensionWorkload:
    """Per-read extension demand measured from the functional pipeline."""

    sw_extensions: int = 0
    sw_rows_total: int = 0
    edit_checks: int = 0
    edit_rows_total: int = 0

    def add_sw(self, query_len: int) -> None:
        self.sw_extensions += 1
        self.sw_rows_total += query_len

    def add_edit(self, query_len: int) -> None:
        self.edit_checks += 1
        self.edit_rows_total += query_len


class SeedExModel:
    """Cycle/throughput model over measured extension workloads."""

    def __init__(self, config: "SeedExConfig | None" = None) -> None:
        self.config = config or SeedExConfig()

    def cycles_for(self, workload: ExtensionWorkload) -> int:
        """Total busy cycles one lane-unit pool spends on a workload."""
        cfg = self.config
        sw = workload.sw_rows_total + workload.sw_extensions * cfg.pipeline_fill
        edit = (workload.edit_rows_total
                + workload.edit_checks * cfg.pipeline_fill)
        return sw + edit

    def throughput_reads_per_s(self,
                               workloads: "list[ExtensionWorkload]") -> float:
        """Aggregate extension throughput given per-read workloads.

        Work spreads over every SW unit in every lane; the edit-distance
        units run in parallel and are rarely the bottleneck, but both
        pools are checked and the slower one decides.
        """
        if not workloads:
            return float("inf")
        cfg = self.config
        sw_cycles = sum(w.sw_rows_total + w.sw_extensions * cfg.pipeline_fill
                        for w in workloads)
        edit_cycles = sum(w.edit_rows_total
                          + w.edit_checks * cfg.pipeline_fill
                          for w in workloads)
        sw_pool = cfg.lanes * cfg.sw_units_per_lane
        edit_pool = cfg.lanes * cfg.edit_units_per_lane
        seconds = max(sw_cycles / sw_pool, edit_cycles / edit_pool) / cfg.clock_hz
        if seconds <= 0:
            return float("inf")
        return len(workloads) / seconds
