"""Paired-end alignment: pair scoring, orientation checks, mate rescue.

The paper evaluates single-ended reads, but any adoptable aligner built
on its seeding engine must handle pairs (BWA-MEM's primary mode).  The
pairing logic is the standard one: both mates produce candidate
placements; the pair maximizing ``score1 + score2 + proper_bonus`` wins,
where *proper* means Illumina FR orientation with a template length
within ``insert_mean +/- 4 * insert_sd``.  A mate with no candidates is
*rescued* by a banded traceback search in the window the other mate's
placement implies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.extend.chaining import chain_seeds
from repro.extend.pipeline import ReadAligner
from repro.extend.sam import (
    SamRecord,
    mapped_record,
    mapq_from_scores,
    unmapped_record,
)
from repro.extend.traceback import banded_sw_traceback
from repro.seeding.algorithm import SeedingResult, seed_read
from repro.sequence.alphabet import decode, revcomp_codes
from repro.sequence.reference import Strand

FLAG_PAIRED = 0x1
FLAG_PROPER = 0x2
FLAG_MATE_UNMAPPED = 0x8
FLAG_MATE_REVERSE = 0x20
FLAG_FIRST = 0x40
FLAG_SECOND = 0x80


@dataclass(frozen=True)
class Placement:
    """One candidate placement of one mate."""

    score: int
    strand: Strand
    position: int
    cigar: str


class PairedAligner:
    """Pair-aware alignment over any seeding engine."""

    def __init__(self, aligner: ReadAligner, insert_mean: int = 350,
                 insert_sd: int = 50, proper_bonus: int = 15,
                 max_candidates: int = 8) -> None:
        self.aligner = aligner
        self.insert_mean = insert_mean
        self.insert_sd = insert_sd
        self.proper_bonus = proper_bonus
        self.max_candidates = max_candidates

    # -- candidate generation -------------------------------------------

    def _candidates(self, read: np.ndarray,
                    seeding: "SeedingResult | None" = None
                    ) -> "list[Placement]":
        aligner = self.aligner
        result = seeding if seeding is not None \
            else seed_read(aligner.engine, read, aligner.params)
        chains = chain_seeds(result.all_seeds)
        out = [Placement(score, strand, position, cigar)
               for score, strand, position, cigar
               in aligner._trace_chains(read,
                                        chains[:self.max_candidates])]
        out.sort(key=lambda p: -p.score)
        return out

    # -- pairing ----------------------------------------------------------

    def _is_proper(self, a: Placement, b: Placement) -> bool:
        """Illumina FR orientation: opposite strands, forward mate to the
        left, within the insert-size envelope."""
        if a.strand == b.strand:
            return False
        fwd, rev = (a, b) if a.strand is Strand.FORWARD else (b, a)
        distance = rev.position - fwd.position
        return 0 <= distance <= self.insert_mean + 4 * self.insert_sd

    def _rescue(self, read: np.ndarray,
                anchor: Placement) -> "Placement | None":
        """Search for a mate near ``anchor`` in the expected orientation."""
        reference = self.aligner.reference
        n = len(reference)
        window_span = self.insert_mean + 4 * self.insert_sd
        if anchor.strand is Strand.FORWARD:
            lo = anchor.position
            hi = min(n, anchor.position + window_span)
            target = reference.codes[lo:hi]
            query = revcomp_codes(read)
            strand = Strand.REVERSE
        else:
            lo = max(0, anchor.position + len(read) - window_span)
            hi = anchor.position + len(read)
            target = reference.codes[lo:hi]
            query = read
            strand = Strand.FORWARD
        if target.size < read.size // 2:
            return None
        # The mate may sit anywhere in the window, far from the main
        # diagonal, so the rescue search runs unbanded (the window is
        # only an insert-size long; this is what BWA's mate-SW does too).
        traced = banded_sw_traceback(query, target, self.aligner.scheme,
                                     band=2 * int(target.size) + 1,
                                     workspace=self.aligner._sw_workspace)
        if not traced.is_aligned or traced.score < len(read) // 2:
            return None
        # The query handed to the kernel already runs along the forward
        # reference (reverse-strand mates were reverse-complemented), so
        # the CIGAR needs no flipping.
        position = lo + traced.target_start
        cigar_str = "".join(f"{length}{op}" for op, length in traced.cigar)
        return Placement(traced.score, strand, position, cigar_str)

    def align_pair(self, first: np.ndarray, second: np.ndarray,
                   name: str = "pair", quality1: str = "",
                   quality2: str = "",
                   seeding1: "SeedingResult | None" = None,
                   seeding2: "SeedingResult | None" = None
                   ) -> "tuple[SamRecord, SamRecord]":
        cand1 = self._candidates(first, seeding=seeding1)
        cand2 = self._candidates(second, seeding=seeding2)
        if cand1 and not cand2:
            rescued = self._rescue(second, cand1[0])
            if rescued:
                cand2 = [rescued]
        elif cand2 and not cand1:
            rescued = self._rescue(first, cand2[0])
            if rescued:
                cand1 = [rescued]

        best_pair = None
        best_score = -1
        for a in cand1:
            for b in cand2:
                score = a.score + b.score
                proper = self._is_proper(a, b)
                if proper:
                    score += self.proper_bonus
                if score > best_score:
                    best_score = score
                    best_pair = (a, b, proper)

        quality1 = quality1 or "I" * int(first.size)
        quality2 = quality2 or "I" * int(second.size)
        if best_pair is None:
            rec1 = self._one_record(first, cand1, name, quality1, None,
                                    False, FLAG_FIRST)
            rec2 = self._one_record(second, cand2, name, quality2, None,
                                    False, FLAG_SECOND)
            return rec1, rec2
        a, b, proper = best_pair
        rec1 = self._one_record(first, cand1, name, quality1, a, proper,
                                FLAG_FIRST, mate=b)
        rec2 = self._one_record(second, cand2, name, quality2, b, proper,
                                FLAG_SECOND, mate=a)
        return rec1, rec2

    def _one_record(self, read: np.ndarray, candidates: "list[Placement]",
                    name: str, quality: str,
                    placement: "Placement | None", proper: bool,
                    order_flag: int,
                    mate: "Placement | None" = None) -> SamRecord:
        if placement is None:
            record = unmapped_record(name, decode(read), quality)
            flag = record.flag | FLAG_PAIRED | order_flag
            if mate is None:
                flag |= FLAG_MATE_UNMAPPED
            return replace(record, flag=flag)
        runner_up = max((c.score for c in candidates
                         if c is not placement), default=0)
        mapq = mapq_from_scores(placement.score, runner_up, int(read.size))
        record = mapped_record(name, decode(read), quality,
                               self.aligner.reference, placement.strand,
                               placement.position, placement.cigar,
                               placement.score, mapq)
        flag = record.flag | FLAG_PAIRED | order_flag
        if proper:
            flag |= FLAG_PROPER
        if mate is None:
            flag |= FLAG_MATE_UNMAPPED
        elif mate.strand is Strand.REVERSE:
            flag |= FLAG_MATE_REVERSE
        return replace(record, flag=flag)
