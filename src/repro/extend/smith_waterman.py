"""Banded affine-gap Smith-Waterman and banded edit distance.

These are the functional equivalents of a SeedEx lane's compute units
(3 banded Smith-Waterman units with 41 PEs each plus one edit-distance
unit, §VI).  The Smith-Waterman recurrence is vectorized per row within
the band; scoring defaults follow BWA-MEM (match +1, mismatch -4,
gap open -6, gap extend -1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

NEG_INF = -10 ** 9


@dataclass(frozen=True)
class ScoringScheme:
    """Affine-gap scoring (BWA-MEM defaults)."""

    match: int = 1
    mismatch: int = -4
    gap_open: int = -6
    gap_extend: int = -1

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise ValueError("match score must be positive")
        if self.mismatch >= 0 or self.gap_open >= 0 or self.gap_extend >= 0:
            raise ValueError("penalties must be negative")


#: The BWA-MEM default scheme, constructed once: callers on the per-read
#: hot path (ReadAligner, the kernels below) reuse this instead of
#: validating a fresh dataclass per call.
DEFAULT_SCHEME = ScoringScheme()


class SwWorkspace:
    """Reusable DP row buffers for :func:`banded_smith_waterman`.

    The kernel needs four length-``n + 1`` rows per call; allocating them
    per row (the previous behavior) dominated short-read extension cost.
    A workspace owned by the caller (one per :class:`~repro.extend.
    pipeline.ReadAligner`) amortizes the allocation across every
    extension of every read; rows are re-filled, never re-allocated,
    unless a longer target arrives.
    """

    __slots__ = ("_rows", "_cap", "_grid", "_planes")

    def __init__(self) -> None:
        self._rows: "tuple[np.ndarray, ...] | None" = None
        self._cap = 0
        self._grid: "np.ndarray | None" = None
        self._planes: "np.ndarray | None" = None

    def rows(self, n: int) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        """Four int64 rows of length ``n + 1`` (contents unspecified --
        the kernel initializes them)."""
        if self._rows is None or self._cap < n + 1:
            self._cap = max(n + 1, 256)
            self._rows = tuple(np.empty(self._cap, dtype=np.int64)
                               for _ in range(4))
        a, b, c, d = self._rows
        return a[:n + 1], b[:n + 1], c[:n + 1], d[:n + 1]

    def grid(self, planes: int, rows: int, cols: int) -> np.ndarray:
        """An int64 ``(planes, rows, cols)`` block for the wavefront
        kernel's rotating diagonal buffers (contents unspecified);
        grown on demand and reused across calls like :meth:`rows`."""
        need = planes * rows * cols
        if self._grid is None or self._grid.size < need:
            self._grid = np.empty(max(need, 4096), dtype=np.int64)
        return self._grid[:need].reshape(planes, rows, cols)

    def ptr_planes(self, b: int, rows: int, cols: int) \
            -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Traceback pointer planes for the batched traceback kernel:
        one int8 ``(b, rows, cols)`` plane (H pointers) plus two bool
        planes of the same shape (E/F gap-open flags), carved from one
        persistent byte buffer (contents unspecified) and grown on
        demand like :meth:`rows` / :meth:`grid`."""
        need = 3 * b * rows * cols
        if self._planes is None or self._planes.size < need:
            self._planes = np.empty(max(need, 4096), dtype=np.int8)
        block = self._planes[:need].reshape(3, b, rows, cols)
        return block[0], block[1].view(np.bool_), block[2].view(np.bool_)


@dataclass(frozen=True)
class AlignmentResult:
    """Outcome of one banded alignment."""

    score: int
    query_end: int
    target_end: int
    cells: int

    @property
    def is_aligned(self) -> bool:
        return self.score > 0


# SeedEx SW lane equivalent; row buffers come from the caller's
# workspace so the per-row cost is a fill, not an allocation.
# repro: hot
def banded_smith_waterman(query: np.ndarray, target: np.ndarray,
                          scheme: "ScoringScheme | None" = None,
                          band: int = 41,
                          workspace: "SwWorkspace | None" = None
                          ) -> AlignmentResult:
    """Local alignment of ``query`` vs ``target`` within a diagonal band.

    Cells with ``|i - j| > band // 2`` are never computed, matching the
    fixed-width systolic band of a hardware unit (band 41 in SeedEx).
    Returns the best local score and its end coordinates, plus the number
    of cells computed (the hardware cost driver).
    """
    scheme = scheme or DEFAULT_SCHEME
    if band < 1:
        raise ValueError("band must be at least 1")
    q = np.asarray(query, dtype=np.int16)
    t = np.asarray(target, dtype=np.int16)
    m, n = q.size, t.size
    if m == 0 or n == 0:
        return AlignmentResult(0, 0, 0, 0)
    half = band // 2

    # Rows over the query; H/E/F over target positions, restricted to the
    # band around the main diagonal.
    workspace = workspace or SwWorkspace()
    h_prev, e_prev, h_cur, e_cur = workspace.rows(n)
    h_prev[:] = 0
    e_prev[:] = NEG_INF
    best = 0
    best_q = best_t = 0
    cells = 0
    # F-scan closed form support (see below), hoisted out of the row
    # loop: the gap slope and a scratch row sized to the widest band row.
    s = max(scheme.gap_open, scheme.gap_extend)
    width_cap = min(n, 2 * half + 1)
    steps_full = s * np.arange(width_cap, dtype=np.int64)
    scratch = np.empty(width_cap, dtype=np.int64)
    for i in range(1, m + 1):
        lo = max(1, i - half)
        hi = min(n, i + half)
        if lo > hi:
            break
        h_cur[:] = 0
        e_cur[:] = NEG_INF
        window = slice(lo, hi + 1)
        match_scores = np.where(t[lo - 1:hi] == q[i - 1],
                                scheme.match, scheme.mismatch)
        diag = h_prev[lo - 1:hi] + match_scores
        e_cur[window] = np.maximum(h_prev[window] + scheme.gap_open,
                                   e_prev[window] + scheme.gap_extend)
        # F (gaps in the target) has a row-local dependency
        # F[j] = max(H[j-1] + open, F[j-1] + extend); with
        # s = max(open, extend) and H0 = H without the F term it unrolls
        # to the closed form F[j] = open + s*w + cummax(H0[j0] - s*w0)
        # over window offsets w (a prefix-max, one vector op).  Exact:
        # within a row H[j-1] = max(H0[j-1], F[j-1]) and folding the
        # F[j-1] branch through max(open, extend) never wins strictly.
        h0 = np.maximum(np.maximum(diag, e_cur[window]), 0)
        steps = steps_full[:hi - lo + 1]
        h0_left = scratch[:hi - lo + 1]
        h0_left[0] = 0
        h0_left[1:] = h0[:-1]
        f_row = (scheme.gap_open + steps
                 + np.maximum.accumulate(h0_left - steps))
        h_row = np.maximum(h0, f_row)
        h_cur[window] = h_row
        row_best = int(h_row.max())
        cells += hi - lo + 1
        if row_best > best:
            best = row_best
            best_q, best_t = i, lo + int(h_row.argmax())
        h_prev, h_cur = h_cur, h_prev
        e_prev, e_cur = e_cur, e_prev
    return AlignmentResult(int(best), best_q, best_t, cells)


def banded_edit_distance(query: np.ndarray, target: np.ndarray,
                         band: int = 41) -> "int | None":
    """Banded Levenshtein distance, or ``None`` when the true distance
    exceeds what the band can certify (the hardware edit-distance unit's
    quick-accept path for near-perfect candidates)."""
    if band < 1:
        raise ValueError("band must be at least 1")
    q = np.asarray(query)
    t = np.asarray(target)
    m, n = q.size, t.size
    half = band // 2
    if abs(m - n) > half:
        return None
    inf = 10 ** 9
    prev = {j: j for j in range(0, min(n, half) + 1)}
    for i in range(1, m + 1):
        lo = max(0, i - half)
        hi = min(n, i + half)
        cur = {}
        for j in range(lo, hi + 1):
            if j == 0:
                cur[j] = i
                continue
            sub = prev.get(j - 1, inf) + (
                0 if q[i - 1] == t[j - 1] else 1)
            dele = prev.get(j, inf) + 1
            ins = cur.get(j - 1, inf) + 1
            cur[j] = min(sub, dele, ins)
        prev = cur
    dist = prev.get(n)
    if dist is None or dist > half:
        return None
    return int(dist)
