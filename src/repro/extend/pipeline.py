"""The complete read-alignment pipeline: seed -> chain -> extend.

:class:`ReadAligner` runs the paper's whole flow over any seeding engine:
three-round seeding (:mod:`repro.seeding.algorithm`), colinear chaining,
then banded extension of the best chains to pick the final alignment
position.  Besides producing alignments, it records the per-read extension
workload that the SeedEx model (Table VI) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import telemetry
from repro.extend.chaining import Chain, chain_seeds
from repro.extend.sam import (
    SamRecord,
    mapped_record,
    mapq_from_scores,
    unmapped_record,
)
from repro.extend.seedex import ExtensionWorkload
from repro.extend.smith_waterman import (
    DEFAULT_SCHEME,
    ScoringScheme,
    SwWorkspace,
    banded_edit_distance,
    banded_smith_waterman,
)
from repro.extend.traceback import banded_sw_traceback
from repro.seeding.algorithm import SeedingParams, SeedingResult, seed_read
from repro.seeding.engine import SeedingEngine
from repro.sequence.alphabet import decode
from repro.sequence.reference import Reference, Strand


@dataclass(frozen=True)
class Alignment:
    """A read's final alignment (forward-strand coordinates)."""

    read_name: str
    strand: Strand
    position: int
    score: int
    chain_score: int

    @property
    def is_mapped(self) -> bool:
        return self.score > 0


@dataclass
class AlignmentOutcome:
    """Alignment plus the measured extension workload for one read."""

    alignment: "Alignment | None"
    n_seeds: int
    n_chains: int
    workload: ExtensionWorkload


class ReadAligner:
    """Seed-and-extend aligner over any :class:`SeedingEngine`."""

    def __init__(self, reference: Reference, engine: SeedingEngine,
                 params: "SeedingParams | None" = None,
                 scheme: "ScoringScheme | None" = None,
                 band: int = 41, max_chains_extended: int = 8,
                 edit_check_first: bool = True,
                 sw_batch: "Callable | None" = None,
                 tb_batch: "Callable | None" = None) -> None:
        self.reference = reference
        self.engine = engine
        self.params = params or SeedingParams()
        self.scheme = scheme or DEFAULT_SCHEME
        self.band = band
        self.max_chains_extended = max_chains_extended
        self.edit_check_first = edit_check_first
        #: Optional batched extension kernel with the calling convention
        #: of :func:`repro.kernels.sw.batched_banded_sw`.  When set,
        #: :meth:`align` extends all of a read's SW-bound chains in one
        #: wavefront call instead of one row-wise SW per chain -- same
        #: scores, same coordinates.  Injected by callers (the parallel
        #: scheduler, the CLI) because the extend layer sits below
        #: ``repro.kernels`` in the import DAG.
        self.sw_batch = sw_batch
        #: Optional batched *traceback* kernel with the calling
        #: convention of :func:`repro.kernels.traceback.
        #: batched_sw_traceback`.  When set, the SAM paths
        #: (:meth:`align_sam`, :meth:`align_sam_multi`, and the paired
        #: candidate sweep) trace all of a read's surviving chains in
        #: one wavefront call instead of one scalar traceback per chain
        #: -- same records byte for byte.  Injected alongside
        #: ``sw_batch`` for the same layering reason.
        self.tb_batch = tb_batch
        self._text = reference.both_strands
        # One workspace per aligner: the SW kernel's row buffers are
        # reused across every extension instead of allocated per call.
        self._sw_workspace = SwWorkspace()
        #: Per-read counters for the most recent SAM alignment, populated
        #: only while telemetry is enabled.  The parallel scheduler folds
        #: these into the read's exemplar record.
        self.read_stats: "dict[str, int]" = {}

    def align(self, read: np.ndarray, name: str = "read",
              seeding: "SeedingResult | None" = None) -> AlignmentOutcome:
        """Align one read; returns the best-scoring chain extension.

        ``seeding`` short-circuits the three seeding rounds with a
        precomputed result (how the batched kernel path feeds a whole
        batch of reads seeded at once); output is identical either way.
        """
        with telemetry.span("align"):
            result = seeding if seeding is not None \
                else seed_read(self.engine, read, self.params)
            seeds = result.all_seeds
            with telemetry.span("chain"):
                chains = chain_seeds(seeds)
            workload = ExtensionWorkload()
            best: "Alignment | None" = None
            with telemetry.span("extend"):
                if self.sw_batch is not None:
                    best = self._extend_chains_batched(
                        read, chains[:self.max_chains_extended], name,
                        workload)
                else:
                    for chain in chains[:self.max_chains_extended]:
                        candidate = self._extend_chain(read, chain, name,
                                                       workload)
                        if candidate is None:
                            continue
                        if best is None or candidate.score > best.score:
                            best = candidate
            self._record_read_metrics(len(seeds), len(chains),
                                      mapped=best is not None)
        return AlignmentOutcome(alignment=best, n_seeds=len(seeds),
                                n_chains=len(chains), workload=workload)

    def _begin_read_stats(self, seeds, chains) -> None:
        if not telemetry.enabled():
            return
        self.read_stats = {
            "seeds": len(seeds),
            "seed_hits": sum(s.hit_count for s in seeds),
            "chains": len(chains),
            "sw_extensions": 0,
            "sw_cells": 0,
        }

    def _record_read_metrics(self, n_seeds: int, n_chains: int,
                             mapped: bool) -> None:
        if not telemetry.enabled():
            return
        telemetry.count("align.reads")
        telemetry.count("align.reads_mapped", int(mapped))
        telemetry.count("align.chains", n_chains)
        telemetry.count("align.chains_extended",
                        min(n_chains, self.max_chains_extended))
        telemetry.observe("align.seeds_per_read", n_seeds)
        telemetry.observe("align.chains_per_read", n_chains)

    def _extend_chain(self, read: np.ndarray, chain: Chain, name: str,
                      workload: ExtensionWorkload) -> "Alignment | None":
        n = int(read.size)
        # Window of the double-strand text the whole read would occupy if
        # the chain's diagonal is right, padded by half a band.
        ref_begin = chain.ref_start - chain.read_start - self.band // 2
        ref_begin = max(0, ref_begin)
        window_len = n + self.band
        window = self._text[ref_begin:ref_begin + window_len]
        if window.size < n // 2:
            return None
        if telemetry.enabled():
            telemetry.observe("align.band_bp", self.band)
            telemetry.observe("align.window_bp", int(window.size))

        score = None
        if self.edit_check_first:
            # The edit-distance unit clears near-perfect candidates fast.
            workload.add_edit(n)
            telemetry.count("align.edit_checks")
            dist = banded_edit_distance(read, window[:n], band=self.band)
            if dist is not None and dist <= 2:
                score = (n - dist) * self.scheme.match + dist * \
                    self.scheme.mismatch
                end_pos = ref_begin
        if score is None:
            workload.add_sw(n)
            telemetry.count("align.sw_extensions")
            sw = banded_smith_waterman(read, window, self.scheme, self.band,
                                       workspace=self._sw_workspace)
            if not sw.is_aligned:
                return None
            score = sw.score
            end_pos = ref_begin + sw.target_end - sw.query_end
        hit = self.reference.to_forward(max(0, end_pos), min(
            n, 2 * len(self.reference) - max(0, end_pos)))
        if hit is None:
            return None
        return Alignment(read_name=name, strand=hit.strand,
                         position=hit.start, score=int(score),
                         chain_score=chain.score)

    def _extend_chains_batched(self, read: np.ndarray,
                               chains: "list[Chain]", name: str,
                               workload: ExtensionWorkload) \
            -> "Alignment | None":
        """All chains of one read through the injected wavefront kernel.

        Two passes keep this score-identical to the serial loop: the
        first runs each chain's window setup and edit-distance shortcut
        in chain order (so workload/telemetry accounting interleaves the
        same way), queueing the windows that need full SW; one batched
        call resolves those; the second pass finalizes candidates in
        chain order, preserving the strict-improvement tie-break.
        """
        n = int(read.size)
        entries: "list[list]" = []  # [chain, ref_begin, score, end_pos]
        pending: "list[int]" = []
        windows: "list[np.ndarray]" = []
        for chain in chains:
            ref_begin = max(0, chain.ref_start - chain.read_start
                            - self.band // 2)
            window = self._text[ref_begin:ref_begin + n + self.band]
            if window.size < n // 2:
                continue
            if telemetry.enabled():
                telemetry.observe("align.band_bp", self.band)
                telemetry.observe("align.window_bp", int(window.size))
            score = None
            end_pos = None
            if self.edit_check_first:
                workload.add_edit(n)
                telemetry.count("align.edit_checks")
                dist = banded_edit_distance(read, window[:n],
                                            band=self.band)
                if dist is not None and dist <= 2:
                    score = (n - dist) * self.scheme.match + dist * \
                        self.scheme.mismatch
                    end_pos = ref_begin
            if score is None:
                workload.add_sw(n)
                telemetry.count("align.sw_extensions")
                pending.append(len(entries))
                windows.append(window)
            entries.append([chain, ref_begin, score, end_pos])
        if windows:
            results = self.sw_batch(read, windows, self.scheme, self.band,
                                    workspace=self._sw_workspace)
            for slot, sw in zip(pending, results):
                if sw.is_aligned:
                    entries[slot][2] = sw.score
                    entries[slot][3] = (entries[slot][1] + sw.target_end
                                        - sw.query_end)
        best: "Alignment | None" = None
        for chain, _ref_begin, score, end_pos in entries:
            if score is None:
                continue
            hit = self.reference.to_forward(max(0, end_pos), min(
                n, 2 * len(self.reference) - max(0, end_pos)))
            if hit is None:
                continue
            candidate = Alignment(read_name=name, strand=hit.strand,
                                  position=hit.start, score=int(score),
                                  chain_score=chain.score)
            if best is None or candidate.score > best.score:
                best = candidate
        return best

    # ------------------------------------------------------------------
    # SAM emission (traceback path)
    # ------------------------------------------------------------------

    def align_sam(self, read: np.ndarray, name: str = "read",
                  quality: str = "",
                  seeding: "SeedingResult | None" = None) -> SamRecord:
        """Align one read and emit a SAM record with a real CIGAR.

        The best and runner-up chains are both extended with the
        traceback kernel so mapping quality can reflect uniqueness.
        ``seeding`` injects a precomputed seeding result (the batched
        kernel path); the record is identical either way.
        """
        with telemetry.span("align"):
            result = seeding if seeding is not None \
                else seed_read(self.engine, read, self.params)
            with telemetry.span("chain"):
                chains = chain_seeds(result.all_seeds)
            self._begin_read_stats(result.all_seeds, chains)
            quality = quality or "I" * int(read.size)
            with telemetry.span("extend"):
                candidates = self._trace_chains(
                    read, chains[:self.max_chains_extended])
            self._record_read_metrics(len(result.all_seeds), len(chains),
                                      mapped=bool(candidates))
        if not candidates:
            return unmapped_record(name, decode(read), quality)
        candidates.sort(key=lambda c: -c[0])
        best_score, strand, position, cigar = candidates[0]
        runner_up = candidates[1][0] if len(candidates) > 1 else 0
        mapq = mapq_from_scores(best_score, runner_up, int(read.size))
        return mapped_record(name, decode(read), quality, self.reference,
                             strand, position, cigar, best_score, mapq)

    def align_sam_multi(self, read: np.ndarray, name: str = "read",
                        quality: str = "", max_secondary: int = 3,
                        seeding: "SeedingResult | None" = None
                        ) -> "list[SamRecord]":
        """Like :meth:`align_sam` but also emits secondary records
        (FLAG 0x100) for distinct runner-up placements, as read aligners
        do for multi-mapping reads in repeats."""
        from dataclasses import replace as _replace
        with telemetry.span("align"):
            result = seeding if seeding is not None \
                else seed_read(self.engine, read, self.params)
            with telemetry.span("chain"):
                chains = chain_seeds(result.all_seeds)
            self._begin_read_stats(result.all_seeds, chains)
            quality = quality or "I" * int(read.size)
            with telemetry.span("extend"):
                candidates = self._trace_chains(
                    read, chains[:self.max_chains_extended])
            self._record_read_metrics(len(result.all_seeds), len(chains),
                                      mapped=bool(candidates))
        if not candidates:
            return [unmapped_record(name, decode(read), quality)]
        candidates.sort(key=lambda c: -c[0])
        best_score = candidates[0][0]
        runner_up = candidates[1][0] if len(candidates) > 1 else 0
        records = []
        seen_positions = set()
        for rank, (score, strand, position, cigar) in enumerate(candidates):
            if (strand, position) in seen_positions:
                continue
            seen_positions.add((strand, position))
            if rank == 0:
                mapq = mapq_from_scores(best_score, runner_up,
                                        int(read.size))
                records.append(mapped_record(name, decode(read), quality,
                                             self.reference, strand,
                                             position, cigar, score, mapq))
            elif len(records) <= max_secondary:
                rec = mapped_record(name, decode(read), quality,
                                    self.reference, strand, position,
                                    cigar, score, 0)
                records.append(_replace(rec, flag=rec.flag | 0x100))
        return records

    def _prepare_trace(self, read: np.ndarray, chain: Chain):
        """Window setup + telemetry for one chain's traceback, or
        ``None`` when the window is too short to bother extending."""
        n = int(read.size)
        ref_begin = max(0, chain.ref_start - chain.read_start
                        - self.band // 2)
        window = self._text[ref_begin:ref_begin + n + self.band]
        if window.size < n // 2:
            return None
        if telemetry.enabled():
            telemetry.observe("align.band_bp", self.band)
            telemetry.observe("align.window_bp", int(window.size))
            telemetry.count("align.sw_extensions")
            stats = self.read_stats
            stats["sw_extensions"] = stats.get("sw_extensions", 0) + 1
            stats["sw_cells"] = (stats.get("sw_cells", 0)
                                 + int(window.size) * self.band)
        return ref_begin, window

    def _finalize_trace(self, traced, ref_begin: int):
        """Map one traced window alignment back to forward-strand SAM
        coordinates; ``None`` for unaligned or off-reference hits."""
        if not traced.is_aligned:
            return None
        ref_len = traced.target_end - traced.target_start
        hit = self.reference.to_forward(ref_begin + traced.target_start,
                                        ref_len)
        if hit is None:
            return None
        cigar = traced.cigar
        if hit.strand is Strand.REVERSE:
            # Forward-strand coordinates run opposite to the walk over
            # the reverse-complement half of X: flip the CIGAR.
            cigar = tuple(reversed(cigar))
        cigar_str = "".join(f"{length}{op}" for op, length in cigar)
        return traced.score, hit.strand, hit.start, cigar_str

    def _trace_chain(self, read: np.ndarray, chain: Chain):
        prepared = self._prepare_trace(read, chain)
        if prepared is None:
            return None
        ref_begin, window = prepared
        traced = banded_sw_traceback(read, window, self.scheme, self.band,
                                     workspace=self._sw_workspace)
        return self._finalize_trace(traced, ref_begin)

    def _trace_chains(self, read: np.ndarray, chains: "list[Chain]"):
        """Traceback candidates for a read's chains, in chain order.

        With :attr:`tb_batch` set, every surviving window goes through
        one batched wavefront call; otherwise one scalar traceback per
        chain.  Window setup and telemetry run in chain order either
        way, so the candidate list -- and every counter -- is identical.
        """
        if self.tb_batch is None:
            return [c for c in (self._trace_chain(read, chain)
                                for chain in chains) if c is not None]
        begins: "list[int]" = []
        windows: "list[np.ndarray]" = []
        for chain in chains:
            prepared = self._prepare_trace(read, chain)
            if prepared is None:
                continue
            begins.append(prepared[0])
            windows.append(prepared[1])
        if not windows:
            return []
        traced = self.tb_batch(read, windows, self.scheme, self.band,
                               workspace=self._sw_workspace)
        return [c for c in (self._finalize_trace(tr, ref_begin)
                            for tr, ref_begin in zip(traced, begins))
                if c is not None]
