"""Seed extension and the full read-alignment pipeline.

The paper's end-to-end number (Table VI) couples the ERT seeding
accelerator with SeedEx-style seed-extension accelerator lanes.  This
package supplies the functional substrate and the lane-level model:

* :mod:`repro.extend.smith_waterman` -- banded affine-gap Smith-Waterman
  and an edit-distance unit (the two compute primitives of a SeedEx lane);
* :mod:`repro.extend.chaining` -- BWA-style colinear seed chaining;
* :mod:`repro.extend.seedex` -- the SeedEx lane throughput/occupancy model
  (3 banded SW units x 41 PEs + 1 edit-distance unit per lane, 8 lanes);
* :mod:`repro.extend.pipeline` -- :class:`ReadAligner`, the complete
  seed -> chain -> extend pipeline over any seeding engine.
"""

from repro.extend.chaining import Chain, chain_seeds
from repro.extend.paired import PairedAligner, Placement
from repro.extend.pipeline import Alignment, ReadAligner
from repro.extend.sam import SamRecord, sam_header, write_sam
from repro.extend.seedex import SeedExConfig, SeedExModel
from repro.extend.smith_waterman import (
    DEFAULT_SCHEME,
    AlignmentResult,
    ScoringScheme,
    SwWorkspace,
    banded_edit_distance,
    banded_smith_waterman,
)
from repro.extend.traceback import TracedAlignment, banded_sw_traceback

__all__ = [
    "Alignment",
    "PairedAligner",
    "Placement",
    "AlignmentResult",
    "Chain",
    "DEFAULT_SCHEME",
    "ReadAligner",
    "SamRecord",
    "ScoringScheme",
    "SwWorkspace",
    "SeedExConfig",
    "SeedExModel",
    "TracedAlignment",
    "banded_edit_distance",
    "banded_smith_waterman",
    "banded_sw_traceback",
    "chain_seeds",
    "sam_header",
    "write_sam",
]
