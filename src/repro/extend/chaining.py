"""Colinear seed chaining (the ~10 % "chaining" stage of §II).

Seeds whose read and reference coordinates are consistent with one
alignment are grouped into chains, BWA-MEM style: anchors are sorted by
reference position and greedily merged into an existing chain when they
are colinear with its last anchor within a gap limit; otherwise they open
a new chain.  Chains are scored by their covered read length and returned
best-first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.seeding.types import Seed


@dataclass(frozen=True)
class Anchor:
    """One (read position, reference position, length) seed occurrence."""

    read_start: int
    ref_start: int
    length: int

    @property
    def read_end(self) -> int:
        return self.read_start + self.length

    @property
    def ref_end(self) -> int:
        return self.ref_start + self.length

    @property
    def diagonal(self) -> int:
        return self.ref_start - self.read_start


@dataclass
class Chain:
    """A colinear group of anchors."""

    anchors: "list[Anchor]" = field(default_factory=list)

    @property
    def score(self) -> int:
        """Read-bases covered by the chain's anchors (merged intervals)."""
        spans = sorted((a.read_start, a.read_end) for a in self.anchors)
        covered = 0
        cur_start, cur_end = spans[0]
        for start, end in spans[1:]:
            if start > cur_end:
                covered += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        return covered + cur_end - cur_start

    @property
    def ref_start(self) -> int:
        return min(a.ref_start for a in self.anchors)

    @property
    def read_start(self) -> int:
        return min(a.read_start for a in self.anchors)

    @property
    def diagonal(self) -> int:
        return self.anchors[0].diagonal

    def can_absorb(self, anchor: Anchor, max_gap: int,
                   max_diag_drift: int) -> bool:
        last = self.anchors[-1]
        if abs(anchor.diagonal - last.diagonal) > max_diag_drift:
            return False
        if anchor.ref_start < last.ref_start:
            return False
        gap = anchor.ref_start - last.ref_end
        read_gap = anchor.read_start - last.read_end
        return gap <= max_gap and read_gap <= max_gap


def _anchors_of(seeds: "list[Seed]") -> "list[Anchor]":
    anchors = [Anchor(seed.read_start, hit, seed.length)
               for seed in seeds for hit in seed.hits]
    anchors.sort(key=lambda a: (a.ref_start, a.read_start))
    return anchors


def chain_seeds(seeds: "list[Seed]", max_gap: int = 100,
                max_diag_drift: int = 20,
                max_chains: "int | None" = 50,
                method: str = "greedy") -> "list[Chain]":
    """Group seed hits into colinear chains, best score first.

    Seeds whose hit lists were truncated by the locate limit contribute
    nothing (BWA similarly skips ultra-repetitive seeds before chaining).
    ``method`` is ``"greedy"`` (append to the first compatible open
    chain) or ``"dp"`` (BWA-MEM-style best-predecessor scoring, which
    tolerates spurious anchors better).
    """
    if method == "dp":
        return chain_seeds_dp(seeds, max_gap=max_gap,
                              max_chains=max_chains)
    if method != "greedy":
        raise ValueError(f"unknown chaining method {method!r}")
    anchors = _anchors_of(seeds)
    chains: "list[Chain]" = []
    for anchor in anchors:
        for chain in chains:
            if chain.can_absorb(anchor, max_gap, max_diag_drift):
                chain.anchors.append(anchor)
                break
        else:
            chains.append(Chain(anchors=[anchor]))
    chains.sort(key=lambda c: (-c.score, c.ref_start))
    if max_chains is not None:
        chains = chains[:max_chains]
    return chains


def chain_seeds_dp(seeds: "list[Seed]", max_gap: int = 100,
                   gap_weight: float = 0.5,
                   max_chains: "int | None" = 50) -> "list[Chain]":
    """Dynamic-programming chaining (the minimap/BWA-MEM formulation).

    Anchors are sorted by reference position; each anchor's score is its
    length plus the best predecessor score minus a gap penalty of
    ``gap_weight * |ref_gap - read_gap|`` (diagonal drift).  Chains are
    recovered by walking best-predecessor links from unclaimed chain
    tails in score order -- each anchor belongs to exactly one chain.
    """
    anchors = _anchors_of(seeds)
    n = len(anchors)
    if n == 0:
        return []
    scores = [float(a.length) for a in anchors]
    parent = [-1] * n
    longest = max(a.length for a in anchors)
    for i, anchor in enumerate(anchors):
        # Predecessors end before this anchor starts, within the window.
        for j in range(i - 1, -1, -1):
            prev = anchors[j]
            if anchor.ref_start - prev.ref_start > max_gap + longest:
                break  # sorted by ref_start: everything earlier is farther
            if anchor.ref_start - prev.ref_end > max_gap:
                continue
            if prev.ref_end > anchor.ref_start or \
                    prev.read_end > anchor.read_start:
                continue
            ref_gap = anchor.ref_start - prev.ref_end
            read_gap = anchor.read_start - prev.read_end
            if read_gap > max_gap:
                continue
            penalty = gap_weight * abs(ref_gap - read_gap)
            candidate = scores[j] + anchor.length - penalty
            if candidate > scores[i]:
                scores[i] = candidate
                parent[i] = j
    # Extract disjoint chains, best tail first.
    order = sorted(range(n), key=lambda i: -scores[i])
    claimed = [False] * n
    chains = []
    for tail in order:
        if claimed[tail]:
            continue
        members = []
        node = tail
        while node != -1 and not claimed[node]:
            claimed[node] = True
            members.append(anchors[node])
            node = parent[node]
        members.reverse()
        chains.append(Chain(anchors=members))
    chains.sort(key=lambda c: (-c.score, c.ref_start))
    if max_chains is not None:
        chains = chains[:max_chains]
    return chains
