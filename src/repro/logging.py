"""Structured JSONL logging: the sanctioned operational event stream.

Rule ERT010 bans ad-hoc console writes in library code, and ERT011 bans
routing events through the stdlib ``logging`` root handlers (whose
global, import-order-sensitive configuration is exactly what a
deterministic pipeline must not depend on).  This module is the one
approved path -- alongside :class:`repro.telemetry.progress.
ProgressReporter` for the human heartbeat -- for library subsystems
(the batch scheduler, the fault-recovery path, the shared-memory
lifecycle) to emit machine-readable operational events.

Design points:

* **Off by default, zero-cost when off.**  Until :func:`configure` is
  called, every emit returns after one ``None`` check -- the same
  contract as the telemetry flag.  The CLI wires it to ``--log-jsonl``.
* **Structured.**  One JSON object per line::

      {"ts": 1754604042.1, "level": "info", "subsystem":
       "parallel.scheduler", "event": "pool.spawn", "workers": 2, ...}

  ``ts`` is absolute epoch seconds (operational logs are correlated
  with the outside world; the deterministic-output guarantees never
  depend on log content).
* **Rate-limited.**  A token bucket caps sustained volume; dropped
  records are *counted* and surfaced in a final summary record at
  :func:`shutdown`, never silently lost.
* **Level-filtered.**  ``debug < info < warn < error``, filtered at the
  emit site before any formatting cost.

Loggers are cheap handles bound to a subsystem name; module-level
``_log = get_logger("parallel.scheduler")`` is the expected idiom (the
handle checks the live sink at emit time, so configure order never
matters).
"""

from __future__ import annotations

import json
import time

LEVELS = ("debug", "info", "warn", "error")

_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVELS)}

#: Default sustained rate cap (records/second) and burst allowance.
DEFAULT_MAX_PER_SEC = 200.0


class _TokenBucket:
    """Sustained-rate limiter: ``rate`` tokens/s, burst of ``rate``."""

    def __init__(self, rate: float, clock) -> None:
        self.rate = float(rate)
        self.capacity = max(1.0, float(rate))
        self.tokens = self.capacity
        self._clock = clock
        self._last = clock()

    def allow(self) -> bool:
        now = self._clock()
        self.tokens = min(self.capacity,
                          self.tokens + (now - self._last) * self.rate)
        self._last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class _Sink:
    """The configured destination: a stream, its filters, its limiter."""

    def __init__(self, stream, owns_stream: bool, level: str,
                 max_per_sec: float, clock) -> None:
        if level not in _LEVEL_RANK:
            raise ValueError(
                f"unknown log level {level!r}; expected one of {LEVELS}")
        self.stream = stream
        self.owns_stream = owns_stream
        self.min_rank = _LEVEL_RANK[level]
        self.bucket = _TokenBucket(max_per_sec, clock)
        self.dropped = 0
        self.emitted = 0

    def emit(self, record: "dict[str, object]") -> None:
        if not self.bucket.allow():
            self.dropped += 1
            return
        self.emitted += 1
        self.stream.write(json.dumps(record, sort_keys=True, default=str)
                          + "\n")
        try:
            self.stream.flush()
        except (AttributeError, ValueError, OSError):
            pass


#: The single live sink (or None: logging disabled).
_sink: "_Sink | None" = None


def configure(path: "str | None" = None, stream=None,
              level: str = "info",
              max_per_sec: float = DEFAULT_MAX_PER_SEC,
              clock=time.monotonic) -> None:
    """Open the JSONL event stream.

    Exactly one of ``path`` (opened in append mode, closed by
    :func:`shutdown`) or ``stream`` (caller-owned) must be given.
    Reconfiguring replaces the previous sink after flushing its summary.
    """
    global _sink
    if (path is None) == (stream is None):
        raise ValueError("configure() needs exactly one of path/stream")
    shutdown()
    if path is not None:
        handle = open(path, "a")
        _sink = _Sink(handle, owns_stream=True, level=level,
                      max_per_sec=max_per_sec, clock=clock)
    else:
        _sink = _Sink(stream, owns_stream=False, level=level,
                      max_per_sec=max_per_sec, clock=clock)


def configured() -> bool:
    return _sink is not None


def shutdown() -> None:
    """Flush a summary record (emitted/dropped counts) and close the
    sink.  Safe to call when logging was never configured."""
    global _sink
    sink, _sink = _sink, None
    if sink is None:
        return
    if sink.dropped:
        record = {"ts": round(time.time(), 6), "level": "warn",
                  "subsystem": "logging", "event": "records.dropped",
                  "dropped": sink.dropped, "emitted": sink.emitted}
        sink.stream.write(json.dumps(record, sort_keys=True) + "\n")
    try:
        sink.stream.flush()
    except (AttributeError, ValueError, OSError):
        pass
    if sink.owns_stream:
        sink.stream.close()


class StructuredLogger:
    """A subsystem-bound handle; see :func:`get_logger`."""

    __slots__ = ("subsystem",)

    def __init__(self, subsystem: str) -> None:
        self.subsystem = subsystem

    def log(self, level: str, event: str, **fields: object) -> None:
        sink = _sink
        if sink is None:
            return
        rank = _LEVEL_RANK.get(level)
        if rank is None:
            raise ValueError(
                f"unknown log level {level!r}; expected one of {LEVELS}")
        if rank < sink.min_rank:
            return
        record: "dict[str, object]" = {
            "ts": round(time.time(), 6), "level": level,
            "subsystem": self.subsystem, "event": event}
        record.update(fields)
        sink.emit(record)

    def debug(self, event: str, **fields: object) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: object) -> None:
        self.log("info", event, **fields)

    def warn(self, event: str, **fields: object) -> None:
        self.log("warn", event, **fields)

    def error(self, event: str, **fields: object) -> None:
        self.log("error", event, **fields)


def get_logger(subsystem: str) -> StructuredLogger:
    """A logger handle for ``subsystem`` (dotted, mirroring the module
    path by convention: ``parallel.scheduler``, ``parallel.shm``)."""
    return StructuredLogger(subsystem)


__all__ = [
    "DEFAULT_MAX_PER_SEC",
    "LEVELS",
    "StructuredLogger",
    "configure",
    "configured",
    "get_logger",
    "shutdown",
]
