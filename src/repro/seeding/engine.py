"""The abstract seeding-engine interface both indexes implement.

The SMEM algorithm (:mod:`repro.seeding.algorithm`) is written once against
this interface.  An engine must answer five questions about exact matches of
a read against the double-strand text ``X``:

* :meth:`SeedingEngine.forward_search` -- from a pivot, how far right does
  the match extend, and at which positions did the hit set change (the
  paper's *left extension points*, LEP)?
* :meth:`SeedingEngine.backward_search` -- given a right endpoint, how far
  left does the match extend?
* :meth:`SeedingEngine.count` / :meth:`SeedingEngine.locate` -- occurrence
  count and positions of a read substring.
* :meth:`SeedingEngine.last_seed` -- the forward-only selective-prefix query
  BWA-MEM2's third seeding round (LAST) performs.

LEP convention ("leaving", matching BWA's `bwt_smem1`): position ``p`` in
``(start, end)`` is an LEP iff extending the match from ``read[start:p]`` to
``read[start:p+1]`` changes the hit count; the match end ``end`` is always
an LEP.  This is exactly the set of right endpoints from which backward
searches must be launched for the SMEM set to be complete (§II-A).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.seeding.types import Mem


@dataclass(frozen=True)
class ForwardSearch:
    """Result of a forward search from a pivot.

    ``end``: exclusive end of the longest match starting at the pivot
    (``end == start`` when even the first character has too few hits).
    ``leps``: ascending LEP positions in ``(start, end]``; empty iff the
    match is empty.  The last entry is always ``end``.
    """

    start: int
    end: int
    leps: "tuple[int, ...]"

    @property
    def is_empty(self) -> bool:
        return self.end <= self.start


@dataclass
class EngineStats:
    """Work counters every engine maintains (ablation figures §III-B/F)."""

    forward_searches: int = 0
    backward_searches: int = 0
    pruned_backward_searches: int = 0
    merged_backward_searches: int = 0
    index_lookups: int = 0
    tree_root_fetches: int = 0
    nodes_visited: int = 0
    leaf_fetches: int = 0
    occ_queries: int = 0
    sa_lookups: int = 0
    #: Hit lists clipped by a locate limit (``max_hits_per_seed``): the
    #: seed keeps its true count but its positions are dropped.  Surfaced
    #: as the ``seeds.truncated`` telemetry counter and in the ``seed``
    #: CLI summary so the clipping is never silent.
    truncated_hit_lists: int = 0

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)

    def as_dict(self) -> "dict[str, int]":
        return dict(vars(self))

    def add_dict(self, values: "dict[str, int]") -> None:
        """Accumulate another stats struct's :meth:`as_dict` into this
        one (the :mod:`repro.parallel` aggregation path: every counter is
        additive, so per-worker totals merge exactly)."""
        for name, value in values.items():
            setattr(self, name, getattr(self, name, 0) + value)


class SeedingEngine(abc.ABC):
    """Abstract exact-match engine over the double-strand text."""

    #: Human-readable configuration name (used in benchmark tables).
    name: str = "engine"

    #: Shortest query the engine's primitives accept.  ERT engines cannot
    #: walk segments shorter than ``k``; :func:`~repro.seeding.algorithm.
    #: seed_read` skips reads below ``max(min_seed_len, min_query_len)``
    #: (no seed of the required length fits anyway) instead of letting a
    #: short read reach a primitive that would raise.
    min_query_len: int = 1

    def __init__(self) -> None:
        self.stats = EngineStats()

    # -- matching ------------------------------------------------------

    @abc.abstractmethod
    def forward_search(self, read: np.ndarray, start: int,
                       min_hits: int = 1) -> ForwardSearch:
        """Longest match of ``read[start:]`` with >= ``min_hits`` hits,
        plus its LEP positions (see module docstring for the convention)."""

    @abc.abstractmethod
    def backward_search(self, read: np.ndarray, end: int,
                        min_hits: int = 1) -> int:
        """Smallest ``s`` such that ``read[s:end]`` has >= ``min_hits``
        hits.  ``end`` itself is returned when even the single character
        ``read[end-1:end]`` is below the threshold."""

    @abc.abstractmethod
    def count(self, read: np.ndarray, start: int, end: int) -> int:
        """Occurrence count of ``read[start:end]`` in ``X``."""

    @abc.abstractmethod
    def locate(self, read: np.ndarray, start: int, end: int,
               limit: "int | None" = None) -> "tuple[int, list[int]]":
        """``(count, hits)`` for ``read[start:end]``: the true occurrence
        count and the sorted hit positions in ``X`` (at most ``limit`` of
        them when given).  One engine call yields both so that traffic
        accounting matches real implementations, which know the interval
        size from the search that produced the seed."""

    @abc.abstractmethod
    def last_seed(self, read: np.ndarray, start: int, min_len: int,
                  max_intv: int) -> "tuple[int, int] | None":
        """BWA's third-round query (`bwt_seed_strategy1`): scan forward from
        ``start``; return ``(end, count)`` for the shortest match with
        length >= ``min_len`` and count < ``max_intv``, or ``None`` if the
        match dies before becoming long and selective enough."""

    # -- backward sweep ---------------------------------------------------

    def backward_sweep(self, read: np.ndarray, leps: "tuple[int, ...]",
                       min_hits: int, prev_pivot: int,
                       use_pruning: bool) -> "list[Mem]":
        """Run the backward searches for one pivot's LEP set.

        LEPs are processed right-to-left; with ``use_pruning`` a search
        that reaches ``prev_pivot`` ends the sweep (§III-F) because every
        remaining MEM is provably contained in the one just found.  Engines
        may override this to batch work across searches -- the ERT engine's
        prefix-merged sweep (§III-B) resolves adjacent LEP pairs with a
        single tree traversal -- but must return the same MEM multiset
        modulo contained intervals.
        """
        mems = []
        for idx in range(len(leps) - 1, -1, -1):
            p = leps[idx]
            s = self.backward_search(read, p, min_hits)
            self.stats.backward_searches += 1
            if s < p:
                mems.append(Mem(s, p))
            if use_pruning and s <= prev_pivot:
                self.stats.pruned_backward_searches += idx
                break
        return mems

    # -- bookkeeping ----------------------------------------------------

    def begin_read(self) -> None:
        """Hook invoked once per read before seeding (engines may reset
        per-read scratch state)."""

    def begin_batch(self, reads: "list[np.ndarray]") -> None:
        """Hook invoked once per batch before seeding its reads (engines
        may precompute shared per-batch state, e.g. reverse complements
        in one pass).  Purely an optimization hook: results must be
        identical with or without it."""

    def reset_stats(self) -> None:
        self.stats.reset()
