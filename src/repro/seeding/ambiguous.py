"""Host-side seeding of ambiguous-base reads (paper §V).

Reads with non-ACGT bases never reach the accelerator; the host seeds
them instead.  Because the sanitized reference is pure ACGT, no exact
match can cross an ambiguous read base, so the read's maximal ACGT runs
can be seeded independently and their seeds re-offset into read
coordinates -- producing exactly the seeds the whole read would have
yielded if the engine understood ambiguity codes.
"""

from __future__ import annotations

from repro.seeding.algorithm import SeedingParams, seed_read
from repro.seeding.engine import SeedingEngine
from repro.seeding.types import Seed, SeedingResult
from repro.sequence.ambiguity import split_unambiguous_segments


def _shift(seed: Seed, offset: int) -> Seed:
    return Seed(read_start=seed.read_start + offset, length=seed.length,
                hits=seed.hits, hit_count=seed.hit_count)


def seed_ambiguous_read(engine: SeedingEngine, sequence: str,
                        params: "SeedingParams | None" = None
                        ) -> SeedingResult:
    """Seed a read that may contain ambiguity codes.

    Pure-ACGT reads take the normal path unchanged; otherwise each
    unambiguous segment is seeded separately and the results are merged
    with their offsets applied.
    """
    params = params or SeedingParams()
    combined = SeedingResult()
    for offset, codes in split_unambiguous_segments(sequence):
        if int(codes.size) < params.min_seed_len:
            continue  # too short to yield any reportable seed
        result = seed_read(engine, codes, params)
        combined.smems.extend(_shift(s, offset) for s in result.smems)
        combined.reseed_seeds.extend(_shift(s, offset)
                                     for s in result.reseed_seeds)
        combined.last_seeds.extend(_shift(s, offset)
                                   for s in result.last_seeds)
    return combined
