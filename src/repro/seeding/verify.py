"""Engine equivalence checking (the paper's bit-equivalence guarantee).

The paper's clinical-use argument rests on ERT seeding producing *exactly*
the seeds BWA-MEM2's FMD-index produces (§I, "binary equivalent").  These
helpers compare full :class:`~repro.seeding.types.SeedingResult` outputs
between any two engines, read by read, and raise with a precise diff on the
first divergence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.seeding.algorithm import SeedingParams, seed_read
from repro.seeding.engine import SeedingEngine


@dataclass
class ComparisonReport:
    """Outcome of comparing two engines over a batch of reads."""

    reads: int = 0
    seeds: int = 0
    mismatches: "list[str]" = None

    def __post_init__(self) -> None:
        if self.mismatches is None:
            self.mismatches = []

    @property
    def equivalent(self) -> bool:
        return not self.mismatches


def compare_engines(engine_a: SeedingEngine, engine_b: SeedingEngine,
                    reads: "list[np.ndarray]",
                    params: "SeedingParams | None" = None,
                    max_mismatches: int = 5) -> ComparisonReport:
    """Seed every read with both engines and compare canonical outputs."""
    params = params or SeedingParams()
    report = ComparisonReport()
    for i, read in enumerate(reads):
        result_a = seed_read(engine_a, read, params)
        result_b = seed_read(engine_b, read, params)
        key_a, key_b = result_a.key(), result_b.key()
        report.reads += 1
        report.seeds += len(key_a)
        if key_a != key_b:
            only_a = set(key_a) - set(key_b)
            only_b = set(key_b) - set(key_a)
            report.mismatches.append(
                f"read {i}: {engine_a.name} produced {len(key_a)} seeds, "
                f"{engine_b.name} produced {len(key_b)}; "
                f"only-{engine_a.name}={sorted(only_a)[:3]}, "
                f"only-{engine_b.name}={sorted(only_b)[:3]}")
            if len(report.mismatches) >= max_mismatches:
                break
    return report


def assert_equivalent(engine_a: SeedingEngine, engine_b: SeedingEngine,
                      reads: "list[np.ndarray]",
                      params: "SeedingParams | None" = None) -> ComparisonReport:
    """Like :func:`compare_engines` but raises on any divergence."""
    report = compare_engines(engine_a, engine_b, reads, params)
    if not report.equivalent:
        detail = "\n  ".join(report.mismatches)
        raise AssertionError(
            f"engines {engine_a.name} and {engine_b.name} diverged:\n  {detail}")
    return report
