"""Core value types shared across seeding engines."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Mem:
    """A maximal exact match in read coordinates: ``read[start:end]``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise ValueError(f"invalid MEM interval [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        return self.end - self.start

    def contains(self, other: "Mem") -> bool:
        """True if ``other`` lies fully inside this MEM."""
        return self.start <= other.start and other.end <= self.end


@dataclass(frozen=True)
class Seed:
    """A seed in the output format the paper's accelerator emits (§IV-E):
    (seed start position in read, seed length, list of hits in ``X``).

    ``hits`` are sorted positions in the double-strand text; map them to
    forward-strand coordinates with
    :meth:`repro.sequence.Reference.to_forward`.  ``hit_count`` is the true
    occurrence count even when ``hits`` was truncated by a locate limit.
    """

    read_start: int
    length: int
    hits: "tuple[int, ...]"
    hit_count: int

    @property
    def read_end(self) -> int:
        return self.read_start + self.length

    @property
    def interval(self) -> Mem:
        return Mem(self.read_start, self.read_end)


@dataclass
class SeedingResult:
    """Everything seeding produces for one read."""

    smems: "list[Seed]" = field(default_factory=list)
    reseed_seeds: "list[Seed]" = field(default_factory=list)
    last_seeds: "list[Seed]" = field(default_factory=list)

    @property
    def all_seeds(self) -> "list[Seed]":
        """All seeds, deduplicated by (start, length), sorted."""
        seen = {}
        for seed in self.smems + self.reseed_seeds + self.last_seeds:
            seen.setdefault((seed.read_start, seed.length), seed)
        return [seen[key] for key in sorted(seen)]

    def key(self) -> "tuple":
        """A canonical, comparable summary (for engine equivalence checks)."""
        return tuple(
            (s.read_start, s.length, s.hit_count, s.hits)
            for s in self.all_seeds)
