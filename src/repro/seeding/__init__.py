"""Engine-agnostic seeding: SMEM algorithm, reseeding, LAST, and the oracle.

BWA-MEM2's seeding has three stages (paper §V: "SMEM generation, reseeding,
and LAST").  This package implements all three *once*, against the abstract
:class:`~repro.seeding.engine.SeedingEngine` interface; the FMD-index and
the ERT each provide an engine.  Because both engines execute the same
algorithm skeleton, the paper's bit-equivalence claim ("100% identical
output") becomes a structural property here, and
:mod:`repro.seeding.verify` checks it against a brute-force oracle.
"""

from repro.seeding.algorithm import SeedingParams, generate_smems, seed_read
from repro.seeding.engine import EngineStats, ForwardSearch, SeedingEngine
from repro.seeding.oracle import OracleEngine, oracle_smems
from repro.seeding.types import Mem, Seed, SeedingResult
from repro.seeding.verify import assert_equivalent, compare_engines

__all__ = [
    "EngineStats",
    "ForwardSearch",
    "Mem",
    "OracleEngine",
    "Seed",
    "SeedingEngine",
    "SeedingParams",
    "SeedingResult",
    "assert_equivalent",
    "compare_engines",
    "generate_smems",
    "oracle_smems",
    "seed_read",
]
