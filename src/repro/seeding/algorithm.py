"""The canonical three-round seeding algorithm of BWA-MEM2.

Round 1 -- **SMEM generation** (§II-A): pivoted forward search recording
left-extension points (LEPs), one backward search per LEP, containment
filtering.  Backward searches run right-to-left so the §III-F pruning rule
("a search that reaches the previous pivot makes all remaining ones
redundant") applies; pruning is output-invariant, it only skips searches
whose MEMs are provably contained.

Round 2 -- **reseeding**: long, low-occurrence SMEMs are re-seeded from
their midpoint requiring at least ``occ + 1`` hits, recovering shorter
matches hidden inside a dominant long match.

Round 3 -- **LAST**: a forward-only greedy scan emitting the shortest
match from each position that is both long (``>= min_seed_len``) and
selective (``< max_mem_intv`` hits).

The same function drives any :class:`~repro.seeding.engine.SeedingEngine`,
which is how the repository realizes the paper's bit-equivalence guarantee
between FMD-index and ERT seeding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.seeding.engine import SeedingEngine
from repro.seeding.types import Mem, Seed, SeedingResult


@dataclass(frozen=True)
class SeedingParams:
    """Seeding parameters (defaults follow BWA-MEM at human scale).

    At the small synthetic-genome scales this reproduction runs, shorter
    ``min_seed_len`` values are common in tests; the defaults mirror the
    paper's configuration.
    """

    min_seed_len: int = 19
    use_pruning: bool = True
    reseed: bool = True
    split_factor: float = 1.5
    split_width: int = 10
    use_last: bool = True
    max_mem_intv: int = 20
    max_hits_per_seed: "int | None" = 500

    @property
    def split_len(self) -> int:
        """SMEMs at least this long are candidates for reseeding."""
        return int(self.min_seed_len * self.split_factor + 0.499)


def _pivot_mems(engine: SeedingEngine, read: np.ndarray, pivot: int,
                min_hits: int, prev_pivot: int,
                use_pruning: bool) -> "tuple[list[Mem], int, bool]":
    """Forward search from one pivot plus its backward searches.

    Returns the MEMs found and the end of the forward match (the next
    pivot).  Backward searches run right-to-left over the LEPs; with
    pruning on, a search reaching ``prev_pivot`` terminates the loop
    because every remaining MEM is contained in the one just found.
    """
    forward = engine.forward_search(read, pivot, min_hits)
    engine.stats.forward_searches += 1
    if forward.is_empty:
        return [], pivot + 1, True
    mems = engine.backward_sweep(read, forward.leps, min_hits, prev_pivot,
                                 use_pruning)
    return mems, forward.end, False


def filter_contained(mems: "list[Mem]") -> "list[Mem]":
    """Drop MEMs fully contained in another MEM (SMEM condition)."""
    out = []
    max_end = -1
    for mem in sorted(set(mems), key=lambda m: (m.start, -m.end)):
        if mem.end > max_end:
            out.append(mem)
            max_end = mem.end
    return out


def generate_smems(engine: SeedingEngine, read: np.ndarray,
                   params: "SeedingParams | None" = None,
                   pivot: "int | None" = None,
                   min_hits: int = 1) -> "list[Mem]":
    """Round 1: the SMEM set of ``read`` (all lengths; callers filter).

    With ``pivot`` given, only that single pivot is processed (reseeding
    uses this).  Otherwise pivots sweep the read: each forward match's end
    becomes the next pivot (§II-A).
    """
    params = params or SeedingParams()
    mems: "list[Mem]" = []
    if pivot is not None:
        found, _, _ = _pivot_mems(engine, read, pivot, min_hits, 0,
                                  params.use_pruning)
        return filter_contained(found)
    x = 0
    prev_pivot = 0
    n = int(read.size)
    while x < n:
        found, nxt, empty = _pivot_mems(engine, read, x, min_hits,
                                        prev_pivot, params.use_pruning)
        mems.extend(found)
        if nxt <= x:
            raise RuntimeError("engine failed to advance the pivot")
        # No match can cross a below-threshold character, so an empty
        # forward search moves the barrier past it; otherwise the barrier
        # for the next segment's backward searches is this pivot (§III-F).
        prev_pivot = x + 1 if empty else x
        x = nxt
    return filter_contained(mems)


def _make_seed(engine: SeedingEngine, read: np.ndarray, mem: Mem,
               params: SeedingParams) -> Seed:
    count, hits = engine.locate(read, mem.start, mem.end,
                                params.max_hits_per_seed)
    return Seed(read_start=mem.start, length=mem.length,
                hits=tuple(hits), hit_count=count)


def smems_to_seeds(engine: SeedingEngine, read: np.ndarray,
                   mems: "list[Mem]", params: SeedingParams) -> "list[Seed]":
    """Round-1 seed emission: length filter plus hit lookup."""
    return [_make_seed(engine, read, m, params) for m in mems
            if m.length >= params.min_seed_len]


def reseed_round(engine: SeedingEngine, read: np.ndarray,
                 smem_seeds: "list[Seed]",
                 params: SeedingParams) -> "list[Seed]":
    """Round 2: reseed long, low-occurrence SMEMs from their midpoint,
    requiring strictly more hits than the SMEM itself had."""
    out = []
    for seed in smem_seeds:
        if (seed.length >= params.split_len
                and seed.hit_count <= params.split_width):
            mid = (seed.read_start + seed.read_end) // 2
            extra = generate_smems(engine, read, params, pivot=mid,
                                   min_hits=seed.hit_count + 1)
            out.extend(_make_seed(engine, read, mem, params)
                       for mem in extra
                       if mem.length >= params.min_seed_len)
    return out


def last_round(engine: SeedingEngine, read: np.ndarray,
               params: SeedingParams) -> "list[Seed]":
    """Round 3: LAST -- greedy forward scan for short selective matches."""
    out = []
    x = 0
    n = int(read.size)
    while x + params.min_seed_len <= n:
        found = engine.last_seed(read, x, params.min_seed_len,
                                 params.max_mem_intv)
        if found is None:
            x += 1
            continue
        end, _count = found
        out.append(_make_seed(engine, read, Mem(x, end), params))
        x = end
    return out


#: How engine work counters surface as telemetry counter names.  Most map
#: mechanically under ``seeding.``; the gather-limit clip gets the
#: user-facing name the CLI and docs advertise.
_STAT_COUNTERS = {"truncated_hit_lists": "seeds.truncated"}


def _flush_engine_stats(engine: SeedingEngine,
                        before: "dict[str, int]") -> None:
    """Publish this read's engine-stat deltas into the metrics registry.

    Hot loops (tree walks, occ lookups) never call telemetry directly --
    they keep counting into :class:`~repro.seeding.engine.EngineStats` as
    they always have, and this one flush per read surfaces the deltas.
    """
    after = engine.stats.as_dict()
    telemetry.add_counters(
        {_STAT_COUNTERS.get(name, f"seeding.{name}"):
         after[name] - before.get(name, 0) for name in after})


def seed_read(engine: SeedingEngine, read: np.ndarray,
              params: "SeedingParams | None" = None) -> SeedingResult:
    """Run all three seeding rounds for one read.

    Reads shorter than ``max(min_seed_len, engine.min_query_len)`` yield
    an empty result without touching the engine: no seed of the required
    length fits in them, and engine primitives (the ERT walk in
    particular) reject segments shorter than ``k``.
    """
    params = params or SeedingParams()
    result = SeedingResult()
    if int(read.size) < max(params.min_seed_len, engine.min_query_len):
        if telemetry.enabled():
            telemetry.count("seeding.reads")
            telemetry.count("seeding.short_reads_skipped")
        return result
    engine.begin_read()
    if not telemetry.enabled():
        smems = generate_smems(engine, read, params)
        result.smems = smems_to_seeds(engine, read, smems, params)
        if params.reseed:
            result.reseed_seeds = reseed_round(engine, read, result.smems,
                                               params)
        if params.use_last:
            result.last_seeds = last_round(engine, read, params)
        return result
    before = engine.stats.as_dict()
    with telemetry.span("seed"):
        with telemetry.span("smem"):
            smems = generate_smems(engine, read, params)
            result.smems = smems_to_seeds(engine, read, smems, params)
        if params.reseed:
            with telemetry.span("reseed"):
                result.reseed_seeds = reseed_round(engine, read,
                                                   result.smems, params)
        if params.use_last:
            with telemetry.span("last"):
                result.last_seeds = last_round(engine, read, params)
    _flush_engine_stats(engine, before)
    telemetry.count("seeding.reads")
    all_seeds = result.all_seeds
    telemetry.count("seeds.emitted", len(all_seeds))
    for seed in all_seeds:
        telemetry.observe("seed.length", seed.length)
        telemetry.observe("seed.hit_count", seed.hit_count)
    return result
