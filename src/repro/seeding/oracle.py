"""Brute-force ground truth for exact-match seeding.

Two independent artifacts live here:

* :func:`oracle_smems` -- a from-first-principles SMEM computation (longest
  match from every read position + containment filter).  It shares *no*
  code with the pivot/LEP algorithm, so agreement between the two is strong
  evidence of correctness.
* :class:`OracleEngine` -- a :class:`~repro.seeding.engine.SeedingEngine`
  backed by plain string searching, usable anywhere the FMD or ERT engines
  are; it lets the full three-round pipeline be cross-checked engine against
  engine.
"""

from __future__ import annotations

import numpy as np

from repro.seeding.engine import ForwardSearch, SeedingEngine
from repro.seeding.types import Mem
from repro.sequence.alphabet import decode
from repro.sequence.reference import Reference


def count_occurrences(text: str, pattern: str) -> int:
    """Number of (possibly overlapping) occurrences of ``pattern``."""
    if not pattern:
        return len(text) + 1
    count = 0
    pos = text.find(pattern)
    while pos != -1:
        count += 1
        pos = text.find(pattern, pos + 1)
    return count


def find_occurrences(text: str, pattern: str,
                     limit: "int | None" = None) -> "list[int]":
    """Sorted start positions of (overlapping) occurrences."""
    positions = []
    pos = text.find(pattern)
    while pos != -1:
        positions.append(pos)
        if limit is not None and len(positions) >= limit:
            break
        pos = text.find(pattern, pos + 1)
    return positions


def oracle_smems(reference: Reference, read: np.ndarray,
                 min_len: int = 1, min_hits: int = 1) -> "list[Mem]":
    """SMEMs of ``read`` computed directly from the definition (§II-A).

    For every read position ``i`` the longest match ``[i, e_i)`` with at
    least ``min_hits`` occurrences in the double-strand text is found; MEMs
    contained in another are dropped; survivors shorter than ``min_len``
    are dropped.  ``e_i`` is non-decreasing in ``i``, so a two-pointer scan
    needs only O(read length) count queries.
    """
    text = decode(reference.both_strands)
    read_str = decode(read)
    n = len(read_str)
    mems = []
    e = 0
    for i in range(n):
        e = max(e, i)
        while (e < n
               and count_occurrences(text, read_str[i:e + 1]) >= min_hits):
            e += 1
        if e > i:
            mems.append(Mem(i, e))
    # Containment filter (sweep over start-ascending, end-descending order).
    out = []
    max_end = -1
    for mem in sorted(set(mems), key=lambda m: (m.start, -m.end)):
        if mem.end > max_end:
            out.append(mem)
            max_end = mem.end
    return [m for m in out if m.length >= min_len]


class OracleEngine(SeedingEngine):
    """A seeding engine backed by plain string searching."""

    name = "oracle"

    def __init__(self, reference: Reference) -> None:
        super().__init__()
        self.reference = reference
        self.text = decode(reference.both_strands)

    def _segment(self, read: np.ndarray, start: int, end: int) -> str:
        return decode(read[start:end])

    def forward_search(self, read: np.ndarray, start: int,
                       min_hits: int = 1) -> ForwardSearch:
        n = int(read.size)
        if count_occurrences(self.text, self._segment(read, start, start + 1)) < min_hits:
            return ForwardSearch(start, start, ())
        leps = []
        prev_count = count_occurrences(self.text,
                                       self._segment(read, start, start + 1))
        e = start + 1
        while e < n:
            nxt = count_occurrences(self.text,
                                    self._segment(read, start, e + 1))
            if nxt != prev_count:
                leps.append(e)
            if nxt < min_hits:
                return ForwardSearch(start, e, tuple(leps))
            prev_count = nxt
            e += 1
        if not leps or leps[-1] != e:
            leps.append(e)
        return ForwardSearch(start, e, tuple(leps))

    def backward_search(self, read: np.ndarray, end: int,
                        min_hits: int = 1) -> int:
        if count_occurrences(self.text, self._segment(read, end - 1, end)) < min_hits:
            return end
        s = end - 1
        while s > 0:
            if count_occurrences(self.text,
                                 self._segment(read, s - 1, end)) < min_hits:
                break
            s -= 1
        return s

    def count(self, read: np.ndarray, start: int, end: int) -> int:
        return count_occurrences(self.text, self._segment(read, start, end))

    def locate(self, read: np.ndarray, start: int, end: int,
               limit: "int | None" = None) -> "tuple[int, list[int]]":
        pattern = self._segment(read, start, end)
        count = count_occurrences(self.text, pattern)
        # Engine-wide contract: seeds with more hits than the limit carry
        # the count but no positions (BWA's chaining skips them anyway).
        if limit is not None and count > limit:
            self.stats.truncated_hit_lists += 1
            return count, []
        return count, find_occurrences(self.text, pattern)

    def last_seed(self, read: np.ndarray, start: int, min_len: int,
                  max_intv: int) -> "tuple[int, int] | None":
        n = int(read.size)
        e = start + 1
        count = count_occurrences(self.text, self._segment(read, start, e))
        while True:
            if count < 1:
                return None
            if e - start >= min_len and count < max_intv:
                return e, count
            if e >= n:
                return None
            e += 1
            count = count_occurrences(self.text,
                                      self._segment(read, start, e))
