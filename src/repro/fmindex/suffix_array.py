"""Suffix array construction and the Burrows-Wheeler transform.

The suffix array is built with numpy prefix doubling (O(n log^2 n) with
vectorized inner loops), fast enough for the multi-megabase synthetic
genomes this reproduction runs at.  The comparison convention is the usual
one for FM-indexes: a suffix that is a proper prefix of another sorts
*first*, equivalent to terminating the text with a unique smallest sentinel.
"""

from __future__ import annotations

import numpy as np


def suffix_array(text: np.ndarray, method: str = "doubling") -> np.ndarray:
    """Return the suffix array of ``text`` (any non-negative int codes).

    ``sa[r]`` is the start position of the ``r``-th smallest suffix, where a
    suffix that runs off the end compares as smaller than any extension of
    it (implicit terminal sentinel).

    ``method`` selects the construction algorithm: ``"doubling"`` (numpy
    prefix doubling, the default) or ``"sais"`` (linear-time induced
    sorting, :mod:`repro.fmindex.sais`).  Both produce identical output.

    >>> suffix_array(np.array([1, 0, 1, 0])).tolist()  # "baba"
    [3, 1, 2, 0]
    """
    if method == "sais":
        from repro.fmindex.sais import sais_suffix_array
        return sais_suffix_array(text)
    if method != "doubling":
        raise ValueError(f"unknown construction method {method!r}")
    arr = np.asarray(text, dtype=np.int64)
    n = arr.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if arr.min() < 0:
        raise ValueError("text codes must be non-negative")
    rank = arr.copy()
    tmp = np.empty(n, dtype=np.int64)
    k = 1
    order = np.argsort(rank, kind="stable")
    while True:
        second = np.full(n, -1, dtype=np.int64)
        if k < n:
            second[: n - k] = rank[k:]
        order = np.lexsort((second, rank))
        tmp[order[0]] = 0
        firsts = rank[order]
        seconds = second[order]
        changed = (firsts[1:] != firsts[:-1]) | (seconds[1:] != seconds[:-1])
        tmp[order[1:]] = np.cumsum(changed)
        rank[:] = tmp
        if rank[order[-1]] == n - 1:
            return order.astype(np.int64)
        k *= 2


def bwt_from_sa(text: np.ndarray, sa: np.ndarray, sentinel: int) -> np.ndarray:
    """Compute the BWT of ``text`` terminated by an implicit sentinel.

    The logical text is ``text + [sentinel]``; the returned BWT has length
    ``len(text) + 1`` and contains ``sentinel`` exactly once (at the row of
    the suffix starting at position 0).  The row order is: the sentinel
    suffix first, then the rows given by ``sa``.
    """
    arr = np.asarray(text)
    n = arr.size
    bwt = np.empty(n + 1, dtype=arr.dtype)
    # Row 0 is the sentinel-only suffix; its preceding char is text[-1].
    bwt[0] = arr[n - 1] if n else sentinel
    prev = np.asarray(sa, dtype=np.int64) - 1
    chars = np.where(prev >= 0, arr[prev], sentinel)
    bwt[1:] = chars
    return bwt
