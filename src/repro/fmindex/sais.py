"""SA-IS: linear-time suffix array construction by induced sorting.

Nong, Zhang & Chan (2009).  Production FM-index builds (including
BWA-MEM2's) use linear-time construction; the numpy prefix-doubling in
:mod:`repro.fmindex.suffix_array` is asymptotically worse but vectorizes
better at this reproduction's scales.  Both are provided and
cross-validated against each other (``method=`` parameter on
:func:`repro.fmindex.suffix_array.suffix_array`), which is itself a
strong correctness check: two structurally unrelated algorithms must
agree on every input.

Same comparison convention as the rest of the package: a suffix that is
a proper prefix of another sorts first (implicit terminal sentinel).
"""

from __future__ import annotations

import numpy as np


def sais_suffix_array(text: np.ndarray) -> np.ndarray:
    """Suffix array of ``text`` via SA-IS (implicit-sentinel convention)."""
    arr = np.asarray(text, dtype=np.int64)
    if arr.size == 0:
        return np.empty(0, dtype=np.int64)
    if arr.size and arr.min() < 0:
        raise ValueError("text codes must be non-negative")
    # Shift up so a unique 0 sentinel can terminate the string.
    s = np.empty(arr.size + 1, dtype=np.int64)
    s[:-1] = arr + 1
    s[-1] = 0
    sa = _sais(s.tolist(), int(s.max()) + 1)
    # Row 0 is the sentinel suffix; the rest is the answer.
    return np.array(sa[1:], dtype=np.int64)


def _classify(s: "list[int]") -> "list[bool]":
    """True where the suffix is S-type (smaller than its successor)."""
    n = len(s)
    stype = [False] * n
    stype[n - 1] = True
    for i in range(n - 2, -1, -1):
        if s[i] < s[i + 1] or (s[i] == s[i + 1] and stype[i + 1]):
            stype[i] = True
    return stype


def _is_lms(stype: "list[bool]", i: int) -> bool:
    return i > 0 and stype[i] and not stype[i - 1]


def _bucket_sizes(s: "list[int]", alphabet: int) -> "list[int]":
    sizes = [0] * alphabet
    for c in s:
        sizes[c] += 1
    return sizes


def _bucket_heads(sizes: "list[int]") -> "list[int]":
    heads = []
    total = 0
    for size in sizes:
        heads.append(total)
        total += size
    return heads


def _bucket_tails(sizes: "list[int]") -> "list[int]":
    tails = []
    total = 0
    for size in sizes:
        total += size
        tails.append(total - 1)
    return tails


def _induce(s: "list[int]", sa: "list[int]", stype: "list[bool]",
            sizes: "list[int]") -> None:
    """Induce L-type then S-type suffixes from the placed LMS suffixes."""
    n = len(s)
    heads = _bucket_heads(sizes)
    for i in range(n):
        j = sa[i] - 1
        if sa[i] > 0 and not stype[j]:
            sa[heads[s[j]]] = j
            heads[s[j]] += 1
    tails = _bucket_tails(sizes)
    for i in range(n - 1, -1, -1):
        j = sa[i] - 1
        if sa[i] > 0 and stype[j]:
            sa[tails[s[j]]] = j
            tails[s[j]] -= 1


def _sais(s: "list[int]", alphabet: int) -> "list[int]":
    n = len(s)
    if n == 1:
        return [0]
    if n == 2:
        return [1, 0] if s[0] >= s[1] else [0, 1]

    stype = _classify(s)
    sizes = _bucket_sizes(s, alphabet)
    lms = [i for i in range(1, n) if _is_lms(stype, i)]

    # Step 1: rough placement of LMS suffixes, then induction.
    sa = [-1] * n
    tails = _bucket_tails(sizes)
    for i in lms:
        sa[tails[s[i]]] = i
        tails[s[i]] -= 1
    _induce(s, sa, stype, sizes)

    # Step 2: name LMS substrings in their induced order.
    ordered_lms = [i for i in sa if _is_lms(stype, i)]
    names = [-1] * n
    current = 0
    names[ordered_lms[0]] = 0
    for prev, cur in zip(ordered_lms, ordered_lms[1:]):
        if not _lms_substrings_equal(s, stype, prev, cur):
            current += 1
        names[cur] = current

    # Step 3: recurse if names are not yet unique.
    reduced = [names[i] for i in lms]
    if current + 1 == len(lms):
        order = [0] * len(lms)
        for idx, name in enumerate(reduced):
            order[name] = idx
    else:
        order = _sais(reduced, current + 1)

    # Step 4: exact placement of LMS suffixes, then final induction.
    sa = [-1] * n
    tails = _bucket_tails(sizes)
    for idx in range(len(lms) - 1, -1, -1):
        i = lms[order[idx]]
        sa[tails[s[i]]] = i
        tails[s[i]] -= 1
    _induce(s, sa, stype, sizes)
    return sa


def _lms_substrings_equal(s: "list[int]", stype: "list[bool]",
                          a: int, b: int) -> bool:
    """Compare two LMS substrings (inclusive of their terminating LMS)."""
    n = len(s)
    offset = 0
    while True:
        ia, ib = a + offset, b + offset
        if ia >= n or ib >= n:
            return False
        if s[ia] != s[ib] or stype[ia] != stype[ib]:
            return False
        if offset > 0 and (_is_lms(stype, ia) or _is_lms(stype, ib)):
            return _is_lms(stype, ia) and _is_lms(stype, ib)
        offset += 1
