"""FMD-index seeding engine: character-at-a-time bi-interval extension.

This is the BWA-MEM/BWA-MEM2 behaviour the paper profiles in §II: every
base pair of the read costs occurrence-table lookups that land in random
parts of a multi-gigabyte structure, which is exactly the bandwidth
bottleneck ERT removes.  The engine reports every occurrence-block and
suffix-array access through the index's attached tracer.
"""

from __future__ import annotations

import numpy as np

from repro.fmindex.fmd import FmdIndex
from repro.seeding.engine import ForwardSearch, SeedingEngine


class FmdSeedingEngine(SeedingEngine):
    """Seeding engine over an :class:`~repro.fmindex.fmd.FmdIndex`."""

    def __init__(self, index: FmdIndex) -> None:
        super().__init__()
        self.index = index
        self.name = f"fmd-{index.config.name}"

    # -- engine interface ------------------------------------------------

    def forward_search(self, read: np.ndarray, start: int,
                       min_hits: int = 1) -> ForwardSearch:
        n = int(read.size)
        bi = self.index.init_interval(int(read[start]))
        if bi.s < min_hits:
            return ForwardSearch(start, start, ())
        leps = []
        e = start + 1
        while e < n:
            nxt = self.index.forward_extend(bi, int(read[e]))
            self.stats.occ_queries += 1
            if nxt.s != bi.s:
                leps.append(e)
            if nxt.s < min_hits:
                return ForwardSearch(start, e, tuple(leps))
            bi = nxt
            e += 1
        if not leps or leps[-1] != e:
            leps.append(e)
        return ForwardSearch(start, e, tuple(leps))

    def backward_search(self, read: np.ndarray, end: int,
                        min_hits: int = 1) -> int:
        bi = self.index.init_interval(int(read[end - 1]))
        if bi.s < min_hits:
            return end
        s = end - 1
        while s > 0:
            nxt = self.index.backward_extend(bi, int(read[s - 1]))
            self.stats.occ_queries += 1
            if nxt.s < min_hits:
                break
            bi = nxt
            s -= 1
        return s

    def count(self, read: np.ndarray, start: int, end: int) -> int:
        return self.index.count(read[start:end])

    def locate(self, read: np.ndarray, start: int, end: int,
               limit: "int | None" = None) -> "tuple[int, list[int]]":
        bi = self.index.pattern_interval(read[start:end])
        if bi.is_empty:
            return 0, []
        # Engine-wide contract: seeds with more hits than the limit carry
        # the count but no positions (BWA's chaining skips them anyway).
        if limit is not None and bi.s > limit:
            self.stats.truncated_hit_lists += 1
            return bi.s, []
        hits = self.index.locate(bi)
        self.stats.sa_lookups += len(hits)
        return bi.s, hits

    def last_seed(self, read: np.ndarray, start: int, min_len: int,
                  max_intv: int) -> "tuple[int, int] | None":
        n = int(read.size)
        bi = self.index.init_interval(int(read[start]))
        if bi.is_empty:
            return None
        e = start + 1
        while True:
            if e - start >= min_len and bi.s < max_intv:
                return e, bi.s
            if e >= n:
                return None
            nxt = self.index.forward_extend(bi, int(read[e]))
            self.stats.occ_queries += 1
            if nxt.is_empty:
                return None
            bi = nxt
            e += 1
