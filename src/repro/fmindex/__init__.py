"""FMD-index substrate: the baseline index BWA-MEM / BWA-MEM2 seed with.

Implements, from scratch:

* :mod:`repro.fmindex.suffix_array` -- suffix array construction
  (numpy prefix-doubling) and the Burrows-Wheeler transform;
* :mod:`repro.fmindex.fmd` -- the bidirectional FMD-index of Li (2012):
  count table, checkpointed occurrence table with a configurable compression
  layout (BWA-MEM's 128-positions-per-block vs BWA-MEM2's 64), sampled
  suffix array with LF-walk locate, and bi-interval backward/forward
  extension over the double-strand text ``X = R . revcomp(R)``;
* :mod:`repro.fmindex.engine` -- the :class:`FmdSeedingEngine` adapter that
  plugs the FMD-index into the engine-agnostic SMEM algorithm of
  :mod:`repro.seeding`.

Memory traffic is reported through :mod:`repro.memsim` so the paper's
Fig 12 (requests and bytes per read) can be regenerated.
"""

from repro.fmindex.fmd import BiInterval, FmdConfig, FmdIndex
from repro.fmindex.engine import FmdSeedingEngine
from repro.fmindex.suffix_array import bwt_from_sa, suffix_array

__all__ = [
    "BiInterval",
    "FmdConfig",
    "FmdIndex",
    "FmdSeedingEngine",
    "bwt_from_sa",
    "suffix_array",
]
