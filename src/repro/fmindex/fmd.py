"""The bidirectional FMD-index (Li, 2012) with a byte-accurate layout model.

The index is built over the double-strand text ``X = R . revcomp(R)``
terminated by a sentinel, exactly like BWA's.  Because ``X`` is its own
reverse complement, one index supports both backward extension (prepending a
character) and forward extension (appending), by tracking *bi-intervals*:

    ``BiInterval(k, l, s)`` -- ``[k, k+s)`` is the suffix-array interval of
    the pattern ``P`` and ``[l, l+s)`` the interval of ``revcomp(P)``.

Two storage layouts are modelled (paper §II-B/§II-C): BWA-MEM's highly
compressed occurrence table and BWA-MEM2's cacheline-sized checkpoint
blocks.  Every occurrence-table and suffix-array access is reported to an
attached :class:`~repro.memsim.trace.MemoryTracer`, which is how the paper's
"68.5 KB of index data per read" style measurements (Figs 1 and 12) are
reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memsim.trace import AddressSpace, MemoryTracer
from repro.sequence.reference import Reference
from repro.fmindex.suffix_array import bwt_from_sa, suffix_array

#: Sentinel code used in the BWT array (never a valid base).
SENTINEL = 4

#: Phase tags used for traffic attribution.
PHASE_OCC = "occ_lookup"
PHASE_SA = "sa_lookup"


@dataclass(frozen=True)
class FmdConfig:
    """Storage layout of the FMD-index.

    ``occ_positions_per_block`` BWT positions share one checkpoint block of
    ``occ_block_bytes`` bytes (checkpoint counts for all four bases plus the
    2-bit-packed BWT slice).  The suffix array stores one
    ``sa_entry_bytes``-byte entry for every ``sa_sample``-th text position;
    locating a hit walks LF until it lands on a sampled position.
    """

    name: str = "bwa-mem2"
    occ_positions_per_block: int = 64
    occ_block_bytes: int = 64
    sa_sample: int = 8
    sa_entry_bytes: int = 5

    def __post_init__(self) -> None:
        if self.occ_positions_per_block <= 0:
            raise ValueError("occ_positions_per_block must be positive")
        if self.sa_sample <= 0:
            raise ValueError("sa_sample must be positive")

    @classmethod
    def bwa_mem(cls) -> "FmdConfig":
        """BWA-MEM v0.7.17-style layout: 128 positions per 64 B block,
        SA sampled every 32 positions with 4 B entries (~4.3 GB at human
        scale)."""
        return cls(name="bwa-mem", occ_positions_per_block=128,
                   occ_block_bytes=64, sa_sample=32, sa_entry_bytes=4)

    @classmethod
    def bwa_mem2(cls) -> "FmdConfig":
        """BWA-MEM2-style layout: 64 positions per 64 B checkpoint block,
        SA sampled every 8 positions with 5 B entries (~10 GB at human
        scale, §II-C)."""
        return cls(name="bwa-mem2", occ_positions_per_block=64,
                   occ_block_bytes=64, sa_sample=8, sa_entry_bytes=5)


@dataclass(frozen=True)
class BiInterval:
    """A bi-directional suffix-array interval (Li 2012).

    ``k``: start of the interval of the pattern; ``l``: start of the
    interval of its reverse complement; ``s``: shared interval size
    (the number of occurrences of the pattern in ``X``).
    """

    k: int
    l: int
    s: int

    @property
    def is_empty(self) -> bool:
        return self.s <= 0

    def swapped(self) -> "BiInterval":
        """The bi-interval of the reverse-complemented pattern."""
        return BiInterval(self.l, self.k, self.s)


class FmdIndex:
    """FMD-index over a reference's double-strand text."""

    def __init__(self, reference: Reference,
                 config: "FmdConfig | None" = None,
                 space: "AddressSpace | None" = None) -> None:
        self.reference = reference
        self.config = config or FmdConfig.bwa_mem2()
        self.tracer: "MemoryTracer | None" = None

        text = reference.both_strands
        self.text = text
        self.n = int(text.size)  # 2N: both strands, excluding sentinel
        sa_text = suffix_array(text)
        # Full SA in BWT-row coordinates: row 0 is the sentinel suffix.
        self.sa = np.empty(self.n + 1, dtype=np.int64)
        self.sa[0] = self.n
        self.sa[1:] = sa_text
        self.bwt = bwt_from_sa(text, sa_text, SENTINEL)
        self.sentinel_row = int(np.nonzero(self.bwt == SENTINEL)[0][0])

        # Count table C over the order $ < A < C < G < T:
        # C[c] = number of suffixes starting with a symbol smaller than base c.
        base_counts = np.bincount(text, minlength=4).astype(np.int64)
        self.counts = base_counts
        self._c_table = np.empty(4, dtype=np.int64)
        acc = 1  # the sentinel suffix
        for c in range(4):
            self._c_table[c] = acc
            acc += base_counts[c]

        # Occurrence checkpoints every `occ_positions_per_block` BWT rows.
        ppb = self.config.occ_positions_per_block
        n_rows = self.n + 1
        self._ppb = ppb
        self.n_blocks = (n_rows + ppb - 1) // ppb
        cp = np.zeros((self.n_blocks + 1, 4), dtype=np.int64)
        for b in range(self.n_blocks):
            block = self.bwt[b * ppb:(b + 1) * ppb]
            cp[b + 1] = cp[b] + np.bincount(
                block[block != SENTINEL], minlength=4)
        self._occ_cp = cp

        # Byte-accurate region layout for traffic accounting (Fig 1b sizes).
        self.space = space or AddressSpace()
        self.occ_region = self.space.allocate(
            f"fmd.{self.config.name}.occ",
            self.n_blocks * self.config.occ_block_bytes)
        n_sa_entries = (self.n + self.config.sa_sample) // self.config.sa_sample
        self.sa_region = self.space.allocate(
            f"fmd.{self.config.name}.sa",
            n_sa_entries * self.config.sa_entry_bytes)

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def index_bytes(self) -> "dict[str, int]":
        """Byte footprint per component (occurrence table, suffix array)."""
        return {"occ": self.occ_region.size, "sa": self.sa_region.size,
                "total": self.occ_region.size + self.sa_region.size}

    # ------------------------------------------------------------------
    # Tracing helpers
    # ------------------------------------------------------------------

    def attach_tracer(self, tracer: "MemoryTracer | None") -> None:
        """Attach (or detach with ``None``) a memory tracer."""
        self.tracer = tracer

    def _trace_occ_blocks(self, rows: "tuple[int, ...]") -> None:
        if self.tracer is None:
            return
        seen = set()
        for row in rows:
            block = row // self._ppb
            if block in seen:
                continue
            seen.add(block)
            self.tracer.access(
                self.occ_region.base + block * self.config.occ_block_bytes,
                self.config.occ_block_bytes, PHASE_OCC, self.occ_region.name)

    def _trace_sa_entry(self, text_pos: int) -> None:
        if self.tracer is None:
            return
        entry = text_pos // self.config.sa_sample
        self.tracer.access(
            self.sa_region.base + entry * self.config.sa_entry_bytes,
            self.config.sa_entry_bytes, PHASE_SA, self.sa_region.name)

    # ------------------------------------------------------------------
    # Core FM operations
    # ------------------------------------------------------------------

    def occ(self, base: int, row: int) -> int:
        """Occurrences of ``base`` in ``bwt[0:row]`` (no traffic recorded;
        callers that model memory go through :meth:`backward_extend`)."""
        block = row // self._ppb
        start = block * self._ppb
        extra = int(np.count_nonzero(self.bwt[start:row] == base))
        return int(self._occ_cp[block, base]) + extra

    def _occ_sentinel(self, row: int) -> int:
        return 1 if self.sentinel_row < row else 0

    def full_interval(self) -> BiInterval:
        """The bi-interval of the empty pattern (every suffix)."""
        return BiInterval(0, 0, self.n + 1)

    def init_interval(self, base: int) -> BiInterval:
        """Bi-interval of a single-character pattern (no memory traffic:
        the C table is tiny and register-resident)."""
        k = int(self._c_table[base])
        l = int(self._c_table[3 - base])
        return BiInterval(k, l, int(self.counts[base]))

    def backward_extend(self, bi: BiInterval, base: int) -> BiInterval:
        """Bi-interval of ``base + P`` given the bi-interval of ``P``.

        Costs up to two occurrence-block reads (at rows ``k`` and
        ``k + s``), coalesced when both fall in one checkpoint block --
        mirroring BWA-MEM2's one-cacheline-per-boundary layout.
        """
        if bi.is_empty:
            raise ValueError("cannot extend an empty interval")
        k, l, s = bi.k, bi.l, bi.s
        self._trace_occ_blocks((k, k + s))
        occ_lo = [self.occ(c, k) for c in range(4)]
        occ_hi = [self.occ(c, k + s) for c in range(4)]
        cnt = [occ_hi[c] - occ_lo[c] for c in range(4)]
        cnt_sentinel = self._occ_sentinel(k + s) - self._occ_sentinel(k)
        new_k = int(self._c_table[base]) + occ_lo[base]
        new_l = l + cnt_sentinel + sum(cnt[y] for y in range(4) if y > base)
        return BiInterval(new_k, new_l, cnt[base])

    def forward_extend(self, bi: BiInterval, base: int) -> BiInterval:
        """Bi-interval of ``P + base`` given the bi-interval of ``P``."""
        return self.backward_extend(bi.swapped(), 3 - base).swapped()

    # ------------------------------------------------------------------
    # Pattern queries
    # ------------------------------------------------------------------

    def pattern_interval(self, codes: np.ndarray) -> BiInterval:
        """Bi-interval of an entire pattern (backward search)."""
        arr = np.asarray(codes)
        if arr.size == 0:
            return self.full_interval()
        bi = self.init_interval(int(arr[-1]))
        for c in arr[-2::-1]:
            if bi.is_empty:
                return bi
            bi = self.backward_extend(bi, int(c))
        return bi

    def count(self, codes: np.ndarray) -> int:
        """Number of occurrences of a pattern in ``X``."""
        return max(0, self.pattern_interval(codes).s)

    def locate(self, bi: BiInterval, limit: "int | None" = None) -> "list[int]":
        """Text positions (in ``X``) of the pattern with bi-interval ``bi``.

        Models BWA's sampled suffix array: each hit costs ``SA[row] mod d``
        LF steps (one occurrence-block read each) plus the final sampled-SA
        entry read.  Positions are returned sorted.
        """
        rows = range(bi.k, bi.k + bi.s)
        if limit is not None:
            rows = list(rows)[:limit]
        positions = []
        d = self.config.sa_sample
        for row in rows:
            pos = int(self.sa[row])
            if pos == self.n:  # sentinel suffix: not a real hit
                continue
            steps = pos % d
            if self.tracer is not None:
                cur = row
                for _ in range(steps):
                    # One LF step: read the checkpoint block holding `cur`.
                    self._trace_occ_blocks((cur,))
                    cur = self._lf(cur)
                self._trace_sa_entry(pos - steps)
            positions.append(pos)
        return sorted(positions)

    def _lf(self, row: int) -> int:
        """One LF-mapping step: row of the suffix one position earlier."""
        base = int(self.bwt[row])
        if base == SENTINEL:
            return 0
        return int(self._c_table[base]) + self.occ(base, row)
