"""The batched lane-masked ERT walk.

A :class:`Lanes` object holds the walk state of many concurrent tree
walks as parallel arrays (one row per lane).  :func:`step` advances every
lane in an index set using numpy gathers over the
:class:`~repro.kernels.flat.FlatTrees` arena -- the vectorized
equivalent of :meth:`repro.core.walker.TreeCursor.advance` -- but at
*node-run* granularity, which is exactly where the ERT's multi-character
lookup (§III-A2) pays off for a software kernel too:

* LEAF lanes resolve their whole remaining reference comparison (early
  path compression) with one block compare against the text;
* UNIFORM lanes resolve the node's whole merged character run with one
  block compare against the chars pool;
* DIVERGE lanes consume one character: gather the chosen child, honour
  ``min_hits``, and report hit-count changes (the LEP signal).

Hit counts are constant inside a LEAF/UNIFORM run, so no LEP events and
no count updates can occur there; only DIVERGE steps change counts.
Dead lanes stop *at* the failing character with their state otherwise
unchanged, exactly like the scalar cursor's failed ``advance`` -- the
caller reads the final ``nid``/``count`` for eager leaf gathering.
:func:`drain` runs lanes to exhaustion, recording (lane, position) LEP
events.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.flat import KIND_DIVERGE, KIND_LEAF, KIND_UNIFORM, FlatTrees


class Lanes:
    """Structure-of-arrays walk state for a batch of lanes."""

    __slots__ = ("nid", "within", "depth", "count", "min_hits",
                 "cur", "stop", "alive", "steps", "occ_live", "occ_slots")

    def __init__(self, n: int) -> None:
        self.nid = np.zeros(n, dtype=np.int64)
        self.within = np.zeros(n, dtype=np.int64)
        self.depth = np.zeros(n, dtype=np.int64)
        self.count = np.zeros(n, dtype=np.int64)
        self.min_hits = np.ones(n, dtype=np.int64)
        #: Absolute cursor / end offset into the walk sequence.
        self.cur = np.zeros(n, dtype=np.int64)
        self.stop = np.zeros(n, dtype=np.int64)
        self.alive = np.zeros(n, dtype=bool)
        #: Characters consumed by walk advances, per lane.  Plain
        #: accumulators, never telemetry calls (ERT007/ERT017): the
        #: batch driver folds them into its KernelBatchStats and
        #: flushes once per batch.
        self.steps = np.zeros(n, dtype=np.int64)
        #: Occupancy accumulators: live lanes stepped / lane slots
        #: allocated, summed per walk round by :func:`drain`.
        self.occ_live = 0
        self.occ_slots = 0


def _run_lengths(eq: np.ndarray) -> np.ndarray:
    """Length of the leading all-True run per row."""
    return np.logical_and.accumulate(eq, axis=1).sum(axis=1)


def _step_small(flat: FlatTrees, text: np.ndarray, seq: np.ndarray,
                lanes: Lanes, idx: np.ndarray
                ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """:func:`step` for a handful of lanes: per-lane Python dispatch is
    cheaper than ~30 numpy ops once the batch has drained down to a few
    stragglers (deep-repeat LAST scans, late drain rounds)."""
    adv = np.zeros(idx.size, dtype=np.int64)
    ok = np.zeros(idx.size, dtype=bool)
    changed = np.zeros(idx.size, dtype=bool)
    is_run = np.zeros(idx.size, dtype=bool)
    for e in range(idx.size):
        g = int(idx[e])
        nid = int(lanes.nid[g])
        kind = int(flat.kind[nid])
        cur = int(lanes.cur[g])
        rem = int(lanes.stop[g]) - cur
        if kind == KIND_DIVERGE:
            ch = int(flat.children[nid, int(seq[cur])])
            if ch >= 0:
                cnt = int(flat.count[ch])
                if cnt >= int(lanes.min_hits[g]):
                    adv[e] = 1
                    ok[e] = True
                    changed[e] = cnt != int(lanes.count[g])
                    lanes.nid[g] = ch
                    lanes.within[g] = 0
                    lanes.count[g] = cnt
                    lanes.depth[g] += 1
            continue
        is_run[e] = True
        if kind == KIND_LEAF:
            t0 = int(flat.leaf_text0[nid]) + flat.k + int(lanes.depth[g])
            w = min(rem, int(text.size) - t0)
            run = 0
            if w > 0:
                neq = np.nonzero(seq[cur:cur + w] != text[t0:t0 + w])[0]
                run = int(neq[0]) if neq.size else w
            adv[e] = run
            ok[e] = run == rem
            lanes.within[g] += run
            lanes.depth[g] += run
        else:  # KIND_UNIFORM
            within = int(lanes.within[g])
            urem = int(flat.chars_len[nid]) - within
            w = min(urem, rem)
            run = 0
            if w > 0:
                c0 = int(flat.chars_off[nid]) + within
                neq = np.nonzero(seq[cur:cur + w]
                                 != flat.chars_pool[c0:c0 + w])[0]
                run = int(neq[0]) if neq.size else w
            adv[e] = run
            ok[e] = run == w
            lanes.within[g] += run
            lanes.depth[g] += run
            if run == urem:
                lanes.nid[g] = int(flat.child[nid])
                lanes.within[g] = 0
    return adv, ok, changed, is_run


def step(flat: FlatTrees, text: np.ndarray, seq: np.ndarray,
         lanes: Lanes, idx: np.ndarray
         ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Advance lanes ``idx`` by one node-run (LEAF/UNIFORM) or one
    character (DIVERGE).

    Returns ``(adv, ok, changed, is_run)`` over ``idx``: ``adv`` is how
    many characters each lane consumed, ``ok`` lanes reached the end of
    their run/read without a dead end, ``changed`` lanes saw their hit
    count change (LEP; DIVERGE only), ``is_run`` marks LEAF/UNIFORM
    lanes.  The caller advances ``lanes.cur`` by ``adv``; node state
    (``nid``/``within``/``depth``/``count``) is updated here.
    """
    if idx.size <= 24:
        return _step_small(flat, text, seq, lanes, idx)
    nid = lanes.nid[idx]
    kind = flat.kind[nid]
    cur = lanes.cur[idx]
    rem = lanes.stop[idx] - cur
    adv = np.zeros(idx.size, dtype=np.int64)
    ok = np.zeros(idx.size, dtype=bool)
    changed = np.zeros(idx.size, dtype=bool)
    is_run = kind != KIND_DIVERGE

    is_leaf = kind == KIND_LEAF
    if is_leaf.any():
        li = np.nonzero(is_leaf)[0]
        tstart = flat.leaf_text0[nid[li]] + flat.k + lanes.depth[idx[li]]
        wmax = np.minimum(rem[li], text.size - tstart)
        wmax = np.maximum(wmax, 0)
        w = int(wmax.max()) if li.size else 0
        if w > 0:
            ar = np.arange(w, dtype=np.int64)
            valid = ar[None, :] < wmax[:, None]
            sm = seq[np.minimum(cur[li][:, None] + ar[None, :],
                                seq.size - 1)]
            tm = text[np.minimum(tstart[:, None] + ar[None, :],
                                 text.size - 1)]
            run = _run_lengths((sm == tm) & valid)
        else:
            run = np.zeros(li.size, dtype=np.int64)
        adv[li] = run
        ok[li] = run == rem[li]  # consumed the whole read tail
        gl = idx[li]
        lanes.within[gl] += run
        lanes.depth[gl] += run

    is_uni = kind == KIND_UNIFORM
    if is_uni.any():
        ui = np.nonzero(is_uni)[0]
        un = nid[ui]
        urem = flat.chars_len[un] - lanes.within[idx[ui]]
        wmax = np.minimum(urem, rem[ui])
        w = int(wmax.max()) if ui.size else 0
        if w > 0:
            ar = np.arange(w, dtype=np.int64)
            valid = ar[None, :] < wmax[:, None]
            sm = seq[np.minimum(cur[ui][:, None] + ar[None, :],
                                seq.size - 1)]
            cm = flat.chars_pool[
                np.minimum((flat.chars_off[un] + lanes.within[idx[ui]])
                           [:, None] + ar[None, :],
                           flat.chars_pool.size - 1)]
            run = _run_lengths((sm == cm) & valid)
        else:
            run = np.zeros(ui.size, dtype=np.int64)
        adv[ui] = run
        # ok: either the node's run is fully matched (descend) or the
        # read tail ran out mid-run with no mismatch.
        ok[ui] = run == wmax
        gl = idx[ui]
        lanes.within[gl] += run
        lanes.depth[gl] += run
        # Eager settle: a uniform run consumed to its end lands on the
        # single child now (traffic accounting aside, this is identical
        # to the scalar cursor's deferred descent -- see flat module doc).
        done = run == urem
        dl = gl[done]
        lanes.nid[dl] = flat.child[un[done]]
        lanes.within[dl] = 0

    is_div = ~is_run
    if is_div.any():
        di = np.nonzero(is_div)[0]
        ch = flat.children[nid[di], seq[cur[di]]]
        have = ch >= 0
        cnt = np.where(have, flat.count[np.maximum(ch, 0)], 0)
        good_mask = have & (cnt >= lanes.min_hits[idx[di]])
        good = di[good_mask]
        adv[good] = 1
        ok[good] = True
        gl = idx[good]
        new_count = cnt[good_mask]
        changed[good] = new_count != lanes.count[gl]
        lanes.nid[gl] = ch[good_mask]
        lanes.within[gl] = 0
        lanes.count[gl] = new_count
        lanes.depth[gl] += 1

    return adv, ok, changed, is_run


def drain(flat: FlatTrees, text: np.ndarray, seq: np.ndarray,
          lanes: Lanes,
          record_leps: bool) -> "tuple[np.ndarray, np.ndarray]":
    """Run every live lane until it dies or exhausts ``[cur, stop)``.

    Returns ``(lep_lane, lep_pos)`` arrays of hit-count-change events
    (absolute positions in ``seq``), in step order -- per lane that is
    ascending position order, matching the scalar LEP list.
    """
    lep_lane_parts: "list[np.ndarray]" = []
    lep_pos_parts: "list[np.ndarray]" = []
    alive = lanes.alive
    while True:
        idx = np.nonzero(alive)[0]
        if idx.size == 0:
            break
        lanes.occ_live += int(idx.size)
        lanes.occ_slots += int(alive.size)
        adv, ok, changed, _is_run = step(flat, text, seq, lanes, idx)
        if record_leps and changed.any():
            hit = idx[changed]
            lep_lane_parts.append(hit)
            lep_pos_parts.append(lanes.cur[hit].copy())
        lanes.cur[idx] += adv
        lanes.steps[idx] += adv
        alive[idx[~ok]] = False
        still = idx[ok]
        alive[still[lanes.cur[still] >= lanes.stop[still]]] = False
    if not lep_lane_parts:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    return (np.concatenate(lep_lane_parts),
            np.concatenate(lep_pos_parts))
