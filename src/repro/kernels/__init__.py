"""Batch-vectorized seeding and extension kernels (ROADMAP item 1).

The scalar engine (:mod:`repro.core.engine`) resolves one read character
per Python-level call; these kernels advance a whole batch of reads (or
extension jobs) per numpy operation instead, in the spirit of EXMA's
batched multi-read traversal:

* :mod:`repro.kernels.flat` -- a structure-of-arrays (gather-friendly)
  form of the radix trees, compiled once per index.
* :mod:`repro.kernels.walk` -- the lane-masked batched tree walk: one
  fancy-indexing step advances every live lane by one character.
* :mod:`repro.kernels.seeding` -- the three seeding rounds driven as
  batched walks; byte-identical seeds to the scalar oracle.
* :mod:`repro.kernels.sw` -- anti-diagonal wavefront banded
  Smith-Waterman over a batch of extension windows.
* :mod:`repro.kernels.traceback` -- the same wavefront sweep with
  band-relative traceback pointer planes and a per-lane walk-back, so
  the SAM paths (CIGAR production) batch too.
* :mod:`repro.kernels.stats` -- batch-granularity accumulators: the
  sweeps count into plain ndarrays and flush the metrics registry once
  per batch, so vector mode runs fully observed with the hot loops
  telemetry-call-free (ERT007/ERT017).

The scalar path remains the oracle: the vector path is selected with
``REPRO_KERNELS=vector`` (CLI ``--kernels vector``) and must produce
byte-identical output; the randomized equivalence suite in
``tests/test_kernels.py`` enforces this.
"""

from __future__ import annotations

import os

from repro.kernels.flat import FlatTrees, flat_trees
from repro.kernels.seeding import (
    seed_batch,
    vector_decline_reason,
    vector_ready,
)
from repro.kernels.stats import KernelBatchStats
from repro.kernels.sw import batched_banded_sw
from repro.kernels.traceback import batched_sw_traceback

KERNEL_CHOICES = ("scalar", "vector")


def resolve_kernels(value: "str | None" = None) -> str:
    """Normalize a kernel selection: explicit value, else the
    ``REPRO_KERNELS`` environment variable, else ``scalar``."""
    chosen = value if value is not None else os.environ.get("REPRO_KERNELS")
    if chosen is None or chosen == "":
        return "scalar"
    if chosen not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernels selection {chosen!r}; expected one of "
            f"{'/'.join(KERNEL_CHOICES)}")
    return chosen


__all__ = [
    "FlatTrees",
    "KernelBatchStats",
    "flat_trees",
    "seed_batch",
    "vector_decline_reason",
    "vector_ready",
    "batched_banded_sw",
    "batched_sw_traceback",
    "KERNEL_CHOICES",
    "resolve_kernels",
]
