"""Anti-diagonal wavefront banded Smith-Waterman over a batch of targets.

:func:`batched_banded_sw` aligns one query against ``B`` target windows
at once and returns exactly what ``B`` calls to
:func:`repro.extend.smith_waterman.banded_smith_waterman` would -- same
scores, same (first-occurrence) end coordinates, same cell counts.

Layout: the DP matrix is swept by anti-diagonals ``d = i + j`` (``i``
over query rows, ``j`` over target columns).  On diagonal ``d`` the
in-band rows form one contiguous ``i`` interval, identical for every
lane, so each diagonal of H/E/F for the whole batch is computed by one
set of vector ops over a ``(B, rows)`` block:

* the vertical-gap term ``E(i, j)`` reads row ``i-1`` of diagonal
  ``d-1``;
* the horizontal-gap term ``F(i, j)`` reads row ``i`` of diagonal
  ``d-1``;
* the match term reads row ``i-1`` of diagonal ``d-2``.

Three rotating H planes plus E/F pairs live in the caller's
:class:`~repro.extend.smith_waterman.SwWorkspace` grid buffer.  Out-of-
band and out-of-matrix reads are masked *explicitly* to the scalar
kernel's boundary values (H reads as 0 -- the scalar row reset -- and
E/F as ``NEG_INF``) rather than trusting stale buffer contents; targets
shorter than the widest lane never contaminate valid cells because a
cell only ever reads same-or-smaller ``j``.

Tie-breaking matches the scalar kernel's strict-improvement rule: the
first row (then first column) attaining the maximum wins, implemented as
per-diagonal first-occurrence argmax plus a smaller-``i`` replacement
rule across diagonals.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.extend.smith_waterman import (
    DEFAULT_SCHEME,
    NEG_INF,
    AlignmentResult,
    ScoringScheme,
    SwWorkspace,
)
from repro.telemetry.metrics import FRACTION_EDGES


def batched_banded_sw(query: np.ndarray, targets: "list[np.ndarray]",
                      scheme: "ScoringScheme | None" = None,
                      band: int = 41,
                      workspace: "SwWorkspace | None" = None
                      ) -> "list[AlignmentResult]":
    """Band-restricted local alignment of ``query`` against each target.

    Equivalent to ``[banded_smith_waterman(query, t, scheme, band,
    workspace) for t in targets]``, computed wavefront-parallel across
    the batch.
    """
    scheme = scheme or DEFAULT_SCHEME
    if band < 1:
        raise ValueError("band must be at least 1")
    q = np.asarray(query, dtype=np.int64)
    m = int(q.size)
    B = len(targets)
    if B == 0:
        return []
    half = band // 2
    n_arr = np.array([int(np.asarray(t).size) for t in targets],
                     dtype=np.int64)
    n_max = int(n_arr.max()) if B else 0
    if m == 0 or n_max == 0:
        return [AlignmentResult(0, 0, 0, 0) for _ in targets]

    # Cell counts are a closed form of the band geometry; compute them
    # without touching the DP at all (the scalar loop breaks when the
    # band falls off the target, i.e. after row n_b + half).
    cells = np.zeros(B, dtype=np.int64)
    for b in range(B):
        nb = int(n_arr[b])
        if nb == 0:
            continue
        rows = np.arange(1, min(m, nb + half) + 1, dtype=np.int64)
        cells[b] = int(np.sum(np.minimum(nb, rows + half)
                              - np.maximum(1, rows - half) + 1))

    # One batch-granularity observation (a no-op while telemetry is
    # off): how full the wavefront plane is, i.e. real DP cells over
    # the (B, widest-lane) rectangle the sweep pays for.
    max_cells = int(cells.max())
    if max_cells > 0:
        telemetry.observe("kernels.wavefront_fill",
                          float(cells.sum()) / (B * max_cells),
                          edges=FRACTION_EDGES)

    # Targets padded with a sentinel that can never equal a base code.
    tpad = np.full((B, n_max), 127, dtype=np.int64)
    for b, t in enumerate(targets):
        tb = np.asarray(t, dtype=np.int64)
        tpad[b, :tb.size] = tb

    workspace = workspace or SwWorkspace()
    width = m + 1
    grid = workspace.grid(7, B, width)
    h_m2, h_m1, h_cur, e_m1, e_cur, f_m1, f_cur = grid
    h_m2[:] = 0
    h_m1[:] = 0
    e_m1[:] = NEG_INF
    f_m1[:] = NEG_INF

    match = scheme.match
    mismatch = scheme.mismatch
    open_ = scheme.gap_open
    ext = scheme.gap_extend

    best = np.zeros(B, dtype=np.int64)
    best_i = np.zeros(B, dtype=np.int64)
    best_j = np.zeros(B, dtype=np.int64)
    ncol = n_arr[:, None]

    for d in range(2, m + n_max + 1):
        i_lo = max(1, (d - half + 1) // 2, d - n_max)
        i_hi = min(m, (d + half) // 2, d - 1)
        if i_lo > i_hi:
            # No in-band rows on this diagonal; the planes must still
            # rotate so d-2 reads stay aligned (an empty diagonal is
            # never a read source -- every mask checks band membership).
            h_m2, h_m1, h_cur = h_m1, h_cur, h_m2
            e_m1, e_cur = e_cur, e_m1
            f_m1, f_cur = f_cur, f_m1
            continue
        I = np.arange(i_lo, i_hi + 1, dtype=np.int64)
        J = d - I
        valid = J[None, :] <= ncol  # (B, rows): inside this lane's target

        # Vertical gap E(i, j): source (i-1, j) on diagonal d-1.  The
        # source exists iff row i-1 >= 1 and j is inside row i-1's band
        # window; otherwise the scalar kernel read H=0 (row reset) and
        # E=NEG_INF.
        e_ok = (I > 1) & (np.abs((I - 1) - J) <= half)
        h_up = np.where(e_ok, h_m1[:, i_lo - 1:i_hi], 0)
        e_up = np.where(e_ok, e_m1[:, i_lo - 1:i_hi], NEG_INF)
        e_new = np.maximum(h_up + open_, e_up + ext)

        # Horizontal gap F(i, j): source (i, j-1) on diagonal d-1.  The
        # source exists iff j-1 >= lo_i = max(1, i - half); at the band's
        # left edge the scalar kernel read h_cur[lo-1] = 0 and F=NEG_INF.
        f_ok = (J - 1 >= 1) & (J - 1 >= I - half)
        h_left = np.where(f_ok, h_m1[:, i_lo:i_hi + 1], 0)
        f_left = np.where(f_ok, f_m1[:, i_lo:i_hi + 1], NEG_INF)
        f_new = np.maximum(h_left + open_, f_left + ext)

        # Match term: (i-1, j-1) on diagonal d-2 (0 on the borders; the
        # source is always in-band when the current cell is).
        diag_ok = (I > 1) & (J > 1)
        h_diag = np.where(diag_ok, h_m2[:, i_lo - 1:i_hi], 0)
        sub = np.where(tpad[:, J - 1] == q[I - 1][None, :], match, mismatch)
        h_new = np.maximum(np.maximum(h_diag + sub, 0),
                           np.maximum(e_new, f_new))

        h_cur[:, i_lo:i_hi + 1] = h_new
        e_cur[:, i_lo:i_hi + 1] = e_new
        f_cur[:, i_lo:i_hi + 1] = f_new

        scores = np.where(valid, h_new, NEG_INF)
        mx = scores.max(axis=1)
        am = scores.argmax(axis=1)  # first occurrence == smallest i
        cand_i = I[am]
        upd = (mx > best) | ((mx == best) & (cand_i < best_i))
        if upd.any():
            best[upd] = mx[upd]
            best_i[upd] = cand_i[upd]
            best_j[upd] = d - cand_i[upd]

        h_m2, h_m1, h_cur = h_m1, h_cur, h_m2
        e_m1, e_cur = e_cur, e_m1
        f_m1, f_cur = f_cur, f_m1

    out = []
    for b in range(B):
        if int(n_arr[b]) == 0:
            out.append(AlignmentResult(0, 0, 0, 0))
        elif int(best[b]) > 0:
            out.append(AlignmentResult(int(best[b]), int(best_i[b]),
                                       int(best_j[b]), int(cells[b])))
        else:
            out.append(AlignmentResult(0, 0, 0, int(cells[b])))
    return out
