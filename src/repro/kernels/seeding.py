"""Batched three-round seeding over the flat ERT (the vector path).

:func:`seed_batch` produces, for a whole batch of reads, exactly the
:class:`~repro.seeding.types.SeedingResult` list the scalar
:func:`~repro.seeding.algorithm.seed_read` loop would -- byte-identical
seeds -- but drives every walk as a lane set through
:mod:`repro.kernels.walk` instead of one Python call per character.

Where the two paths differ internally, the difference is proven
output-invariant:

* Backward searches run **unpruned** (the §III-F pruning rule and
  §III-B prefix merging only skip searches whose MEMs are contained;
  ``filter_contained`` equalizes the MEM set).
* Hit caches are preseeded from the flat arena's Euler pool slices; a
  cache entry always holds the exact ``(count, sorted hits)`` the scalar
  cursor's gather would produce, and ``locate()`` falls back to the
  scalar walk for exactly the same keys in both paths.
* Engine *work counters* (nodes visited, leaf fetches) are not
  replicated -- the vector path reports its own traffic instead:
  per-lane walk steps, gather nodes/bytes and launch counts accumulate
  in a :class:`~repro.kernels.stats.KernelBatchStats` during the sweep
  and flush into the metrics registry once per batch under a single
  ``kernels.batch`` span (so telemetry no longer forces scalar mode,
  and the hot loops stay telemetry-call-free per ERT007/ERT017).
  Emitted seeds, counts, hits and the ``truncated_hit_lists`` counter
  (the only stat surfaced in CLI summaries) are identical.

When the engine is not eligible (non-ERT engine, attached memory
tracer, attached reuse cache), :func:`seed_batch` counts a
``kernels.fallback_scalar.<reason>`` and falls back to the scalar
per-read loop, so callers can use it unconditionally.  Telemetry and
exemplar capture do *not* decline the vector path: observed vector
runs are byte-identical to dark ones.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.core.engine import ErtSeedingEngine
from repro.core.index import EntryKind
from repro.kernels.flat import (
    KIND_DIVERGE,
    KIND_LEAF,
    KIND_UNIFORM,
    FlatTrees,
    flat_trees,
)
from repro.kernels.stats import KernelBatchStats
from repro.kernels.walk import Lanes, drain, step
from repro.seeding.algorithm import (
    SeedingParams,
    _make_seed,
    filter_contained,
    seed_read,
    smems_to_seeds,
)
from repro.seeding.types import Mem, SeedingResult
from repro.sequence.alphabet import COMPLEMENT


def vector_decline_reason(engine: "object") -> "str | None":
    """Why this engine cannot take the batched kernels, or ``None``
    when it can.

    The reason string doubles as the ``kernels.fallback_scalar.<reason>``
    counter label: ``engine`` (not an ERT engine), ``tracer`` (memsim
    tracer attached -- per-access tracing needs the scalar cursor) or
    ``reuse_cache`` (the reuse-distance probe, same constraint).
    Telemetry and exemplar capture are deliberately *not* reasons: the
    vector path runs fully observed via batch-flushed accumulators.
    """
    if not isinstance(engine, ErtSeedingEngine):
        return "engine"
    index = engine.index
    if index.tracer is not None:
        return "tracer"
    if index.reuse_cache is not None:
        return "reuse_cache"
    return None


def vector_ready(engine: "object") -> bool:
    """Can this engine's seeding run through the batched kernels with
    output identical to the scalar oracle?"""
    return vector_decline_reason(engine) is None


class _WalkOut:
    """Batched :meth:`ErtSeedingEngine._walk` results (one row per job)."""

    __slots__ = ("ends_rel", "leps", "entered", "nid", "count", "steps",
                 "occ_live", "occ_slots")

    def __init__(self, ends_rel: np.ndarray, leps: "list[list[int]] | None",
                 entered: np.ndarray, nid: np.ndarray,
                 count: np.ndarray, steps: np.ndarray,
                 occ_live: int, occ_slots: int) -> None:
        self.ends_rel = ends_rel
        self.leps = leps
        self.entered = entered
        self.nid = nid
        self.count = count
        #: Characters consumed by walk advances, per job (plain
        #: accumulators the batch driver attributes back to reads).
        self.steps = steps
        self.occ_live = occ_live
        self.occ_slots = occ_slots


def _resolve_codes(flat: FlatTrees, seq: np.ndarray, starts: np.ndarray,
                   tail: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`ErtIndex.kmer_code` over many windows: big-endian
    2-bit pack of up to ``k`` characters, right-padded with zero (A)."""
    k = flat.k
    ar = np.arange(k, dtype=np.int64)
    offm = starts[:, None] + ar[None, :]
    validm = ar[None, :] < tail[:, None]
    safe = np.minimum(offm, max(int(seq.size) - 1, 0))
    cm = seq[safe] * validm
    weights = (4 ** np.arange(k - 1, -1, -1)).astype(np.int64)
    return cm @ weights


def _walk_jobs(engine: ErtSeedingEngine, flat: FlatTrees, seq: np.ndarray,
               starts: np.ndarray, stops: np.ndarray, bases: np.ndarray,
               min_hits: np.ndarray, collect_leps: bool) -> _WalkOut:
    """Batched longest-match walk: the vector twin of
    ``ErtSeedingEngine._walk`` (k-mer entry resolve, optional
    second-level table jump, lane-masked tree walk).

    Offsets are absolute into ``seq``; ``bases[j]`` is job ``j``'s
    sequence origin, so returned ends and LEPs are relative to it.
    """
    index = engine.index
    text = index.text
    k = flat.k
    J = int(starts.size)
    engine.stats.index_lookups += J
    tail = np.minimum(k, stops - starts)
    code = _resolve_codes(flat, seq, starts, tail)

    # -- k-mer entry: matched length (and count matrix for min_hits > 1).
    matched = np.zeros(J, dtype=np.int64)
    m1 = min_hits == 1
    if m1.any():
        c1 = code[m1]
        matched[m1] = np.minimum(index.prefix_len[c1].astype(np.int64),
                                 tail[m1])
    mh_rows = np.nonzero(~m1)[0]
    mh_counts = None
    if mh_rows.size:
        cmh = code[mh_rows]
        mh_counts = np.zeros((mh_rows.size, k + 1), dtype=np.int64)
        for length in range(1, k + 1):
            cl = cmh >> (2 * (k - length))
            if length == k:
                mh_counts[:, length] = index.kmer_count[cl]
            else:
                mh_counts[:, length] = index.prefix_counts[length - 1][cl]
        okm = ((mh_counts[:, 1:] >= min_hits[mh_rows][:, None])
               & (np.arange(k)[None, :] < tail[mh_rows][:, None]))
        matched[mh_rows] = np.cumprod(okm, axis=1).sum(axis=1)
    mh_row_of = np.full(J, -1, dtype=np.int64)
    mh_row_of[mh_rows] = np.arange(mh_rows.size)

    in_window = (matched < tail) | (tail < k)
    tree = ~in_window

    # -- second-level table jump (§III-E): min_hits == 1 dense k-mers.
    x = flat.table_x
    is_table = (tree & m1
                & (index.entry_kind[code] == int(EntryKind.TABLE))
                & (stops - (starts + k) >= x))
    lanes = Lanes(J)
    lanes.min_hits[:] = min_hits
    lanes.cur[:] = starts + k
    lanes.stop[:] = stops
    entered = np.zeros(J, dtype=bool)
    tbl_dead = np.zeros(J, dtype=bool)
    tbl_jm = np.zeros(J, dtype=np.int64)
    tbl_bits = np.zeros(J, dtype=np.int64)
    if is_table.any():
        ti = np.nonzero(is_table)[0]
        arx = np.arange(x, dtype=np.int64)
        subm = seq[(starts[ti] + k)[:, None] + arx[None, :]]
        wx = (4 ** np.arange(x - 1, -1, -1)).astype(np.int64)
        sub = subm @ wx
        slot = flat.table_slot[code[ti]]
        jm = flat.jt_matched[slot, sub]
        tbl_jm[ti] = jm
        tbl_bits[ti] = flat.jt_lep[slot, sub]
        short = jm < x
        tbl_dead[ti[short]] = True
        live = ~short
        tl = ti[live]
        lanes.nid[tl] = flat.jt_node[slot[live], sub[live]]
        lanes.within[tl] = flat.jt_within[slot[live], sub[live]]
        lanes.depth[tl] = flat.jt_depth[slot[live], sub[live]]
        lanes.count[tl] = flat.jt_count[slot[live], sub[live]]
        lanes.cur[tl] += x
        entered[tl] = True

    plain = tree & ~is_table
    if plain.any():
        pi = np.nonzero(plain)[0]
        rn = flat.roots[code[pi]]
        lanes.nid[pi] = rn
        lanes.count[pi] = flat.count[rn]
        entered[pi] = True

    lanes.alive = tree & ~tbl_dead & (lanes.cur < lanes.stop)
    lep_lane, lep_pos = drain(flat, text, seq, lanes, collect_leps)

    ends_abs = np.where(in_window, starts + matched, lanes.cur)
    if tbl_dead.any():
        ends_abs[tbl_dead] = starts[tbl_dead] + k + tbl_jm[tbl_dead]
    ends_rel = ends_abs - bases

    leps: "list[list[int]] | None" = None
    if collect_leps:
        ev_by_lane: "dict[int, np.ndarray]" = {}
        if lep_lane.size:
            order = np.argsort(lep_lane, kind="stable")
            ll = lep_lane[order]
            pp = lep_pos[order]
            bounds = np.nonzero(np.diff(ll))[0] + 1
            firsts = np.concatenate((np.zeros(1, dtype=np.int64), bounds))
            for lane, chunk in zip(ll[firsts], np.split(pp, bounds)):
                ev_by_lane[int(lane)] = chunk
        lep_bits = index.lep_bits
        leps = []
        for j in range(J):
            start_rel = int(starts[j] - bases[j])
            end_rel = int(ends_rel[j])
            mj = int(matched[j])
            out: "list[int]" = []
            if m1[j]:
                bits = int(lep_bits[code[j]])
                out.extend(start_rel + l for l in range(1, mj)
                           if (bits >> (l - 1)) & 1)
            else:
                row = mh_counts[mh_row_of[j]]
                out.extend(start_rel + length - 1
                           for length in range(2, mj + 1)
                           if row[length] != row[length - 1])
            if is_table[j]:
                p0 = start_rel + k
                bits = int(tbl_bits[j])
                out.extend(p0 + t for t in range(int(tbl_jm[j]))
                           if (bits >> t) & 1)
            events = ev_by_lane.get(j)
            if events is not None:
                base = int(bases[j])
                out.extend(int(p) - base for p in events)
            if end_rel > start_rel and (not out or out[-1] != end_rel):
                out.append(end_rel)
            leps.append(out)
    return _WalkOut(ends_rel, leps, entered, lanes.nid, lanes.count,
                    lanes.steps, lanes.occ_live, lanes.occ_slots)


def _cache_backward(engine: ErtSeedingEngine, flat: FlatTrees, key: int,
                    s: int, end: int, nid: int, count: int,
                    stats: KernelBatchStats, read: int) -> None:
    """Preseed the engine's hit cache exactly like
    ``_cache_hits_from_rev_cursor`` (rc positions mapped to forward).

    ``stats``/``read`` account the gather's Euler-pool traffic (nodes
    and bytes) to the read that caused it -- plain array adds, flushed
    once per batch."""
    if count > engine.gather_limit:
        engine._hits[(key, s, end)] = (count, ())
        return
    stats.gather_nodes[read] += 1
    stats.gather_bytes[read] += int(flat.pos_len[nid]) * flat.pool.itemsize
    two_n = int(engine.index.text.size)
    length = end - s
    pos = flat.gather(nid)
    hits = tuple((two_n - length - pos)[::-1].tolist())
    engine._hits[(key, s, end)] = (count, hits)


def _cache_forward(engine: ErtSeedingEngine, flat: FlatTrees, key: int,
                   start: int, end: int, nid: int, count: int,
                   stats: KernelBatchStats, read: int) -> None:
    """Preseed like ``_cache_from_forward_cursor`` (LAST emissions)."""
    if count > engine.gather_limit:
        engine._hits[(key, start, end)] = (count, ())
        return
    stats.gather_nodes[read] += 1
    stats.gather_bytes[read] += int(flat.pos_len[nid]) * flat.pool.itemsize
    engine._hits[(key, start, end)] = (count,
                                       tuple(flat.gather(nid).tolist()))


def seed_batch(engine: "ErtSeedingEngine", reads: "list[np.ndarray]",
               params: "SeedingParams | None" = None,
               stats: "KernelBatchStats | None" = None
               ) -> "list[SeedingResult]":
    """All three seeding rounds for a whole batch of reads; returns one
    :class:`SeedingResult` per read, byte-identical to the scalar loop.

    Runs fully observed: per-lane accumulators collect walk steps,
    gather traffic and launch counts during the sweep and flush into
    the metrics registry once, under a single ``kernels.batch`` span.
    The span nests inside a root ``seed`` span for scalar parity --
    the ledger's derived ``seeding.reads_per_sec`` reads the ``seed``
    root total, so vector snapshots feed the same throughput gates.
    Pass ``stats`` to keep the accumulators afterwards (the scheduler
    derives per-read exemplar counters from them); the flush happens
    here either way, exactly once.
    """
    params = params or SeedingParams()
    reads = list(reads)
    if not reads:
        return []
    reason = vector_decline_reason(engine)
    if reason is not None:
        telemetry.count("kernels.fallback_scalar." + reason)
        return [seed_read(engine, read, params) for read in reads]
    if stats is None:
        stats = KernelBatchStats(len(reads))
    before = engine.stats.as_dict()
    with telemetry.span("seed"), telemetry.span("kernels.batch"):
        results = _seed_batch_vector(engine, reads, params, stats)
    stats.flush(before, engine.stats.as_dict(), results)
    return results


def _seed_batch_vector(engine: "ErtSeedingEngine",
                       reads: "list[np.ndarray]", params: SeedingParams,
                       stats: KernelBatchStats) -> "list[SeedingResult]":
    index = engine.index
    flat = flat_trees(index)
    k = index.config.k
    n_reads = len(reads)
    results = [SeedingResult() for _ in range(n_reads)]
    min_len_req = max(params.min_seed_len, engine.min_query_len)
    sizes = np.array([int(r.size) for r in reads], dtype=np.int64)
    active = [i for i in range(n_reads) if sizes[i] >= min_len_req]
    stats.short_reads = n_reads - len(active)
    if not active:
        return results
    for i in active:
        engine._check_read(reads[i])

    engine.begin_read()  # one cache epoch for the whole batch
    keys = {i: engine._key(reads[i]) for i in active}
    offs = np.zeros(n_reads + 1, dtype=np.int64)
    np.cumsum(sizes, out=offs[1:])
    fwd = np.concatenate([np.asarray(r) for r in reads]).astype(np.int64)
    total = int(fwd.size)
    rc = np.asarray(COMPLEMENT, dtype=np.int64)[fwd][::-1].copy()
    rc_base = total - offs[1:]  # start of read i's reverse complement

    # ---- Round 1: forward pivot chains -------------------------------
    chains: "dict[int, list[tuple[int, int, list[int]]]]" = {
        i: [] for i in active}
    pivots = {i: 0 for i in active}
    wave = list(active)
    while wave:
        ids = np.array(wave, dtype=np.int64)
        starts = offs[ids] + np.array([pivots[i] for i in wave],
                                      dtype=np.int64)
        out = _walk_jobs(engine, flat, fwd, starts, offs[ids + 1],
                         offs[ids], np.ones(len(wave), dtype=np.int64),
                         collect_leps=True)
        engine.stats.forward_searches += len(wave)
        stats.absorb_walk(ids, out)
        nxt_wave = []
        for row, i in enumerate(wave):
            piv = pivots[i]
            end = int(out.ends_rel[row])
            if end <= piv:
                nxt = piv + 1
            else:
                chains[i].append((piv, end, out.leps[row]))
                nxt = end
            if nxt <= piv:
                raise RuntimeError("engine failed to advance the pivot")
            pivots[i] = nxt
            if nxt < int(sizes[i]):
                nxt_wave.append(i)
        wave = nxt_wave

    # ---- Round 1: all backward searches in one batch (unpruned) ------
    # MEM construction and cache preseeding are deferred until after the
    # per-read containment filter: only surviving MEMs long enough to
    # become seeds ever reach ``locate``, and for any key we skip,
    # ``locate`` falls back to the (output-identical) scalar walk.
    bread: "list[int]" = []
    bp: "list[int]" = []
    njobs = {i: 0 for i in active}
    for i in active:
        for _piv, _end, leps in chains[i]:
            bread.extend([i] * len(leps))
            bp.extend(leps)
            njobs[i] += len(leps)
    s_arr = ends = entered = nid = count = None
    if bread:
        ids = np.array(bread, dtype=np.int64)
        ps = np.array(bp, dtype=np.int64)
        bases = rc_base[ids]
        starts = bases + (sizes[ids] - ps)
        out = _walk_jobs(engine, flat, rc, starts, bases + sizes[ids],
                         bases, np.ones(ids.size, dtype=np.int64),
                         collect_leps=False)
        engine.stats.backward_searches += ids.size
        stats.absorb_walk(ids, out)
        # s = p - length = size - ends_rel (ends are rc-relative).
        s_arr = sizes[ids] - out.ends_rel
        entered, nid, count = out.entered, out.nid, out.count
    row0 = 0
    for i in active:
        rows = range(row0, row0 + njobs[i])
        row0 += njobs[i]
        row_of = {(int(s_arr[r]), bp[r]): r for r in rows
                  if int(s_arr[r]) < bp[r]}
        kept: "list[Mem]" = []
        max_end = -1
        for s, p in sorted(row_of, key=lambda t: (t[0], -t[1])):
            if p > max_end:
                kept.append(Mem(s, p))
                max_end = p
        for mem in kept:
            if mem.length >= params.min_seed_len:
                r = row_of[(mem.start, mem.end)]
                if entered[r]:
                    _cache_backward(engine, flat, keys[i], mem.start,
                                    mem.end, int(nid[r]), int(count[r]),
                                    stats, i)
        results[i].smems = smems_to_seeds(engine, reads[i], kept, params)

    # ---- Round 2: reseeding ------------------------------------------
    if params.reseed:
        rread: "list[int]" = []
        rmid: "list[int]" = []
        rmh: "list[int]" = []
        for i in active:
            for seed in results[i].smems:
                if (seed.length >= params.split_len
                        and seed.hit_count <= params.split_width):
                    rread.append(i)
                    rmid.append((seed.read_start + seed.read_end) // 2)
                    rmh.append(seed.hit_count + 1)
        if rread:
            ids = np.array(rread, dtype=np.int64)
            mids = np.array(rmid, dtype=np.int64)
            mhs = np.array(rmh, dtype=np.int64)
            fo = _walk_jobs(engine, flat, fwd, offs[ids] + mids,
                            offs[ids + 1], offs[ids], mhs,
                            collect_leps=True)
            engine.stats.forward_searches += ids.size
            stats.absorb_walk(ids, fo)
            np.add.at(stats.reseed_launches, ids, 1)
            brow: "list[int]" = []
            bps: "list[int]" = []
            for row in range(ids.size):
                if int(fo.ends_rel[row]) > int(mids[row]):
                    brow.extend([row] * len(fo.leps[row]))
                    bps.extend(fo.leps[row])
            found: "list[dict[tuple[int, int], int]]" = [
                {} for _ in range(ids.size)]
            bo = None
            if brow:
                rows = np.array(brow, dtype=np.int64)
                ps = np.array(bps, dtype=np.int64)
                rids = ids[rows]
                bases = rc_base[rids]
                starts = bases + (sizes[rids] - ps)
                bo = _walk_jobs(engine, flat, rc, starts,
                                bases + sizes[rids], bases, mhs[rows],
                                collect_leps=False)
                engine.stats.backward_searches += rows.size
                stats.absorb_walk(rids, bo)
                bs = sizes[rids] - bo.ends_rel
                for e in range(rows.size):
                    s, p = int(bs[e]), bps[e]
                    if s < p:
                        found[brow[e]][(s, p)] = e
            for row in range(ids.size):
                i = rread[row]
                max_end = -1
                for s, p in sorted(found[row], key=lambda t: (t[0], -t[1])):
                    if p <= max_end:
                        continue
                    max_end = p
                    if p - s < params.min_seed_len:
                        continue
                    e = found[row][(s, p)]
                    if bo.entered[e]:
                        _cache_backward(engine, flat, keys[i], s, p,
                                        int(bo.nid[e]), int(bo.count[e]),
                                        stats, i)
                    results[i].reseed_seeds.append(
                        _make_seed(engine, reads[i], Mem(s, p), params))

    # ---- Round 3: LAST ------------------------------------------------
    if params.use_last:
        if params.min_seed_len < k:
            raise ValueError(
                f"LAST with min_len={params.min_seed_len} below k={k}: "
                f"the ERT cannot observe counts for matches shorter than "
                f"its k-mer")
        text = index.text
        max_intv = params.max_mem_intv
        min_len = params.min_seed_len
        rows3 = [i for i in active if min_len <= int(sizes[i])]
        if rows3:
            A = len(rows3)
            r_ids = np.array(rows3, dtype=np.int64)
            r_sz = sizes[r_ids]
            r_off = offs[r_ids]
            # Every launch position a LAST scan could ever visit is known
            # up front (x in [0, n - min_len]); resolve their k-mers in
            # one batch.  A launch whose k-mer is not fully present fails
            # immediately (matched < k <= min_len) and the scalar loop
            # just advances x by one -- so only "viable" positions with a
            # full k-mer ever start a lane, and the next launch for a
            # read is a searchsorted away.
            jcounts = r_sz - min_len + 1
            jb = np.zeros(A + 1, dtype=np.int64)
            np.cumsum(jcounts, out=jb[1:])
            jr = np.repeat(np.arange(A, dtype=np.int64), jcounts)
            jxa = np.arange(int(jb[A]), dtype=np.int64) - jb[jr]
            jstarts = r_off[jr] + jxa
            jcode = _resolve_codes(flat, fwd, jstarts,
                                   np.full(jr.size, k, dtype=np.int64))
            jok = index.prefix_len[jcode].astype(np.int64) >= k
            jroot = flat.roots[jcode]
            jcnt = index.kmer_count[jcode].astype(np.int64)
            viable: "list[list[int]]" = []
            vroot: "list[list[int]]" = []
            vcount: "list[list[int]]" = []
            for a in range(A):
                sl = slice(int(jb[a]), int(jb[a + 1]))
                m = jok[sl]
                viable.append(jxa[sl][m].tolist())
                vroot.append(jroot[sl][m].tolist())
                vcount.append(jcnt[sl][m].tolist())
            engine.stats.index_lookups += int(jr.size)

            lanes = Lanes(A)
            lanes.stop[:] = r_off + r_sz
            launch_x = np.zeros(A, dtype=np.int64)
            start_abs = np.zeros(A, dtype=np.int64)
            lx = np.zeros(A, dtype=np.int64)
            # 0 = needs a (re)launch, 1 = walking, 2 = done.
            mode = np.zeros(A, dtype=np.int64)

            def _emit(row: int, end_rel: int) -> None:
                i = rows3[row]
                _cache_forward(engine, flat, keys[i],
                               int(launch_x[row]), end_rel,
                               int(lanes.nid[row]),
                               int(lanes.count[row]), stats, i)
                results[i].last_seeds.append(
                    _make_seed(engine, reads[i],
                               Mem(int(launch_x[row]), end_rel), params))
                lx[row] = end_rel

            vptr = [0] * A

            def _launch(row: int) -> bool:
                # Launch positions are visited monotonically, so a
                # per-read pointer into the viable list replaces a
                # binary search.
                v = viable[row]
                p = vptr[row]
                t = int(lx[row])
                while p < len(v) and v[p] < t:
                    p += 1
                vptr[row] = p
                if p == len(v):
                    mode[row] = 2
                    return False
                x = v[p]
                lx[row] = x
                launch_x[row] = x
                stats.last_launches[rows3[row]] += 1
                start_abs[row] = int(r_off[row]) + x
                lanes.nid[row] = vroot[row][p]
                lanes.within[row] = 0
                lanes.depth[row] = 0
                lanes.count[row] = vcount[row][p]
                lanes.cur[row] = start_abs[row] + k
                mode[row] = 1
                return True

            def _finish_scalar(row: int) -> None:
                # Drive one read's remaining LAST chain to completion
                # with per-lane Python steps: once only a few deep-repeat
                # stragglers remain, per-round vector overhead costs more
                # than the walk itself.  Same transitions as the vector
                # loop below, with the node-run advance inlined
                # (min_hits is always 1 in LAST, so any existing child
                # is accepted).
                stop = int(lanes.stop[row])
                while True:
                    if mode[row] == 0 and not _launch(row):
                        return
                    cur = int(lanes.cur[row])
                    base = int(start_abs[row])
                    count = int(lanes.count[row])
                    if cur - base >= min_len and count < max_intv:
                        _emit(row, int(launch_x[row]) + (cur - base))
                        mode[row] = 0
                        continue
                    if cur >= stop:
                        lx[row] += 1
                        mode[row] = 0
                        continue
                    nid = int(lanes.nid[row])
                    kind = int(flat.kind[nid])
                    if kind == KIND_DIVERGE:
                        ch = int(flat.children[nid, int(fwd[cur])])
                        if ch < 0:
                            lx[row] += 1
                            mode[row] = 0
                            continue
                        lanes.nid[row] = ch
                        lanes.within[row] = 0
                        lanes.count[row] = int(flat.count[ch])
                        lanes.depth[row] += 1
                        lanes.cur[row] = cur + 1
                        lanes.steps[row] += 1
                        continue
                    rem = stop - cur
                    if kind == KIND_LEAF:
                        t0 = (int(flat.leaf_text0[nid]) + k
                              + int(lanes.depth[row]))
                        w = min(rem, int(text.size) - t0)
                        ref = text[t0:t0 + w] if w > 0 else None
                        need = rem
                    else:  # uniform
                        within = int(lanes.within[row])
                        urem = int(flat.chars_len[nid]) - within
                        w = min(urem, rem)
                        c0 = int(flat.chars_off[nid]) + within
                        ref = flat.chars_pool[c0:c0 + w] if w > 0 else None
                        need = w
                    run = 0
                    if w > 0:
                        neq = np.nonzero(fwd[cur:cur + w] != ref)[0]
                        run = int(neq[0]) if neq.size else w
                    lanes.within[row] += run
                    lanes.depth[row] += run
                    lanes.cur[row] = cur + run
                    lanes.steps[row] += run
                    if kind == KIND_UNIFORM and run == urem:
                        lanes.nid[row] = int(flat.child[nid])
                        lanes.within[row] = 0
                    if (count < max_intv
                            and cur + run - base >= min_len):
                        _emit(row, int(launch_x[row]) + min_len)
                        mode[row] = 0
                        continue
                    if run < need:
                        lx[row] += 1
                        mode[row] = 0

            while True:
                left = np.nonzero(mode != 2)[0]
                if left.size <= 16:
                    for row in left:
                        _finish_scalar(int(row))
                    break
                for row in np.nonzero(mode == 0)[0]:
                    _launch(int(row))
                idx = np.nonzero(mode == 1)[0]
                if not idx.size:
                    break
                length = lanes.cur[idx] - start_abs[idx]
                emit = (length >= min_len) & (lanes.count[idx] < max_intv)
                for off in np.nonzero(emit)[0]:
                    row = int(idx[off])
                    _emit(row, int(launch_x[row] + length[off]))
                mode[idx[emit]] = 0
                idx = idx[~emit]
                if not idx.size:
                    continue
                at_end = lanes.cur[idx] >= lanes.stop[idx]
                lx[idx[at_end]] += 1
                mode[idx[at_end]] = 0
                idx = idx[~at_end]
                if not idx.size:
                    continue
                stats.occ_live += int(idx.size)
                stats.occ_slots += A
                stats.wave_rounds += 1
                adv, ok, _changed, is_run = step(flat, text, fwd,
                                                 lanes, idx)
                lanes.cur[idx] += adv
                lanes.steps[idx] += adv
                # Mid-run crossing of min_len: the hit count is constant
                # inside a LEAF/UNIFORM run, so if the run survived past
                # min_len with count < max_intv the scalar loop's
                # per-character check would have emitted exactly at
                # length == min_len (the boundary check above already
                # handled length >= min_len at the run start, so these
                # lanes entered the run short).  DIVERGE steps advance
                # one character and are re-checked at the loop top with
                # their updated count, matching the scalar order.
                after = lanes.cur[idx] - start_abs[idx]
                cross = (is_run & (lanes.count[idx] < max_intv)
                         & (after >= min_len))
                for off in np.nonzero(cross)[0]:
                    row = int(idx[off])
                    _emit(row, int(launch_x[row]) + min_len)
                mode[idx[cross]] = 0
                dead = ~ok & ~cross
                lx[idx[dead]] += 1
                mode[idx[dead]] = 0
            np.add.at(stats.walk_steps, r_ids, lanes.steps)
    return results
