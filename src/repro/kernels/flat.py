"""Structure-of-arrays form of the ERT radix trees.

The object trees built by :mod:`repro.core.builder` (and reassembled from
the ``ERTBUF01`` buffer by :mod:`repro.core.io`) are linked Python
objects; a batched walk cannot fancy-index into them.  This module
compiles them -- once per index, cached on the index instance -- into a
flat arena of parallel numpy arrays, one row per node:

* ``kind``: DIVERGE / UNIFORM / LEAF discriminant;
* ``count``: occurrences below the node (LEP + min-hit checks);
* ``children``: the four per-character child node ids of a DIVERGE node
  (-1 for a missing branch == dead end);
* ``chars_off``/``chars_len`` into ``chars_pool``: a UNIFORM node's
  merged character run;
* ``child``: a UNIFORM node's single child;
* ``leaf_text0``: a LEAF's first occurrence position (matching proceeds
  against the reference text, early path compression §III-A2);
* ``pos_off``/``pos_len`` into ``pool``: every occurrence position in the
  node's subtree, contiguous because the pool is filled in DFS (Euler)
  order.  ``gather(nid)`` is therefore one slice + sort instead of the
  scalar cursor's recursive DFS.

Second-level jump tables (§III-E) are translated into dense ``(n_tables,
4^x)`` arrays so the batched walk resolves the x-character jump for a
whole lane set with one gather.

States are *eagerly settled*: where the scalar cursor defers a child
fetch (``pending`` / exhausted uniform run), the flat form lands on the
child immediately.  Settling is a traffic-accounting device only -- it
never changes match outcomes, counts, or subtree position sets (a uniform
node's subtree equals its child's) -- and the vector path is only taken
when no memory tracer is attached, so the flat walk is free to skip it.
"""

from __future__ import annotations

import numpy as np

from repro.core.index import ErtIndex
from repro.core.nodes import DivergeNode, LeafNode, Node, UniformNode

KIND_DIVERGE = 0
KIND_UNIFORM = 1
KIND_LEAF = 2


class FlatTrees:
    """The compiled arena (see module docstring).  Read-only after
    construction; shared by every walk over the same index."""

    __slots__ = (
        "k", "table_x", "kind", "count", "children", "child",
        "chars_off", "chars_len", "chars_pool", "leaf_text0",
        "pos_off", "pos_len", "pool", "roots", "table_slot",
        "jt_matched", "jt_lep", "jt_node", "jt_within", "jt_depth",
        "jt_count",
    )

    def __init__(self, **arrays: "int | np.ndarray") -> None:
        for name, value in arrays.items():
            object.__setattr__(self, name, value)

    def gather(self, nid: int) -> np.ndarray:
        """Sorted occurrence positions of the subtree below ``nid``
        (the scalar cursor's ``gather()``, as one slice)."""
        off = int(self.pos_off[nid])
        return np.sort(self.pool[off:off + int(self.pos_len[nid])])


def _settle_nid(kind: "list[int]", chars_len: "list[int]",
                child: "list[int]", nid: int, within: int) -> "tuple[int, int]":
    """Eagerly descend through exhausted uniform runs (see module doc)."""
    while kind[nid] == KIND_UNIFORM and within == chars_len[nid]:
        nid = child[nid]
        within = 0
    return nid, within


def flat_trees(index: ErtIndex) -> FlatTrees:
    """Compile (or fetch the cached) flat form of ``index``'s trees."""
    cached = getattr(index, "_flat_trees", None)
    if cached is not None:
        return cached

    kind: "list[int]" = []
    count: "list[int]" = []
    chars_off: "list[int]" = []
    chars_len: "list[int]" = []
    child: "list[int]" = []
    children_rows: "list[list[int]]" = []
    leaf_text0: "list[int]" = []
    pos_off: "list[int]" = []
    pos_len: "list[int]" = []
    chars_parts: "list[np.ndarray]" = []
    pool_parts: "list[list[int]]" = []
    pool_size = 0
    chars_size = 0
    # ERT001 exception: every node whose id() keys this map is pinned for
    # the map's whole lifetime by the object tree in index.roots (the
    # index outlives this compile), so ids cannot be recycled.
    id2nid: "dict[int, int]" = {}

    def compile_tree(root: Node) -> int:
        nonlocal pool_size, chars_size
        known = id2nid.get(id(root))  # repro: allow(ERT001)
        if known is not None:
            return known
        # Iterative DFS with explicit entry/exit records so pos_len can be
        # closed when a subtree is fully emitted into the pool.
        stack: "list[tuple[Node, bool]]" = [(root, False)]
        while stack:
            node, done = stack.pop()
            if done:
                nid = id2nid[id(node)]  # repro: allow(ERT001)
                pos_len[nid] = pool_size - pos_off[nid]
                continue
            nid = len(kind)
            id2nid[id(node)] = nid  # repro: allow(ERT001)
            count.append(int(node.count))
            chars_off.append(0)
            chars_len.append(0)
            child.append(-1)
            children_rows.append([-1, -1, -1, -1])
            leaf_text0.append(-1)
            pos_off.append(pool_size)
            pos_len.append(0)
            stack.append((node, True))
            if isinstance(node, LeafNode):
                kind.append(KIND_LEAF)
                leaf_text0[nid] = int(node.positions[0])
                pool_parts.append(list(node.positions))
                pool_size += len(node.positions)
            elif isinstance(node, UniformNode):
                kind.append(KIND_UNIFORM)
                chars_off[nid] = chars_size
                chars_len[nid] = int(node.chars.size)
                chars_parts.append(np.asarray(node.chars, dtype=np.int64))
                chars_size += int(node.chars.size)
                stack.append((node.child, False))
            else:
                assert isinstance(node, DivergeNode)
                kind.append(KIND_DIVERGE)
                if node.ended:
                    pool_parts.append(list(node.ended))
                    pool_size += len(node.ended)
                # Push in reverse character order so the pool is filled in
                # the scalar DFS's deterministic (sorted) child order.
                for c in sorted(node.children, reverse=True):
                    stack.append((node.children[c], False))
        # Children / child links resolve after the subtree is numbered.
        return id2nid[id(root)]  # repro: allow(ERT001)

    roots = np.full(4 ** index.config.k, -1, dtype=np.int64)
    for code in sorted(index.roots):
        roots[code] = compile_tree(index.roots[code])

    # Second pass: link fields (every referenced node now has an id).
    for code in sorted(index.roots):
        stack = [index.roots[code]]
        seen: "set[int]" = set()
        while stack:
            node = stack.pop()
            nid = id2nid[id(node)]  # repro: allow(ERT001)
            if nid in seen:
                continue
            seen.add(nid)
            if isinstance(node, UniformNode):
                child[nid] = id2nid[id(node.child)]  # repro: allow(ERT001)
                stack.append(node.child)
            elif isinstance(node, DivergeNode):
                for c, sub in node.children.items():
                    children_rows[nid][c] = id2nid[id(sub)]  # repro: allow(ERT001)
                    stack.append(sub)

    # Jump tables: dense (n_tables, 4^x) arrays in slot order.
    x = index.config.table_x
    table_codes = sorted(index.tables)
    n_tables = len(table_codes)
    fan = 4 ** x
    table_slot = np.full(4 ** index.config.k, -1, dtype=np.int64)
    jt_matched = np.zeros((max(n_tables, 1), fan), dtype=np.int64)
    jt_lep = np.zeros((max(n_tables, 1), fan), dtype=np.int64)
    jt_node = np.full((max(n_tables, 1), fan), -1, dtype=np.int64)
    jt_within = np.zeros((max(n_tables, 1), fan), dtype=np.int64)
    jt_depth = np.zeros((max(n_tables, 1), fan), dtype=np.int64)
    jt_count = np.zeros((max(n_tables, 1), fan), dtype=np.int64)
    for slot, code in enumerate(table_codes):
        table_slot[code] = slot
        for subcode, entry in enumerate(index.tables[code]):
            jt_matched[slot, subcode] = entry.matched
            jt_lep[slot, subcode] = entry.lep_bits
            state = entry.state
            if state is None:
                continue
            if state.pending is not None:
                nid = id2nid[id(state.pending)]  # repro: allow(ERT001)
                within = 0
            else:
                nid = id2nid[id(state.node)]  # repro: allow(ERT001)
                within = int(state.within)
            nid, within = _settle_nid(kind, chars_len, child, nid, within)
            jt_node[slot, subcode] = nid
            jt_within[slot, subcode] = within
            jt_depth[slot, subcode] = int(state.depth)
            jt_count[slot, subcode] = int(state.count)

    pool_flat: "list[int]" = []
    for part in pool_parts:
        pool_flat.extend(part)
    flat = FlatTrees(
        k=index.config.k,
        table_x=x,
        kind=np.asarray(kind, dtype=np.int64),
        count=np.asarray(count, dtype=np.int64),
        children=np.asarray(children_rows, dtype=np.int64).reshape(-1, 4),
        child=np.asarray(child, dtype=np.int64),
        chars_off=np.asarray(chars_off, dtype=np.int64),
        chars_len=np.asarray(chars_len, dtype=np.int64),
        chars_pool=(np.concatenate(chars_parts)
                    if chars_parts else np.zeros(0, dtype=np.int64)),
        leaf_text0=np.asarray(leaf_text0, dtype=np.int64),
        pos_off=np.asarray(pos_off, dtype=np.int64),
        pos_len=np.asarray(pos_len, dtype=np.int64),
        pool=np.asarray(pool_flat, dtype=np.int64),
        roots=roots,
        table_slot=table_slot,
        jt_matched=jt_matched,
        jt_lep=jt_lep,
        jt_node=jt_node,
        jt_within=jt_within,
        jt_depth=jt_depth,
        jt_count=jt_count,
    )
    index._flat_trees = flat  # type: ignore[attr-defined]
    return flat
