"""Batch-granularity accumulators for the vector kernels.

The vector path must run fully observed without per-element telemetry:
rule ERT007 keeps ``telemetry.*`` out of hot functions and ERT017 keeps
it out of every loop in ``repro.kernels``.  This module is how both stay
satisfied *by construction* -- the sweep counts into plain ndarrays and
scalars on a :class:`KernelBatchStats`, and :meth:`KernelBatchStats.flush`
lands everything in the metrics registry exactly once per batch, inside
the driver's single ``kernels.batch`` span.

Two families come out of one accumulator set:

* **batch totals** -- ``kernels.walk_steps``, ``kernels.gather_nodes``,
  ``kernels.gather_bytes`` (the paper's DRAM-traffic metric: leaf-pool
  bytes the gathers touch, cross-linkable to ``repro.memsim``),
  ``kernels.reseed_launches`` / ``kernels.last_launches``, the
  ``kernels.lane_occupancy`` histogram, plus the scalar-parity families
  (``seeding.*``, ``seeds.*``, ``seed.length`` / ``seed.hit_count``)
  so a vector run exposes the same aggregate counters a scalar run
  would;
* **per-read columns** -- :meth:`read_counters` slices the same arrays
  for one read, which is what the scheduler feeds through the exemplar
  capture hooks so the reservoir/slowlog survive ``--kernels vector``.

Accumulation is unconditional (it is a handful of vector adds per wave
round); only the flush consults the telemetry flag, so dark runs pay no
registry traffic and observed runs stay byte-identical to dark ones.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.seeding.algorithm import _STAT_COUNTERS
from repro.telemetry.metrics import DEFAULT_EDGES, FRACTION_EDGES

#: The default histogram ladder as an ndarray, for pre-bucketing whole
#: seed-attribute columns with one ``searchsorted`` per flush.
_DEFAULT_EDGES = np.asarray(DEFAULT_EDGES, dtype=np.float64)


def _observe_column(name: str, values: "np.ndarray") -> None:
    """Land a whole value column in histogram ``name`` at O(buckets)
    cost: bucket it with ``searchsorted`` (identical semantics to the
    registry's per-value ``bisect_left``) and hand the registry plain
    totals.  The per-value Python loop this replaces was the dominant
    cost of a vector metrics flush."""
    counts = np.bincount(np.searchsorted(_DEFAULT_EDGES, values),
                         minlength=_DEFAULT_EDGES.size + 1).tolist()
    if values.size:
        telemetry.observe_bucketed(name, counts, float(values.sum()),
                                   float(values.min()),
                                   float(values.max()))
    else:
        telemetry.observe_bucketed(name, counts, 0.0, 0.0, 0.0)

#: (counter name, per-read array attribute) -- the columns that surface
#: both as batch totals and as per-read exemplar counters.  Keeping one
#: table guarantees the registry total equals the sum of the per-read
#: values the exemplars carry.
PER_READ_COUNTERS = (
    ("kernels.walk_steps", "walk_steps"),
    ("kernels.gather_nodes", "gather_nodes"),
    ("kernels.gather_bytes", "gather_bytes"),
    ("kernels.reseed_launches", "reseed_launches"),
    ("kernels.last_launches", "last_launches"),
)


class KernelBatchStats:
    """Plain accumulators for one ``seed_batch`` invocation.

    One row per read in the batch (input order); scalars for the
    batch-level quantities.  Nothing here touches the registry -- see
    :meth:`flush`.
    """

    __slots__ = ("n_reads", "walk_steps", "gather_nodes", "gather_bytes",
                 "reseed_launches", "last_launches", "short_reads",
                 "wave_rounds", "occ_live", "occ_slots")

    def __init__(self, n_reads: int) -> None:
        self.n_reads = n_reads
        #: Characters consumed by tree-walk advances, per read (the
        #: vector loop and the scalar straggler finisher count the same
        #: quantity, so the column is batch-composition invariant).
        self.walk_steps = np.zeros(n_reads, dtype=np.int64)
        #: Leaf-pool gathers performed (cache preseeds), per read.
        self.gather_nodes = np.zeros(n_reads, dtype=np.int64)
        #: Euler-pool bytes those gathers touched, per read (positions
        #: are int64, so bytes = positions * 8).
        self.gather_bytes = np.zeros(n_reads, dtype=np.int64)
        #: Round-2 reseed pivots launched, per read.
        self.reseed_launches = np.zeros(n_reads, dtype=np.int64)
        #: Round-3 LAST lanes launched, per read.
        self.last_launches = np.zeros(n_reads, dtype=np.int64)
        #: Reads skipped for length (scalar parity:
        #: ``seeding.short_reads_skipped``).
        self.short_reads = 0
        #: Batched walk dispatches driven (pivot waves, backward
        #: batches, LAST step rounds).
        self.wave_rounds = 0
        #: Lane-occupancy accumulators: live lanes stepped vs lane slots
        #: allocated, summed over every walk round in the batch.
        self.occ_live = 0
        self.occ_slots = 0

    # -- accumulation (plain array math, never the registry) -----------

    def absorb_walk(self, read_ids: np.ndarray, out: "object") -> None:
        """Fold one batched walk dispatch in: per-job step counts
        attributed back to their reads, plus the dispatch's lane
        occupancy (``out`` is a ``_WalkOut``-shaped object with
        ``steps``/``occ_live``/``occ_slots``)."""
        np.add.at(self.walk_steps, read_ids, out.steps)
        self.occ_live += out.occ_live
        self.occ_slots += out.occ_slots
        self.wave_rounds += 1

    # -- per-read views ------------------------------------------------

    def read_counters(self, i: int) -> "dict[str, int]":
        """The kernel counter column for read ``i`` (exemplar payload)."""
        return {name: int(getattr(self, attr)[i])
                for name, attr in PER_READ_COUNTERS}

    def wall_shares(self, batch_ms: float) -> np.ndarray:
        """Apportion one batch-level wall time across the reads.

        Weighted by ``1 + walk_steps`` so heavy reads surface in the
        slowlog while zero-work reads still get a nonzero share; the
        shares sum to ``batch_ms``.
        """
        weights = 1.0 + self.walk_steps.astype(np.float64)
        return batch_ms * weights / float(weights.sum())

    # -- the one registry touch per batch ------------------------------

    def flush(self, engine_stats_before: "dict[str, int]",
              engine_stats_after: "dict[str, int]",
              results: "list") -> None:
        """Land the whole batch in the metrics registry (no-op dark).

        Emits the kernel families and the scalar-parity families, so a
        vector run and a scalar run of the same reads produce identical
        counter totals (spans aside) and the CI assertions on
        ``seeding.reads`` hold in either mode.
        """
        if not telemetry.enabled():
            return
        counters = {"kernels.batches": 1, "kernels.reads": self.n_reads,
                    "kernels.wave_rounds": self.wave_rounds}
        for name, attr in PER_READ_COUNTERS:
            counters[name] = int(getattr(self, attr).sum())
        telemetry.add_counters(counters)
        if self.occ_slots:
            telemetry.observe("kernels.lane_occupancy",
                              self.occ_live / self.occ_slots,
                              edges=FRACTION_EDGES)
        # Scalar-parity families: what the per-read scalar driver
        # (repro.seeding.algorithm.seed_read) would have emitted.
        telemetry.add_counters(
            {_STAT_COUNTERS.get(name, f"seeding.{name}"):
             engine_stats_after[name] - engine_stats_before.get(name, 0)
             for name in engine_stats_after})
        telemetry.count("seeding.reads", self.n_reads)
        if self.short_reads:
            telemetry.count("seeding.short_reads_skipped", self.short_reads)
        all_seeds = [seed for result in results
                     for seed in result.all_seeds]
        n_seeds = len(all_seeds)
        telemetry.count("seeds.emitted", n_seeds)
        _observe_column("seed.length", np.fromiter(
            (seed.length for seed in all_seeds), np.float64, n_seeds))
        _observe_column("seed.hit_count", np.fromiter(
            (seed.hit_count for seed in all_seeds), np.float64, n_seeds))
