"""Anti-diagonal wavefront banded Smith-Waterman *with traceback* over a
batch of targets.

:func:`batched_sw_traceback` aligns one query against ``B`` target
windows at once and returns exactly what ``B`` calls to
:func:`repro.extend.traceback.banded_sw_traceback` would -- same scores,
same coordinates, same CIGAR tuples.  It is the output-producing sibling
of :func:`repro.kernels.sw.batched_banded_sw`: the H/E/F recurrences are
swept by the same anti-diagonal wavefront over rotating ``(B, m + 1)``
planes, but every in-band cell additionally records its traceback state
into band-relative pointer planes -- ``h_ptr`` (int8: stop / diagonal /
from-E / from-F) plus ``e_open`` / ``f_open`` (bool: did the gap state
open here or extend?) of shape ``(B, m + 1, width)``, carved from the
caller's :class:`~repro.extend.smith_waterman.SwWorkspace` -- in the
same layout the scalar kernel builds row by row.  After the sweep, each
lane's alignment is recovered by the *shared* walk-back
(:func:`repro.extend.traceback.walk_back`), so the CIGARs are identical
to the scalar kernel's by construction, not merely by test.

Three departures from :func:`~repro.kernels.sw.batched_banded_sw` keep
the per-diagonal numpy call count low enough to beat the scalar row
loop at small batch sizes:

* **Boundary pinning instead of masking.**  The scalar kernel's
  out-of-band reads (H as 0, E/F as ``NEG_INF``) are materialized by
  pinning the one plane column on either side of each diagonal's
  written span, so the recurrences are straight slice arithmetic with
  no per-diagonal ``ok``-mask construction or ``np.where`` repairs.
  (This is the wavefront analogue of the rotating-row pinning in
  :func:`repro.extend.traceback.banded_sw_traceback`.)
* **Strided flat writes.**  A diagonal maps to band-relative pointer
  cells ``(i, half + d - 2i)``; on the flattened ``(m + 1) * width``
  plane those sit at a constant stride of ``width - 2``, so each
  pointer plane takes one basic-slice write per diagonal instead of a
  fancy-indexed scatter.
* **Post-sweep best search.**  H values are also streamed into a full
  band-relative plane; the best cell (first row-major occurrence of
  the maximum -- the scalar tie-break) is one masked ``argmax`` per
  lane after the sweep, replacing per-diagonal max/argmax/compare
  bookkeeping.

Like the batched walk kernel, tiny batches fall back to a scalar
dispatch loop: below :data:`MIN_WAVEFRONT_LANES` lanes the per-diagonal
numpy call overhead exceeds the scalar kernel's per-row loop, so the
batch entry point simply calls the scalar kernel per target (trivially
identical output).  The crossover was measured on the tracked benchmark
workload (101 bp reads, band 41).
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.telemetry.metrics import FRACTION_EDGES
from repro.extend.smith_waterman import (
    DEFAULT_SCHEME,
    NEG_INF,
    ScoringScheme,
    SwWorkspace,
)
from repro.extend.traceback import (
    _DIAG,
    _FROM_E,
    _FROM_F,
    _STOP,
    TracedAlignment,
    banded_sw_traceback,
    walk_back,
)

#: Below this many lanes the wavefront sweep loses to the scalar row
#: loop (numpy call overhead on ~band-wide diagonals dominates); the
#: batch entry point dispatches to the scalar kernel instead.
MIN_WAVEFRONT_LANES = 3


def batched_sw_traceback(query: np.ndarray, targets: "list[np.ndarray]",
                         scheme: "ScoringScheme | None" = None,
                         band: int = 41,
                         workspace: "SwWorkspace | None" = None,
                         min_lanes: "int | None" = None
                         ) -> "list[TracedAlignment]":
    """Banded local alignment with CIGAR of ``query`` vs each target.

    Equivalent to ``[banded_sw_traceback(query, t, scheme, band,
    workspace) for t in targets]``, computed wavefront-parallel across
    the batch.  ``min_lanes`` overrides the scalar-dispatch crossover
    (the equivalence tests pin it to 1 to force the wavefront path on
    small batches).
    """
    scheme = scheme or DEFAULT_SCHEME
    if band < 1:
        raise ValueError("band must be at least 1")
    workspace = workspace or SwWorkspace()
    q = np.asarray(query, dtype=np.int16)
    m = int(q.size)
    B = len(targets)
    if B == 0:
        return []
    floor = MIN_WAVEFRONT_LANES if min_lanes is None else min_lanes
    n_arr = np.array([int(np.asarray(t).size) for t in targets],
                     dtype=np.int64)
    n_max = int(n_arr.max())
    if B < floor or m == 0 or n_max == 0:
        # Batch-granularity bookkeeping only (no-ops while telemetry is
        # off): which batches the wavefront declined, and why.
        telemetry.count("kernels.sw_scalar_batches")
        if B < floor:
            telemetry.count("kernels.fallback_scalar.lanes")
        return [banded_sw_traceback(query, t, scheme, band,
                                    workspace=workspace) for t in targets]
    # Plane-fill fraction of this dispatch: real target columns over
    # the (B, widest-lane) rectangle the rotating planes pay for.
    telemetry.observe("kernels.wavefront_fill",
                      float(n_arr.sum()) / (B * n_max),
                      edges=FRACTION_EDGES)
    half = band // 2
    width = 2 * half + 2

    # Targets padded with a sentinel that can never equal a base code.
    tpad = np.full((B, n_max + 1), 127, dtype=np.int64)
    t16: "list[np.ndarray]" = []
    for b, t in enumerate(targets):
        tb = np.asarray(t, dtype=np.int16)
        t16.append(tb)
        tpad[b, :tb.size] = tb
    q64 = q.astype(np.int64)

    # Seven rotating (B, m + 1) wavefront planes plus one full
    # band-relative H plane (the post-sweep best search), carved as
    # contiguous chunks of one workspace block.
    cols = m + 1
    plane = cols * width
    block = workspace.grid(1, 1, B * (7 * cols + plane))[0, 0]
    h_m2 = block[0 * B * cols:1 * B * cols].reshape(B, cols)
    h_m1 = block[1 * B * cols:2 * B * cols].reshape(B, cols)
    h_cur = block[2 * B * cols:3 * B * cols].reshape(B, cols)
    e_m1 = block[3 * B * cols:4 * B * cols].reshape(B, cols)
    e_cur = block[4 * B * cols:5 * B * cols].reshape(B, cols)
    f_m1 = block[5 * B * cols:6 * B * cols].reshape(B, cols)
    f_cur = block[6 * B * cols:7 * B * cols].reshape(B, cols)
    h_all = block[7 * B * cols:].reshape(B, plane)
    h_m2[:] = 0
    h_m1[:] = 0
    e_m1[:] = NEG_INF
    f_m1[:] = NEG_INF
    h_all[:] = 0

    h_ptr, e_open, f_open = workspace.ptr_planes(B, cols, width)
    ptr_flat = h_ptr.reshape(B, plane)
    eopen_flat = e_open.reshape(B, plane)
    fopen_flat = f_open.reshape(B, plane)
    # The walk-back provably never reads an unwritten cell (every
    # positive H/E/F value implies an in-band, already-swept source),
    # but a zeroed H-pointer plane turns any future regression into a
    # deterministic early stop rather than garbage-driven output.
    h_ptr[:] = _STOP

    match = scheme.match
    mismatch = scheme.mismatch
    open_ = scheme.gap_open
    ext = scheme.gap_extend
    stride = width - 2  # flat step between successive rows of a diagonal

    for d in range(2, m + n_max + 1):
        i_lo = max(1, (d - half + 1) // 2, d - n_max)
        i_hi = min(m, (d + half) // 2, d - 1)
        if i_lo > i_hi:
            if d - n_max > min(m, (d + half) // 2) \
                    or (d - half + 1) // 2 > m:
                break  # the band has left the matrix for good
            # Parity gap (band 1): no in-band cell on this diagonal, but
            # later diagonals still read it -- fill with the boundary
            # values a masked kernel would have substituted, and rotate.
            h_cur[:] = 0
            e_cur[:] = NEG_INF
            f_cur[:] = NEG_INF
            h_m2, h_m1, h_cur = h_m1, h_cur, h_m2
            e_m1, e_cur = e_cur, e_m1
            f_m1, f_cur = f_cur, f_m1
            continue

        # All source reads are plain slices: boundary pinning (below)
        # already planted H = 0 / E,F = NEG_INF in the one column on
        # either side of the previous diagonals' written spans, which is
        # exactly as far as any in-band cell can reach.
        e_new = np.maximum(h_m1[:, i_lo - 1:i_hi] + open_,
                           e_m1[:, i_lo - 1:i_hi] + ext)
        f_new = np.maximum(h_m1[:, i_lo:i_hi + 1] + open_,
                           f_m1[:, i_lo:i_hi + 1] + ext)
        # Match term: target index j - 1 = d - 1 - i runs *down* as the
        # row runs up, a negative-step slice of the padded target block.
        t_hi = d - 1 - i_lo
        t_lo = d - 2 - i_hi
        tview = tpad[:, t_hi:t_lo if t_lo >= 0 else None:-1]
        sub = np.where(tview == q64[i_lo - 1:i_hi][None, :],
                       match, mismatch)
        diag = h_m2[:, i_lo - 1:i_hi] + sub
        h_new = np.maximum(np.maximum(diag, 0),
                           np.maximum(e_new, f_new))

        h_cur[:, i_lo:i_hi + 1] = h_new
        e_cur[:, i_lo:i_hi + 1] = e_new
        f_cur[:, i_lo:i_hi + 1] = f_new
        # Boundary pinning for the next two diagonals' readers.
        h_cur[:, i_lo - 1] = 0
        e_cur[:, i_lo - 1] = NEG_INF
        f_cur[:, i_lo - 1] = NEG_INF
        if i_hi < m:
            h_cur[:, i_hi + 1] = 0
            e_cur[:, i_hi + 1] = NEG_INF
            f_cur[:, i_hi + 1] = NEG_INF

        # Pointer cells (i, half + d - 2i) sit at constant flat stride
        # width - 2; priority order is stop, diagonal, E, then F, same
        # as the scalar kernel's per-cell chain.
        start = i_lo * stride + half + d
        sl = slice(start, start + (i_hi - i_lo + 1) * max(stride, 1),
                   max(stride, 1))
        ptr_flat[:, sl] = np.where(
            h_new == 0, _STOP,
            np.where(h_new == diag, _DIAG,
                     np.where(h_new == e_new, _FROM_E, _FROM_F)))
        eopen_flat[:, sl] = h_m1[:, i_lo - 1:i_hi] + open_ \
            >= e_m1[:, i_lo - 1:i_hi] + ext
        fopen_flat[:, sl] = h_m1[:, i_lo:i_hi + 1] + open_ \
            >= f_m1[:, i_lo:i_hi + 1] + ext
        h_all[:, sl] = h_new

        h_m2, h_m1, h_cur = h_m1, h_cur, h_m2
        e_m1, e_cur = e_cur, e_m1
        f_m1, f_cur = f_cur, f_m1

    # Best cell per lane: the plane was zeroed, only in-band cells were
    # written, and flat order is row-major in (i, j) -- so a masked
    # first-occurrence argmax reproduces the scalar kernel's strict-
    # improvement scan exactly.  The mask removes cells beyond each
    # lane's own target (written from sentinel padding).
    i_idx = np.arange(cols, dtype=np.int64)
    j_grid = (i_idx[:, None] - half
              + np.arange(width, dtype=np.int64)[None, :]).reshape(plane)
    scores = np.where(j_grid[None, :] <= n_arr[:, None], h_all, 0)
    flat_best = scores.argmax(axis=1)
    best = scores[np.arange(B), flat_best]

    out: "list[TracedAlignment]" = []
    empty = None
    for b in range(B):
        score = int(best[b])
        if score <= 0:
            if empty is None:
                empty = TracedAlignment(
                    0, 0, 0, 0, 0, (("S", m),) if m else ())
            out.append(empty)
            continue
        best_i, r = divmod(int(flat_best[b]), width)
        best_j = r + best_i - half
        out.append(walk_back(q, t16[b], h_ptr[b], e_open[b], f_open[b],
                             score, best_i, best_j, half, m))
    return out
