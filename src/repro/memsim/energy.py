"""DRAM energy accounting (the DRAMPower stand-in, paper §V).

A page open costs an ACT/PRE pair; every line transfer costs a read
burst; idle channels draw background power.  Constants are DDR4-class
(nanojoule scale) -- the aim is the paper's Table III cross-check (DRAM
~2.2 W under load), not datasheet-exact numbers.
"""

# ERT004 exception: energy accounting is float-domain by nature
# (nanojoules, watts); the integer event counts it consumes are produced
# and checked elsewhere (PageStats in repro.memsim.dram).
# repro: allow-file(ERT004)

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim.dram import DramModel


@dataclass(frozen=True)
class DramEnergyConfig:
    """Per-operation energy and background power."""

    activate_nj: float = 2.5
    read_line_nj: float = 1.2
    background_w_per_channel: float = 0.12

    def __post_init__(self) -> None:
        if self.activate_nj < 0 or self.read_line_nj < 0:
            raise ValueError("energies must be non-negative")


@dataclass(frozen=True)
class DramEnergyReport:
    """Energy split of one simulated interval."""

    activate_j: float
    read_j: float
    background_j: float

    @property
    def total_j(self) -> float:
        return self.activate_j + self.read_j + self.background_j

    def power_w(self, seconds: float) -> float:
        if seconds <= 0:
            raise ValueError("interval must be positive")
        return self.total_j / seconds


def dram_energy(dram: DramModel, seconds: float,
                config: "DramEnergyConfig | None" = None
                ) -> DramEnergyReport:
    """Energy of everything ``dram`` has served, over ``seconds``."""
    config = config or DramEnergyConfig()
    opens = dram.total.page_opens
    lines = dram.total.accesses
    background = (config.background_w_per_channel
                  * dram.config.channels * max(seconds, 0.0))
    return DramEnergyReport(
        activate_j=opens * config.activate_nj * 1e-9,
        read_j=lines * config.read_line_nj * 1e-9,
        background_j=background,
    )
