"""Address spaces and tagged memory-access tracing.

Every index structure in this repository is given a byte-accurate serialized
layout and allocates a :class:`Region` in a shared :class:`AddressSpace`.
Functional engines (FMD search, ERT walks) then report each logical memory
access to a :class:`MemoryTracer`, tagged with the *phase* of the seeding
algorithm that issued it (``index_lookup``, ``tree_root``, ``tree_traversal``,
``leaf_gather``, ``ref_fetch``, ``occ_lookup``, ``sa_lookup``...).

The tracer:

* coalesces each access into the set of cache lines it touches, mirroring
  how the paper counts "memory requests per read" (Fig 12a) and "data
  required per read" in 64 B units (Fig 12b);
* forwards each line-level request to any attached *sinks* (DRAM model,
  cache models, the accelerator's trace consumer).

Tracing is optional: with ``tracer=None`` the engines skip all accounting,
so correctness tests pay no overhead.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass


CACHE_LINE = 64


@dataclass(frozen=True)
class Region:
    """A named, contiguous byte range inside an :class:`AddressSpace`."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size


class AddressSpace:
    """A flat byte address space in which structures allocate regions.

    Regions are aligned to DRAM-row boundaries (default 2 KiB) so that two
    structures never share a row, which keeps per-structure page-open
    attribution exact.
    """

    def __init__(self, alignment: int = 2048) -> None:
        if alignment <= 0 or alignment & (alignment - 1):
            raise ValueError("alignment must be a positive power of two")
        self.alignment = alignment
        self._next = 0
        self.regions: "dict[str, Region]" = {}

    def allocate(self, name: str, size: int) -> Region:
        """Allocate ``size`` bytes under ``name`` and return the region."""
        if name in self.regions:
            raise ValueError(f"region {name!r} already allocated")
        if size < 0:
            raise ValueError("region size must be non-negative")
        base = self._next
        region = Region(name=name, base=base, size=size)
        self.regions[name] = region
        mask = self.alignment - 1
        self._next = (base + size + mask) & ~mask
        return region

    @property
    def total_size(self) -> int:
        """Total footprint in bytes (end of the last allocated region)."""
        return self._next

    def find(self, addr: int) -> "Region | None":
        """Return the region containing ``addr`` (linear scan; debug aid)."""
        for region in self.regions.values():
            if region.base <= addr < region.end:
                return region
        return None


@dataclass(frozen=True)
class Access:
    """One cache-line-granularity memory request."""

    addr: int
    size: int
    phase: str
    region: str


@dataclass
class PhaseStats:
    """Request/byte counters for one phase."""

    requests: int = 0
    bytes: int = 0

    def add(self, requests: int, nbytes: int) -> None:
        self.requests += requests
        self.bytes += nbytes


class MemoryTracer:
    """Collect line-granular memory requests tagged by phase.

    Parameters
    ----------
    line_size:
        Granularity of a memory request (64 B cache lines by default,
        matching how the paper reports Fig 12).
    keep_trace:
        If true, every :class:`Access` is retained in ``trace`` (needed by
        the accelerator simulator's replay); otherwise only counters are
        kept, which is much cheaper for large batches.
    """

    def __init__(self, line_size: int = CACHE_LINE, keep_trace: bool = False) -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        self.line_size = line_size
        self.keep_trace = keep_trace
        self.trace: "list[Access]" = []
        self.by_phase: "dict[str, PhaseStats]" = defaultdict(PhaseStats)
        self.sinks: "list" = []
        self._line_mask = ~(line_size - 1)

    def access(self, addr: int, size: int, phase: str, region: str = "") -> None:
        """Record a logical access of ``size`` bytes at ``addr``.

        The access is split into the cache lines it touches; each line
        counts as one memory request fetching ``line_size`` bytes, exactly
        as a cache-line-granular memory system would behave.
        """
        if size <= 0:
            raise ValueError("access size must be positive")
        first_line = addr & self._line_mask
        last_line = (addr + size - 1) & self._line_mask
        n_lines = (last_line - first_line) // self.line_size + 1
        self.by_phase[phase].add(n_lines, n_lines * self.line_size)
        need_events = self.keep_trace or self.sinks
        if need_events:
            for i in range(n_lines):
                event = Access(addr=first_line + i * self.line_size,
                               size=self.line_size, phase=phase, region=region)
                if self.keep_trace:
                    self.trace.append(event)
                for sink in self.sinks:
                    sink.on_access(event)

    @property
    def total_requests(self) -> int:
        return sum(stats.requests for stats in self.by_phase.values())

    @property
    def total_bytes(self) -> int:
        return sum(stats.bytes for stats in self.by_phase.values())

    def reset(self) -> None:
        """Clear counters and the retained trace (sinks are untouched)."""
        self.trace.clear()
        self.by_phase.clear()

    def snapshot(self) -> "dict[str, PhaseStats]":
        """Copy of the per-phase counters (for before/after deltas)."""
        return {phase: PhaseStats(stats.requests, stats.bytes)
                for phase, stats in self.by_phase.items()}
