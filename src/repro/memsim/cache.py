"""Cache models: direct-mapped, set-associative and fully associative.

The accelerator's k-mer reuse cache (§IV-D) is direct-mapped -- the paper
settled on direct mapping after observing a hit rate within 1.2 % of fully
associative.  The same model doubles as a generic last-level-cache stand-in
when measuring how poorly FMD-index accesses cache (§II-C).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        # Derived reporting ratio, not accounting state (ERT004 exception).
        return self.hits / self.accesses if self.accesses else 0.0  # repro: allow(ERT004)


class CacheModel:
    """An LRU set-associative cache over byte addresses.

    Parameters
    ----------
    size:
        Capacity in bytes.
    line_size:
        Line size in bytes (power of two).
    ways:
        Associativity; ``1`` is direct-mapped, ``None`` is fully associative.
    """

    def __init__(self, size: int, line_size: int = 64, ways: "int | None" = 1) -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        if size <= 0 or size % line_size:
            raise ValueError("size must be a positive multiple of line_size")
        n_lines = size // line_size
        if ways is None:
            ways = n_lines
        if ways <= 0 or n_lines % ways:
            raise ValueError("number of lines must be a multiple of ways")
        self.size = size
        self.line_size = line_size
        self.ways = ways
        self.n_sets = n_lines // ways
        self.stats = CacheStats()
        # Each set is an OrderedDict tag -> None, most recent last.
        self._sets = [OrderedDict() for _ in range(self.n_sets)]

    def _locate(self, addr: int) -> "tuple[int, int]":
        line = addr // self.line_size
        return line % self.n_sets, line // self.n_sets

    # repro: hot -- called once per memory request; stats stay in CacheStats.
    def lookup(self, addr: int) -> bool:
        """Access ``addr``; return True on hit.  Misses allocate the line."""
        set_idx, tag = self._locate(addr)
        cache_set = self._sets[set_idx]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        cache_set[tag] = None
        if len(cache_set) > self.ways:
            cache_set.popitem(last=False)
        return False

    def contains(self, addr: int) -> bool:
        """Non-mutating presence probe (no stats, no LRU update)."""
        set_idx, tag = self._locate(addr)
        return tag in self._sets[set_idx]

    def invalidate(self) -> None:
        """Drop all contents; stats are preserved."""
        for cache_set in self._sets:
            cache_set.clear()

    def publish_metrics(self, prefix: str = "memsim.cache") -> None:
        """Surface the hit/miss counters as telemetry gauges.

        Gauges, not counters: the stats object is itself cumulative, so
        publishing is idempotent and can run after every batch.  No-op
        while telemetry is disabled.
        """
        from repro import telemetry

        if not telemetry.enabled():
            return
        telemetry.set_gauge(f"{prefix}.hits", self.stats.hits)
        telemetry.set_gauge(f"{prefix}.misses", self.stats.misses)
        telemetry.set_gauge(f"{prefix}.hit_rate", self.stats.hit_rate)

    def on_access(self, event) -> None:
        """Tracer-sink adapter: feed an :class:`~repro.memsim.trace.Access`."""
        self.lookup(event.addr)
