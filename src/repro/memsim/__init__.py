"""Memory-system modelling: access tracing, caches and DRAM row buffers.

The paper's evaluation is largely a memory-traffic argument: Figs 12-14
count memory requests, bytes fetched and DRAM page opens per read, broken
down by seeding phase.  This package provides the machinery to reproduce
those measurements:

* :mod:`repro.memsim.trace` -- an :class:`AddressSpace` in which every index
  structure allocates a region, and a :class:`MemoryTracer` through which the
  functional engines report every (address, size, phase) access.
* :mod:`repro.memsim.cache` -- direct-mapped / set-associative / fully
  associative cache models (the k-mer reuse cache of §IV-D is direct-mapped).
* :mod:`repro.memsim.dram` -- a channel/bank/row model with an open-page
  policy that counts row-buffer hits and page opens per phase (Figs 13-14),
  standing in for Ramulator (§V).
"""

from repro.memsim.cache import CacheModel, CacheStats
from repro.memsim.dram import DramConfig, DramModel
from repro.memsim.trace import (
    Access,
    AddressSpace,
    MemoryTracer,
    PhaseStats,
    Region,
)

__all__ = [
    "Access",
    "AddressSpace",
    "CacheModel",
    "CacheStats",
    "DramConfig",
    "DramModel",
    "MemoryTracer",
    "PhaseStats",
    "Region",
]
