"""A DRAM channel/bank/row-buffer model with an open-page policy.

Stands in for Ramulator in the paper's methodology (§V).  The model tracks
the open row in every (channel, bank) pair; an access to a different row is
a *page open* (row-buffer miss).  Page opens are counted per seeding phase,
which is exactly the data behind the paper's Fig 13 (page-open breakdown for
ERT-KR) and Fig 14 (page opens per read across ERT / ERT-PM / ERT-KR).

The same model supplies access latencies to the accelerator simulator:
row-buffer hits cost ``t_hit`` cycles and misses ``t_miss`` cycles, plus
queueing delay from per-channel bandwidth limits.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass


@dataclass(frozen=True)
class DramConfig:
    """Geometry and timing of the modelled DRAM system.

    Defaults approximate 8-channel DDR4 as in the paper's ASIC evaluation
    (Table III lists 8 channels); the FPGA configuration narrows this to the
    F1 instance's 4 channels per FPGA with higher effective latency.
    """

    channels: int = 8
    banks_per_channel: int = 16
    row_size: int = 2048
    line_size: int = 64
    t_hit: int = 20
    t_miss: int = 45
    #: Minimum cycles between line transfers on one channel (bandwidth limit).
    cycles_per_line: int = 4

    def __post_init__(self) -> None:
        for name in ("channels", "banks_per_channel", "row_size", "line_size"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.row_size % self.line_size:
            raise ValueError("row_size must be a multiple of line_size")


@dataclass
class PageStats:
    """Row-buffer hit / page-open counters.

    ``row_conflicts`` subdivides ``page_opens``: a page open against a
    bank whose row buffer held a *different* row (as opposed to a cold
    bank), i.e. the accesses that pay a precharge on top of the activate.
    """

    row_hits: int = 0
    page_opens: int = 0
    row_conflicts: int = 0

    @property
    def accesses(self) -> int:
        return self.row_hits + self.page_opens

    @property
    def hit_rate(self) -> float:
        # Derived reporting ratio, not accounting state (ERT004 exception).
        return self.row_hits / self.accesses if self.accesses else 0.0  # repro: allow(ERT004)


class DramModel:
    """Open-page DRAM model counting row hits and page opens per phase."""

    def __init__(self, config: "DramConfig | None" = None) -> None:
        self.config = config or DramConfig()
        self.by_phase: "dict[str, PageStats]" = defaultdict(PageStats)
        self.total = PageStats()
        # Open row per (channel, bank); None means closed/unknown.
        self._open_rows: "dict[tuple[int, int], int]" = {}
        # Next cycle each channel's data bus is free (for latency modelling).
        self._channel_free = [0] * self.config.channels

    def _map(self, addr: int) -> "tuple[int, int, int]":
        """Map a byte address to (channel, bank, row).

        Rows are interleaved across channels then banks, the common layout
        that spreads sequential rows over the whole system while keeping a
        row's worth of consecutive bytes in one row buffer.
        """
        cfg = self.config
        row_block = addr // cfg.row_size
        channel = row_block % cfg.channels
        bank = (row_block // cfg.channels) % cfg.banks_per_channel
        row = row_block // (cfg.channels * cfg.banks_per_channel)
        return channel, bank, row

    # repro: hot -- called once per line transfer; stats stay in PageStats.
    def access(self, addr: int, phase: str = "") -> bool:
        """Record an access; return True if it hit the open row."""
        channel, bank, row = self._map(addr)
        key = (channel, bank)
        prev = self._open_rows.get(key)
        hit = prev == row
        self._open_rows[key] = row
        stats = self.by_phase[phase]
        if hit:
            stats.row_hits += 1
            self.total.row_hits += 1
        else:
            stats.page_opens += 1
            self.total.page_opens += 1
            if prev is not None:
                stats.row_conflicts += 1
                self.total.row_conflicts += 1
        return hit

    def access_latency(self, addr: int, now: int, phase: str = "") -> int:
        """Record an access at cycle ``now``; return its completion cycle.

        Combines row-buffer timing with a per-channel bandwidth constraint:
        a channel can start a new line transfer at most every
        ``cycles_per_line`` cycles.
        """
        channel, _, _ = self._map(addr)
        hit = self.access(addr, phase)
        service = self.config.t_hit if hit else self.config.t_miss
        start = max(now, self._channel_free[channel])
        self._channel_free[channel] = start + self.config.cycles_per_line
        return start + service

    def on_access(self, event) -> None:
        """Tracer-sink adapter: feed an :class:`~repro.memsim.trace.Access`."""
        self.access(event.addr, event.phase)

    def publish_metrics(self, prefix: str = "memsim.dram") -> None:
        """Surface row-buffer behaviour as telemetry gauges: totals plus
        per-phase page opens (the paper's Fig 13 breakdown).  Idempotent;
        no-op while telemetry is disabled."""
        from repro import telemetry

        if not telemetry.enabled():
            return
        telemetry.set_gauge(f"{prefix}.row_hits", self.total.row_hits)
        telemetry.set_gauge(f"{prefix}.page_opens", self.total.page_opens)
        telemetry.set_gauge(f"{prefix}.row_conflicts",
                            self.total.row_conflicts)
        telemetry.set_gauge(f"{prefix}.row_hit_rate", self.total.hit_rate)
        for phase, stats in self.by_phase.items():
            label = telemetry.sanitize(phase) or "untagged"
            telemetry.set_gauge(f"{prefix}.page_opens.{label}",
                                stats.page_opens)

    def reset_stats(self) -> None:
        """Clear counters and row-buffer state."""
        self.by_phase.clear()
        self.total = PageStats()
        self._open_rows.clear()
        self._channel_free = [0] * self.config.channels
