"""Run-over-run comparison and the regression gate.

``diff_records`` compares the metric maps of two manifests; a metric
whose name marks it as a throughput (higher-is-better) quantity and
whose current value fell more than ``threshold`` below the previous one
is a *regression*.  Non-throughput metrics are reported with their
deltas but never gate -- wall-clock totals and counter values move for
legitimate reasons (bigger workloads), and the ledger records workload
parameters precisely so a human can tell those apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

#: Substrings identifying a higher-is-better metric name.
THROUGHPUT_MARKERS = ("per_sec", "per_s", "throughput", "reads_s")

#: Default regression threshold: flag a >10% throughput drop.
DEFAULT_THRESHOLD = 0.10


def is_throughput_metric(name: str) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in THROUGHPUT_MARKERS)


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across two runs."""

    name: str
    previous: float
    current: float
    #: Fractional change relative to the previous value (0.05 = +5%);
    #: ``None`` when the previous value is zero.
    change: "float | None"
    #: Gate verdict: a throughput metric that dropped beyond threshold.
    regression: bool

    def describe(self) -> str:
        pct = (f"{self.change * 100:+.1f}%" if self.change is not None
               else "n/a")
        flag = "  << REGRESSION" if self.regression else ""
        return (f"{self.name}: {self.previous:,.6g} -> "
                f"{self.current:,.6g} ({pct}){flag}")


def diff_records(previous: "Mapping[str, Any]",
                 current: "Mapping[str, Any]",
                 threshold: float = DEFAULT_THRESHOLD) \
        -> "list[MetricDelta]":
    """Compare the metric maps of two ledger records (metrics present in
    both, sorted by name).  Raises on schema mismatch -- diffing across
    incompatible manifest shapes would produce silent nonsense."""
    prev_schema = previous.get("schema")
    curr_schema = current.get("schema")
    if prev_schema != curr_schema:
        raise ValueError(
            f"cannot diff across ledger schema versions "
            f"({prev_schema!r} vs {curr_schema!r})")
    prev_metrics = previous.get("metrics", {}) or {}
    curr_metrics = current.get("metrics", {}) or {}
    deltas: "list[MetricDelta]" = []
    for name in sorted(set(prev_metrics) & set(curr_metrics)):
        prev_value = float(prev_metrics[name])
        curr_value = float(curr_metrics[name])
        change = ((curr_value - prev_value) / prev_value
                  if prev_value else None)
        regression = (is_throughput_metric(name)
                      and prev_value > 0
                      and curr_value < prev_value * (1.0 - threshold))
        deltas.append(MetricDelta(name, prev_value, curr_value, change,
                                  regression))
    return deltas


def render_diff(benchmark: str, previous: "Mapping[str, Any]",
                current: "Mapping[str, Any]",
                deltas: "list[MetricDelta]",
                threshold: float = DEFAULT_THRESHOLD) -> str:
    """Human-readable diff block for one benchmark."""
    lines = [f"== {benchmark} =="]
    lines.append(f"  previous: {previous.get('recorded_at', '?')} "
                 f"[{previous.get('label', '')}]")
    lines.append(f"  current : {current.get('recorded_at', '?')} "
                 f"[{current.get('label', '')}]")
    if not deltas:
        lines.append("  (no common metrics)")
        return "\n".join(lines)
    for delta in deltas:
        lines.append(f"  {delta.describe()}")
    regressions = [d for d in deltas if d.regression]
    if regressions:
        lines.append(f"  {len(regressions)} throughput regression(s) "
                     f"beyond {threshold * 100:.0f}%")
    return "\n".join(lines)
