"""The benchmark run ledger: persisted run manifests + regression diffs.

A *ledger* is an append-only JSONL file (``benchmarks/ledger.jsonl`` by
default) holding one manifest per recorded run: what was run (benchmark
name, workload parameters, config), where (environment fingerprint --
python, platform, cpu count), and what came out (flattened numeric
metrics, optionally derived from a benchmark's JSON output or a
telemetry snapshot).  ``ert-repro ledger diff`` compares the last two
runs of each benchmark and flags throughput regressions beyond a
threshold with a non-zero exit, which is what makes the ledger a CI
gate rather than a log.

The package sits at the top of the layering DAG (alongside
``repro.analysis`` and the CLI): it may read telemetry snapshots but
nothing below it may import it (checker rule ERT005).
"""

from __future__ import annotations

from repro.ledger.diff import (
    MetricDelta,
    diff_records,
    is_throughput_metric,
    render_diff,
)
from repro.ledger.records import (
    DEFAULT_LEDGER_PATH,
    LEDGER_SCHEMA,
    append_record,
    build_record,
    env_fingerprint,
    flatten_metrics,
    last_runs,
    read_ledger,
    snapshot_metrics,
)

__all__ = [
    "DEFAULT_LEDGER_PATH",
    "LEDGER_SCHEMA",
    "MetricDelta",
    "append_record",
    "build_record",
    "diff_records",
    "env_fingerprint",
    "flatten_metrics",
    "is_throughput_metric",
    "last_runs",
    "read_ledger",
    "render_diff",
    "snapshot_metrics",
]
