"""Run manifests and the append-only JSONL ledger file.

One *record* per run::

    {"schema": 1, "benchmark": "seed_throughput", "label": "ci",
     "recorded_at": "2026-02-11T08:30:00+00:00",
     "env": {"python": "3.11.8", ...},
     "workload": {"reads": 2000, ...}, "config": {"workers": 2, ...},
     "metrics": {"seeding.reads_per_sec": 18432.7, ...}}

Metrics are a flat ``name -> number`` mapping; nested benchmark JSON
(the ``BENCH`` documents the scripts in ``benchmarks/`` emit) is
flattened with dotted keys, and subtrees a benchmark marked invalid for
the recording host (``"invalid_on_this_host"``) are skipped rather than
recorded as misleading numbers.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from datetime import datetime, timezone
from typing import Any, Iterable, Mapping

#: Bump when the record shape changes incompatibly; ``diff`` refuses to
#: compare across schema versions.
LEDGER_SCHEMA = 1

DEFAULT_LEDGER_PATH = os.path.join("benchmarks", "ledger.jsonl")

#: Marker value benchmarks place in their JSON (e.g. the pool sweep on a
#: single-core host) meaning "this subtree is not a valid measurement
#: here"; flattening skips any subtree containing it.
INVALID_MARKER = "invalid_on_this_host"


def env_fingerprint() -> "dict[str, Any]":
    """Where a run happened: enough to explain a throughput delta that
    is really a hardware/interpreter change, cheap enough to record
    every run."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def flatten_metrics(data: "Mapping[str, Any]",
                    prefix: str = "") -> "dict[str, float]":
    """Flatten nested benchmark JSON into dotted numeric leaves.

    Non-numeric leaves are dropped; a mapping that contains
    :data:`INVALID_MARKER` anywhere among its direct values is skipped
    wholesale (the benchmark is saying "do not trust these numbers on
    this host").
    """
    out: "dict[str, float]" = {}
    if any(value == INVALID_MARKER for value in data.values()):
        return out
    for key, value in data.items():
        name = f"{prefix}{key}"
        if isinstance(value, Mapping):
            out.update(flatten_metrics(value, prefix=f"{name}."))
        elif _is_number(value):
            out[name] = float(value)
    return out


def snapshot_metrics(snapshot: "Mapping[str, Any]") -> "dict[str, float]":
    """Ledger-worthy numbers from a telemetry snapshot (the JSON written
    by ``--metrics-out``): per-root-span wall clock, every counter, and
    a derived ``seeding.reads_per_sec`` throughput when the snapshot
    holds both the ``seeding.reads`` counter and the ``seed`` span."""
    out: "dict[str, float]" = {}
    spans = snapshot.get("spans", {}) or {}
    for path, stat in spans.items():
        if "/" not in path:
            out[f"span.{path}.total_s"] = float(stat.get("total_s", 0.0))
    counters = snapshot.get("counters", {}) or {}
    for name, value in counters.items():
        if _is_number(value):
            out[f"counter.{name}"] = float(value)
    reads = counters.get("seeding.reads")
    seed_total = (spans.get("seed") or {}).get("total_s", 0.0)
    if _is_number(reads) and reads and seed_total:
        out["seeding.reads_per_sec"] = float(reads) / float(seed_total)
    return out


def build_record(benchmark: str, metrics: "Mapping[str, float]",
                 label: str = "",
                 workload: "Mapping[str, Any] | None" = None,
                 config: "Mapping[str, Any] | None" = None,
                 telemetry: "Mapping[str, Any] | None" = None,
                 recorded_at: "str | None" = None) -> "dict[str, Any]":
    """Assemble one run manifest.  ``recorded_at`` is injectable for
    deterministic tests; it defaults to the current UTC instant."""
    if recorded_at is None:
        recorded_at = datetime.now(timezone.utc).isoformat(
            timespec="seconds")
    record: "dict[str, Any]" = {
        "schema": LEDGER_SCHEMA,
        "benchmark": benchmark,
        "label": label,
        "recorded_at": recorded_at,
        "env": env_fingerprint(),
        "metrics": {name: float(value)
                    for name, value in sorted(metrics.items())},
    }
    if workload:
        record["workload"] = dict(workload)
    if config:
        record["config"] = dict(config)
    if telemetry:
        record["telemetry"] = dict(telemetry)
    return record


def append_record(path: str, record: "Mapping[str, Any]") -> None:
    """Append one manifest to the ledger (created on first use)."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def read_ledger(path: str) -> "list[dict[str, Any]]":
    """Every record in the ledger, oldest first.  A missing file is an
    empty ledger; a malformed line is an error naming the line (ledgers
    are append-only artifacts -- corruption means something else wrote
    to the file and silently skipping would hide it)."""
    if not os.path.exists(path):
        return []
    records: "list[dict[str, Any]]" = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not a JSON record ({exc})") from exc
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{lineno}: record is not a JSON object")
            records.append(record)
    return records


def last_runs(records: "Iterable[Mapping[str, Any]]", benchmark: str,
              n: int = 2) -> "list[dict[str, Any]]":
    """The last ``n`` records for ``benchmark``, oldest of the window
    first (so ``[-2]`` vs ``[-1]`` reads previous vs current)."""
    matching = [dict(rec) for rec in records
                if rec.get("benchmark") == benchmark]
    return matching[-n:]


def benchmarks_in(records: "Iterable[Mapping[str, Any]]") -> "list[str]":
    """Distinct benchmark names, in first-appearance order."""
    seen: "dict[str, None]" = {}
    for rec in records:
        name = rec.get("benchmark")
        if isinstance(name, str):
            seen.setdefault(name, None)
    return list(seen)
