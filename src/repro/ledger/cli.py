"""The ``ert-repro ledger`` subcommand: record / diff / show.

Exit codes: ``record`` and ``show`` return 0 on success; ``diff``
returns 0 when no throughput regression is flagged, 1 when one is
(that non-zero exit is the CI gate), and 2 on bad invocation (unknown
benchmark, unreadable inputs).  Kept separate from :mod:`repro.cli`
so ``python -m repro.ledger.cli`` works standalone.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.ledger.diff import (
    DEFAULT_THRESHOLD,
    diff_records,
    render_diff,
)
from repro.ledger.records import (
    DEFAULT_LEDGER_PATH,
    append_record,
    benchmarks_in,
    build_record,
    flatten_metrics,
    last_runs,
    read_ledger,
    snapshot_metrics,
)


def _metric_pair(text: str) -> "tuple[str, float]":
    name, sep, raw = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"expected NAME=VALUE, got {text!r}")
    try:
        return name, float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"metric {name!r} needs a numeric value, got {raw!r}")


def _workload_pair(text: str) -> "tuple[str, Any]":
    name, sep, raw = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"expected KEY=VALUE, got {text!r}")
    try:
        return name, json.loads(raw)
    except json.JSONDecodeError:
        return name, raw  # bare strings are fine as-is


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``ledger`` arguments (shared by the standalone entry
    point and the ``ert-repro`` subcommand)."""
    sub = parser.add_subparsers(dest="ledger_command", required=True)

    record = sub.add_parser(
        "record", help="append one run manifest to the ledger")
    record.add_argument("--ledger", default=DEFAULT_LEDGER_PATH,
                        metavar="FILE",
                        help=f"ledger path (default {DEFAULT_LEDGER_PATH})")
    record.add_argument("--benchmark", required=True,
                        help="benchmark name runs are grouped under")
    record.add_argument("--label", default="",
                        help="free-form run label (git sha, 'ci', ...)")
    record.add_argument("--bench-json", default=None, metavar="FILE",
                        help="benchmark JSON output; numeric leaves are "
                             "flattened into dotted metric names")
    record.add_argument("--metrics", default=None, metavar="FILE",
                        help="telemetry snapshot (--metrics-out file); "
                             "root-span times, counters and derived "
                             "throughput are folded in")
    record.add_argument("--metric", action="append", default=None,
                        type=_metric_pair, metavar="NAME=VALUE",
                        help="explicit metric (repeatable; overrides "
                             "derived values of the same name)")
    record.add_argument("--workload", action="append", default=None,
                        type=_workload_pair, metavar="KEY=VALUE",
                        help="workload parameter to stamp on the "
                             "manifest (repeatable)")

    diff = sub.add_parser(
        "diff", help="compare the last two runs per benchmark; exit 1 "
                     "on a throughput regression")
    diff.add_argument("--ledger", default=DEFAULT_LEDGER_PATH,
                      metavar="FILE")
    diff.add_argument("--benchmark", default=None,
                      help="restrict to one benchmark (default: every "
                           "benchmark with at least two runs)")
    diff.add_argument("--threshold", type=float,
                      default=DEFAULT_THRESHOLD, metavar="FRACTION",
                      help="fractional throughput drop that counts as a "
                           f"regression (default {DEFAULT_THRESHOLD})")

    show = sub.add_parser("show", help="print recent ledger entries")
    show.add_argument("--ledger", default=DEFAULT_LEDGER_PATH,
                      metavar="FILE")
    show.add_argument("--benchmark", default=None,
                      help="restrict to one benchmark")
    show.add_argument("--last", type=int, default=10, metavar="N",
                      help="entries to show per benchmark (default 10)")


def _cmd_record(args: argparse.Namespace) -> int:
    metrics: "dict[str, float]" = {}
    telemetry_summary: "dict[str, Any] | None" = None
    if args.bench_json:
        try:
            with open(args.bench_json) as handle:
                bench = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read --bench-json {args.bench_json}: {exc}",
                  file=sys.stderr)
            return 2
        if not isinstance(bench, dict):
            print(f"--bench-json {args.bench_json}: expected a JSON "
                  f"object", file=sys.stderr)
            return 2
        metrics.update(flatten_metrics(bench))
    if args.metrics:
        from repro.telemetry import load_snapshot

        try:
            snap = load_snapshot(args.metrics)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot read --metrics {args.metrics}: {exc}",
                  file=sys.stderr)
            return 2
        metrics.update(snapshot_metrics(snap))
        telemetry_summary = {"counters": snap.get("counters", {}),
                             "spans": {path: stat.get("total_s")
                                       for path, stat
                                       in snap.get("spans", {}).items()
                                       if "/" not in path}}
    for name, value in (args.metric or []):
        metrics[name] = value
    if not metrics:
        print("nothing to record: give --bench-json, --metrics and/or "
              "--metric", file=sys.stderr)
        return 2
    record = build_record(
        args.benchmark, metrics, label=args.label,
        workload=dict(args.workload) if args.workload else None,
        telemetry=telemetry_summary)
    append_record(args.ledger, record)
    print(f"recorded {len(metrics)} metric(s) for {args.benchmark!r} "
          f"in {args.ledger}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    try:
        records = read_ledger(args.ledger)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.benchmark is not None:
        names = [args.benchmark]
        if len(last_runs(records, args.benchmark)) < 2:
            print(f"benchmark {args.benchmark!r} has fewer than two "
                  f"runs in {args.ledger}", file=sys.stderr)
            return 2
    else:
        names = [name for name in benchmarks_in(records)
                 if len(last_runs(records, name)) >= 2]
        if not names:
            print(f"no benchmark in {args.ledger} has two runs yet; "
                  f"nothing to diff")
            return 0
    failed = False
    blocks = []
    for name in names:
        previous, current = last_runs(records, name)
        try:
            deltas = diff_records(previous, current,
                                  threshold=args.threshold)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        blocks.append(render_diff(name, previous, current, deltas,
                                  threshold=args.threshold))
        failed = failed or any(d.regression for d in deltas)
    print("\n\n".join(blocks))
    return 1 if failed else 0


def _cmd_show(args: argparse.Namespace) -> int:
    try:
        records = read_ledger(args.ledger)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    names = ([args.benchmark] if args.benchmark is not None
             else benchmarks_in(records))
    if not records:
        print(f"{args.ledger}: empty ledger")
        return 0
    for name in names:
        runs = last_runs(records, name, n=max(1, args.last))
        if not runs:
            print(f"{name}: no runs recorded")
            continue
        print(f"== {name} ({len(runs)} shown) ==")
        for rec in runs:
            metrics = rec.get("metrics", {}) or {}
            highlight = ", ".join(
                f"{metric}={metrics[metric]:,.6g}"
                for metric in sorted(metrics)[:4])
            more = f" (+{len(metrics) - 4} more)" if len(metrics) > 4 \
                else ""
            print(f"  {rec.get('recorded_at', '?')} "
                  f"[{rec.get('label', '')}] {highlight}{more}")
    return 0


_SUBCOMMANDS = {
    "record": _cmd_record,
    "diff": _cmd_diff,
    "show": _cmd_show,
}


def run(args: argparse.Namespace) -> int:
    """Execute a configured ``ledger`` invocation; returns the exit
    code."""
    return _SUBCOMMANDS[args.ledger_command](args)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ert-repro ledger",
        description="record benchmark runs and gate on regressions")
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
