"""Seeding quality-control summaries.

Production pipelines monitor their seeding stage: how many seeds per
read, how much of each read the seeds cover, how repetitive the hits
are.  :func:`seeding_qc` aggregates those per-batch statistics from the
same :class:`~repro.seeding.types.SeedingResult` objects every engine
emits, so QC is engine-independent (and therefore also a cheap way to
notice a mis-built index: the distributions shift immediately).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SeedingQc:
    """Aggregate seeding statistics over one read batch."""

    reads: int = 0
    reads_without_seeds: int = 0
    total_seeds: int = 0
    seed_length_histogram: "dict[int, int]" = field(default_factory=dict)
    seeds_per_read_histogram: "dict[int, int]" = field(default_factory=dict)
    coverage_sum: float = 0.0
    unique_hit_seeds: int = 0
    repetitive_seeds: int = 0

    @property
    def mean_seeds_per_read(self) -> float:
        return self.total_seeds / self.reads if self.reads else 0.0

    @property
    def mean_read_coverage(self) -> float:
        """Mean fraction of read bases covered by at least one seed."""
        return self.coverage_sum / self.reads if self.reads else 0.0

    @property
    def unique_fraction(self) -> float:
        """Fraction of seeds with exactly one hit (mappability proxy)."""
        return (self.unique_hit_seeds / self.total_seeds
                if self.total_seeds else 0.0)

    def format(self) -> str:
        lines = [
            f"reads                : {self.reads}",
            f"reads without seeds  : {self.reads_without_seeds}",
            f"seeds/read (mean)    : {self.mean_seeds_per_read:.2f}",
            f"read coverage (mean) : {self.mean_read_coverage * 100:.1f}%",
            f"unique-hit seeds     : {self.unique_fraction * 100:.1f}%",
            f"repetitive seeds     : {self.repetitive_seeds}",
        ]
        return "\n".join(lines)


def _covered_fraction(result, read_len: int) -> float:
    spans = sorted((s.read_start, s.read_end) for s in result.all_seeds)
    if not spans or read_len == 0:
        return 0.0
    covered = 0
    end = -1
    for start, stop in spans:
        if start > end:
            covered += stop - start
            end = stop
        elif stop > end:
            covered += stop - end
            end = stop
    return covered / read_len


def seeding_qc(results, read_lengths,
               repetitive_threshold: int = 100) -> SeedingQc:
    """Aggregate QC over parallel lists of results and read lengths."""
    results = list(results)
    read_lengths = list(read_lengths)
    if len(results) != len(read_lengths):
        raise ValueError("one read length per result required")
    qc = SeedingQc(reads=len(results))
    for result, read_len in zip(results, read_lengths):
        seeds = result.all_seeds
        if not seeds:
            qc.reads_without_seeds += 1
        qc.total_seeds += len(seeds)
        bucket = len(seeds)
        qc.seeds_per_read_histogram[bucket] = \
            qc.seeds_per_read_histogram.get(bucket, 0) + 1
        qc.coverage_sum += _covered_fraction(result, read_len)
        for seed in seeds:
            qc.seed_length_histogram[seed.length] = \
                qc.seed_length_histogram.get(seed.length, 0) + 1
            if seed.hit_count == 1:
                qc.unique_hit_seeds += 1
            if seed.hit_count >= repetitive_threshold:
                qc.repetitive_seeds += 1
    return qc
