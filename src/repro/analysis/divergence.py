"""SIMT divergence analysis of ERT traversal (paper §VII).

The paper dismisses GPUs for ERT seeding: "ERT traversal is inherently
not data-parallel and causes significant memory divergence in GPU SIMD
units".  This module quantifies that claim: a *warp* of reads executes
tree walks in lockstep, and at every step we measure

* **control divergence** -- the fraction of active lanes whose cursor
  sits on a node of the majority kind (different kinds decode
  differently, so minorities stall), and
* **memory divergence** -- how many distinct cache lines the active
  lanes' current nodes touch (each distinct line is a separate memory
  transaction for the warp).

A bandwidth-friendly kernel would stay near 1 line per step; ERT walks
scatter across trees, so the expected result -- and the reproduced one --
is close to one transaction *per lane*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import ErtSeedingEngine
from repro.core.index import ErtIndex
from repro.core.walker import TreeCursor

LINE = 64


@dataclass
class DivergenceReport:
    """Aggregate SIMT behaviour over a batch of warps."""

    warps: int = 0
    steps: int = 0
    lane_steps: int = 0
    coherent_lane_steps: int = 0
    memory_transactions: int = 0

    @property
    def control_coherence(self) -> float:
        """Mean fraction of active lanes on the majority node kind."""
        if not self.lane_steps:
            return 1.0
        return self.coherent_lane_steps / self.lane_steps

    @property
    def transactions_per_step(self) -> float:
        """Distinct cache lines touched per lockstep step (1.0 would be a
        perfectly coalesced kernel; warp_size is the worst case)."""
        return self.memory_transactions / self.steps if self.steps else 0.0


def measure_divergence(index: ErtIndex, reads: "list[np.ndarray]",
                       warp_size: int = 32) -> DivergenceReport:
    """Run warps of k-mer tree walks in lockstep and measure divergence.

    Each lane walks the tree of its read's first k-mer (the dominant
    access pattern of forward search); a lane goes inactive when its walk
    dies or its read is exhausted.
    """
    engine = ErtSeedingEngine(index)
    k = index.config.k
    report = DivergenceReport()
    for base in range(0, len(reads) - warp_size + 1, warp_size):
        warp = reads[base:base + warp_size]
        lanes = []
        for read in warp:
            if int(read.size) < k:
                continue
            code = index.kmer_code(read[:k])
            if code not in index.roots:
                continue
            cursor = TreeCursor(index, code, stats=None, enter_root=False)
            lanes.append((cursor, read, [k]))  # position box per lane
        if not lanes:
            continue
        report.warps += 1
        active = list(lanes)
        while active:
            report.steps += 1
            kinds = []
            lines = set()
            survivors = []
            for cursor, read, pos_box in active:
                node = cursor.pending if cursor.pending is not None \
                    else cursor.node
                kinds.append(node.kind)
                addr = index.tree_base[cursor.code] + max(node.offset, 0)
                lines.add(addr // LINE)
                pos = pos_box[0]
                if pos < int(read.size) and cursor.advance(int(read[pos])):
                    pos_box[0] = pos + 1
                    survivors.append((cursor, read, pos_box))
            majority = max(kinds.count(kind) for kind in set(kinds))
            report.lane_steps += len(active)
            report.coherent_lane_steps += majority
            report.memory_transactions += len(lines)
            active = survivors
    return report
