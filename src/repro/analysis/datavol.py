"""Per-read memory-traffic measurement (paper Figs 1a and 12).

``measure_traffic`` runs a batch of reads through any engine with a
tracer attached and reports requests and bytes per read, broken down by
phase -- exactly the quantities behind "each read requires ~68.5 KB of
index data" (FMD, §I) and "15.1 KB" (ERT-KR, §VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memsim.trace import MemoryTracer
from repro.seeding.algorithm import SeedingParams, seed_read


@dataclass
class TrafficProfile:
    """Requests/bytes per read for one configuration."""

    name: str
    reads: int
    requests_total: int
    bytes_total: int
    by_phase: "dict[str, tuple[int, int]]" = field(default_factory=dict)

    @property
    def requests_per_read(self) -> float:
        return self.requests_total / self.reads if self.reads else 0.0

    @property
    def bytes_per_read(self) -> float:
        return self.bytes_total / self.reads if self.reads else 0.0

    @property
    def kb_per_read(self) -> float:
        return self.bytes_per_read / 1024.0


def _attach(engine):
    """Find the index object carrying the tracer attachment point."""
    index = getattr(engine, "index", None)
    if index is None or not hasattr(index, "attach_tracer"):
        raise TypeError(
            f"engine {engine.name!r} has no traceable index")
    return index


def measure_traffic(engine, reads, params: "SeedingParams | None" = None,
                    name: "str | None" = None,
                    driver=None, workers: "int | None" = None,
                    batch_size: int = 64) -> TrafficProfile:
    """Seed ``reads`` and return the traffic profile.

    With ``driver`` given (a :class:`~repro.core.reuse.KmerReuseDriver`),
    the batch goes through the three-phase reuse pipeline instead of
    per-read seeding.  With ``workers > 1`` (and no driver), reads go
    through the :mod:`repro.parallel` scheduler; per-batch tracer totals
    are exactly additive, so the profile equals the serial one.
    """
    params = params or SeedingParams()
    if driver is None and workers is not None and workers > 1:
        from repro.parallel import ParallelConfig, traffic_totals

        requests, nbytes, by_phase = traffic_totals(
            engine, reads, params,
            ParallelConfig(workers=workers, batch_size=batch_size))
        profile = TrafficProfile(
            name=name or engine.name,
            reads=len(reads),
            requests_total=requests,
            bytes_total=nbytes,
            by_phase=dict(sorted(by_phase.items())),
        )
        _publish_metrics(profile)
        return profile
    index = _attach(engine if driver is None else driver.engine)
    tracer = MemoryTracer()
    index.attach_tracer(tracer)
    try:
        if driver is not None:
            driver.seed_batch(list(reads))
        else:
            for read in reads:
                seed_read(engine, read, params)
    finally:
        index.attach_tracer(None)
    by_phase = {phase: (stats.requests, stats.bytes)
                for phase, stats in sorted(tracer.by_phase.items())}
    profile = TrafficProfile(
        name=name or engine.name,
        reads=len(reads),
        requests_total=tracer.total_requests,
        bytes_total=tracer.total_bytes,
        by_phase=by_phase,
    )
    _publish_metrics(profile)
    return profile


def _publish_metrics(profile: TrafficProfile) -> None:
    """Surface one configuration's traffic profile as telemetry gauges
    under ``traffic.<config>.*`` (no-op while telemetry is disabled)."""
    from repro import telemetry

    if not telemetry.enabled():
        return
    prefix = f"traffic.{telemetry.sanitize(profile.name)}"
    telemetry.set_gauge(f"{prefix}.requests_per_read",
                        profile.requests_per_read)
    telemetry.set_gauge(f"{prefix}.bytes_per_read", profile.bytes_per_read)
    for phase, (requests, nbytes) in profile.by_phase.items():
        label = telemetry.sanitize(phase) or "untagged"
        telemetry.set_gauge(f"{prefix}.{label}.requests", requests)
        telemetry.set_gauge(f"{prefix}.{label}.bytes", nbytes)
