"""Analysis layer: data-volume measurement, roofline CPU model, reports.

The benchmark harness (``benchmarks/``) is a thin printing layer over
this package:

* :mod:`repro.analysis.datavol` -- per-read memory requests and bytes by
  phase for every engine configuration (Figs 1a, 12);
* :mod:`repro.analysis.roofline` -- the Fig 1a roofline and the CPU
  throughput model used for the software bars of Fig 11 and Table V;
* :mod:`repro.analysis.report` -- aligned-text tables shared by the
  benchmark scripts and EXPERIMENTS.md generation.
"""

from repro.analysis.datavol import TrafficProfile, measure_traffic
from repro.analysis.divergence import DivergenceReport, measure_divergence
from repro.analysis.qc import SeedingQc, seeding_qc
from repro.analysis.report import format_table
from repro.analysis.roofline import CpuSystem, OpCosts, cpu_throughput

__all__ = [
    "CpuSystem",
    "DivergenceReport",
    "OpCosts",
    "SeedingQc",
    "TrafficProfile",
    "cpu_throughput",
    "format_table",
    "measure_divergence",
    "measure_traffic",
    "seeding_qc",
]
