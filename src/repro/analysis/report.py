"""Plain-text table formatting shared by the benchmark harness."""

from __future__ import annotations


def format_table(headers: "list[str]", rows: "list[list]",
                 title: "str | None" = None) -> str:
    """Render an aligned text table (numbers right-aligned)."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) if _numericish(cell)
                               else cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def _numericish(cell: str) -> bool:
    stripped = cell.replace(",", "").replace(".", "").replace("-", "")
    stripped = stripped.replace("%", "").replace("x", "")
    return stripped.isdigit()
